#!/usr/bin/env python3
"""The OPARI2 workflow end to end: pragma-annotated source -> measured run.

The paper's measurement chain starts with OPARI2 rewriting the
application source so that every OpenMP construct reports to the
measurement system.  This example does the same for Python: a sequential-
looking nqueens with `#pragma omp` comments is translated into a task
program, executed on the simulated runtime, and profiled -- no manual
generator plumbing anywhere in the "application code".

Run:  python examples/pragma_translation.py
"""

from repro.analysis.advisor import advise
from repro.cube import render_profile
from repro.instrument.opari2 import run_translated, translate_tasking
from repro.runtime import RuntimeConfig

NQUEENS_SOURCE = '''
def ok(placement, row, col):
    for prev_row in range(len(placement)):
        prev_col = placement[prev_row]
        if prev_col == col or abs(prev_col - col) == row - prev_row:
            return False
    return True

def nqueens(n, placement):
    omp_compute(0.04 * n)          # the row feasibility scan
    row = len(placement)
    if row == n:
        return 1
    #pragma omp task
    total = solve_row(n, placement)
    #pragma omp taskwait
    return total

def solve_row(n, placement):
    row = len(placement)
    total = 0
    for col in range(n):
        if ok(placement, row, col):
            #pragma omp task
            sub = nqueens(n, placement + (col,))
            #pragma omp taskwait
            total = total + sub
    return total
'''


def main() -> None:
    print("== translating the pragma-annotated source ==")
    functions = translate_tasking(NQUEENS_SOURCE)
    print(f"translated functions: {sorted(functions)}")
    print()

    config = RuntimeConfig(n_threads=4, instrument=True, seed=0)
    result = run_translated(functions, "nqueens", (6, ()), config)
    answer = next(v for v in result.return_values if v is not None)
    print(f"nqueens(6) = {answer} solutions (expected 4)")
    assert answer == 4
    print(f"kernel time: {result.duration:.1f} us, "
          f"tasks: {result.completed_tasks}")
    print()

    profile = result.profile
    print("== profile of the translated program ==")
    print(render_profile(profile, max_depth=2, min_time=1.0))
    print()

    print("== advisor ==")
    for finding in advise(profile)[:3]:
        print(f"  {finding}")


if __name__ == "__main__":
    main()
