#!/usr/bin/env python3
"""Source-to-source function instrumentation (the compiler analogue).

Score-P's second instrumentation mode inserts enter/exit hooks into every
function at compile time.  This example applies the same idea to plain
Python with the AST instrumenter: a mergesort gets rewritten so every
call reports to a hook object, which builds a classic call-path profile
-- the Fig. 1 algorithm on real code.

It also shows the failure mode the paper starts from: the classic
profiler's nesting requirement, and what the rewrite looks like.

Run:  python examples/function_profiling.py
"""

from repro.cube import render_node
from repro.instrument import instrument_function, instrument_source
from repro.instrument.ast_instrumenter import FunctionHooks


# --- the "application": a plain recursive mergesort ---------------------
def merge(left, right):
    out = []
    i = j = 0
    while i < len(left) and j < len(right):
        if left[i] <= right[j]:
            out.append(left[i])
            i += 1
        else:
            out.append(right[j])
            j += 1
    out.extend(left[i:])
    out.extend(right[j:])
    return out


def mergesort(data):
    if len(data) <= 1:
        return list(data)
    mid = len(data) // 2
    return merge(mergesort(data[:mid]), mergesort(data[mid:]))


def main() -> None:
    print("== what the rewrite looks like ==")
    source = (
        "def f(x):\n"
        "    return g(x) + 1\n"
    )
    print(instrument_source(source))
    print()

    print("== instrumenting mergesort and merge ==")
    hooks = FunctionHooks(root_name="<main>")
    instrumented_merge = instrument_function(merge, hooks)
    # Patch the instrumented merge into mergesort's namespace so the
    # whole dynamic call tree reports to the same hooks.
    namespace = dict(mergesort.__globals__)
    namespace["merge"] = instrumented_merge
    mergesort.__globals__["merge"] = instrumented_merge
    instrumented_sort = instrument_function(mergesort, hooks)

    data = [7, 3, 9, 1, 4, 8, 2, 6, 5, 0]
    result = instrumented_sort(data)
    assert result == sorted(data), "instrumentation must not change behavior"
    print(f"sorted {len(data)} elements correctly; {hooks.calls} calls recorded")

    tree = hooks.finish()
    print()
    print("call-path profile (visit counts; the 'time' unit here is one")
    print("event tick, as no wall clock exists in this demo):")
    print(render_node(tree, max_depth=4))

    # Restore the original global for politeness.
    mergesort.__globals__["merge"] = merge

    deepest = max((node.depth() for node in tree.walk()), default=0)
    total_merges = sum(
        node.metrics.visits for node in tree.walk() if node.region.name == "merge"
    )
    print()
    print(f"recursion depth observed: {deepest}")
    print(f"merge invocations: {total_merges} "
          f"(= n-1 = {len(data) - 1} for a {len(data)}-element mergesort)")


if __name__ == "__main__":
    main()
