#!/usr/bin/env python3
"""The paper's Section VI workflow, end to end, on nqueens.

Reproduces the analysis narrative:

1. the no-cut-off kernel gets *slower* with more threads (Fig. 15),
2. the profile's first impression: task creation time rivals task
   execution time (the paper: 0.86 us to create vs 0.30 us of work),
3. Table III: task time flat, taskwait/create/barrier growing with
   threads -> runtime-system management overhead,
4. Table IV via parameter instrumentation: per-depth task statistics
   show deep levels dominate cost while shallow levels provide
   reasonable task sizes,
5. the fix: cut off task creation at level 3 -> large kernel speedup.

Run:  python examples/nqueens_analysis.py
"""

from repro.analysis import (
    cutoff_speedup,
    format_table,
    nqueens_depth_table,
    nqueens_region_times,
    runtime_scaling,
)
from repro.analysis.nqueens_study import creation_vs_execution

SIZE = "small"
THREADS = (1, 2, 4, 8)


def main() -> None:
    print("== 1. no-cut-off runtime vs threads (% of max, Fig. 15) ==")
    scaling = runtime_scaling("nqueens", size=SIZE, threads=THREADS)
    for n_threads, pct in scaling.items():
        print(f"  {n_threads} threads: {pct:6.1f} %")
    print()

    print("== 2. first impression from a 4-thread profile ==")
    numbers = creation_vs_execution(size=SIZE, n_threads=4)
    print(f"  mean exclusive task work : {numbers['mean_task_exclusive_us']:.2f} us")
    print(f"  mean task creation time  : {numbers['mean_creation_us']:.2f} us")
    print(f"  task instances           : {numbers['task_instances']}")
    if numbers["mean_creation_us"] > 0.5 * numbers["mean_task_exclusive_us"]:
        print("  -> creating tasks costs about as much as executing them:")
        print("     too many tasks that are too small (paper's diagnosis)")
    print()

    print("== 3. Table III: exclusive region times vs thread count ==")
    rows = nqueens_region_times(size=SIZE, threads=THREADS)
    print(
        format_table(
            ["region"] + [f"{r.n_threads} thr" for r in rows],
            [
                ["task"] + [f"{r.task:.0f}" for r in rows],
                ["taskwait"] + [f"{r.taskwait:.0f}" for r in rows],
                ["create task"] + [f"{r.create_task:.0f}" for r in rows],
                ["barrier"] + [f"{r.barrier:.0f}" for r in rows],
            ],
            title="exclusive times [virtual us], summed over threads",
        )
    )
    print()

    print("== 4. Table IV: per-recursion-depth task statistics ==")
    depth_rows = nqueens_depth_table(size=SIZE, n_threads=4)
    print(
        format_table(
            ["depth", "mean [us]", "sum [us]", "tasks"],
            [
                [r.depth, f"{r.mean_time_us:.2f}", f"{r.total_time_us:.0f}", r.task_count]
                for r in depth_rows
            ],
        )
    )
    shallow = sum(r.total_time_us for r in depth_rows[:3])
    total = sum(r.total_time_us for r in depth_rows)
    print(f"  -> levels 0-2 contribute {100 * shallow / total:.1f} % of task time;")
    print("     stopping task creation at level 3 keeps enough parallelism")
    print()

    print("== 5. the fix: cut off at level 3 ==")
    comparison = cutoff_speedup(size=SIZE, n_threads=4, cutoff=3)
    print(f"  no cut-off : {comparison.nocutoff_time:10.0f} us")
    print(f"  cut-off @3 : {comparison.cutoff_time:10.0f} us")
    print(f"  speedup    : {comparison.speedup:10.1f} x")


if __name__ == "__main__":
    main()
