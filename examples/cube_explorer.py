#!/usr/bin/env python3
"""Profile exploration: render, query, export, and diff (CUBE workflows).

Runs sparselu (the blocked LU factorization) instrumented, renders the
Fig. 5-style view, queries hot paths and stub summaries, exports the
profile to JSON and reloads it, then diffs the single-producer variant
against the distributed-creation (`for`) variant.

Run:  python examples/cube_explorer.py
"""

from repro.analysis import run_app
from repro.cube import (
    diff_profiles,
    dumps,
    hot_path,
    loads,
    render_profile,
    top_regions,
)
from repro.cube.diff import summarize_diff
from repro.cube.query import find_task_stub_summary

SIZE = "small"
THREADS = 4


def main() -> None:
    result = run_app("sparselu", size=SIZE, variant="single", n_threads=THREADS, seed=0)
    profile = result.profile
    print(f"sparselu/single: kernel={result.kernel_time:.0f} us, "
          f"tasks={result.parallel.completed_tasks}, verified={result.verified}\n")

    print("== Fig. 5-style view (aggregated, depth <= 2) ==")
    print(render_profile(profile, max_depth=2))
    print()

    print("== hot path of the main tree ==")
    path = hot_path(profile.aggregated_main_tree())
    print("  " + " -> ".join(node.display_name() for node in path))
    print()

    print("== top regions by exclusive time ==")
    for name, value in top_regions(profile, limit=6):
        print(f"  {name:24s} {value:10.1f} us")
    print()

    print("== where did tasks execute? (stub summary) ==")
    for anchor, construct, time_us, fragments in find_task_stub_summary(profile)[:8]:
        print(f"  {anchor:44s} {construct:12s} {time_us:8.1f} us  x{fragments}")
    print()

    blob = dumps(profile)
    restored = loads(blob)
    print(f"== JSON export/import: {len(blob):,} bytes, "
          f"roundtrip identical: {dumps(restored) == blob} ==\n")

    other = run_app("sparselu", size=SIZE, variant="for", n_threads=THREADS, seed=0)
    print(f"sparselu/for   : kernel={other.kernel_time:.0f} us, "
          f"verified={other.verified}")
    print("\n== diff single -> for (exclusive time movers) ==")
    print(summarize_diff(diff_profiles(profile, other.profile), limit=8))


if __name__ == "__main__":
    main()
