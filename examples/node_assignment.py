#!/usr/bin/env python3
"""Fig. 3 of the paper: why tasks must be attributed to the node where
they EXECUTE, not where they were CREATED.

Feeds the identical scenario to both profiling designs:

* a parallel region starts, a task-creation region runs for 2 us,
* the implicit task waits in a barrier for 7 us of wall time,
* the created task executes for 5 of those 7 us, inside the barrier.

Creation-node attribution produces a *negative* exclusive time on the
creation region ("which does not make sense") and hides the useful work
inside the barrier.  Execution-node attribution (the paper's stub-node
design) keeps every exclusive time non-negative and splits the barrier
into task execution vs true idle/management time.

Run:  python examples/node_assignment.py
"""

from repro.events import RegionRegistry, RegionType
from repro.profiling import CreationNodeProfiler
from repro.profiling.task_profiler import ThreadTaskProfiler
from repro.cube import render_node


def build_regions():
    reg = RegionRegistry()
    return {
        "impl": reg.register("parallel", RegionType.IMPLICIT_TASK),
        "create": reg.register("create_task", RegionType.TASK_CREATE),
        "task": reg.register("task", RegionType.TASK),
        "barrier": reg.register("barrier", RegionType.IMPLICIT_BARRIER),
    }


def main() -> None:
    regions = build_regions()

    print("== creation-node attribution (Fig. 3, left -- the wrong design) ==")
    bad = CreationNodeProfiler(regions["impl"])
    bad.enter(regions["create"], 1.0)
    bad.task_created(regions["task"], instance=1)
    bad.exit(regions["create"], 3.0)
    bad.enter(regions["barrier"], 3.0)
    bad.task_begin(1, 4.0)
    bad.task_end(1, 9.0)
    bad.exit(regions["barrier"], 10.0)
    tree = bad.finish(10.0)
    print(render_node(tree))
    create_node = tree.find_one("create_task")
    print(f"\n  create_task exclusive time: {create_node.exclusive_time:+.1f} us"
          f"  <-- negative, meaningless")
    barrier_node = tree.find_one("barrier")
    print(f"  barrier exclusive time    : {barrier_node.exclusive_time:+.1f} us"
          f"  <-- mostly useful work, misreported as waiting\n")

    print("== execution-node attribution (Fig. 3, right -- the paper's design) ==")
    good = ThreadTaskProfiler(0, regions["impl"], {}, start_time=0.0)
    good.enter(regions["create"], 1.0)
    good.exit(regions["create"], 3.0)
    good.enter(regions["barrier"], 3.0)
    good.task_begin(regions["task"], 1, 4.0)
    good.task_end(regions["task"], 1, 9.0)
    good.exit(regions["barrier"], 10.0)
    main_tree = good.finish(10.0)
    print(render_node(main_tree))
    barrier_node = main_tree.find_one("barrier")
    stub = next(c for c in barrier_node.children.values() if c.is_stub)
    print(f"\n  create_task exclusive time: "
          f"{main_tree.find_one('create_task').exclusive_time:+.1f} us")
    print(f"  barrier: {barrier_node.metrics.inclusive_time:.1f} us total = "
          f"{stub.metrics.inclusive_time:.1f} us task execution (stub) + "
          f"{barrier_node.exclusive_time:.1f} us idle/management")
    print("\n  every exclusive time is non-negative, and the task's work is")
    print("  visible both inside the barrier (stub) and as its own tree:")
    for tree in good.task_trees.values():
        print()
        print(render_node(tree))


if __name__ == "__main__":
    main()
