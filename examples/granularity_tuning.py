#!/usr/bin/env python3
"""Tuning task granularity with the advisor: the paper's optimization
strategy ("The major strategy of optimizing performance for OpenMP tasks
is to find the appropriate size for the tasks"), automated.

Sweeps the fib cut-off level, shows kernel time / task count / mean task
size per level, and runs the granularity advisor on the worst and best
configurations.

Run:  python examples/granularity_tuning.py
"""

from repro.analysis import format_table, run_app
from repro.analysis.advisor import advise
from repro.analysis.taskstats import combined_task_stats

SIZE = "small"
THREADS = 4


def main() -> None:
    rows = []
    profiles = {}
    for cutoff in (None, 2, 4, 6, 8, 10):
        result = run_app(
            "fib",
            size=SIZE,
            variant="optimized" if cutoff is not None else "stress",
            n_threads=THREADS,
            seed=0,
            program_kwargs={"cutoff": cutoff} if cutoff is not None else None,
        )
        stats = combined_task_stats(result)
        label = "none" if cutoff is None else str(cutoff)
        profiles[label] = result
        rows.append(
            [
                label,
                f"{result.kernel_time:.0f}",
                stats.count,
                f"{stats.mean:.2f}",
                f"{result.parallel.total('mgmt'):.0f}",
                f"{result.parallel.total('idle'):.0f}",
            ]
        )

    print(
        format_table(
            ["cutoff", "kernel [us]", "tasks", "mean task [us]", "mgmt [us]", "idle [us]"],
            rows,
            title=f"fib({SIZE}) granularity sweep, {THREADS} threads",
        )
    )

    best = min(rows, key=lambda r: float(r[1]))
    print(f"\nbest cut-off level: {best[0]} ({best[1]} us)\n")

    print("== advisor on the no-cut-off run ==")
    for finding in advise(profiles["none"].profile)[:4]:
        print(f"  {finding}")

    print("\n== advisor on the best run ==")
    findings = advise(profiles[best[0]].profile)
    serious = [f for f in findings if f.severity != "info"]
    if serious:
        for finding in serious[:4]:
            print(f"  {finding}")
    else:
        print("  no granularity problems found")


if __name__ == "__main__":
    main()
