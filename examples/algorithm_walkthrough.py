#!/usr/bin/env python3
"""The paper's Figs. 6-11, replayed step by step.

Drives the task profiler through the exact scenario of the paper's
walkthrough -- a task construct A with two instances executing inside the
implicit barrier, the first suspended at a taskwait while the second runs
-- and prints the profiler state (current task, instance table, trees)
after each event, mirroring each figure.

Run:  python examples/algorithm_walkthrough.py
"""

from repro.events import RegionRegistry, RegionType
from repro.profiling.task_profiler import ThreadTaskProfiler
from repro.cube import render_node


def snapshot(title, profiler):
    print(f"--- {title} ---")
    current = profiler.current
    print(f"current task : "
          f"{'implicit' if current is None else f'instance {current.instance}'}")
    if profiler._table:
        print(f"instance table: {sorted(profiler._table)}")
    else:
        print("instance table: (empty)")
    print("main tree:")
    print(render_node(profiler.implicit_root))
    for key, tree in profiler.task_trees.items():
        print(f"task tree [{tree.display_name()}]:")
        print(render_node(tree))
    print()


def main() -> None:
    reg = RegionRegistry()
    impl = reg.register("parallel", RegionType.IMPLICIT_TASK)
    task_a = reg.register("A", RegionType.TASK)
    create = reg.register("create@A", RegionType.TASK_CREATE)
    taskwait = reg.register("taskwait", RegionType.TASKWAIT)
    barrier = reg.register("barrier", RegionType.IMPLICIT_BARRIER)

    p = ThreadTaskProfiler(0, impl, {}, start_time=0.0)
    snapshot("Fig. 6: before tasks are created (current = implicit)", p)

    p.enter(create, 1.0)
    p.exit(create, 1.5)
    p.enter(create, 1.5)
    p.exit(create, 2.0)
    p.enter(barrier, 4.0)
    snapshot("Fig. 7: two tasks of construct A created; implicit task in barrier", p)

    p.task_begin(task_a, 1, 5.0)
    snapshot("Fig. 8: instance 1 of A starts executing inside the barrier", p)

    p.enter(taskwait, 7.0)
    p.task_begin(task_a, 2, 8.0)
    snapshot("Fig. 9: instance 1 suspended at its taskwait; instance 2 started", p)

    p.task_end(task_a, 2, 11.0)
    p.task_switch(1, 11.0)
    snapshot("Fig. 10: instance 2 completed and merged; instance 1 resumed", p)

    p.exit(taskwait, 12.0)
    p.task_end(task_a, 1, 13.0)
    p.exit(barrier, 14.0)
    p.finish(15.0)
    snapshot("Fig. 11: all tasks done; aggregate task tree beside the main tree", p)

    agg = p.task_trees[(task_a, None)]
    stats = agg.metrics.durations
    print("Aggregate statistics of construct A "
          f"(n={stats.count}, mean={stats.mean:.1f} us, "
          f"min={stats.minimum:.1f} us, max={stats.maximum:.1f} us)")
    print("Note instance 1's 3 us suspension [8,11) is excluded from its")
    print("5 us runtime, while the barrier's stub shows all 8 us of")
    print("in-barrier task execution across 3 fragments.")


if __name__ == "__main__":
    main()
