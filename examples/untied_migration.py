#!/usr/bin/env python3
"""Untied tasks (paper Section IV-D): migration works, interruption doesn't.

The paper supports tied tasks only, for two reasons it spells out:

1. *Migration* (an untied task resuming on a different thread) is fine in
   principle: "if a task migrates, the pointer to the task-specific data
   migrates together with the task."  Our profiler implements exactly
   that -- the instance table is shared between threads.
2. *Interruption at arbitrary points* cannot be observed by
   instrumentation that only brackets scheduling points, so "our
   instrumentation makes all tasks tied by default."

This example shows both:
* with the default config, `tied=False` spawns are silently downgraded
  (and counted);
* with `allow_untied=True`, a task that suspends on one thread can be
  resumed by another, and the profile stays consistent: the task's own
  tree is whole, while its stub fragments split across both threads'
  scheduling points.

Run:  python examples/untied_migration.py
"""

from repro.runtime import OpenMPRuntime, RuntimeConfig
from repro.cube import render_profile


def busy(ctx, us):
    yield ctx.compute(us)


def wanderer(ctx):
    """Starts somewhere, suspends at a taskwait, may resume elsewhere."""
    yield ctx.compute(5.0)
    child = yield ctx.spawn(busy, 40.0)
    yield ctx.taskwait()  # suspension point: untied -> any thread resumes
    yield ctx.compute(5.0)
    return ctx.thread_id  # the thread that ran the LAST fragment


def region(ctx):
    if (yield ctx.single()):
        handle = yield ctx.spawn(wanderer, tied=False)
        # keep the producing thread busy so another thread resumes it
        yield ctx.compute(100.0)
        yield ctx.taskwait()
        return handle.result
    return None


def main() -> None:
    print("== default config: untied requests are downgraded (IV-D2) ==")
    result = OpenMPRuntime(RuntimeConfig(n_threads=4, seed=3)).parallel(region)
    print(f"  downgraded untied spawns: {result.downgraded_untied}")
    print()

    print("== allow_untied=True: migration across threads (IV-D1) ==")
    config = RuntimeConfig(n_threads=4, seed=3, allow_untied=True)
    result = OpenMPRuntime(config).parallel(region)
    final_thread = next(v for v in result.return_values if v is not None)
    print(f"  downgraded untied spawns: {result.downgraded_untied}")
    print(f"  wanderer's last fragment ran on thread {final_thread}")

    profile = result.profile
    tree = profile.task_tree("wanderer")
    stats = tree.metrics.durations
    print(f"  wanderer instances={stats.count}, runtime={stats.total:.1f} us "
          f"(suspension excluded)")
    print("  stub fragments per thread (where the task executed):")
    for thread_id in range(profile.n_threads):
        for node in profile.stub_nodes(thread_id):
            if node.region.name == "wanderer":
                print(f"    thread {thread_id}: {node.metrics.inclusive_time:6.1f} us "
                      f"in {node.parent.region.name!r} x{node.metrics.visits}")
    print()
    print(render_profile(profile, max_depth=2))


if __name__ == "__main__":
    main()
