#!/usr/bin/env python3
"""Quickstart: write a task program, run it, read the task-aware profile.

This is the 60-second tour of the library:

1. express a task-parallel computation as generator functions whose
   ``yield``\\ s are OpenMP-style scheduling points,
2. run it on the simulated OpenMP runtime with profiling enabled,
3. inspect the paper's task-aware call-path profile: per-construct task
   trees with instance statistics, and stub nodes showing where tasks
   executed inside scheduling points (Fig. 5 of the paper).

Run:  python examples/quickstart.py
"""

from repro.runtime import OpenMPRuntime, RuntimeConfig
from repro.cube import render_profile, top_regions


# -- 1. a task program ---------------------------------------------------
def fib(ctx, n):
    """Binary task recursion; each spawn is an OpenMP `task` construct."""
    if n < 2:
        yield ctx.compute(1.0)  # charge 1 virtual microsecond of work
        return n
    a = yield ctx.spawn(fib, n - 1)
    b = yield ctx.spawn(fib, n - 2)
    yield ctx.taskwait()  # OpenMP taskwait: wait for direct children
    yield ctx.compute(0.5)
    return a.result + b.result


def region(ctx):
    """The parallel region body: every team thread executes this (SPMD);
    a `single` construct picks one producer, everyone else helps execute
    tasks at the implicit end-of-region barrier."""
    if (yield ctx.single()):
        root = yield ctx.spawn(fib, 12)
        yield ctx.taskwait()
        return root.result
    return None


def main() -> None:
    # -- 2. run it --------------------------------------------------------
    config = RuntimeConfig(n_threads=4, instrument=True, seed=0)
    runtime = OpenMPRuntime(config)
    result = runtime.parallel(region, name="quickstart")

    answer = next(v for v in result.return_values if v is not None)
    print(f"fib(12) = {answer}")
    print(f"task instances executed : {result.completed_tasks}")
    print(f"kernel virtual time     : {result.duration:.1f} us")
    print(f"tasks stolen            : {result.tasks_stolen}")
    print()

    # -- 3. read the profile ----------------------------------------------
    profile = result.profile
    stats = profile.task_tree("fib").metrics.durations
    print(
        f"fib task instances: n={stats.count}, mean={stats.mean:.2f} us, "
        f"min={stats.minimum:.2f} us, max={stats.maximum:.2f} us"
    )
    print(f"max concurrently active tasks/thread: "
          f"{profile.max_concurrent_tasks_per_thread()}")
    print()
    print("Top regions by exclusive time:")
    for name, value in top_regions(profile, limit=5):
        print(f"  {name:20s} {value:10.1f} us")
    print()
    print(render_profile(profile, max_depth=2))


if __name__ == "__main__":
    main()
