"""Legacy setup shim: the environment's setuptools lacks the `wheel`
package, so PEP 660 editable installs fail; `setup.py develop` works."""
from setuptools import setup

setup()
