"""The documented public API exists and is importable.

Guards docs/api.md against drift: every symbol it promises must import,
and every subpackage's ``__all__`` must resolve.
"""

import importlib

import pytest

SUBPACKAGES = [
    "repro",
    "repro.sim",
    "repro.events",
    "repro.runtime",
    "repro.instrument",
    "repro.profiling",
    "repro.cube",
    "repro.bots",
    "repro.analysis",
    "repro.faults",
    "repro.substrates",
    "repro.archive",
    "repro.governor",
    "repro.fabric",
]


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.__all__ lists missing {name!r}"


PROMISED = {
    "repro.runtime": [
        "OpenMPRuntime",
        "run_parallel",
        "RuntimeConfig",
        "CostModel",
        "JUROPA_LIKE",
        "ZERO_COST",
        "TaskContext",
        "TaskHandle",
        "ParallelResult",
        "TaskYield",
    ],
    "repro.profiling": [
        "TaskProfiler",
        "ThreadTaskProfiler",
        "Profile",
        "CallTreeNode",
        "NodeMetrics",
        "StatAccumulator",
        "NodePool",
        "ClassicProfiler",
        "CreationNodeProfiler",
        "NoInstanceProfiler",
        "ConcurrencyTracker",
        "SalvageReport",
    ],
    "repro.instrument": [
        "InstrumentationLayer",
        "Pomp2Listener",
        "NullListener",
        "MulticastListener",
        "instrument_source",
        "instrument_function",
    ],
    "repro.substrates": [
        "Substrate",
        "SubstrateManager",
        "SubstrateIncident",
        "ProfilingSubstrate",
        "TracingSubstrate",
        "OnlineValidationSubstrate",
        "StatsSubstrate",
        "register_substrate",
        "get_substrate",
        "available_substrates",
    ],
    "repro.events": [
        "Region",
        "RegionRegistry",
        "RegionType",
        "TaskStreamChecker",
        "EnterEvent",
        "ExitEvent",
        "TaskBeginEvent",
        "TaskEndEvent",
        "TaskSwitchEvent",
        "EventStream",
        "ProgramTrace",
        "validate_nesting",
        "validate_task_stream",
        "Violation",
        "collect_trace_violations",
        "validate_program_trace",
        "repair_stream",
        "repair_streams",
        "RepairLog",
        "replay_events",
        "replay_trace",
    ],
    "repro.faults": [
        "FaultPlan",
        "FaultInjector",
        "FAULT_MODES",
        "plan_for_mode",
        "run_tolerant",
        "run_campaign",
        "CampaignResult",
        "SalvageOutcome",
    ],
    "repro.cube": [
        "render_profile",
        "render_node",
        "top_regions",
        "hot_path",
        "flat_region_profile",
        "query",
        "query_time",
        "query_visits",
        "dumps",
        "loads",
        "diff_profiles",
    ],
    "repro.bots": ["get_program", "list_programs", "BotsProgram"],
    "repro.fabric": [
        "AdmissionController",
        "AdmissionPolicy",
        "AdmissionStats",
        "ADMISSION_POLICIES",
        "BreakerPolicy",
        "BreakerState",
        "CircuitBreaker",
        "BREAKER_FAILURE_OUTCOMES",
        "LivenessTracker",
        "heartbeat_message",
        "is_heartbeat",
        "DEFAULT_HEARTBEAT_S",
        "DEFAULT_STALL_FACTOR",
    ],
    "repro.governor": [
        "MemoryBudget",
        "ResourceGovernor",
        "PressureIncident",
        "LEVEL_NAMES",
        "PRESSURE_POLICIES",
    ],
    "repro.archive": [
        "ArchiveStore",
        "ArchiveRecord",
        "RunMeta",
        "config_fingerprint",
        "content_hash",
        "meta_for_result",
        "meta_for_outcome",
        "find_runs",
        "latest_baseline",
        "baselines_available",
        "Baseline",
        "MetricStats",
        "MetricPolicy",
        "SentinelPolicy",
        "SentinelReport",
        "RegionVerdict",
        "compare_to_baseline",
        "GcStats",
        "fsck",
        "FsckReport",
        "FsckIssue",
        "FSCK_ISSUE_KINDS",
    ],
    "repro.analysis": [
        "run_app",
        "measure_overhead",
        "overhead_sweep",
        "runtime_scaling",
        "substrate_overhead_rows",
        "event_cost_attribution",
        "task_statistics",
        "max_concurrent_tasks",
        "nqueens_region_times",
        "nqueens_depth_table",
        "cutoff_speedup",
        "advise",
        "creation_balance",
        "diagnose_creation_bottleneck",
        "management_ratio",
        "render_timeline",
        "generate_report",
        "format_table",
    ],
}


@pytest.mark.parametrize("module_name,symbols", sorted(PROMISED.items()))
def test_documented_symbols_exist(module_name, symbols):
    module = importlib.import_module(module_name)
    missing = [s for s in symbols if not hasattr(module, s)]
    assert not missing, f"{module_name} missing documented symbols: {missing}"


def test_deeper_documented_modules_import():
    for module_name in (
        "repro.instrument.opari2",
        "repro.analysis.scaling",
        "repro.analysis.patterns",
        "repro.analysis.traces",
        "repro.analysis.report",
        "repro.cube.paths",
        "repro.cli",
    ):
        importlib.import_module(module_name)


def test_version_is_set():
    import repro

    assert repro.__version__ == "1.0.0"
