"""Liveness tracker: pure-bookkeeping stall classification."""

import pytest

from repro.fabric import (
    DEFAULT_HEARTBEAT_S,
    DEFAULT_STALL_FACTOR,
    LivenessTracker,
    heartbeat_message,
    is_heartbeat,
)


def test_heartbeat_message_round_trip():
    msg = heartbeat_message(3)
    assert is_heartbeat(msg) and msg["seq"] == 3
    assert not is_heartbeat({"outcome": "ok"})
    assert not is_heartbeat("heartbeat")
    assert not is_heartbeat(None)


def test_tracker_validates():
    with pytest.raises(ValueError):
        LivenessTracker(0.0)
    with pytest.raises(ValueError):
        LivenessTracker(0.5, stall_factor=1.0)  # one missed beat is jitter
    assert DEFAULT_STALL_FACTOR >= 2.0 and DEFAULT_HEARTBEAT_S > 0


def test_stall_window_is_interval_times_factor():
    tracker = LivenessTracker(0.5, stall_factor=4.0)
    assert tracker.stall_after_s == pytest.approx(2.0)


def test_beats_keep_a_worker_alive():
    tracker = LivenessTracker(1.0, stall_factor=2.0)
    tracker.started("cell", now=0.0)
    assert not tracker.stalled("cell", now=1.9)
    tracker.beat("cell", now=1.9)
    assert not tracker.stalled("cell", now=3.5)  # silent 1.6 < 2.0
    assert tracker.beats("cell") == 1
    assert tracker.silent_for("cell", now=3.5) == pytest.approx(1.6)


def test_silence_past_the_window_is_a_stall():
    tracker = LivenessTracker(1.0, stall_factor=2.0)
    tracker.started("cell", now=0.0)
    tracker.beat("cell", now=1.0)
    assert not tracker.stalled("cell", now=3.0)  # exactly at the window
    assert tracker.stalled("cell", now=3.01)


def test_launch_counts_as_first_sign_of_life():
    # A worker that never beats must still get its full window after
    # launch before being declared stuck (slow import, cold start).
    tracker = LivenessTracker(0.5, stall_factor=6.0)
    tracker.started("cell", now=10.0)
    assert not tracker.stalled("cell", now=12.9)
    assert tracker.stalled("cell", now=13.1)


def test_forget_clears_state_and_unknown_keys_never_stall():
    tracker = LivenessTracker(0.5)
    tracker.started("cell", now=0.0)
    tracker.forget("cell")
    assert not tracker.stalled("cell", now=1e9)
    assert tracker.beats("cell") == 0
    assert tracker.silent_for("cell", now=5.0) == 0.0
