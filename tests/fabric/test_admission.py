"""Admission controller: watermarks, hysteresis, quotas, overload policies."""

import threading

import pytest

from repro.errors import AdmissionRejected
from repro.fabric import AdmissionController, AdmissionPolicy


def test_policy_validates():
    with pytest.raises(ValueError):
        AdmissionPolicy(max_pending=0)
    with pytest.raises(ValueError):
        AdmissionPolicy(low_fraction=0.9, high_fraction=0.5)
    with pytest.raises(ValueError):
        AdmissionPolicy(policy="explode")
    with pytest.raises(ValueError):
        AdmissionPolicy(tag_quotas={"fib": 0})


def test_watermarks_and_describe():
    policy = AdmissionPolicy(max_pending=10, high_fraction=0.8, low_fraction=0.3)
    assert policy.high_watermark == 8
    assert policy.low_watermark == 3
    text = policy.describe()
    assert "pending<=10" in text and "high=8" in text and "low=3" in text


def test_admits_until_high_watermark_then_defers():
    ctl = AdmissionController(AdmissionPolicy(max_pending=4, policy="block"))
    for i in range(4):
        verdict, shed = ctl.offer(i)
        assert verdict == "admitted" and shed == []
    verdict, _ = ctl.offer(99)
    assert verdict == "deferred"
    assert ctl.stats.admitted == 4 and ctl.stats.deferred == 1


def test_hysteresis_stays_saturated_until_low_watermark():
    policy = AdmissionPolicy(max_pending=4, high_fraction=1.0, low_fraction=0.5)
    ctl = AdmissionController(policy)
    for i in range(4):
        ctl.offer(i)
    assert ctl.offer(90)[0] == "deferred"
    ctl.pop()  # depth 3 > low watermark 2: still latched
    assert ctl.offer(91)[0] == "deferred"
    ctl.pop()  # depth 2 == low watermark: unlatched
    assert ctl.offer(92)[0] == "admitted"


def test_reject_policy_raises_on_submit():
    ctl = AdmissionController(AdmissionPolicy(max_pending=2, policy="reject"))
    ctl.submit("a")
    ctl.submit("b")
    with pytest.raises(AdmissionRejected):
        ctl.submit("c")
    assert ctl.stats.rejected == 1


def test_shed_policy_evicts_oldest():
    ctl = AdmissionController(AdmissionPolicy(max_pending=2, policy="shed"))
    ctl.submit("old")
    ctl.submit("mid")
    shed = ctl.submit("new")
    assert [item for item, _tag in shed] == ["old"]
    assert ctl.pop()[0] == "mid"
    assert ctl.pop()[0] == "new"
    assert ctl.stats.shed == 1


def test_tag_quota_limits_one_tag_without_starving_others():
    policy = AdmissionPolicy(
        max_pending=10, policy="block", tag_quotas={"fib": 2}
    )
    ctl = AdmissionController(policy)
    assert ctl.offer("f1", tag="fib")[0] == "admitted"
    assert ctl.offer("f2", tag="fib")[0] == "admitted"
    assert ctl.offer("f3", tag="fib")[0] == "deferred"  # fib at quota
    assert ctl.offer("n1", tag="nqueens")[0] == "admitted"  # others fine
    assert ctl.pending_for("fib") == 2


def test_shed_prefers_the_offending_tag():
    policy = AdmissionPolicy(max_pending=10, policy="shed", tag_quotas={"fib": 2})
    ctl = AdmissionController(policy)
    ctl.offer("other", tag="nqueens")
    ctl.offer("f1", tag="fib")
    ctl.offer("f2", tag="fib")
    _verdict, shed = ctl.offer("f3", tag="fib")
    # The oldest *fib* item goes, not the older nqueens one.
    assert [item for item, _ in shed] == ["f1"]
    assert ctl.pending_for("nqueens") == 1


def test_blocking_submit_wakes_when_queue_drains():
    ctl = AdmissionController(
        AdmissionPolicy(max_pending=2, high_fraction=1.0, low_fraction=0.5)
    )
    ctl.submit("a")
    ctl.submit("b")
    admitted = threading.Event()

    def _submitter():
        ctl.submit("c", timeout=5.0)
        admitted.set()

    thread = threading.Thread(target=_submitter, daemon=True)
    thread.start()
    assert not admitted.wait(0.1)  # genuinely parked
    ctl.pop()  # drains to the low watermark -> wakes the submitter
    assert admitted.wait(5.0)
    thread.join(timeout=5.0)
    assert ctl.stats.blocked == 1


def test_blocking_submit_times_out():
    ctl = AdmissionController(AdmissionPolicy(max_pending=1))
    ctl.submit("a")
    with pytest.raises(AdmissionRejected):
        ctl.submit("b", timeout=0.05)


def test_pop_empty_returns_none_and_peak_tracked():
    ctl = AdmissionController(AdmissionPolicy(max_pending=8))
    assert ctl.pop() is None
    for i in range(5):
        ctl.offer(i)
    assert ctl.stats.peak_pending == 5
    assert len(ctl) == 5
