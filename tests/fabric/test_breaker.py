"""Circuit breaker state machine: open, short-circuit, probe, re-close."""

import pytest

from repro.fabric import BREAKER_FAILURE_OUTCOMES, BreakerPolicy, CircuitBreaker

KEY = "fib|deadbeef0123"


def test_policy_validates():
    with pytest.raises(ValueError):
        BreakerPolicy(threshold=0)
    with pytest.raises(ValueError):
        BreakerPolicy(max_probes=-1)
    with pytest.raises(ValueError):
        BreakerPolicy(probe_after=-1)


def test_closed_until_threshold_consecutive_failures():
    breaker = CircuitBreaker(BreakerPolicy(threshold=3))
    for _ in range(2):
        assert breaker.admit(KEY) == "run"
        breaker.record(KEY, "crash")
    assert breaker.admit(KEY) == "run"  # 2 < threshold: still closed
    breaker.record(KEY, "crash")  # third consecutive: opens
    assert breaker.admit(KEY) == "short_circuit"
    assert breaker.state_of(KEY).state == "open"
    assert breaker.state_of(KEY).opened == 1


def test_success_resets_the_consecutive_count():
    breaker = CircuitBreaker(BreakerPolicy(threshold=3))
    breaker.record(KEY, "crash")
    breaker.record(KEY, "crash")
    breaker.record(KEY, "ok")  # streak broken
    breaker.record(KEY, "crash")
    breaker.record(KEY, "crash")
    assert breaker.admit(KEY) == "run"  # never reached 3 in a row


def test_deterministic_error_counts_as_success():
    # The worker ran and reported: the runtime is healthy, whatever the
    # cell thinks of its own arguments.
    assert "error" not in BREAKER_FAILURE_OUTCOMES
    breaker = CircuitBreaker(BreakerPolicy(threshold=2))
    breaker.record(KEY, "crash")
    breaker.record(KEY, "error")
    breaker.record(KEY, "crash")
    assert breaker.admit(KEY) == "run"


def test_probe_offered_after_cooldown_and_success_recloses():
    policy = BreakerPolicy(threshold=2, max_probes=2, probe_after=3)
    breaker = CircuitBreaker(policy)
    breaker.record(KEY, "timeout")
    breaker.record(KEY, "timeout")  # open
    for _ in range(3):  # cool-down: refused cells accumulate
        assert breaker.admit(KEY) == "short_circuit"
    assert breaker.admit(KEY) == "probe"
    assert breaker.state_of(KEY).state == "half_open"
    # While the probe is in flight everything else stays refused.
    assert breaker.admit(KEY) == "short_circuit"
    breaker.record(KEY, "ok", probe=True)
    assert breaker.state_of(KEY).state == "closed"
    assert breaker.admit(KEY) == "run"


def test_failed_probe_reopens_and_max_probes_bounds_launches():
    policy = BreakerPolicy(threshold=2, max_probes=1, probe_after=1)
    breaker = CircuitBreaker(policy)
    breaker.record(KEY, "crash")
    breaker.record(KEY, "crash")  # open
    assert breaker.admit(KEY) == "short_circuit"  # cool-down
    assert breaker.admit(KEY) == "probe"
    breaker.record(KEY, "crash", probe=True)  # probe fails: back to open
    assert breaker.state_of(KEY).state == "open"
    # Probe budget spent: everything is refused forever after.
    for _ in range(20):
        assert breaker.admit(KEY) == "short_circuit"
    # Total launches for the class: threshold (2) + max_probes (1).


def test_launch_bound_holds_for_a_large_grid():
    policy = BreakerPolicy(threshold=3, max_probes=2, probe_after=2)
    breaker = CircuitBreaker(policy)
    launches = 0
    for _ in range(100):
        decision = breaker.admit(KEY)
        if decision == "short_circuit":
            continue
        launches += 1  # "run" or "probe" costs a worker
        breaker.record(KEY, "crash", probe=decision == "probe")
    assert launches <= policy.threshold + policy.max_probes
    assert breaker.total_short_circuited() == 100 - launches


def test_classes_are_independent():
    breaker = CircuitBreaker(BreakerPolicy(threshold=1))
    breaker.record("bad|aaa", "crash")
    assert breaker.admit("bad|aaa") == "short_circuit"
    assert breaker.admit("good|bbb") == "run"
    assert set(breaker.open_classes) == {"bad|aaa"}


def test_seeded_probe_jitter_is_deterministic_and_bounded():
    policy = BreakerPolicy(probe_after=4, probe_jitter=3, seed=7)
    spacing = policy.spacing_for(KEY)
    assert spacing == policy.spacing_for(KEY)  # stable
    assert 4 <= spacing <= 7
    other = policy.spacing_for("nqueens|0123456789ab")
    assert 4 <= other <= 7


def test_summary_is_json_able():
    import json

    breaker = CircuitBreaker(BreakerPolicy(threshold=1))
    breaker.record(KEY, "oom")
    summary = breaker.summary()
    assert json.loads(json.dumps(summary))[KEY]["state"] == "open"
    assert summary[KEY]["last_failure"] == "oom"
