"""Event streams and the two validators, including the paper's Fig. 1/2."""

import pytest

from repro.errors import EventOrderError, ValidationError
from repro.events import (
    EnterEvent,
    EventStream,
    ExitEvent,
    RegionRegistry,
    RegionType,
    TaskBeginEvent,
    TaskEndEvent,
    TaskSwitchEvent,
    validate_nesting,
    validate_task_stream,
)
from repro.events.model import implicit_instance_id
from repro.events.stream import ProgramTrace, stream_from_events
from repro.events.validate import validate_program_trace


@pytest.fixture()
def regions():
    reg = RegionRegistry()
    return {
        "main": reg.register("main", RegionType.FUNCTION),
        "foo": reg.register("foo", RegionType.FUNCTION),
        "bar": reg.register("bar", RegionType.FUNCTION),
        "task": reg.register("taskA", RegionType.TASK),
        "taskwait": reg.register("taskwait", RegionType.TASKWAIT),
    }


IMPL = implicit_instance_id(0)


def fig1_stream(regions):
    """Fig. 1: main enters, foo and bar nest without overlap."""
    return stream_from_events(
        [
            EnterEvent(0, 0.0, IMPL, regions["main"]),
            EnterEvent(0, 1.0, IMPL, regions["foo"]),
            ExitEvent(0, 3.0, IMPL, regions["foo"]),
            EnterEvent(0, 4.0, IMPL, regions["bar"]),
            ExitEvent(0, 6.0, IMPL, regions["bar"]),
            ExitEvent(0, 7.0, IMPL, regions["main"]),
        ]
    )


def test_fig1_stream_satisfies_nesting(regions):
    validate_nesting(fig1_stream(regions))


def test_unmatched_exit_detected(regions):
    events = [
        EnterEvent(0, 0.0, IMPL, regions["main"]),
        ExitEvent(0, 1.0, IMPL, regions["foo"]),
    ]
    with pytest.raises(EventOrderError, match="does not match"):
        validate_nesting(events)


def test_exit_without_enter_detected(regions):
    with pytest.raises(EventOrderError, match="no open region"):
        validate_nesting([ExitEvent(0, 0.0, IMPL, regions["foo"])])


def test_dangling_enter_detected(regions):
    with pytest.raises(EventOrderError, match="open region"):
        validate_nesting([EnterEvent(0, 0.0, IMPL, regions["main"])])


def test_classic_validator_rejects_task_events(regions):
    events = [TaskBeginEvent(0, 0.0, 1, regions["task"], instance=1)]
    with pytest.raises(EventOrderError, match="not representable"):
        validate_nesting(events)


def test_task_aware_validator_accepts_interleaved_fragments(regions):
    task = regions["task"]
    foo = regions["foo"]
    events = [
        TaskBeginEvent(0, 1.0, 1, task, instance=1),
        EnterEvent(0, 2.0, 1, foo),
        TaskBeginEvent(0, 3.0, 2, task, instance=2),  # task1 suspended
        EnterEvent(0, 4.0, 2, foo),
        TaskSwitchEvent(0, 5.0, 1, instance=1),  # resume task1
        ExitEvent(0, 6.0, 1, foo),
        TaskEndEvent(0, 7.0, 1, task, instance=1),
        TaskSwitchEvent(0, 8.0, 2, instance=2),
        ExitEvent(0, 9.0, 2, foo),
        TaskEndEvent(0, 10.0, 2, task, instance=2),
    ]
    states = validate_task_stream(events, thread_id=0)
    assert states[1].ended and states[2].ended


def test_task_aware_validator_rejects_cross_instance_exit(regions):
    """The Fig. 2 failure: an exit claimed by the wrong instance."""
    task = regions["task"]
    foo = regions["foo"]
    events = [
        TaskBeginEvent(0, 1.0, 1, task, instance=1),
        EnterEvent(0, 2.0, 1, foo),
        TaskBeginEvent(0, 3.0, 2, task, instance=2),
        # exit attributed to instance 1 while instance 2 is current
        ExitEvent(0, 4.0, 1, foo),
    ]
    with pytest.raises(ValidationError, match="while instance 2 is current"):
        validate_task_stream(events, thread_id=0)


def test_task_end_with_open_regions_rejected(regions):
    events = [
        TaskBeginEvent(0, 1.0, 1, regions["task"], instance=1),
        EnterEvent(0, 2.0, 1, regions["foo"]),
        TaskEndEvent(0, 3.0, 1, regions["task"], instance=1),
    ]
    with pytest.raises(ValidationError, match="open region"):
        validate_task_stream(events, thread_id=0)


def test_switch_to_unknown_instance_rejected(regions):
    events = [TaskSwitchEvent(0, 1.0, 99, instance=99)]
    with pytest.raises(ValidationError, match="inactive instance"):
        validate_task_stream(events, thread_id=0)


def test_tied_instance_cannot_begin_twice(regions):
    events = [
        TaskBeginEvent(0, 1.0, 1, regions["task"], instance=1),
        TaskEndEvent(0, 2.0, 1, regions["task"], instance=1),
        TaskBeginEvent(0, 3.0, 1, regions["task"], instance=1),
    ]
    with pytest.raises(ValidationError, match="begun twice"):
        validate_task_stream(events, thread_id=0)


def test_stream_rejects_foreign_thread_and_time_travel(regions):
    stream = EventStream(0)
    stream.append(EnterEvent(0, 5.0, IMPL, regions["main"]))
    with pytest.raises(ValueError, match="thread"):
        stream.append(EnterEvent(1, 6.0, IMPL, regions["foo"]))
    with pytest.raises(ValueError, match="monotone"):
        stream.append(EnterEvent(0, 4.0, IMPL, regions["foo"]))


def test_stream_query_helpers(regions):
    stream = fig1_stream(regions)
    assert len(stream) == 6
    assert len(stream.enters()) == 3
    assert len(stream.exits()) == 3
    assert len(stream.for_region(regions["foo"])) == 2
    assert "enter main" in stream.pretty(limit=1)
    assert "5 more" in stream.pretty(limit=1)


def test_program_trace_merged_is_time_ordered(regions):
    trace = ProgramTrace(2)
    trace.record(EnterEvent(0, 0.0, IMPL, regions["main"]))
    trace.record(EnterEvent(1, 0.5, implicit_instance_id(1), regions["main"]))
    trace.record(ExitEvent(1, 1.5, implicit_instance_id(1), regions["main"]))
    trace.record(ExitEvent(0, 2.0, IMPL, regions["main"]))
    merged = trace.merged()
    assert [e.time for e in merged] == [0.0, 0.5, 1.5, 2.0]
    assert trace.total_events() == 4


def test_program_trace_validation_catches_unended_instance(regions):
    trace = ProgramTrace(1)
    trace.record(TaskBeginEvent(0, 1.0, 1, regions["task"], instance=1))
    with pytest.raises(ValidationError):
        validate_program_trace(trace)
