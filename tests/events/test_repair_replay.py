"""Stream repair and replay: the offline half of the salvage pipeline."""

from types import SimpleNamespace

import pytest

from repro.errors import StreamRepairError
from repro.events import (
    EnterEvent,
    ExitEvent,
    RegionRegistry,
    RegionType,
    TaskBeginEvent,
    TaskEndEvent,
    TaskSwitchEvent,
    repair_stream,
    repair_streams,
    replay_events,
    replay_trace,
)
from repro.events.model import implicit_instance_id
from repro.events.validate import collect_task_stream_violations

IMPL = implicit_instance_id(0)


@pytest.fixture()
def regions():
    reg = RegionRegistry()
    return {
        "task": reg.register("taskA", RegionType.TASK),
        "foo": reg.register("foo", RegionType.FUNCTION),
    }


def clean_stream(regions):
    task = regions["task"]
    return [
        EnterEvent(0, 0.0, IMPL, regions["foo"]),
        TaskBeginEvent(0, 1.0, 1, task, instance=1),
        TaskEndEvent(0, 2.0, 1, task, instance=1),
        ExitEvent(0, 3.0, IMPL, regions["foo"]),
    ]


def assert_consistent(events):
    """The repaired stream must satisfy the strict task-aware rules."""
    _, violations = collect_task_stream_violations(events, thread_id=0)
    assert violations == []


def test_clean_stream_passes_through_untouched(regions):
    events = clean_stream(regions)
    result = repair_stream(events, thread_id=0)
    assert result.events == events
    assert not result.log.touched
    assert result.log.summary() == "stream clean: no repairs needed"


def test_clock_skew_is_clamped_monotone(regions):
    foo = regions["foo"]
    events = [
        EnterEvent(0, 5.0, IMPL, foo),
        ExitEvent(0, 3.0, IMPL, foo),  # skewed backwards
    ]
    result = repair_stream(events, thread_id=0)
    times = [e.time for e in result.events]
    assert times == sorted(times)
    assert result.log.clamped == 1
    assert_consistent(result.events)


def test_duplicate_lifecycle_events_are_dropped(regions):
    task = regions["task"]
    events = [
        TaskBeginEvent(0, 1.0, 1, task, instance=1),
        TaskBeginEvent(0, 1.5, 1, task, instance=1),  # duplicated
        TaskEndEvent(0, 2.0, 1, task, instance=1),
        TaskEndEvent(0, 2.5, 1, task, instance=1),    # duplicated
    ]
    result = repair_stream(events, thread_id=0)
    assert result.log.dropped == 2
    assert 1 in result.log.quarantined
    assert_consistent(result.events)


def test_missing_switch_is_synthesized(regions):
    task = regions["task"]
    events = [
        TaskBeginEvent(0, 1.0, 1, task, instance=1),
        TaskBeginEvent(0, 2.0, 2, task, instance=2),
        # the TaskSwitch back to instance 1 was lost:
        TaskEndEvent(0, 3.0, 1, task, instance=1),
        TaskSwitchEvent(0, 4.0, 2, instance=2),
        TaskEndEvent(0, 5.0, 2, task, instance=2),
    ]
    result = repair_stream(events, thread_id=0)
    kinds = [type(e).__name__ for e in result.events]
    assert kinds.count("TaskSwitchEvent") == 2  # one synthesized
    assert result.log.synthesized == 1
    assert_consistent(result.events)


def test_truncated_stream_gets_synthesized_closure(regions):
    task, foo = regions["task"], regions["foo"]
    events = [
        TaskBeginEvent(0, 1.0, 1, task, instance=1),
        EnterEvent(0, 2.0, 1, foo),
        # ... truncated: no exit, no TaskEnd
    ]
    result = repair_stream(events, thread_id=0)
    assert isinstance(result.events[-1], TaskEndEvent)
    assert result.log.synthesized == 2  # exit foo + TaskEnd
    assert "synthesized TaskEnd for instance 1" in result.log.notes
    assert_consistent(result.events)


def test_exit_for_never_entered_region_is_dropped(regions):
    events = [ExitEvent(0, 1.0, IMPL, regions["foo"])]
    result = repair_stream(events, thread_id=0)
    assert result.events == []
    assert result.log.dropped == 1


def test_unknown_event_type_is_unrepairable():
    with pytest.raises(StreamRepairError, match="SimpleNamespace"):
        repair_stream([SimpleNamespace(time=1.0)], thread_id=0)


def test_repair_streams_merges_per_thread_logs(regions):
    task = regions["task"]
    impl1 = implicit_instance_id(1)
    streams = {
        0: [TaskEndEvent(0, 1.0, 9, task, instance=9)],  # orphan end
        1: [ExitEvent(1, 1.0, impl1, regions["foo"])],   # orphan exit
    }
    repaired, log = repair_streams(streams)
    assert repaired[0] == [] and repaired[1] == []
    assert log.dropped == 2
    assert log.quarantined == {9}
    assert log.events_in == 2 and log.events_out == 0


class _CallRecorder:
    def __init__(self):
        self.calls = []

    def on_enter(self, thread_id, region, time, parameter=None):
        self.calls.append(("enter", thread_id, region.name, time))

    def on_exit(self, thread_id, region, time):
        self.calls.append(("exit", thread_id, region.name, time))

    def on_task_begin(self, thread_id, region, instance, time, parameter=None):
        self.calls.append(("task_begin", thread_id, instance, time))

    def on_task_end(self, thread_id, region, instance, time):
        self.calls.append(("task_end", thread_id, instance, time))

    def on_task_switch(self, thread_id, instance, time):
        self.calls.append(("task_switch", thread_id, instance, time))

    def on_finish(self, time):
        self.calls.append(("finish", time))


def test_replay_dispatches_in_order_and_finishes(regions):
    listener = _CallRecorder()
    end = replay_events(clean_stream(regions), listener)
    assert end == 3.0
    assert listener.calls == [
        ("enter", 0, "foo", 0.0),
        ("task_begin", 0, 1, 1.0),
        ("task_end", 0, 1, 2.0),
        ("exit", 0, "foo", 3.0),
        ("finish", 3.0),
    ]


def test_replay_trace_merges_thread_streams(regions):
    impl1 = implicit_instance_id(1)
    streams = {
        0: [
            EnterEvent(0, 0.0, IMPL, regions["foo"]),
            ExitEvent(0, 4.0, IMPL, regions["foo"]),
        ],
        1: [
            EnterEvent(1, 1.0, impl1, regions["foo"]),
            ExitEvent(1, 2.0, impl1, regions["foo"]),
        ],
    }
    listener = _CallRecorder()
    replay_trace(streams, listener, finish_time=10.0)
    times = [call[-1] for call in listener.calls]
    assert times == [0.0, 1.0, 2.0, 4.0, 10.0]
