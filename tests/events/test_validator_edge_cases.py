"""Validator edge cases: exact error types and offending event indices.

Covers the corner inputs the salvage work leans on: empty streams,
duplicated lifecycle events, switches to instances that never began, and
tied tasks resuming on a foreign thread.  Each strict failure must name
the offending event's index in its message so a corrupt trace is
debuggable from the exception alone.
"""

import pytest

from repro.errors import EventOrderError, ValidationError
from repro.events import (
    EnterEvent,
    ExitEvent,
    RegionRegistry,
    RegionType,
    TaskBeginEvent,
    TaskEndEvent,
    TaskSwitchEvent,
    validate_nesting,
    validate_task_stream,
)
from repro.events.model import implicit_instance_id
from repro.events.stream import ProgramTrace
from repro.events.validate import (
    Violation,
    _task_stream_violations,
    collect_nesting_violations,
    collect_task_stream_violations,
    collect_trace_violations,
    validate_program_trace,
)

IMPL = implicit_instance_id(0)


@pytest.fixture()
def regions():
    reg = RegionRegistry()
    return {
        "task": reg.register("taskA", RegionType.TASK),
        "foo": reg.register("foo", RegionType.FUNCTION),
    }


def test_empty_stream_is_valid_everywhere():
    validate_nesting([])
    states = validate_task_stream([], thread_id=0)
    assert set(states) == {IMPL}  # only the implicit task exists
    assert collect_nesting_violations([]) == []
    _, violations = collect_task_stream_violations([], thread_id=0)
    assert violations == []
    validate_program_trace(ProgramTrace(2))
    assert collect_trace_violations(ProgramTrace(2)) == []


def test_duplicate_task_end_names_type_and_index(regions):
    events = [
        TaskBeginEvent(0, 1.0, 1, regions["task"], instance=1),
        TaskEndEvent(0, 2.0, 1, regions["task"], instance=1),
        TaskEndEvent(0, 3.0, 1, regions["task"], instance=1),  # duplicate
    ]
    with pytest.raises(
        ValidationError, match=r"event #2: task_end for instance 1"
    ):
        validate_task_stream(events, thread_id=0)


def test_switch_to_never_begun_instance_names_type_and_index(regions):
    events = [
        TaskBeginEvent(0, 1.0, 1, regions["task"], instance=1),
        TaskEndEvent(0, 2.0, 1, regions["task"], instance=1),
        TaskSwitchEvent(0, 3.0, 99, instance=99),
    ]
    with pytest.raises(
        ValidationError, match=r"event #2: switch to inactive instance 99"
    ):
        validate_task_stream(events, thread_id=0)


def test_tied_instance_resumed_on_another_thread(regions):
    # Thread 0 begins and suspends instance 5 ...
    states = {}
    thread0 = [
        TaskBeginEvent(0, 1.0, 5, regions["task"], instance=5),
        TaskSwitchEvent(0, 2.0, IMPL, instance=IMPL),
    ]
    assert list(_task_stream_violations(thread0, 0, True, None, states)) == []
    # ... and thread 1 illegally resumes it (tied tasks may not migrate).
    resume = [TaskSwitchEvent(1, 3.0, 5, instance=5)]
    violations = list(_task_stream_violations(resume, 1, True, None, states))
    assert [v.kind for v in violations] == ["tied-migration"]
    violation = violations[0]
    assert violation.index == 0
    assert (
        "event #0: tied instance 5 resumed on thread 1, began on 0"
        in violation.message
    )
    with pytest.raises(ValidationError):
        raise violation.exception()


def test_lenient_collector_reports_every_violation_with_indices(regions):
    events = [
        ExitEvent(0, 1.0, IMPL, regions["foo"]),               # 0: unmatched
        TaskEndEvent(0, 2.0, 2, regions["task"], instance=2),  # 1: never begun
        TaskBeginEvent(0, 3.0, 1, regions["task"], instance=1),
        TaskEndEvent(0, 4.0, 1, regions["task"], instance=1),
    ]
    _, violations = collect_task_stream_violations(events, thread_id=0)
    assert [(v.index, v.kind) for v in violations] == [
        (0, "exit-unmatched"),
        (1, "end-inactive"),
    ]
    assert all(f"event #{v.index}" in v.message for v in violations)


def test_time_travel_in_trace_is_flagged(regions):
    trace = ProgramTrace(1)
    stream = trace.streams[0]
    stream.append_unchecked(EnterEvent(0, 5.0, IMPL, regions["foo"]))
    stream.append_unchecked(ExitEvent(0, 4.0, IMPL, regions["foo"]))
    violations = collect_trace_violations(trace)
    assert any(
        v.kind == "time-order" and "event #1" in v.message for v in violations
    )


def test_violation_exception_carries_declared_type():
    violation = Violation(4, "task-event", "event #4: boom", EventOrderError)
    exc = violation.exception()
    assert isinstance(exc, EventOrderError)
    assert str(exc) == "event #4: boom"
    assert "[task-event]" in str(violation)
