"""Property-based fuzzing of the event-stream validators.

Strategy: generate structurally *valid* single-thread task streams (a
random interleaving of task lifecycles with properly nested regions),
assert the task-aware validator accepts them; then apply a random
corruption (drop/duplicate/retype an event) and assert the validator --
or the stream's own monotonicity check -- rejects the result.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ValidationError
from repro.events import (
    EnterEvent,
    ExitEvent,
    RegionRegistry,
    RegionType,
    TaskBeginEvent,
    TaskEndEvent,
    TaskSwitchEvent,
    validate_task_stream,
)
from repro.events.model import implicit_instance_id

REG = RegionRegistry()
TASK = REG.register("task", RegionType.TASK)
FOO = REG.register("foo", RegionType.FUNCTION)
BAR = REG.register("bar", RegionType.FUNCTION)
IMPL = implicit_instance_id(0)


@st.composite
def valid_streams(draw):
    """Build a valid stream by simulating random scheduler decisions."""
    events = []
    time = 0.0
    next_instance = 1
    # live[instance] = list of open function regions
    live = {}
    suspended = set()
    current = None  # None = implicit

    def tick():
        nonlocal time
        time += draw(st.floats(min_value=0.1, max_value=2.0))
        return time

    steps = draw(st.integers(min_value=1, max_value=40))
    for _ in range(steps):
        choices = ["begin"]
        if current is not None:
            choices += ["enter", "end_or_suspend"]
        if suspended and current is None:
            choices.append("resume")
        action = draw(st.sampled_from(choices))
        nonlocal_time = tick()
        if action == "begin" and current is None:
            instance = next_instance
            next_instance += 1
            live[instance] = []
            events.append(TaskBeginEvent(0, nonlocal_time, instance, TASK, instance))
            current = instance
        elif action == "begin":
            # beginning a new task implicitly suspends the current one
            suspended.add(current)
            instance = next_instance
            next_instance += 1
            live[instance] = []
            events.append(TaskBeginEvent(0, nonlocal_time, instance, TASK, instance))
            current = instance
        elif action == "enter":
            region = draw(st.sampled_from([FOO, BAR]))
            live[current].append(region)
            events.append(EnterEvent(0, nonlocal_time, current, region))
        elif action == "end_or_suspend":
            if live[current]:
                if draw(st.booleans()):
                    region = live[current].pop()
                    events.append(ExitEvent(0, nonlocal_time, current, region))
                else:
                    suspended.add(current)
                    events.append(TaskSwitchEvent(0, nonlocal_time, IMPL, IMPL))
                    current = None
            else:
                events.append(TaskEndEvent(0, nonlocal_time, current, TASK, current))
                del live[current]
                current = None
        elif action == "resume":
            instance = draw(st.sampled_from(sorted(suspended)))
            suspended.discard(instance)
            events.append(TaskSwitchEvent(0, nonlocal_time, instance, instance))
            current = instance

    # wind down: close everything
    while current is not None or suspended:
        if current is None:
            instance = sorted(suspended)[0]
            suspended.discard(instance)
            events.append(TaskSwitchEvent(0, tick(), instance, instance))
            current = instance
        while live[current]:
            region = live[current].pop()
            events.append(ExitEvent(0, tick(), current, region))
        events.append(TaskEndEvent(0, tick(), current, TASK, current))
        del live[current]
        current = None
    return events


@settings(max_examples=80, deadline=None)
@given(events=valid_streams())
def test_generated_streams_are_accepted(events):
    states = validate_task_stream(events, thread_id=0)
    for instance, state in states.items():
        if instance > 0:
            assert state.begun and state.ended


@settings(max_examples=80, deadline=None)
@given(events=valid_streams(), data=st.data())
def test_corrupted_streams_are_rejected_or_harmless(events, data):
    """Dropping one structural event must not be silently mis-accepted:
    either the validator raises, or the dropped event was provably
    non-structural for validation (a no-op switch)."""
    if not events:
        return
    index = data.draw(st.integers(0, len(events) - 1))
    dropped = events[index]
    corrupted = events[:index] + events[index + 1 :]
    try:
        states = validate_task_stream(corrupted, thread_id=0)
    except ValidationError:
        return  # rejected: good
    # Accepted: only two classes of drops can slip past single-stream
    # validation, and both leave detectable traces:
    if isinstance(dropped, TaskEndEvent):
        # the instance now simply looks still-active -- the program-level
        # validator (validate_program_trace) is responsible for catching
        # begun-but-never-ended instances.
        assert not states[dropped.instance].ended
    else:
        # otherwise only scheduling switches are non-structural
        assert isinstance(dropped, TaskSwitchEvent)


@settings(max_examples=50, deadline=None)
@given(events=valid_streams(), data=st.data())
def test_duplicated_task_begin_rejected(events, data):
    begins = [e for e in events if isinstance(e, TaskBeginEvent)]
    if not begins:
        return
    victim = data.draw(st.sampled_from(begins))
    # Re-issue the same TaskBegin at the end of the stream.
    corrupted = events + [
        TaskBeginEvent(0, events[-1].time + 1.0, victim.instance, TASK, victim.instance)
    ]
    with pytest.raises(ValidationError):
        validate_task_stream(corrupted, thread_id=0)
