"""Unit tests for region handles and the interning registry."""

import pytest

from repro.events import Region, RegionRegistry, RegionType


def test_register_interns_by_key():
    reg = RegionRegistry()
    a = reg.register("foo", RegionType.FUNCTION, "foo.py", 10)
    b = reg.register("foo", RegionType.FUNCTION, "foo.py", 10)
    assert a is b
    assert len(reg) == 1


def test_different_type_different_region():
    reg = RegionRegistry()
    a = reg.register("x", RegionType.FUNCTION)
    b = reg.register("x", RegionType.TASK)
    assert a is not b
    assert len(reg) == 2


def test_handles_are_consecutive_and_resolvable():
    reg = RegionRegistry()
    a = reg.register("a", RegionType.FUNCTION)
    b = reg.register("b", RegionType.TASK)
    assert (a.handle, b.handle) == (1, 2)
    assert reg.lookup(1) is a
    assert reg.lookup(2) is b
    with pytest.raises(KeyError):
        reg.lookup(99)


def test_find_by_name_and_ambiguity():
    reg = RegionRegistry()
    reg.register("dup", RegionType.FUNCTION)
    reg.register("dup", RegionType.TASK)
    with pytest.raises(ValueError):
        reg.find("dup")
    assert reg.find("dup", RegionType.TASK).region_type is RegionType.TASK
    with pytest.raises(KeyError):
        reg.find("missing")


def test_scheduling_point_classification():
    assert RegionType.TASKWAIT.is_scheduling_point()
    assert RegionType.BARRIER.is_scheduling_point()
    assert RegionType.IMPLICIT_BARRIER.is_scheduling_point()
    assert RegionType.TASK_CREATE.is_scheduling_point()
    assert not RegionType.FUNCTION.is_scheduling_point()
    assert not RegionType.TASK.is_scheduling_point()
    assert not RegionType.CRITICAL.is_scheduling_point()


def test_region_location_rendering():
    reg = RegionRegistry()
    with_loc = reg.register("f", RegionType.FUNCTION, "src/f.py", 3)
    file_only = reg.register("g", RegionType.FUNCTION, "src/g.py")
    bare = reg.register("h", RegionType.FUNCTION)
    assert with_loc.location() == "src/f.py:3"
    assert file_only.location() == "src/g.py"
    assert bare.location() == "<unknown>"


def test_registry_iteration_and_containment():
    reg = RegionRegistry()
    a = reg.register("a", RegionType.FUNCTION)
    other = RegionRegistry().register("a", RegionType.FUNCTION)
    assert a in reg
    assert other not in reg
    assert list(reg) == [a]
