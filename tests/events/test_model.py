"""Unit tests for the event records and instance-id helpers."""

import pytest

from repro.events import (
    EnterEvent,
    ExitEvent,
    RegionRegistry,
    RegionType,
    TaskBeginEvent,
    TaskEndEvent,
    TaskSwitchEvent,
)
from repro.events.model import (
    TaskCreateBeginEvent,
    TaskCreateEndEvent,
    implicit_instance_id,
    is_implicit,
)


@pytest.fixture()
def region():
    return RegionRegistry().register("foo", RegionType.FUNCTION)


def test_implicit_instance_ids_are_negative_and_unique():
    ids = [implicit_instance_id(t) for t in range(8)]
    assert all(i < 0 for i in ids)
    assert len(set(ids)) == 8
    assert implicit_instance_id(0) == -1
    assert implicit_instance_id(7) == -8


def test_is_implicit_classification():
    assert is_implicit(-1)
    assert is_implicit(-8)
    assert not is_implicit(1)
    assert not is_implicit(12345)


def test_events_are_frozen(region):
    event = EnterEvent(0, 1.0, -1, region)
    with pytest.raises(AttributeError):
        event.time = 2.0


def test_event_str_renderings(region):
    task_region = RegionRegistry().register("t", RegionType.TASK)
    cases = [
        (EnterEvent(0, 1.5, -1, region), "enter foo"),
        (ExitEvent(1, 2.5, -2, region), "exit foo"),
        (TaskBeginEvent(0, 3.0, 7, task_region, instance=7), "task_begin t instance=7"),
        (TaskEndEvent(0, 4.0, 7, task_region, instance=7), "task_end t instance=7"),
        (TaskSwitchEvent(2, 5.0, -3, instance=-3), "task_switch -> -3"),
        (
            TaskCreateBeginEvent(0, 6.0, -1, region, created_instance=9),
            "create_begin foo -> instance 9",
        ),
        (
            TaskCreateEndEvent(0, 7.0, -1, region, created_instance=9),
            "create_end foo -> instance 9",
        ),
    ]
    for event, expected in cases:
        text = str(event)
        assert expected in text, (text, expected)
        assert f"t{event.thread_id}" in text


def test_events_carry_executing_instance(region):
    event = EnterEvent(0, 1.0, 42, region)
    assert event.executing_instance == 42
    assert event.parameter is None
    with_param = EnterEvent(0, 1.0, 42, region, ("depth", 3))
    assert with_param.parameter == ("depth", 3)


def test_events_compare_by_value(region):
    a = EnterEvent(0, 1.0, -1, region)
    b = EnterEvent(0, 1.0, -1, region)
    assert a == b
    assert a != ExitEvent(0, 1.0, -1, region)
