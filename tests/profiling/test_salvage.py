"""Lenient (salvage-mode) TaskProfiler and the SalvageReport ledger."""

import pytest

from repro.errors import ProfileError
from repro.events import RegionRegistry, RegionType
from repro.profiling import SalvageReport, TaskProfiler


@pytest.fixture()
def regions():
    reg = RegionRegistry()
    return {
        "impl": reg.register("parallel@x", RegionType.IMPLICIT_TASK),
        "A": reg.register("taskA", RegionType.TASK),
        "foo": reg.register("foo", RegionType.FUNCTION),
    }


def test_strict_profiler_rejects_end_for_unknown_instance(regions):
    profiler = TaskProfiler(1, regions["impl"])
    assert profiler.salvage is None
    with pytest.raises(ProfileError, match="unknown instance 7"):
        profiler.on_task_end(0, regions["A"], 7, 1.0)


def test_lenient_profiler_quarantines_instead(regions):
    profiler = TaskProfiler(1, regions["impl"], strict=False)
    profiler.on_task_end(0, regions["A"], 7, 1.0)  # no raise
    profiler.on_finish(2.0)
    report = profiler.salvage
    assert report.partial
    assert report.events_dropped == 1
    assert 7 in report.instances_quarantined
    assert profiler.build_profile().is_partial


def test_clean_lifecycle_counts_completed_instances(regions):
    profiler = TaskProfiler(1, regions["impl"], strict=False)
    profiler.on_task_begin(0, regions["A"], 1, 1.0)
    profiler.on_task_end(0, regions["A"], 1, 2.0)
    profiler.on_finish(3.0)
    report = profiler.salvage
    assert report.instances_completed == 1
    assert report.events_seen == 2  # begin + end; finish is not an event
    # a lenient profiler over clean input is indistinguishable from strict
    assert not report.partial
    assert not profiler.build_profile().is_partial


def test_unfinished_instance_is_quarantined_at_finish(regions):
    profiler = TaskProfiler(1, regions["impl"], strict=False)
    profiler.on_task_begin(0, regions["A"], 1, 1.0)
    profiler.on_enter(0, regions["foo"], 1.5)
    profiler.on_finish(2.0)
    report = profiler.salvage
    assert 1 in report.instances_quarantined
    assert any("still active at end of measurement" in n for n in report.notes)
    assert profiler.build_profile().is_partial


def test_lenient_switch_to_unknown_instance_is_dropped(regions):
    profiler = TaskProfiler(1, regions["impl"], strict=False)
    profiler.on_task_switch(0, 42, 1.0)  # strict would raise
    profiler.on_finish(2.0)
    assert profiler.salvage.events_dropped == 1
    assert profiler.salvage.partial


def test_salvage_report_roundtrip_and_summary():
    report = SalvageReport(events_seen=10, events_dropped=2, instances_completed=3)
    report.quarantine(5, "unrecoverable")
    data = report.to_dict()
    assert data["partial"] is True
    clone = SalvageReport.from_dict(data)
    assert clone.events_dropped == 2
    assert clone.instances_quarantined == {5}
    assert "quarantined instance 5: unrecoverable" in clone.notes
    assert "partial profile" in clone.summary()
    assert SalvageReport().summary() == "profile complete: no salvage needed"
