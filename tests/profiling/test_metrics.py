"""Unit tests for StatAccumulator and NodeMetrics."""

import math

import pytest

from repro.profiling import NodeMetrics, StatAccumulator
from repro.profiling.metrics import format_time


def test_empty_accumulator():
    acc = StatAccumulator()
    assert acc.empty
    assert acc.count == 0
    assert acc.mean == 0.0
    assert acc.as_dict()["min"] is None


def test_add_updates_all_statistics():
    acc = StatAccumulator()
    for value in (4.0, 1.0, 7.0):
        acc.add(value)
    assert acc.count == 3
    assert acc.total == 12.0
    assert acc.minimum == 1.0
    assert acc.maximum == 7.0
    assert acc.mean == 4.0


def test_merge_matches_sequential_adds():
    values_a = [1.0, 5.0, 2.5]
    values_b = [9.0, 0.5]
    merged = StatAccumulator()
    for v in values_a + values_b:
        merged.add(v)
    a = StatAccumulator()
    b = StatAccumulator()
    for v in values_a:
        a.add(v)
    for v in values_b:
        b.add(v)
    a.merge(b)
    assert a == merged


def test_merge_with_empty_is_identity():
    acc = StatAccumulator()
    acc.add(3.0)
    before = acc.copy()
    acc.merge(StatAccumulator())
    assert acc == before


def test_reset_returns_to_empty():
    acc = StatAccumulator()
    acc.add(1.0)
    acc.reset()
    assert acc.empty
    assert acc.minimum == math.inf


def test_node_metrics_record_visit():
    metrics = NodeMetrics()
    metrics.record_visit(10.0)
    metrics.record_visit(4.0)
    assert metrics.inclusive_time == 14.0
    assert metrics.visits == 2
    assert metrics.durations.minimum == 4.0
    assert metrics.durations.maximum == 10.0


def test_node_metrics_stub_accounting():
    """Stub nodes get time without visit samples, fragments without time."""
    metrics = NodeMetrics()
    metrics.count_fragment()
    metrics.add_time(5.0)
    metrics.count_fragment()
    metrics.add_time(2.0)
    assert metrics.visits == 2
    assert metrics.inclusive_time == 7.0
    assert metrics.durations.empty


def test_node_metrics_merge():
    a = NodeMetrics()
    b = NodeMetrics()
    a.record_visit(3.0)
    b.record_visit(5.0)
    b.record_visit(1.0)
    a.merge(b)
    assert a.inclusive_time == 9.0
    assert a.visits == 3
    assert a.durations.count == 3
    assert a.durations.minimum == 1.0


@pytest.mark.parametrize(
    "us,expected",
    [
        (2.5, "2.500 us"),
        (2500.0, "2.500 ms"),
        (2.5e6, "2.500 s"),
    ],
)
def test_format_time_auto_unit(us, expected):
    assert format_time(us) == expected


def test_format_time_forced_unit_and_error():
    assert format_time(1e6, "ms") == "1000.000 ms"
    with pytest.raises(ValueError):
        format_time(1.0, "h")
