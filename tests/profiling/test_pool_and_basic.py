"""Unit tests for the node pool and the classic profiling algorithm."""

import pytest

from repro.errors import EventOrderError
from repro.events import (
    EnterEvent,
    ExitEvent,
    RegionRegistry,
    RegionType,
    TaskBeginEvent,
)
from repro.events.model import implicit_instance_id
from repro.profiling import ClassicProfiler, NodePool


@pytest.fixture()
def reg():
    return RegionRegistry()


# ----------------------------------------------------------------------
# NodePool
# ----------------------------------------------------------------------
def test_pool_allocates_then_recycles(reg):
    pool = NodePool()
    task = reg.register("task", RegionType.TASK)
    root = pool.acquire(task)
    child = root.child(reg.register("foo", RegionType.FUNCTION), factory=pool.acquire)
    child.metrics.record_visit(5.0)
    assert pool.allocated == 2
    assert pool.live_count == 2

    released = pool.release_tree(root)
    assert released == 2
    assert pool.free_count == 2
    assert pool.live_count == 0

    reused = pool.acquire(task)
    assert pool.reused == 1
    assert reused.metrics.inclusive_time == 0.0
    assert not reused.children
    assert reused.parent is None


def test_pool_bounded_by_peak_not_total(reg):
    """The Section V-B property: memory tracks concurrency, not task count."""
    pool = NodePool()
    task = reg.register("task", RegionType.TASK)
    for _ in range(100):
        node = pool.acquire(task)
        pool.release_tree(node)
    assert pool.allocated == 1
    assert pool.reused == 99


def test_pool_stats_dict(reg):
    pool = NodePool()
    node = pool.acquire(reg.register("t", RegionType.TASK))
    pool.release_tree(node)
    assert pool.stats() == {"allocated": 1, "reused": 0, "released": 1, "free": 1}


def _release_n(pool, region, n):
    for _ in range(n):
        pool.release_tree(pool.acquire(region))


def test_trim_drops_free_nodes_beyond_cap(reg):
    pool = NodePool()
    task = reg.register("task", RegionType.TASK)
    for _ in range(5):  # five distinct nodes on the free list
        nodes = [pool.acquire(task) for _ in range(5)]
    for node in nodes:
        pool.release_tree(node)
    assert pool.free_count == 5
    assert pool.trim(2) == 3
    assert pool.free_count == 2
    assert pool.trimmed == 3
    assert pool.trim(2) == 0  # already within the cap: no-op
    assert pool.stats()["trimmed"] == 3


def test_trim_rejects_negative_cap(reg):
    with pytest.raises(ValueError, match="max_free"):
        NodePool().trim(-1)


def test_max_free_caps_future_pooling(reg):
    # The governor's L1/L2 actions set max_free so release_tree itself
    # keeps the free list bounded from then on.
    pool = NodePool()
    task = reg.register("task", RegionType.TASK)
    pool.max_free = 1
    nodes = [pool.acquire(task) for _ in range(4)]
    for node in nodes:
        pool.release_tree(node)
    assert pool.free_count == 1
    assert pool.trimmed == 3


def test_trim_makes_released_memory_actually_reclaimable(reg):
    # Regression: "released - reused" nodes stayed pinned by the free
    # list forever; after trim() the collector must be able to free them.
    import gc
    import weakref

    pool = NodePool()
    task = reg.register("task", RegionType.TASK)
    node = pool.acquire(task)
    ref = weakref.ref(node)
    pool.release_tree(node)
    del node
    gc.collect()
    assert ref() is not None  # classic behavior: free list keeps it alive
    pool.trim(0)
    gc.collect()
    assert ref() is None  # the only reference was the free-list entry


def test_untrimmed_stats_have_no_trimmed_key(reg):
    # Byte-stability of exported memory stats for ungoverned runs.
    pool = NodePool()
    pool.release_tree(pool.acquire(reg.register("t", RegionType.TASK)))
    assert "trimmed" not in pool.stats()


# ----------------------------------------------------------------------
# ClassicProfiler
# ----------------------------------------------------------------------
def test_fig1_translation(reg):
    """Fig. 1: the event stream translates into main -> {foo, bar}."""
    main = reg.register("main", RegionType.FUNCTION)
    foo = reg.register("foo", RegionType.FUNCTION)
    bar = reg.register("bar", RegionType.FUNCTION)
    impl = implicit_instance_id(0)

    profiler = ClassicProfiler(main)
    root = profiler.feed(
        [
            EnterEvent(0, 0.0, impl, main),
            EnterEvent(0, 1.0, impl, foo),
            ExitEvent(0, 3.0, impl, foo),
            EnterEvent(0, 4.0, impl, bar),
            ExitEvent(0, 6.0, impl, bar),
            ExitEvent(0, 7.0, impl, main),
        ]
    )
    assert root.inclusive_time == 7.0
    assert root.find_child(foo).inclusive_time == 2.0
    assert root.find_child(bar).inclusive_time == 2.0
    assert root.exclusive_time == 3.0
    assert root.visits == 1


def test_repeated_calls_accumulate_on_same_node(reg):
    main = reg.register("main", RegionType.FUNCTION)
    foo = reg.register("foo", RegionType.FUNCTION)
    profiler = ClassicProfiler(main)
    profiler.enter(main, 0.0)
    for t in range(3):
        profiler.enter(foo, float(10 * t + 1))
        profiler.exit(foo, float(10 * t + 3))
    profiler.exit(main, 30.0)
    root = profiler.finish()
    node = root.find_child(foo)
    assert node.visits == 3
    assert node.inclusive_time == 6.0
    assert node.metrics.durations.mean == 2.0
    assert len(root.children) == 1


def test_recursion_builds_chain_not_cycle(reg):
    main = reg.register("main", RegionType.FUNCTION)
    f = reg.register("f", RegionType.FUNCTION)
    profiler = ClassicProfiler(main)
    profiler.enter(main, 0.0)
    profiler.enter(f, 1.0)
    profiler.enter(f, 2.0)
    profiler.exit(f, 3.0)
    profiler.exit(f, 4.0)
    profiler.exit(main, 5.0)
    root = profiler.finish()
    outer = root.find_child(f)
    inner = outer.find_child(f)
    assert outer is not inner
    assert outer.inclusive_time == 3.0
    assert inner.inclusive_time == 1.0


def test_mismatched_exit_raises(reg):
    main = reg.register("main", RegionType.FUNCTION)
    foo = reg.register("foo", RegionType.FUNCTION)
    profiler = ClassicProfiler(main)
    profiler.enter(main, 0.0)
    profiler.enter(foo, 1.0)
    with pytest.raises(EventOrderError, match="does not match"):
        profiler.exit(main, 2.0)


def test_exit_on_empty_stack_raises(reg):
    profiler = ClassicProfiler(reg.register("main", RegionType.FUNCTION))
    with pytest.raises(EventOrderError, match="no open region"):
        profiler.exit(reg.register("foo", RegionType.FUNCTION), 1.0)


def test_finish_with_open_regions_raises(reg):
    main = reg.register("main", RegionType.FUNCTION)
    profiler = ClassicProfiler(main)
    profiler.enter(main, 0.0)
    with pytest.raises(EventOrderError, match="open region"):
        profiler.finish()


def test_task_events_rejected_by_classic_feed(reg):
    """Section IV-B1: the classic algorithm cannot handle task streams."""
    main = reg.register("main", RegionType.FUNCTION)
    task = reg.register("task", RegionType.TASK)
    profiler = ClassicProfiler(main)
    with pytest.raises(EventOrderError, match="cannot process"):
        profiler.feed([TaskBeginEvent(0, 0.0, 1, task, instance=1)])


def test_parameter_splits_nodes(reg):
    main = reg.register("main", RegionType.FUNCTION)
    f = reg.register("f", RegionType.FUNCTION)
    profiler = ClassicProfiler(main)
    profiler.enter(main, 0.0)
    profiler.enter(f, 1.0, parameter=("n", 1))
    profiler.exit(f, 2.0)
    profiler.enter(f, 3.0, parameter=("n", 2))
    profiler.exit(f, 5.0)
    profiler.exit(main, 6.0)
    root = profiler.finish()
    assert root.find_child(f, ("n", 1)).inclusive_time == 1.0
    assert root.find_child(f, ("n", 2)).inclusive_time == 2.0
