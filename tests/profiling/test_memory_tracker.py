"""Unit tests for :class:`ConcurrencyTracker` (paper Section V-B)."""

import pytest

from repro.profiling.memory import NO_PHASE, ConcurrencyTracker


def test_phase_maxima_track_per_phase_peaks():
    tracker = ConcurrencyTracker()
    tracker.start_phase("region_a")
    tracker.instance_created()
    tracker.instance_created()
    tracker.instance_completed()
    tracker.end_phase()
    tracker.start_phase("region_b")
    tracker.instance_created()
    tracker.end_phase()
    assert tracker.phase_max == {"region_a": 2, "region_b": 2}
    assert tracker.overall_max == 2
    assert tracker.total_instances == 3


def test_instance_outside_phase_attributed_to_synthetic_phase():
    # Regression: an instance begun outside any parallel region used to
    # vanish from phase_max, so max(phase_max.values()) under-read
    # overall_max -- the quantity governor watermarks are computed from.
    tracker = ConcurrencyTracker()
    tracker.instance_created()
    tracker.instance_created()
    assert tracker.phase_max == {NO_PHASE: 2}
    assert max(tracker.phase_max.values()) == tracker.overall_max


def test_no_phase_resumes_after_phase_ends():
    tracker = ConcurrencyTracker()
    tracker.start_phase("region")
    tracker.instance_created()
    tracker.end_phase()
    tracker.instance_created()  # still live: current == 2 outside a phase
    assert tracker.phase_max["region"] == 1
    assert tracker.phase_max[NO_PHASE] == 2
    assert tracker.overall_max == 2


def test_completion_below_zero_raises():
    with pytest.raises(ValueError, match="no live instances"):
        ConcurrencyTracker().instance_completed()


def test_as_dict_round_trip_fields():
    tracker = ConcurrencyTracker()
    tracker.instance_created()
    data = tracker.as_dict()
    assert data == {
        "overall_max": 1,
        "total_instances": 1,
        "phase_max": {NO_PHASE: 1},
    }
