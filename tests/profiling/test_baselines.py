"""Tests for the rejected profiling designs (paper Fig. 3 and Section II).

The Fig. 3 scenario: a parallel region starts (1 us), a task-creation
region runs (2 us), the implicit task waits in a barrier (7 us wall) during
which the created task executes for 5 us.

* Creation-node assignment (left of Fig. 3): the creating region's node
  gets the task as a child carrying 5 us, but the creation region itself
  only measured 2 us inclusive -> exclusive time -5 ("which does not make
  sense"), and the barrier shows 7 us although most of it was useful work.
* Execution-node assignment (right of Fig. 3, what the real algorithm
  does): barrier 7 us inclusive with a 5 us stub child -> barrier
  exclusive 2 us, task creation exclusive stays 2 us, nothing negative.
"""

import pytest

from repro.errors import EventOrderError
from repro.events import RegionRegistry, RegionType
from repro.events.model import implicit_instance_id
from repro.profiling import CreationNodeProfiler, NoInstanceProfiler
from repro.profiling.task_profiler import ThreadTaskProfiler


@pytest.fixture()
def regions():
    reg = RegionRegistry()
    return {
        "impl": reg.register("parallel", RegionType.IMPLICIT_TASK),
        "create": reg.register("create_task", RegionType.TASK_CREATE),
        "task": reg.register("task", RegionType.TASK),
        "barrier": reg.register("barrier", RegionType.IMPLICIT_BARRIER),
        "taskwait": reg.register("taskwait", RegionType.TASKWAIT),
        "foo": reg.register("foo", RegionType.FUNCTION),
    }


def test_fig3_creation_node_assignment_goes_negative(regions):
    p = CreationNodeProfiler(regions["impl"])
    # parallel region start: 1 us of exclusive time before creating.
    p.enter(regions["create"], 1.0)
    p.task_created(regions["task"], instance=1)
    p.exit(regions["create"], 3.0)  # 2 us creation
    p.enter(regions["barrier"], 3.0)
    p.task_begin(1, 4.0)
    p.task_end(1, 9.0)  # 5 us of execution, inside the barrier
    p.exit(regions["barrier"], 10.0)  # 7 us wall in barrier
    root = p.finish(10.0)

    create = root.find_child(regions["create"])
    task = create.find_child(regions["task"])
    barrier = root.find_child(regions["barrier"])
    assert task.inclusive_time == 5.0
    assert create.inclusive_time == 2.0
    # The paper's pathology, reproduced exactly: -3 us here (2 - 5).
    assert create.exclusive_time == -3.0
    assert create.exclusive_time < 0
    # The barrier swallows the useful work: 7 us, none attributed to tasks.
    assert barrier.exclusive_time == 7.0


def test_fig3_execution_node_assignment_stays_sane(regions):
    """Same event sequence through the real task profiler."""
    p = ThreadTaskProfiler(0, regions["impl"], {}, start_time=0.0)
    p.enter(regions["create"], 1.0)
    p.exit(regions["create"], 3.0)
    p.enter(regions["barrier"], 3.0)
    p.task_begin(regions["task"], 1, 4.0)
    p.task_end(regions["task"], 1, 9.0)
    p.exit(regions["barrier"], 10.0)
    main = p.finish(10.0)

    create = main.find_child(regions["create"])
    barrier = main.find_child(regions["barrier"])
    stub = barrier.find_child(regions["task"])
    assert create.exclusive_time == 2.0
    assert stub.inclusive_time == 5.0
    assert barrier.exclusive_time == 2.0  # true wait/overhead time
    # Execution-node assignment never yields negative exclusive values.
    for node in main.walk():
        assert node.exclusive_time >= 0.0


def test_no_instance_profiler_handles_uninterrupted_tasks(regions):
    p = NoInstanceProfiler(regions["impl"])
    p.enter(regions["impl"], 0.0)
    p.enter(regions["barrier"], 1.0)
    p.task_begin(regions["task"], 1, 2.0)
    p.enter(regions["foo"], 2.5)
    p.exit(regions["foo"], 3.5)
    p.task_end(regions["task"], 1, 4.0)
    p.task_begin(regions["task"], 2, 4.0)
    p.task_end(regions["task"], 2, 6.0)
    p.exit(regions["barrier"], 6.0)
    p.exit(regions["impl"], 7.0)
    root = p.finish()
    task_node = root.find_child(regions["barrier"]).find_child(regions["task"])
    assert task_node.visits == 2
    assert task_node.inclusive_time == 4.0


def test_no_instance_profiler_breaks_on_interleaving(regions):
    """Fürlinger/Skinner limitation: suspension cannot be represented."""
    p = NoInstanceProfiler(regions["impl"])
    p.enter(regions["impl"], 0.0)
    p.enter(regions["barrier"], 1.0)
    p.task_begin(regions["task"], 1, 2.0)
    p.enter(regions["taskwait"], 3.0)
    # task 1 suspends; task 2 begins -> fine so far for the blind profiler
    p.task_begin(regions["task"], 2, 3.0)
    p.task_end(regions["task"], 2, 4.0)
    # ...but resuming task 1 is impossible without instance ids
    with pytest.raises(EventOrderError, match="instance identification"):
        p.task_switch(1, 4.0)


def test_no_instance_profiler_detects_mismatched_task_end(regions):
    p = NoInstanceProfiler(regions["impl"])
    p.enter(regions["impl"], 0.0)
    p.task_begin(regions["task"], 1, 1.0)
    p.enter(regions["foo"], 2.0)
    with pytest.raises(EventOrderError, match="interleaved task fragments"):
        p.task_end(regions["task"], 1, 3.0)
