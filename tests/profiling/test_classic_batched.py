"""ClassicProfiler.consume_batch: exact equivalence with the per-event path.

The vectorized leaf-pair peel is only worth having if it is *bit*-
identical to the legacy algorithm on every stream shape: deep nesting,
flat leaf storms, parameterized enters (which split call-tree children
and must take the residual path), multi-batch splits at arbitrary
boundaries, and the numpy-less fallback.  Error behavior must match too:
task/metric kinds, mismatched exits, and exits on an empty stack raise
:class:`EventOrderError` exactly as the per-event methods do.
"""

import random

import pytest

from repro.errors import EventOrderError
from repro.events.batch import EventBatch
from repro.events.regions import RegionRegistry, RegionType
from repro.profiling.basic import ClassicProfiler


@pytest.fixture
def workload():
    reg = RegionRegistry()
    main = reg.register("main", RegionType.FUNCTION)
    functions = [reg.register(f"f{i}", RegionType.FUNCTION) for i in range(6)]
    return reg, main, functions


def _random_stream(functions, n_events, descend_bias, seed):
    """A properly nested enter/exit stream: [("enter"|"exit", region, t)]."""
    rng = random.Random(seed)
    events = []
    stack = []
    t = 0.0
    while len(events) < n_events:
        t += rng.random()
        if stack and (len(stack) > 12 or rng.random() > descend_bias):
            events.append(("exit", stack.pop(), t))
        else:
            region = rng.choice(functions)
            stack.append(region)
            events.append(("enter", region, t))
    while stack:
        t += rng.random()
        events.append(("exit", stack.pop(), t))
    return events


def _run_legacy(main, events):
    profiler = ClassicProfiler(main)
    t_end = events[-1][2] + 1.0
    profiler.enter(main, 0.0)
    for kind, region, t in events:
        if kind == "enter":
            profiler.enter(region, t)
        else:
            profiler.exit(region, t)
    profiler.exit(main, t_end)
    return profiler.finish()


def _run_batched(reg, main, events, split):
    profiler = ClassicProfiler(main)
    t_end = events[-1][2] + 1.0
    batch = EventBatch(reg)
    batch.add_enter(0, main, 0.0)
    for kind, region, t in events:
        if len(batch.codes) >= split:
            profiler.consume_batch(batch)
            batch = EventBatch(reg)
        if kind == "enter":
            batch.add_enter(0, region, t)
        else:
            batch.add_exit(0, region, t)
    batch.add_exit(0, main, t_end)
    profiler.consume_batch(batch)
    return profiler.finish()


def _tree_equal(a, b):
    if (
        a.region is not b.region
        or a.parameter != b.parameter
        or a.metrics.visits != b.metrics.visits
        or a.metrics.inclusive_time != b.metrics.inclusive_time
        or a.metrics.durations.count != b.metrics.durations.count
        or a.metrics.durations.total != b.metrics.durations.total
        or a.metrics.durations.minimum != b.metrics.durations.minimum
        or a.metrics.durations.maximum != b.metrics.durations.maximum
        or list(a.children.keys()) != list(b.children.keys())
    ):
        return False
    return all(
        _tree_equal(ca, cb)
        for ca, cb in zip(a.children.values(), b.children.values())
    )


# ----------------------------------------------------------------------
# Equivalence on random nesting shapes
# ----------------------------------------------------------------------
@pytest.mark.parametrize("descend_bias", [0.2, 0.5, 0.8])
@pytest.mark.parametrize("split", [7, 64, 10_000])
def test_random_streams_bit_identical(workload, descend_bias, split):
    reg, main, functions = workload
    events = _random_stream(functions, 600, descend_bias, seed=int(descend_bias * 10))
    legacy = _run_legacy(main, events)
    batched = _run_batched(reg, main, events, split)
    assert _tree_equal(batched, legacy)


def test_leaf_storm_bit_identical(workload):
    """The pure leaf-pair shape the vector peel is built for."""
    reg, main, functions = workload
    events = []
    t = 0.0
    for i in range(500):
        region = functions[i % 6]
        events.append(("enter", region, t := t + 1.0))
        events.append(("exit", region, t := t + 1.0))
    assert _tree_equal(
        _run_batched(reg, main, events, split=128), _run_legacy(main, events)
    )


def test_parameterized_enters_take_residual_path(workload):
    """Payload-flagged enters split children and replay per-event."""
    reg, main, functions = workload
    f = functions[0]
    profiler = ClassicProfiler(main)
    batch = EventBatch(reg)
    batch.add_enter(0, main, 0.0)
    for i, n in enumerate((3, 5, 3)):
        batch.add_enter(0, f, 1.0 + i, parameter=("n", n))
        batch.add_exit(0, f, 1.5 + i)
    batch.add_exit(0, main, 10.0)
    profiler.consume_batch(batch)
    root = profiler.finish()

    legacy = ClassicProfiler(main)
    legacy.enter(main, 0.0)
    for i, n in enumerate((3, 5, 3)):
        legacy.enter(f, 1.0 + i, parameter=("n", n))
        legacy.exit(f, 1.5 + i)
    legacy.exit(main, 10.0)
    assert _tree_equal(root, legacy.finish())
    # two distinct parameterized children, one visited twice
    assert {k[1] for k in root.children} == {("n", 3), ("n", 5)}
    assert root.children[(f, ("n", 3))].metrics.visits == 2


def test_root_open_set_from_first_batch_time(workload):
    reg, main, functions = workload
    profiler = ClassicProfiler(main)
    batch = EventBatch(reg)
    batch.add_enter(0, main, 42.5)
    f = functions[0]
    batch.add_enter(0, f, 43.0)
    batch.add_exit(0, f, 44.0)
    batch.add_exit(0, main, 45.0)
    profiler.consume_batch(batch)
    assert profiler._root_open == 42.5


def test_empty_batch_is_a_noop(workload):
    reg, main, _ = workload
    profiler = ClassicProfiler(main)
    profiler.consume_batch(EventBatch(reg))
    assert profiler._root_open is None
    assert profiler.depth == 0


# ----------------------------------------------------------------------
# Error behavior
# ----------------------------------------------------------------------
def test_task_kind_rejected(workload):
    reg, main, _ = workload
    task = reg.register("task", RegionType.TASK)
    batch = EventBatch(reg)
    batch.add_enter(0, main, 0.0)
    batch.add_task_begin(0, task, 1, 1.0)
    with pytest.raises(EventOrderError, match="cannot process"):
        ClassicProfiler(main).consume_batch(batch)


def test_metric_kind_rejected(workload):
    reg, main, _ = workload
    batch = EventBatch(reg)
    batch.add_enter(0, main, 0.0)
    batch.add_metric(0, {"x": 1}, 1.0)
    with pytest.raises(EventOrderError, match="cannot process"):
        ClassicProfiler(main).consume_batch(batch)


def test_mismatched_exit_raises(workload):
    reg, main, functions = workload
    batch = EventBatch(reg)
    batch.add_enter(0, main, 0.0)
    batch.add_enter(0, functions[0], 1.0)
    batch.add_exit(0, functions[1], 2.0)
    with pytest.raises(EventOrderError, match="does not match"):
        ClassicProfiler(main).consume_batch(batch)


def test_exit_on_empty_stack_raises(workload):
    reg, main, functions = workload
    batch = EventBatch(reg)
    batch.add_exit(0, functions[0], 1.0)
    with pytest.raises(EventOrderError, match="no open region"):
        ClassicProfiler(main).consume_batch(batch)


# ----------------------------------------------------------------------
# Pure-Python fallback
# ----------------------------------------------------------------------
def test_numpy_less_fallback_identical(workload, monkeypatch):
    reg, main, functions = workload
    events = _random_stream(functions, 400, 0.6, seed=9)
    with_np = _run_batched(reg, main, events, split=64)
    monkeypatch.setattr("repro.profiling.basic._np", None)
    without_np = _run_batched(reg, main, events, split=64)
    assert _tree_equal(without_np, with_np)
    assert _tree_equal(without_np, _run_legacy(main, events))


def test_numpy_less_fallback_errors_match(workload, monkeypatch):
    reg, main, _ = workload
    monkeypatch.setattr("repro.profiling.basic._np", None)
    task = reg.register("task2", RegionType.TASK)
    batch = EventBatch(reg)
    batch.add_enter(0, main, 0.0)
    batch.add_task_begin(0, task, 1, 1.0)
    with pytest.raises(EventOrderError, match="cannot process"):
        ClassicProfiler(main).consume_batch(batch)
