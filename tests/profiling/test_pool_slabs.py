"""NodePool slab extension and its interplay with the degradation ladder.

Satellite coverage: slab allocation must change *allocation mechanics*
only -- counters, statistics, and (critically) the governor's memory
ladder semantics are slab-invariant:

* L1 (``max_free=0`` + trim) and L2 (``l2_max_free`` residue) must drop
  virgin slab stock along with the free list -- a degraded pool retains
  no hidden slab memory;
* trimmed nodes stay weakref-reclaimable (the pool holds the only
  references);
* counters match a slab_size=1 pool over the same workload, so pool
  statistics feeding the cube export are identical whichever slab size
  runs.
"""

import gc
import weakref

import pytest

from repro.events.regions import RegionRegistry, RegionType
from repro.governor import (
    L1_EAGER_RELEASE,
    L2_AGGREGATES_ONLY,
    MemoryBudget,
    ResourceGovernor,
)
from repro.profiling.pool import NodePool
from repro.profiling.task_profiler import TaskProfiler


@pytest.fixture
def region():
    reg = RegionRegistry()
    return reg.register("task", RegionType.TASK)


# ----------------------------------------------------------------------
# Slab mechanics
# ----------------------------------------------------------------------
def test_first_acquire_builds_one_slab(region):
    pool = NodePool(slab_size=4)
    node = pool.acquire(region)
    assert node.region is region
    assert pool.allocated == 1
    assert pool.slabs == 1
    assert pool.virgin_count == 3
    assert pool.held_count == 3
    stats = pool.stats()
    assert stats["slabs"] == 1
    assert stats["virgin"] == 3


def test_slab_pool_stats_match_classic_pool(region):
    """Counters are slab-invariant over an identical workload."""
    classic = NodePool()
    slabbed = NodePool(slab_size=8)
    for pool in (classic, slabbed):
        roots = [pool.acquire(region) for _ in range(5)]
        for root in roots[:3]:
            pool.release_tree(root)
        pool.acquire(region)  # served from the free list
    for key in ("allocated", "reused", "released"):
        assert slabbed.stats()[key] == classic.stats()[key], key
    # the classic pool reports no slab keys at all (test-pinned shape)
    assert "slabs" not in classic.stats()
    assert "virgin" not in classic.stats()


def test_free_list_preferred_over_virgin_stock(region):
    pool = NodePool(slab_size=4)
    first = pool.acquire(region)
    pool.release_tree(first)
    again = pool.acquire(region)
    assert again is first
    assert pool.reused == 1
    assert pool.virgin_count == 3  # stock untouched


def test_slab_refills_when_stock_exhausted(region):
    pool = NodePool(slab_size=3)
    for _ in range(4):  # 3 from the first slab, 1 triggers a second
        pool.acquire(region)
    assert pool.slabs == 2
    assert pool.allocated == 4
    assert pool.virgin_count == 2


# ----------------------------------------------------------------------
# Ladder interplay
# ----------------------------------------------------------------------
def test_trim_drops_virgin_stock_and_free_excess(region):
    pool = NodePool(slab_size=8)
    roots = [pool.acquire(region) for _ in range(3)]
    for root in roots:
        pool.release_tree(root)
    assert pool.free_count == 3 and pool.virgin_count == 5
    dropped = pool.trim(1)  # L2-style residue of 1
    assert dropped == 7  # 5 virgins + 2 free-list excess
    assert pool.trimmed == 7
    assert pool.free_count == 1 and pool.virgin_count == 0
    assert pool.held_count == 1


def test_degraded_pool_refills_single_nodes(region):
    """After L1 sets max_free, cache misses must not hoard new slabs."""
    pool = NodePool(slab_size=4)
    pool.acquire(region)
    pool.max_free = 0  # what _ladder_eager_release does
    pool.trim(0)
    assert pool.virgin_count == 0
    pool.acquire(region)
    pool.acquire(region)
    assert pool.slabs == 1  # no second slab under degradation
    assert pool.virgin_count == 0
    assert pool.held_count == 0


def test_release_respects_max_free_with_slabs(region):
    pool = NodePool(slab_size=4)
    pool.max_free = 1
    pool.trim(1)
    roots = [pool.acquire(region) for _ in range(3)]
    for root in roots:
        pool.release_tree(root)
    assert pool.free_count <= 1


def test_trimmed_slab_nodes_are_weakref_reclaimable(region):
    pool = NodePool(slab_size=4)
    node = pool.acquire(region)
    pool.release_tree(node)
    refs = [weakref.ref(n) for n in pool._free + pool._virgin]
    assert refs
    pool.trim(0)
    del node
    gc.collect()
    assert all(ref() is None for ref in refs)


# ----------------------------------------------------------------------
# Through the TaskProfiler's ladder actions
# ----------------------------------------------------------------------
@pytest.fixture
def governed_profiler():
    reg = RegionRegistry()
    impl = reg.register("parallel", RegionType.IMPLICIT_TASK)
    task = reg.register("task", RegionType.TASK)
    governor = ResourceGovernor(
        MemoryBudget(max_pool_nodes=1000, l2_max_free=2)
    )
    profiler = TaskProfiler(2, impl, governor=governor)
    return profiler, task


def _prime_slabs(profiler, task):
    """Give every thread pool live nodes, free nodes, and virgin stock."""
    for thread in profiler.threads:
        assert thread.pool.slab_size > 1  # the profiler opts into slabs
        roots = [thread.pool.acquire(task) for _ in range(4)]
        for root in roots[:3]:
            thread.pool.release_tree(root)
        assert thread.pool.virgin_count > 0
        assert thread.pool.free_count == 3


def test_ladder_l1_trims_slabbed_pools(governed_profiler):
    profiler, task = governed_profiler
    _prime_slabs(profiler, task)
    profiler._ladder_eager_release()
    for thread in profiler.threads:
        assert thread.pool.max_free == 0
        assert thread.pool.free_count == 0
        assert thread.pool.virgin_count == 0
        assert thread.pool.held_count == 0


def test_ladder_l2_trims_to_budget_residue(governed_profiler):
    profiler, task = governed_profiler
    _prime_slabs(profiler, task)
    profiler._ladder_aggregates_only()
    for thread in profiler.threads:
        assert thread.pool.max_free == 2
        assert thread.pool.free_count == 2
        assert thread.pool.virgin_count == 0


def test_ladder_fires_through_governor_level_entry(governed_profiler):
    """The governor's on_level wiring reaches the slabbed pools."""
    profiler, task = governed_profiler
    _prime_slabs(profiler, task)
    governor = profiler.governor
    for action in governor._actions[L1_EAGER_RELEASE]:
        action()
    for thread in profiler.threads:
        assert thread.pool.virgin_count == 0
    _prime_slabs_allowed = all(
        t.pool.max_free == 0 for t in profiler.threads
    )
    assert _prime_slabs_allowed
    for action in governor._actions[L2_AGGREGATES_ONLY]:
        action()
    for thread in profiler.threads:
        assert thread.pool.max_free == 2


def test_pool_gauge_counts_held_slab_stock(governed_profiler):
    profiler, task = governed_profiler
    gauge = profiler.governor._gauges["pool_nodes"]
    base = gauge()
    node = profiler.threads[0].pool.acquire(task)
    # one live node was handed out, and the rest of its slab is stock
    # the gauge must see (held_count keeps the gauge honest)
    slab = profiler.threads[0].pool.slab_size
    assert gauge() == base + slab
    profiler.threads[0].pool.release_tree(node)
    assert gauge() == base + slab
