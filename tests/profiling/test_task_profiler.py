"""Unit tests for the Fig. 12 task profiling algorithm.

The central scenario mirrors the paper's Figs. 6-11 walkthrough: one
thread, a task construct A with two instances, the first suspended at a
taskwait while the second executes, both finishing inside the implicit
barrier.
"""

import pytest

from repro.errors import ProfileError
from repro.events import RegionRegistry, RegionType
from repro.events.model import implicit_instance_id
from repro.profiling import TaskProfiler, ThreadTaskProfiler
from repro.profiling.task_profiler import InstanceData


@pytest.fixture()
def reg():
    return RegionRegistry()


@pytest.fixture()
def regions(reg):
    return {
        "impl": reg.register("parallel@example", RegionType.IMPLICIT_TASK),
        "A": reg.register("taskA", RegionType.TASK),
        "B": reg.register("taskB", RegionType.TASK),
        "create": reg.register("create@taskA", RegionType.TASK_CREATE),
        "taskwait": reg.register("taskwait", RegionType.TASKWAIT),
        "barrier": reg.register("barrier", RegionType.IMPLICIT_BARRIER),
        "foo": reg.register("foo", RegionType.FUNCTION),
    }


def make_thread(regions, thread_id=0):
    table = {}
    return ThreadTaskProfiler(thread_id, regions["impl"], table, start_time=0.0)


# ----------------------------------------------------------------------
# The Fig. 6-11 walkthrough
# ----------------------------------------------------------------------
def run_walkthrough(regions):
    p = make_thread(regions)
    # Fig. 7: create two tasks of construct A, then enter the barrier.
    p.enter(regions["create"], 1.0)
    p.exit(regions["create"], 1.5)
    p.enter(regions["create"], 1.5)
    p.exit(regions["create"], 2.0)
    p.enter(regions["barrier"], 4.0)
    # Fig. 8: instance 1 starts executing inside the barrier.
    p.task_begin(regions["A"], 1, 5.0)
    # Fig. 9: instance 1 suspends at a taskwait; instance 2 starts.
    p.enter(regions["taskwait"], 7.0)
    p.task_begin(regions["A"], 2, 8.0)
    # Fig. 10: instance 2 completes without entering other regions.
    p.task_end(regions["A"], 2, 11.0)
    # ... and instance 1 resumes.
    p.task_switch(1, 11.0)
    p.exit(regions["taskwait"], 12.0)
    # Fig. 11: instance 1 completes.
    p.task_end(regions["A"], 1, 13.0)
    p.exit(regions["barrier"], 14.0)
    main = p.finish(15.0)
    return p, main


def test_walkthrough_main_tree_shape(regions):
    p, main = run_walkthrough(regions)
    assert main.inclusive_time == 15.0
    create = main.find_child(regions["create"])
    assert create.visits == 2
    assert create.inclusive_time == 1.0
    barrier = main.find_child(regions["barrier"])
    assert barrier.inclusive_time == 10.0


def test_walkthrough_stub_node_accounting(regions):
    """Section IV-B4: the stub carries in-barrier task time and fragments."""
    p, main = run_walkthrough(regions)
    barrier = main.find_child(regions["barrier"])
    stub = barrier.find_child(regions["A"])
    assert stub.is_stub
    # fragments: inst1 [5,8), inst2 [8,11), inst1 [11,13) -> 3 fragments, 8 us
    assert stub.visits == 3
    assert stub.inclusive_time == 8.0
    # Fig. 5's reading: barrier time not spent in tasks is overhead/idle.
    assert barrier.exclusive_time == 2.0


def test_walkthrough_task_tree_statistics(regions):
    p, main = run_walkthrough(regions)
    agg = p.task_trees[(regions["A"], None)]
    # instance 2 ran 3 us; instance 1 ran 8 us wall minus 3 us suspension.
    assert agg.metrics.durations.count == 2
    assert agg.metrics.durations.minimum == 3.0
    assert agg.metrics.durations.maximum == 5.0
    assert agg.inclusive_time == 8.0
    taskwait = agg.find_child(regions["taskwait"])
    # inst1 held the taskwait [7,12) minus the [8,11) suspension = 2 us.
    assert taskwait.inclusive_time == 2.0
    assert taskwait.visits == 1


def test_walkthrough_invariant_stub_equals_task_time(regions):
    """Per-thread: total stub time == total task execution time."""
    p, main = run_walkthrough(regions)
    stub_time = sum(
        n.metrics.inclusive_time for n in main.walk() if n.is_stub
    )
    task_time = sum(t.metrics.durations.total for t in p.task_trees.values())
    assert stub_time == pytest.approx(task_time)


def test_walkthrough_instance_table_empty_and_pool_recycled(regions):
    p, main = run_walkthrough(regions)
    assert not p._table
    stats = p.pool.stats()
    assert stats["released"] == stats["allocated"] + stats["reused"]
    # Fig. 6-11 uses two instances; the second one's tree reuses the
    # first's nodes when their lifetimes do not overlap -- here they do
    # overlap, so two allocations... instance 2's root is allocated while
    # instance 1 lives, but instance 1's taskwait node is acquired later.
    assert p.concurrency.overall_max == 2
    assert p.concurrency.total_instances == 2
    assert p.concurrency.current == 0


# ----------------------------------------------------------------------
# Suspension/resumption timing details
# ----------------------------------------------------------------------
def test_suspended_time_excluded_from_all_open_regions(regions):
    """Fig. 12 lines 24-25: stop measurement on ALL open regions."""
    p = make_thread(regions)
    p.enter(regions["barrier"], 0.0)
    p.task_begin(regions["A"], 1, 0.0)
    p.enter(regions["foo"], 1.0)
    p.enter(regions["taskwait"], 2.0)
    # suspend 2..10 (8 us), run another instance
    p.task_begin(regions["A"], 2, 2.0)
    p.task_end(regions["A"], 2, 10.0)
    p.task_switch(1, 10.0)
    p.exit(regions["taskwait"], 11.0)
    p.exit(regions["foo"], 12.0)
    p.task_end(regions["A"], 1, 13.0)
    p.exit(regions["barrier"], 13.0)
    p.finish(13.0)

    agg = p.task_trees[(regions["A"], None)]
    # instance 1: wall [0,13) minus suspension [2,10) = 5 us
    # instance 2: [2,10) = 8 us
    assert agg.metrics.durations.maximum == 8.0
    assert agg.metrics.durations.minimum == 5.0
    foo = agg.find_child(regions["foo"])
    # foo open [1,12) minus suspension 8 -> 3
    assert foo.inclusive_time == 3.0
    taskwait = foo.find_child(regions["taskwait"])
    # taskwait [2,11) minus 8 -> 1
    assert taskwait.inclusive_time == 1.0


def test_nested_task_inside_task_uses_implicit_anchor(regions):
    """Stub nodes always hang off the implicit task's current node, even
    when the suspended task is another explicit task (Section IV-C:
    'only the implicit task's call tree contains task nodes')."""
    p = make_thread(regions)
    p.enter(regions["barrier"], 0.0)
    p.task_begin(regions["A"], 1, 0.0)
    p.enter(regions["taskwait"], 1.0)
    p.task_begin(regions["B"], 2, 1.0)  # B runs while A suspended
    p.task_end(regions["B"], 2, 3.0)
    p.task_switch(1, 3.0)
    p.exit(regions["taskwait"], 4.0)
    p.task_end(regions["A"], 1, 5.0)
    p.exit(regions["barrier"], 5.0)
    main = p.finish(5.0)

    barrier = main.find_child(regions["barrier"])
    stub_a = barrier.find_child(regions["A"])
    stub_b = barrier.find_child(regions["B"])
    assert stub_a is not None and stub_a.is_stub
    assert stub_b is not None and stub_b.is_stub
    assert stub_b.parent is barrier  # NOT under A's taskwait
    assert stub_a.inclusive_time == 3.0  # [0,1)+[1,..] fragments: [0,1),[3,5)
    assert stub_b.inclusive_time == 2.0
    # A's aggregate tree has no task child under its taskwait
    agg_a = p.task_trees[(regions["A"], None)]
    taskwait = agg_a.find_child(regions["taskwait"])
    assert taskwait.children == {}


def test_same_construct_instances_merge_into_one_tree(regions):
    p = make_thread(regions)
    p.enter(regions["barrier"], 0.0)
    for i, (begin, end) in enumerate([(0.0, 2.0), (2.0, 5.0), (5.0, 9.0)], start=1):
        p.task_begin(regions["A"], i, begin)
        p.task_end(regions["A"], i, end)
    p.exit(regions["barrier"], 9.0)
    main = p.finish(9.0)
    assert len(p.task_trees) == 1
    agg = p.task_trees[(regions["A"], None)]
    assert agg.metrics.durations.count == 3
    assert agg.metrics.durations.minimum == 2.0
    assert agg.metrics.durations.maximum == 4.0
    assert agg.metrics.durations.mean == 3.0
    stub = main.find_child(regions["barrier"]).find_child(regions["A"])
    assert stub.visits == 3


def test_parameter_instrumentation_splits_task_trees(regions):
    """Table IV mechanism: per-depth sub-trees for one construct."""
    p = make_thread(regions)
    p.enter(regions["barrier"], 0.0)
    p.task_begin(regions["A"], 1, 0.0, parameter=("depth", 0))
    p.task_end(regions["A"], 1, 4.0)
    p.task_begin(regions["A"], 2, 4.0, parameter=("depth", 1))
    p.task_end(regions["A"], 2, 6.0)
    p.task_begin(regions["A"], 3, 6.0, parameter=("depth", 1))
    p.task_end(regions["A"], 3, 9.0)
    p.exit(regions["barrier"], 9.0)
    p.finish(9.0)
    assert (regions["A"], ("depth", 0)) in p.task_trees
    assert (regions["A"], ("depth", 1)) in p.task_trees
    d0 = p.task_trees[(regions["A"], ("depth", 0))]
    d1 = p.task_trees[(regions["A"], ("depth", 1))]
    assert d0.metrics.durations.count == 1
    assert d1.metrics.durations.count == 2
    assert d1.metrics.durations.mean == 2.5


# ----------------------------------------------------------------------
# Error handling
# ----------------------------------------------------------------------
def test_task_end_for_noncurrent_instance_rejected(regions):
    p = make_thread(regions)
    p.enter(regions["barrier"], 0.0)
    p.task_begin(regions["A"], 1, 0.0)
    p.enter(regions["taskwait"], 1.0)
    p.task_begin(regions["A"], 2, 1.0)
    with pytest.raises(ProfileError, match="not current"):
        p.task_end(regions["A"], 1, 2.0)


def test_task_end_with_open_region_rejected(regions):
    p = make_thread(regions)
    p.enter(regions["barrier"], 0.0)
    p.task_begin(regions["A"], 1, 0.0)
    p.enter(regions["foo"], 1.0)
    with pytest.raises(ProfileError, match="open region"):
        p.task_end(regions["A"], 1, 2.0)


def test_duplicate_instance_id_rejected(regions):
    p = make_thread(regions)
    p.enter(regions["barrier"], 0.0)
    p.task_begin(regions["A"], 1, 0.0)
    p.enter(regions["taskwait"], 0.5)
    with pytest.raises(ProfileError, match="already active"):
        p.task_begin(regions["A"], 1, 1.0)


def test_switch_to_unknown_instance_rejected(regions):
    p = make_thread(regions)
    with pytest.raises(ProfileError, match="unknown instance"):
        p.task_switch(42, 1.0)


def test_finish_while_task_current_rejected(regions):
    p = make_thread(regions)
    p.task_begin(regions["A"], 1, 0.0)
    with pytest.raises(ProfileError, match="is current"):
        p.finish(1.0)


def test_exit_root_frame_protected(regions):
    p = make_thread(regions)
    with pytest.raises(ProfileError, match="no open region"):
        p.exit(regions["impl"], 1.0)


# ----------------------------------------------------------------------
# Multi-thread TaskProfiler and untied migration
# ----------------------------------------------------------------------
def test_multithread_profile_and_aggregation(regions):
    tp = TaskProfiler(2, regions["impl"])
    for t in (0, 1):
        tp.on_enter(t, regions["barrier"], 1.0)
    tp.on_task_begin(0, regions["A"], 1, 1.0)
    tp.on_task_end(0, regions["A"], 1, 3.0)
    tp.on_task_begin(1, regions["A"], 2, 1.0)
    tp.on_task_end(1, regions["A"], 2, 6.0)
    for t in (0, 1):
        tp.on_exit(t, regions["barrier"], 6.0)
    tp.on_finish(7.0)
    profile = tp.build_profile()
    assert profile.n_threads == 2
    agg = profile.task_tree("taskA")
    assert agg.metrics.durations.count == 2
    assert agg.metrics.durations.minimum == 2.0
    assert agg.metrics.durations.maximum == 5.0
    merged_main = profile.aggregated_main_tree()
    assert merged_main.visits == 2
    assert merged_main.inclusive_time == 14.0


def test_untied_migration_across_threads(regions):
    """Section IV-D1: the task's data migrates with the task."""
    tp = TaskProfiler(2, regions["impl"])
    tp.on_enter(0, regions["barrier"], 0.0)
    tp.on_enter(1, regions["barrier"], 0.0)
    # begins on thread 0, suspends at its taskwait
    tp.on_task_begin(0, regions["A"], 1, 0.0)
    tp.on_enter(0, regions["taskwait"], 1.0)
    tp.on_task_switch(0, implicit_instance_id(0), 2.0)
    # resumes on thread 1 six us later
    tp.on_task_switch(1, 1, 8.0)
    tp.on_exit(1, regions["taskwait"], 9.0)
    tp.on_task_end(1, regions["A"], 1, 10.0)
    tp.on_exit(0, regions["barrier"], 10.0)
    tp.on_exit(1, regions["barrier"], 10.0)
    tp.on_finish(10.0)
    profile = tp.build_profile()
    agg = profile.task_tree("taskA")
    # executed [0,2) on t0 and [8,10) on t1 -> 4 us total
    assert agg.metrics.durations.total == 4.0
    # stub time split between both threads' barriers
    stub0 = profile.main_tree(0).find_child(regions["barrier"]).find_child(regions["A"])
    stub1 = profile.main_tree(1).find_child(regions["barrier"]).find_child(regions["A"])
    assert stub0.inclusive_time == 2.0
    assert stub1.inclusive_time == 2.0


def test_finish_with_active_instance_rejected(regions):
    tp = TaskProfiler(1, regions["impl"])
    tp.on_enter(0, regions["barrier"], 0.0)
    tp.on_task_begin(0, regions["A"], 1, 0.0)
    with pytest.raises(ProfileError, match="active instances"):
        tp.on_finish(1.0)


def test_build_profile_before_finish_rejected(regions):
    tp = TaskProfiler(1, regions["impl"])
    with pytest.raises(ProfileError, match="before on_finish"):
        tp.build_profile()
