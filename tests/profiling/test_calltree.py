"""Unit tests for the call-tree structure: children, paths, merge, exclusive."""

import pytest

from repro.events import RegionRegistry, RegionType
from repro.profiling import CallTreeNode


@pytest.fixture()
def reg():
    return RegionRegistry()


def test_child_get_or_create(reg):
    root = CallTreeNode(reg.register("main", RegionType.FUNCTION))
    foo = reg.register("foo", RegionType.FUNCTION)
    a = root.child(foo)
    b = root.child(foo)
    assert a is b
    assert len(root.children) == 1
    assert a.parent is root


def test_parameter_qualified_children_are_distinct(reg):
    root = CallTreeNode(reg.register("main", RegionType.FUNCTION))
    task = reg.register("task", RegionType.TASK)
    d0 = root.child(task, parameter=("depth", 0))
    d1 = root.child(task, parameter=("depth", 1))
    assert d0 is not d1
    assert root.find_child(task, ("depth", 0)) is d0
    assert root.find_child(task) is None
    assert d1.display_name() == "task[depth=1]"


def test_depth_and_path(reg):
    root = CallTreeNode(reg.register("main", RegionType.FUNCTION))
    a = root.child(reg.register("a", RegionType.FUNCTION))
    b = a.child(reg.register("b", RegionType.FUNCTION))
    assert root.depth() == 0
    assert b.depth() == 2
    assert [n.region.name for n in b.path()] == ["main", "a", "b"]
    assert b.path_names() == "main/a/b"


def test_walk_preorder_and_count(reg):
    root = CallTreeNode(reg.register("main", RegionType.FUNCTION))
    a = root.child(reg.register("a", RegionType.FUNCTION))
    a.child(reg.register("a1", RegionType.FUNCTION))
    root.child(reg.register("b", RegionType.FUNCTION))
    names = [n.region.name for n in root.walk()]
    assert names == ["main", "a", "a1", "b"]
    assert root.node_count() == 4


def test_find_and_find_one(reg):
    root = CallTreeNode(reg.register("main", RegionType.FUNCTION))
    barrier = reg.register("barrier", RegionType.BARRIER)
    root.child(barrier)
    a = root.child(reg.register("a", RegionType.FUNCTION))
    a.child(barrier)
    assert len(root.find(name="barrier")) == 2
    with pytest.raises(ValueError):
        root.find_one("barrier")
    assert root.find_one("a") is a
    with pytest.raises(KeyError):
        root.find_one("missing")


def test_exclusive_time_derivation(reg):
    """Paper Section IV-A: exclusive = inclusive - sum(children inclusive)."""
    root = CallTreeNode(reg.register("main", RegionType.FUNCTION))
    child = root.child(reg.register("foo", RegionType.FUNCTION))
    root.metrics.record_visit(10.0)
    child.metrics.record_visit(4.0)
    assert root.inclusive_time == 10.0
    assert root.exclusive_time == 6.0
    assert child.exclusive_time == 4.0


def test_merge_accumulates_metrics_and_structure(reg):
    main = reg.register("main", RegionType.FUNCTION)
    foo = reg.register("foo", RegionType.FUNCTION)
    bar = reg.register("bar", RegionType.FUNCTION)

    a = CallTreeNode(main)
    a.metrics.record_visit(10.0)
    a.child(foo).metrics.record_visit(3.0)

    b = CallTreeNode(main)
    b.metrics.record_visit(20.0)
    b.child(foo).metrics.record_visit(5.0)
    b.child(bar).metrics.record_visit(7.0)

    a.merge(b)
    assert a.inclusive_time == 30.0
    assert a.visits == 2
    assert a.find_child(foo).inclusive_time == 8.0
    assert a.find_child(bar).inclusive_time == 7.0
    # merged-in child got a proper parent link
    assert a.find_child(bar).parent is a
    # b untouched
    assert b.inclusive_time == 20.0


def test_merge_region_mismatch_rejected(reg):
    a = CallTreeNode(reg.register("a", RegionType.FUNCTION))
    b = CallTreeNode(reg.register("b", RegionType.FUNCTION))
    with pytest.raises(ValueError):
        a.merge(b)


def test_merge_is_order_insensitive_on_metrics(reg):
    """Folding instances in any order yields the same aggregate numbers."""
    main = reg.register("task", RegionType.TASK)
    foo = reg.register("foo", RegionType.FUNCTION)

    def instance(t):
        node = CallTreeNode(main)
        node.metrics.record_visit(t)
        node.child(foo).metrics.record_visit(t / 2)
        return node

    instances = [instance(float(t)) for t in (3, 7, 2, 9)]

    forward = CallTreeNode(main)
    for inst in instances:
        forward.merge(inst)
    backward = CallTreeNode(main)
    for inst in reversed(instances):
        backward.merge(inst)

    assert forward.inclusive_time == backward.inclusive_time
    assert forward.metrics.durations == backward.metrics.durations
    assert (
        forward.find_child(foo).metrics.durations
        == backward.find_child(foo).metrics.durations
    )


def test_deep_copy_is_detached(reg):
    root = CallTreeNode(reg.register("main", RegionType.FUNCTION))
    child = root.child(reg.register("foo", RegionType.FUNCTION))
    child.metrics.record_visit(2.0)
    clone = root.deep_copy()
    clone_child = clone.find_child(child.region)
    clone_child.metrics.record_visit(100.0)
    assert child.inclusive_time == 2.0
    assert clone_child.parent is clone


def test_stub_flag_propagates_through_child_and_copy(reg):
    root = CallTreeNode(reg.register("barrier", RegionType.BARRIER))
    task = reg.register("task", RegionType.TASK)
    stub = root.child(task, is_stub=True)
    assert stub.is_stub
    assert "(stub)" in stub.display_name()
    assert root.deep_copy().find_child(task).is_stub
