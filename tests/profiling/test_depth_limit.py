"""Call-path depth limit (Score-P's clipping, paper Section IV-B3)."""

import pytest

from repro.errors import ProfileError
from repro.events import RegionRegistry, RegionType
from repro.profiling.task_profiler import ThreadTaskProfiler
from repro.runtime import RuntimeConfig, ZERO_COST
from repro.runtime.runtime import run_parallel


@pytest.fixture()
def regions():
    reg = RegionRegistry()
    return {
        "impl": reg.register("parallel", RegionType.IMPLICIT_TASK),
        "f": reg.register("f", RegionType.FUNCTION),
        "g": reg.register("g", RegionType.FUNCTION),
    }


def test_depth_limit_folds_deep_regions(regions):
    p = ThreadTaskProfiler(0, regions["impl"], {}, max_call_path_depth=3)
    # depth grows: root frame is depth 1, so limit 3 allows 2 nested regions
    p.enter(regions["f"], 1.0)
    p.enter(regions["g"], 2.0)
    node = p.enter(regions["f"], 3.0)  # folded: beyond the limit
    # The folded enter returns the boundary node (g).
    assert node.region is regions["g"]
    p.exit(regions["f"], 4.0)
    p.exit(regions["g"], 5.0)
    p.exit(regions["f"], 6.0)
    main = p.finish(7.0)
    assert p.truncated_enters == 1
    # No third-level node exists...
    g_node = main.find_one("g")
    assert g_node.children == {}
    # ...and its time contains the folded region's time.
    assert g_node.inclusive_time == 3.0  # [2,5)


def test_folded_exits_still_validated(regions):
    p = ThreadTaskProfiler(0, regions["impl"], {}, max_call_path_depth=2)
    p.enter(regions["f"], 1.0)
    p.enter(regions["g"], 2.0)  # folded
    with pytest.raises(ProfileError, match="does not match"):
        p.exit(regions["f"], 3.0)


def test_depth_limit_validation(regions):
    with pytest.raises(ValueError, match="max_call_path_depth"):
        ThreadTaskProfiler(0, regions["impl"], {}, max_call_path_depth=0)


def test_end_to_end_depth_limit_bounds_tree():
    """Nested regions (here: nested named criticals) get clipped.

    Note: per-task trees are naturally shallow -- a spawned task starts
    its own tree (Section IV-B3's design) -- so the depth limit matters
    for region nesting *within* one context, exactly as in Score-P.
    """
    depth_of_nesting = 10

    def body(ctx):
        for i in range(depth_of_nesting):
            yield ctx.critical(f"zone{i}")
        yield ctx.compute(5.0)
        for i in reversed(range(depth_of_nesting)):
            yield ctx.end_critical(f"zone{i}")
        return "done"

    limited = RuntimeConfig(
        n_threads=1, instrument=True, costs=ZERO_COST, max_call_path_depth=4
    )
    result = run_parallel(body, config=limited)
    assert result.return_values == ["done"]  # functionality unaffected
    assert result.extra["truncated_enters"] == depth_of_nesting - 3

    def tree_depth(node):
        if not node.children:
            return 1
        return 1 + max(tree_depth(c) for c in node.children.values())

    tree = result.profile.main_tree(0)
    assert tree_depth(tree) <= 4
    # The boundary node holds all the deeper time.
    boundary = tree.find_one("critical@zone2")
    assert boundary.inclusive_time >= 5.0
    assert boundary.children == {}


def test_unlimited_depth_by_default():
    def chain(ctx, depth):
        if depth == 0:
            yield ctx.compute(1.0)
            return 0
        handle = yield ctx.spawn(chain, depth - 1)
        yield ctx.taskwait()
        return handle.result + 1

    def body(ctx):
        yield ctx.spawn(chain, 10)
        yield ctx.taskwait()

    config = RuntimeConfig(n_threads=1, instrument=True, costs=ZERO_COST)
    result = run_parallel(body, config=config)
    assert result.extra["truncated_enters"] == 0


def test_time_conservation_with_depth_limit(regions):
    """Folded regions leak no time: parent inclusive is exact."""
    p = ThreadTaskProfiler(0, regions["impl"], {}, max_call_path_depth=2)
    p.enter(regions["f"], 0.0)
    for i in range(5):
        p.enter(regions["g"], float(i * 2))  # folded each time
        p.exit(regions["g"], float(i * 2 + 1))
    p.exit(regions["f"], 10.0)
    main = p.finish(10.0)
    f_node = main.find_one("f")
    assert f_node.inclusive_time == 10.0
    assert f_node.exclusive_time == 10.0  # no children at all
    assert p.truncated_enters == 5
