"""Gateway orchestration: leases, idempotency, deadlines, recovery."""

import pytest

from repro.errors import (
    CampaignStateError,
    GatewayDraining,
    IdempotencyConflict,
    LeaseExpired,
    UnknownCampaign,
)
from repro.service import CampaignSpec, Gateway, verify_gateway
from repro.supervisor.backoff import FAST_BACKOFF


def cells_spec(n=2, target="ok_cell", **kwargs):
    return CampaignSpec(
        kind="cells",
        cells=tuple(
            {
                "kind": "call",
                "cell_id": f"stub{i}",
                "params": {
                    "target": f"repro.supervisor.stubs:{target}",
                    "kwargs": dict(kwargs),
                },
            }
            for i in range(n)
        ),
    )


class FakeClock:
    """Deterministic epoch clock the gateway can be driven with."""

    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_gateway(tmp_path, name="home", **kwargs):
    kwargs.setdefault("reclaim_backoff", FAST_BACKOFF)
    return Gateway(str(tmp_path / name), **kwargs)


class TestSubmit:
    def test_submit_is_durable(self, tmp_path):
        gateway = make_gateway(tmp_path)
        campaign, created = gateway.submit(cells_spec())
        assert created
        assert campaign.state == "submitted"
        # A fresh process over the same home sees the submission.
        peer = make_gateway(tmp_path)
        assert peer.campaign(campaign.campaign_id).state == "submitted"

    def test_idempotent_resubmit_returns_original(self, tmp_path):
        gateway = make_gateway(tmp_path)
        first, created = gateway.submit(cells_spec(), idempotency_key="k")
        again, created_again = gateway.submit(cells_spec(), idempotency_key="k")
        assert created and not created_again
        assert again.campaign_id == first.campaign_id

    def test_same_key_different_spec_conflicts(self, tmp_path):
        gateway = make_gateway(tmp_path)
        gateway.submit(cells_spec(2), idempotency_key="k")
        with pytest.raises(IdempotencyConflict) as excinfo:
            gateway.submit(cells_spec(3), idempotency_key="k")
        assert excinfo.value.code == "E_IDEMPOTENCY_CONFLICT"
        assert excinfo.value.key == "k"

    def test_draining_gateway_refuses_intake(self, tmp_path):
        gateway = make_gateway(tmp_path)
        gateway._draining = True
        with pytest.raises(GatewayDraining):
            gateway.submit(cells_spec())

    def test_unknown_campaign(self, tmp_path):
        gateway = make_gateway(tmp_path)
        with pytest.raises(UnknownCampaign):
            gateway.campaign("c9999")


class TestServe:
    def test_happy_path_archives_and_audits_clean(self, tmp_path):
        gateway = make_gateway(tmp_path)
        campaign, _ = gateway.submit(cells_spec(3))
        report = gateway.serve(run_until_idle=True, poll_s=0.01)
        assert report.executed == 1 and report.idle
        settled = gateway.campaign(campaign.campaign_id)
        assert settled.state == "archived"
        assert settled.cells == {"ok": 3, "total": 3}
        audit = verify_gateway(gateway.home, require_settled=True)
        assert audit.ok, audit.problems

    def test_failing_cells_fail_the_campaign(self, tmp_path):
        gateway = make_gateway(tmp_path)
        campaign, _ = gateway.submit(cells_spec(1, target="error_cell"))
        gateway.serve(run_until_idle=True, poll_s=0.01)
        settled = gateway.campaign(campaign.campaign_id)
        assert settled.state == "failed"
        assert settled.error["code"] == "E_CAMPAIGN_FAILED"

    def test_poisoned_spec_fails_without_killing_the_loop(self, tmp_path):
        gateway = make_gateway(tmp_path)
        bad = CampaignSpec(
            kind="cells",
            cells=({"kind": "call", "cell_id": "x", "params": {}},),
        )
        poisoned, _ = gateway.submit(bad)
        healthy, _ = gateway.submit(cells_spec(1))
        report = gateway.serve(run_until_idle=True, poll_s=0.01)
        assert report.executed == 2
        assert gateway.campaign(poisoned.campaign_id).state == "failed"
        assert gateway.campaign(healthy.campaign_id).state == "archived"


class TestCancel:
    def test_cancel_before_lease(self, tmp_path):
        gateway = make_gateway(tmp_path)
        campaign, _ = gateway.submit(cells_spec())
        assert gateway.cancel(campaign.campaign_id).state == "cancelled"
        # idempotent
        assert gateway.cancel(campaign.campaign_id).state == "cancelled"

    def test_cancel_under_live_lease_is_illegal(self, tmp_path):
        gateway = make_gateway(tmp_path)
        campaign, _ = gateway.submit(cells_spec())
        gateway.admit()
        assert gateway.claim() is not None
        with pytest.raises(CampaignStateError):
            gateway.cancel(campaign.campaign_id)


class TestLeases:
    def test_concurrent_double_claim_has_one_winner(self, tmp_path):
        first = make_gateway(tmp_path)
        second = Gateway(first.home, reclaim_backoff=FAST_BACKOFF)
        assert first.owner != second.owner
        first.submit(cells_spec())
        first.admit()
        winner = first.claim()
        assert winner is not None
        # The loser's flock'd read-decide-append sees the lease record.
        assert second.claim() is None

    def test_execute_requires_the_lease(self, tmp_path):
        gateway = make_gateway(tmp_path)
        campaign, _ = gateway.submit(cells_spec())
        gateway.admit()
        with pytest.raises(LeaseExpired):
            gateway.execute(campaign.campaign_id)  # never claimed

    def test_expired_lease_is_reclaimed_with_backoff_gate(self, tmp_path):
        clock = FakeClock()
        gateway = make_gateway(tmp_path, lease_ttl_s=30.0, clock=clock)
        campaign, _ = gateway.submit(cells_spec())
        gateway.admit()
        assert gateway.claim() is not None
        clock.advance(31.0)  # lease dies silently
        report = gateway.recover(takeover=False)
        assert report.reclaimed == [campaign.campaign_id]
        reclaimed = gateway.campaign(campaign.campaign_id)
        assert reclaimed.state == "admitted"
        assert reclaimed.attempts == 1
        assert reclaimed.not_before >= clock.now

    def test_lease_exhaustion_fails_the_campaign(self, tmp_path):
        clock = FakeClock()
        gateway = make_gateway(
            tmp_path, lease_ttl_s=10.0, max_lease_attempts=2, clock=clock
        )
        campaign, _ = gateway.submit(cells_spec())
        gateway.admit()
        for _ in range(2):
            clock.advance(3600.0)  # past any backoff gate
            assert gateway.claim() is not None
            clock.advance(11.0)  # lease expires
            gateway.recover(takeover=False)
        failed = gateway.campaign(campaign.campaign_id)
        assert failed.state == "failed"
        assert failed.error["code"] == "E_LEASE_EXPIRED"

    def test_takeover_reclaims_live_foreign_lease(self, tmp_path):
        clock = FakeClock()
        first = make_gateway(tmp_path, lease_ttl_s=300.0, clock=clock)
        first.submit(cells_spec())
        first.admit()
        assert first.claim() is not None
        successor = Gateway(
            first.home, lease_ttl_s=300.0, clock=clock,
            reclaim_backoff=FAST_BACKOFF,
        )
        # Polite mode leaves the (still live) foreign lease alone...
        assert successor.recover(takeover=False).reclaimed == []
        # ...takeover mode (the unique server restarting) reclaims it.
        assert len(successor.recover(takeover=True).reclaimed) == 1

    def test_recover_never_reclaims_own_live_lease(self, tmp_path):
        clock = FakeClock()
        gateway = make_gateway(tmp_path, lease_ttl_s=300.0, clock=clock)
        campaign, _ = gateway.submit(cells_spec())
        gateway.admit()
        assert gateway.claim() is not None
        assert gateway.recover(takeover=True).reclaimed == []
        assert gateway.campaign(campaign.campaign_id).state == "leased"

    def test_renew_extends_and_loss_raises(self, tmp_path):
        clock = FakeClock()
        gateway = make_gateway(tmp_path, lease_ttl_s=30.0, clock=clock)
        campaign, _ = gateway.submit(cells_spec())
        gateway.admit()
        assert gateway.claim() is not None
        clock.advance(20.0)
        gateway.renew_lease(campaign.campaign_id)
        assert gateway.campaign(
            campaign.campaign_id
        ).lease_expires_at == clock.now + 30.0
        clock.advance(31.0)
        with pytest.raises(LeaseExpired):
            gateway.renew_lease(campaign.campaign_id)


class TestDeadlines:
    def test_deadline_expires_queued_campaign(self, tmp_path):
        clock = FakeClock()
        gateway = make_gateway(tmp_path, clock=clock)
        campaign, _ = gateway.submit(cells_spec(), deadline_s=60.0)
        clock.advance(61.0)
        gateway.admit()
        expired = gateway.campaign(campaign.campaign_id)
        assert expired.state == "expired"
        assert expired.error["code"] == "E_CAMPAIGN_EXPIRED"

    def test_deadline_propagates_into_execution(self, tmp_path):
        # Two 10 s sleep cells under a ~0.5 s budget: the supervisor's
        # deadline (not the cell timeout, not the test suite's patience)
        # must stop the campaign.
        gateway = make_gateway(tmp_path, cell_timeout_s=60.0)
        campaign, _ = gateway.submit(
            cells_spec(2, target="sleep_cell", wall_s=10.0), deadline_s=0.5
        )
        gateway.serve(run_until_idle=True, poll_s=0.01)
        settled = gateway.campaign(campaign.campaign_id)
        assert settled.state == "expired"
        assert settled.error["code"] == "E_CAMPAIGN_EXPIRED"

    def test_submit_rejects_nonpositive_deadline(self, tmp_path):
        gateway = make_gateway(tmp_path)
        with pytest.raises(ValueError):
            gateway.submit(cells_spec(), deadline_s=0.0)


class TestAdmission:
    def test_reject_policy_fails_overflow_with_stable_code(self, tmp_path):
        from repro.fabric import AdmissionPolicy

        gateway = make_gateway(
            tmp_path,
            admission=AdmissionPolicy(max_pending=1, policy="reject"),
        )
        first, _ = gateway.submit(cells_spec(1))
        second, _ = gateway.submit(cells_spec(2))
        gateway.admit()
        states = {
            cid: gateway.campaign(cid).state
            for cid in (first.campaign_id, second.campaign_id)
        }
        assert states[first.campaign_id] == "admitted"
        assert states[second.campaign_id] == "failed"
        rejected = gateway.campaign(second.campaign_id)
        assert rejected.error["code"] == "E_ADMISSION_REJECTED"
