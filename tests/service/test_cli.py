"""End-to-end CLI tests for the gateway verbs: submit/serve/status/fetch."""

import json

import pytest

from repro.cli import main


def submit(home, *extra):
    return main(
        [
            "submit", str(home), "--apps", "fib", "--modes", "none",
            "--seeds", "0,1", *extra,
        ]
    )


@pytest.fixture()
def served_home(tmp_path):
    """A home with one campaign submitted and served to archived."""
    home = tmp_path / "home"
    assert submit(home, "--key", "k1") == 0
    assert main(
        ["serve", str(home), "--until-idle", "--jobs", "2",
         "--poll-s", "0.01"]
    ) == 0
    return home


# ----------------------------------------------------------------------
# submit
# ----------------------------------------------------------------------
def test_submit_creates_and_reports(tmp_path, capsys):
    assert submit(tmp_path / "home") == 0
    out = capsys.readouterr().out
    assert "c0001" in out and "submitted" in out and "2 cells" in out


def test_submit_is_idempotent_under_key(tmp_path, capsys):
    home = tmp_path / "home"
    assert submit(home, "--key", "k") == 0
    assert submit(home, "--key", "k") == 0
    out = capsys.readouterr().out
    assert "already submitted" in out
    assert out.count("c0001") == 2


def test_submit_key_conflict_is_stable_code(tmp_path, capsys):
    home = tmp_path / "home"
    assert submit(home, "--key", "k") == 0
    capsys.readouterr()  # drain the first submit's line
    code = main(
        ["submit", str(home), "--apps", "nqueens", "--modes", "none",
         "--seeds", "0", "--key", "k", "--json"]
    )
    assert code == 2
    payload = json.loads(capsys.readouterr().out)
    assert payload["error"]["code"] == "E_IDEMPOTENCY_CONFLICT"


def test_submit_unknown_kernel_fails_fast(tmp_path, capsys):
    code = main(["submit", str(tmp_path / "home"), "--apps", "nope"])
    assert code == 2
    assert "unknown kernel" in capsys.readouterr().err


def test_submit_cells_file_validates_eagerly(tmp_path, capsys):
    bad = tmp_path / "cells.json"
    bad.write_text(json.dumps([{"cell_id": "x"}]))  # no 'kind'
    code = main(
        ["submit", str(tmp_path / "home"), "--cells-file", str(bad)]
    )
    assert code == 2
    assert "cannot load cells file" in capsys.readouterr().err


# ----------------------------------------------------------------------
# serve / status / fetch
# ----------------------------------------------------------------------
def test_serve_until_idle_archives(served_home, capsys):
    assert main(["status", str(served_home), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    (campaign,) = payload["campaigns"]
    assert campaign["state"] == "archived"
    assert campaign["cells"] == {"ok": 2, "total": 2}


def test_status_table_lists_campaigns(served_home, capsys):
    assert main(["status", str(served_home)]) == 0
    out = capsys.readouterr().out
    assert "c0001" in out and "archived" in out


def test_status_single_campaign_details(served_home, capsys):
    assert main(["status", str(served_home), "c0001"]) == 0
    out = capsys.readouterr().out
    assert "c0001: archived" in out
    assert "fault grid fib" in out


def test_status_unknown_campaign_json_payload(served_home, capsys):
    assert main(["status", str(served_home), "c9999", "--json"]) == 2
    payload = json.loads(capsys.readouterr().out)
    assert payload["error"]["code"] == "E_UNKNOWN_CAMPAIGN"


def test_status_missing_home_refuses(tmp_path, capsys):
    assert main(["status", str(tmp_path / "nope")]) == 2
    assert "no gateway ledger" in capsys.readouterr().err


def test_status_cancel_pre_lease(tmp_path, capsys):
    home = tmp_path / "home"
    assert submit(home) == 0
    assert main(["status", str(home), "c0001", "--cancel"]) == 0
    assert "c0001: cancelled" in capsys.readouterr().out


def test_fetch_returns_archived_runs(served_home, capsys):
    assert main(["fetch", str(served_home), "c0001", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["campaign"]["state"] == "archived"
    runs = payload["runs"]
    assert len(runs) == 2
    for run in runs:
        assert run["meta"]["kernel"] == "fib"
        assert "campaign:c0001" in run["meta"]["tags"]


def test_serve_json_report(tmp_path, capsys):
    home = tmp_path / "home"
    assert submit(home) == 0
    capsys.readouterr()  # drain the submit line
    assert main(
        ["serve", str(home), "--until-idle", "--poll-s", "0.01", "--json"]
    ) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["executed"] == 1
    assert payload["idle"] is True
    assert payload["recovery"]["reclaimed"] == []
