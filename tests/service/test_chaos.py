"""Kill-anywhere property: SIGKILL at every transition, then audit.

One scenario per (happy-path edge, before/after phase): a subprocess
serves the campaign and kills itself at the armed transition point, a
second subprocess recovers and finishes, then the parent resubmits
under the original idempotency key and audits the home.  The contract:
the serve process really died by SIGKILL, recovery settled the campaign
``archived``, the resubmit deduplicated, and the audit found no lost or
duplicated work.
"""

import signal

import pytest

from repro.faults.service import chaos_summary, crash_at_every_transition
from repro.service.model import HAPPY_PATH_EDGES


@pytest.mark.slow
def test_kill_at_every_transition(tmp_path):
    results = crash_at_every_transition(str(tmp_path), timeout_s=120.0)
    assert len(results) == 2 * len(HAPPY_PATH_EDGES)
    summary = chaos_summary(results)
    for row in results:
        context = f"{row['edge']}/{row['phase']}:\n{summary}"
        assert row["serve_exit"] == -signal.SIGKILL, context
        assert row["killed"], context
        assert row["recover_exit"] == 0, context
        assert row["final_state"] == "archived", context
        assert row["resubmit_dedup"], context
        assert row["audit_ok"], f"{context}\nproblems: {row['problems']}"


def test_chaos_summary_counts_failures():
    rows = [
        {"edge": "a->b", "phase": "before", "killed": True,
         "final_state": "archived", "audit_ok": True, "resubmit_dedup": True},
        {"edge": "b->c", "phase": "after", "killed": False,
         "final_state": "missing", "audit_ok": False, "resubmit_dedup": False},
    ]
    text = chaos_summary(rows)
    assert "1/2 kill points survived" in text
