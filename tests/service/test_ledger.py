"""Write-ahead ledger: replay, torn lines, versioning, violations."""

import json

import pytest

from repro.errors import LedgerVersionError
from repro.service import LEDGER_VERSION, Ledger, load_ledger
from repro.service.model import CampaignSpec


def spec_dict():
    return CampaignSpec(kind="fault", apps=("fib",), seeds=(0,)).to_dict()


def make_ledger(tmp_path):
    ledger = Ledger(str(tmp_path / "ledger.jsonl"))
    ledger.ensure_header()
    return ledger


def submit(ledger, cid, **extra):
    record = {"type": "submit", "cid": cid, "spec": spec_dict(), "at": 1.0}
    record.update(extra)
    ledger.append(record)


class TestReplay:
    def test_roundtrip(self, tmp_path):
        ledger = make_ledger(tmp_path)
        submit(ledger, "c0001", key="k1", deadline_at=100.0)
        state = load_ledger(ledger.path)
        campaign = state.get("c0001")
        assert campaign is not None
        assert campaign.state == "submitted"
        assert campaign.idempotency_key == "k1"
        assert campaign.deadline_at == 100.0
        assert state.by_key["k1"] == "c0001"

    def test_transitions_apply_in_order(self, tmp_path):
        ledger = make_ledger(tmp_path)
        submit(ledger, "c0001")
        ledger.append({"type": "transition", "cid": "c0001",
                       "from": "submitted", "to": "admitted", "at": 2.0})
        ledger.append({"type": "lease", "cid": "c0001", "owner": "me",
                       "attempt": 1, "expires_at": 60.0, "at": 3.0})
        state = load_ledger(ledger.path)
        campaign = state.get("c0001")
        assert campaign.state == "leased"
        assert campaign.attempts == 1
        assert campaign.lease_owner == "me"
        assert not state.violations

    def test_lease_survives_running_transition(self, tmp_path):
        # leased -> running is the holder starting its own work: the
        # lease must NOT be cleared by that edge.
        ledger = make_ledger(tmp_path)
        submit(ledger, "c0001")
        ledger.append({"type": "transition", "cid": "c0001",
                       "from": "submitted", "to": "admitted", "at": 2.0})
        ledger.append({"type": "lease", "cid": "c0001", "owner": "me",
                       "attempt": 1, "expires_at": 60.0, "at": 3.0})
        ledger.append({"type": "transition", "cid": "c0001",
                       "from": "leased", "to": "running", "at": 4.0})
        campaign = load_ledger(ledger.path).get("c0001")
        assert campaign.state == "running"
        assert campaign.lease_owner == "me"

    def test_torn_trailing_line_is_tolerated(self, tmp_path):
        ledger = make_ledger(tmp_path)
        submit(ledger, "c0001")
        with open(ledger.path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "transition", "cid": "c00')  # SIGKILL here
        state = load_ledger(ledger.path)
        assert state.skipped_lines == 1
        assert state.get("c0001").state == "submitted"

    def test_illegal_edge_is_recorded_as_violation(self, tmp_path):
        ledger = make_ledger(tmp_path)
        submit(ledger, "c0001")
        ledger.append({"type": "transition", "cid": "c0001",
                       "from": "submitted", "to": "running", "at": 2.0})
        state = load_ledger(ledger.path)
        # Applied (recovery reconstructs what happened) but flagged.
        assert state.get("c0001").state == "running"
        assert state.violations

    def test_missing_file_is_empty_state(self, tmp_path):
        state = load_ledger(str(tmp_path / "absent.jsonl"))
        assert not state.campaigns
        assert state.next_campaign_id() == "c0001"


class TestVersioning:
    def test_newer_ledger_is_refused(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        path.write_text(json.dumps(
            {"type": "meta", "version": LEDGER_VERSION + 1}) + "\n")
        with pytest.raises(LedgerVersionError) as excinfo:
            load_ledger(str(path))
        assert excinfo.value.code == "E_LEDGER_VERSION"

    def test_header_written_once(self, tmp_path):
        ledger = make_ledger(tmp_path)
        ledger.ensure_header()  # idempotent
        with open(ledger.path, encoding="utf-8") as handle:
            lines = handle.readlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["version"] == LEDGER_VERSION


class TestCampaignIds:
    def test_ids_are_monotone_over_gaps(self, tmp_path):
        ledger = make_ledger(tmp_path)
        submit(ledger, "c0001")
        submit(ledger, "c0007")
        state = load_ledger(ledger.path)
        assert state.next_campaign_id() == "c0008"
