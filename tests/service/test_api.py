"""Request validation and the dict-shaped gateway facade."""

import pytest

from repro.errors import ValidationError
from repro.service import Gateway, GatewayAPI, parse_submit_request
from repro.supervisor.backoff import FAST_BACKOFF


class TestParseSubmitRequest:
    def test_minimal_fault_request(self):
        parsed = parse_submit_request({"apps": ["fib"]})
        assert parsed["spec"] == {"apps": ["fib"]}
        assert parsed["idempotency_key"] is None
        assert parsed["deadline_s"] is None

    def test_every_problem_reported_at_once(self):
        with pytest.raises(ValidationError) as excinfo:
            parse_submit_request(
                {
                    "apps": ["fib"],
                    "tyop": 1,
                    "seeds": ["x"],
                    "deadline_s": -3,
                    "idempotency_key": "",
                }
            )
        message = str(excinfo.value)
        assert "tyop" in message
        assert "seeds" in message
        assert "deadline_s" in message
        assert "idempotency_key" in message
        assert excinfo.value.code == "E_VALIDATION"

    def test_fault_kind_needs_apps(self):
        with pytest.raises(ValidationError):
            parse_submit_request({})

    def test_cells_kind_needs_cells(self):
        with pytest.raises(ValidationError):
            parse_submit_request({"kind": "cells"})

    def test_gateway_options_split_from_spec(self):
        parsed = parse_submit_request(
            {"apps": ["fib"], "idempotency_key": "k", "deadline_s": 60}
        )
        assert "idempotency_key" not in parsed["spec"]
        assert "deadline_s" not in parsed["spec"]
        assert parsed["idempotency_key"] == "k"
        assert parsed["deadline_s"] == 60.0


class TestGatewayAPI:
    @pytest.fixture()
    def api(self, tmp_path):
        return GatewayAPI(
            Gateway(str(tmp_path / "home"), reclaim_backoff=FAST_BACKOFF)
        )

    def _cells_request(self, n=1):
        return {
            "kind": "cells",
            "cells": [
                {
                    "kind": "call",
                    "cell_id": f"stub{i}",
                    "params": {
                        "target": "repro.supervisor.stubs:ok_cell",
                        "kwargs": {},
                    },
                }
                for i in range(n)
            ],
        }

    def test_submit_status_roundtrip(self, api):
        response = api.submit(self._cells_request())
        assert response["created"] is True
        cid = response["campaign"]["campaign_id"]
        status = api.status(cid)
        assert status["campaign"]["state"] == "submitted"
        listing = api.status()
        assert [c["campaign_id"] for c in listing["campaigns"]] == [cid]

    def test_cancel_reflects_in_status(self, api):
        cid = api.submit(self._cells_request())["campaign"]["campaign_id"]
        assert api.cancel(cid)["campaign"]["state"] == "cancelled"
        assert api.status(cid)["campaign"]["state"] == "cancelled"

    def test_fetch_without_archive_returns_empty_runs(self, api):
        cid = api.submit(self._cells_request())["campaign"]["campaign_id"]
        response = api.fetch(cid)
        assert response["campaign"]["campaign_id"] == cid
        assert response["runs"] == []
