"""Domain model: the transition machine, specs, fingerprints."""

import pytest

from repro.errors import CampaignStateError
from repro.service import (
    CAMPAIGN_STATES,
    HAPPY_PATH_EDGES,
    TERMINAL_STATES,
    VALID_TRANSITIONS,
    CampaignSpec,
    check_transition,
)


class TestTransitions:
    def test_happy_path_edges_are_all_legal(self):
        for frm, to in HAPPY_PATH_EDGES:
            check_transition(frm, to)  # must not raise

    def test_terminal_states_have_no_exits(self):
        for state in TERMINAL_STATES:
            assert VALID_TRANSITIONS[state] == frozenset()
            with pytest.raises(CampaignStateError):
                check_transition(state, "admitted")

    def test_illegal_edge_raises_with_context(self):
        with pytest.raises(CampaignStateError) as excinfo:
            check_transition("submitted", "running", "c0001")
        assert excinfo.value.code == "E_CAMPAIGN_STATE"
        assert excinfo.value.campaign_id == "c0001"
        assert excinfo.value.from_state == "submitted"
        assert excinfo.value.to_state == "running"

    def test_unknown_state_raises(self):
        with pytest.raises(CampaignStateError):
            check_transition("limbo", "admitted")

    def test_reclaim_edges_exist(self):
        # A dead leaseholder's campaign rewinds to the queue, both from
        # leased (claimed, not started) and running (mid-execution).
        check_transition("leased", "admitted")
        check_transition("running", "admitted")

    def test_every_state_is_enumerated(self):
        assert set(VALID_TRANSITIONS) == set(CAMPAIGN_STATES)


class TestCampaignSpec:
    def test_fault_grid_counts_cells(self):
        spec = CampaignSpec(
            kind="fault", apps=("fib", "nqueens"), modes=("none", "drop_events"),
            seeds=(0, 1, 2),
        )
        assert spec.n_cells == 12

    def test_roundtrip_preserves_fingerprint(self):
        spec = CampaignSpec(kind="fault", apps=("fib",), seeds=(3, 4))
        clone = CampaignSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.fingerprint() == spec.fingerprint()

    def test_fingerprint_changes_with_spec(self):
        base = CampaignSpec(kind="fault", apps=("fib",))
        other = CampaignSpec(kind="fault", apps=("fib",), seeds=(1,))
        assert base.fingerprint() != other.fingerprint()

    def test_fault_spec_needs_apps(self):
        with pytest.raises(ValueError):
            CampaignSpec(kind="fault", apps=())

    def test_cells_spec_needs_cells(self):
        with pytest.raises(ValueError):
            CampaignSpec(kind="cells", cells=())

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            CampaignSpec(kind="batch", apps=("fib",))

    def test_build_specs_tags_the_campaign(self):
        spec = CampaignSpec(kind="fault", apps=("fib",), seeds=(0,))
        (cell,) = spec.build_specs("c0042", "/tmp/archive")
        assert "campaign:c0042" in tuple(cell.params.get("archive_tags") or ())

    def test_cells_kind_expands_verbatim(self):
        spec = CampaignSpec(
            kind="cells",
            cells=(
                {
                    "kind": "call",
                    "cell_id": "stub0",
                    "params": {
                        "target": "repro.supervisor.stubs:ok_cell",
                        "kwargs": {},
                    },
                },
            ),
        )
        (cell,) = spec.build_specs("c0001")
        assert cell.cell_id == "stub0"
