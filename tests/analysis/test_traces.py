"""Tests for the trace-based analysis (the paper's Section VII outlook)."""

import pytest

from repro.analysis import run_app
from repro.analysis.traces import (
    management_ratio,
    render_timeline,
    scheduling_latencies,
    sync_point_breakdown,
    task_timeline,
)


@pytest.fixture(scope="module")
def fib_trace():
    result = run_app(
        "fib", size="test", variant="stress", n_threads=4, seed=0, record_events=True
    )
    return result, result.parallel.trace


@pytest.fixture(scope="module")
def strassen_trace():
    result = run_app(
        "strassen", size="test", variant="stress", n_threads=4, seed=0,
        record_events=True,
    )
    return result, result.parallel.trace


def test_breakdown_visits_cover_all_threads(fib_trace):
    _, trace = fib_trace
    visits = sync_point_breakdown(trace)
    assert {v.thread_id for v in visits} == {0, 1, 2, 3}
    for visit in visits:
        assert visit.exit_time >= visit.enter_time
        assert visit.task_execution >= 0
        assert visit.management >= 0
        assert visit.trailing_wait >= 0


def test_breakdown_components_bounded_by_total(fib_trace):
    _, trace = fib_trace
    for visit in sync_point_breakdown(trace):
        parts = visit.task_execution + visit.management + visit.trailing_wait
        assert parts <= visit.total + 1e-6, visit


def test_fragment_time_consistent_with_profile(fib_trace):
    """Trace-derived fragment time == profile's stub accounting."""
    result, trace = fib_trace
    fragments = task_timeline(trace)
    trace_time = sum(f.duration for f in fragments)
    stub_time = sum(
        node.metrics.inclusive_time
        for tree in result.profile.main_trees
        for node in tree.walk()
        if node.is_stub
    )
    assert trace_time == pytest.approx(stub_time, rel=1e-9)


def test_fragment_count_matches_stub_visits(fib_trace):
    result, trace = fib_trace
    fragments = task_timeline(trace)
    stub_fragments = sum(
        node.metrics.visits
        for tree in result.profile.main_trees
        for node in tree.walk()
        if node.is_stub
    )
    assert len(fragments) == stub_fragments


def test_management_ratio_diagnoses_granularity(fib_trace, strassen_trace):
    """Tiny fib tasks: management rivals execution.  Large strassen
    tasks: management is a small fraction -- the ratio the paper wants."""
    _, fib = fib_trace
    _, strassen = strassen_trace
    fib_ratio = management_ratio(fib)["ratio"]
    strassen_ratio = management_ratio(strassen)["ratio"]
    assert fib_ratio > 5 * strassen_ratio
    assert strassen_ratio < 0.2


def test_scheduling_latencies_positive(fib_trace):
    _, trace = fib_trace
    latencies = scheduling_latencies(trace)
    assert latencies
    assert all(l.latency >= 0 for l in latencies)
    assert all(l.region_name in ("barrier", "implicit barrier", "taskwait")
               for l in latencies)


def test_timeline_fragments_non_overlapping_per_thread(fib_trace):
    _, trace = fib_trace
    fragments = task_timeline(trace)
    by_thread = {}
    for fragment in fragments:
        by_thread.setdefault(fragment.thread_id, []).append(fragment)
    for thread_fragments in by_thread.values():
        thread_fragments.sort(key=lambda f: f.start)
        for a, b in zip(thread_fragments, thread_fragments[1:]):
            assert a.end <= b.start + 1e-9, (a, b)


def test_render_timeline_shape(fib_trace):
    _, trace = fib_trace
    text = render_timeline(trace, width=40)
    lines = text.splitlines()
    assert len(lines) == trace.n_threads + 1
    assert all(line.startswith("t") for line in lines[:-1])
    assert "utilization" in lines[-1]


def test_render_timeline_empty_trace():
    from repro.events.stream import ProgramTrace

    assert render_timeline(ProgramTrace(2)) == "(no task fragments)"
