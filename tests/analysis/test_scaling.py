"""Tests for the generalized thread-scaling study."""

import pytest

from repro.analysis.scaling import RegionScaling, ScalingStudy, scaling_study


@pytest.fixture(scope="module")
def nqueens_study():
    return scaling_study("nqueens", size="test", threads=(1, 2, 8))


def test_study_shape(nqueens_study):
    assert nqueens_study.app == "nqueens"
    assert nqueens_study.threads == (1, 2, 8)
    assert set(nqueens_study.kernel_times) == {1, 2, 8}
    names = {r.region for r in nqueens_study.regions}
    assert "nqueens_task" in names
    assert "taskwait" in names


def test_task_region_flat_management_grows(nqueens_study):
    task = nqueens_study.region("nqueens_task")
    assert task.classification == "flat"
    assert task.growth == pytest.approx(1.0, rel=0.05)
    taskwait = nqueens_study.region("taskwait")
    create = nqueens_study.region("create@nqueens_task")
    assert taskwait.classification == "growing"
    assert create.classification == "growing"


def test_classified_filter(nqueens_study):
    growing = nqueens_study.classified("growing")
    assert all(r.classification == "growing" for r in growing)
    assert nqueens_study.region("taskwait") in growing


def test_diagnosis_detects_management_bottleneck():
    study = scaling_study("nqueens", size="small", threads=(1, 8))
    text = study.diagnosis()
    assert "management" in text
    assert "granularity" in text


def test_diagnosis_detects_scaling_code():
    study = scaling_study("strassen", size="test", threads=(1, 4))
    assert "scales" in study.diagnosis()


def test_unknown_region_raises(nqueens_study):
    with pytest.raises(KeyError):
        nqueens_study.region("bogus")


def test_region_scaling_growth_edge_cases():
    zero_start = RegionScaling("r", {1: 0.0, 8: 5.0})
    assert zero_start.growth == float("inf")
    all_zero = RegionScaling("r", {1: 0.0, 8: 0.0})
    assert all_zero.growth == 1.0
    shrinking = RegionScaling("r", {1: 10.0, 8: 2.0})
    assert shrinking.classification == "shrinking"
