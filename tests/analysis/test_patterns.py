"""Tests for automatic pattern detection (the Scalasca analogue)."""

import pytest

from repro.analysis import run_app
from repro.analysis.patterns import PatternMatch, detect_patterns


@pytest.fixture(scope="module")
def fib_stress():
    return run_app(
        "fib", size="small", variant="stress", n_threads=4, seed=0,
        record_events=True,
    )


@pytest.fixture(scope="module")
def strassen_healthy():
    return run_app("strassen", size="small", variant="optimized", n_threads=4, seed=0)


def names(matches):
    return {m.name for m in matches}


def test_fib_stress_fires_the_expected_patterns(fib_stress):
    matches = detect_patterns(fib_stress)
    found = names(matches)
    assert "small-task-storm" in found
    assert "lock-thrashing" in found
    # trace was recorded, so the trace-based detector ran too
    assert "late-producer" in found
    storm = next(m for m in matches if m.name == "small-task-storm")
    assert storm.severity > 0.5
    assert storm.evidence["instances"] == 3193


def test_healthy_code_is_mostly_quiet(strassen_healthy):
    matches = detect_patterns(strassen_healthy)
    found = names(matches)
    assert "small-task-storm" not in found
    assert "creation-bottleneck" not in found
    # any surviving matches are weak
    assert all(m.severity < 0.5 for m in matches)


def test_single_producer_fires_creation_bottleneck():
    result = run_app("sparselu", size="small", variant="single", n_threads=4, seed=0)
    matches = detect_patterns(result, severity_floor=0.02)
    assert "creation-bottleneck" in names(matches)


def test_matches_sorted_by_severity(fib_stress):
    matches = detect_patterns(fib_stress)
    severities = [m.severity for m in matches]
    assert severities == sorted(severities, reverse=True)


def test_severity_floor_filters(fib_stress):
    all_matches = detect_patterns(fib_stress, severity_floor=0.0)
    strong = detect_patterns(fib_stress, severity_floor=0.5)
    assert len(strong) <= len(all_matches)
    assert all(m.severity >= 0.5 for m in strong)


def test_requires_instrumented_run():
    result = run_app("fib", size="test", n_threads=2, instrument=False)
    with pytest.raises(ValueError, match="instrumented"):
        detect_patterns(result)


def test_no_trace_skips_trace_patterns():
    result = run_app("fib", size="test", variant="stress", n_threads=2)
    matches = detect_patterns(result, severity_floor=0.0)
    assert "late-producer" not in names(matches)


def test_pattern_match_str():
    match = PatternMatch("demo", 0.42, "something happened")
    assert str(match) == "[0.42] demo: something happened"
