"""Tests for the one-stop report generator."""

import pytest

from repro.analysis import run_app
from repro.analysis.report import generate_report
from repro.cli import main


@pytest.fixture(scope="module")
def traced_result():
    return run_app(
        "nqueens", size="test", variant="stress", n_threads=2, seed=0,
        record_events=True,
    )


def test_report_contains_all_sections(traced_result):
    text = generate_report(traced_result, title="unit test")
    for heading in (
        "# Performance report",
        "## Run summary",
        "## Where the threads' time went",
        "## Task constructs",
        "## Scheduling points",
        "## Granularity advisor",
        "## Task creation balance",
        "## Detected patterns",
        "## Profiler memory",
        "## Trace analysis",
    ):
        assert heading in text, heading
    assert "nqueens_task" in text
    assert "unit test" in text


def test_report_without_trace_skips_trace_section():
    result = run_app("fib", size="test", variant="optimized", n_threads=2)
    text = generate_report(result)
    assert "## Trace analysis" not in text
    assert "## Task constructs" in text


def test_report_uninstrumented_is_minimal():
    result = run_app("fib", size="test", n_threads=2, instrument=False)
    text = generate_report(result)
    assert "uninstrumented run" in text
    assert "## Task constructs" not in text


def test_report_time_shares_sum_to_100(traced_result):
    text = generate_report(traced_result)
    section = text.split("## Where the threads' time went")[1]
    section = section.split("##")[0]
    shares = [
        float(line.rsplit(None, 1)[-1].rstrip("%"))
        for line in section.splitlines()
        if line.strip().endswith("%")
    ]
    assert sum(shares) == pytest.approx(100.0, abs=0.5)


def test_cli_report_command(tmp_path, capsys):
    target = tmp_path / "report.md"
    code = main(
        ["report", "fib", "--size", "test", "--variant", "stress",
         "--threads", "2", "--output", str(target)]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "# Performance report" in out
    assert target.read_text().startswith("# Performance report")
