"""Tests for the task-creation bottleneck analysis (Section III, item 3)."""

import pytest

from repro.analysis import run_app
from repro.analysis.bottleneck import (
    CreationBalance,
    creation_balance,
    diagnose_creation_bottleneck,
)


def test_sparselu_single_is_fully_imbalanced():
    result = run_app("sparselu", size="test", variant="single", n_threads=4)
    balance = creation_balance(result.profile)
    assert balance.imbalance == pytest.approx(1.0)
    nonzero = [c for c in balance.creations_per_thread if c > 0]
    assert len(nonzero) == 1
    assert balance.total_creations == result.parallel.completed_tasks


def test_sparselu_for_distributes_creation():
    result = run_app("sparselu", size="small", variant="for", n_threads=4)
    balance = creation_balance(result.profile)
    assert balance.imbalance < 0.5
    assert sum(1 for c in balance.creations_per_thread if c > 0) >= 3


def test_diagnosis_fires_only_on_imbalance():
    single = run_app("sparselu", size="small", variant="single", n_threads=4)
    distributed = run_app("sparselu", size="small", variant="for", n_threads=4)
    assert diagnose_creation_bottleneck(single.profile) is not None
    assert diagnose_creation_bottleneck(distributed.profile) is None


def test_recursive_creation_is_balanced_with_stealing():
    """fib spreads creation because stolen subtrees create their own."""
    result = run_app("fib", size="small", variant="stress", n_threads=4, seed=1)
    balance = creation_balance(result.profile)
    assert balance.imbalance < 0.9
    assert balance.total_creations == result.parallel.completed_tasks


def test_diagnosis_quiet_on_tiny_runs():
    result = run_app("fib", size="test", variant="optimized", n_threads=1,
                     program_kwargs={"cutoff": 1})
    # 3 creations on one thread: technically imbalanced, but below the
    # min_creations floor -> no finding.
    assert diagnose_creation_bottleneck(result.profile, min_creations=8) is None


def test_balance_edge_cases():
    empty = CreationBalance([0, 0], [0.0, 0.0])
    assert empty.imbalance == 0.0
    assert empty.dominant_thread is None
    single_thread = CreationBalance([10], [1.0])
    assert single_thread.imbalance == 0.0
    even = CreationBalance([5, 5], [1.0, 1.0])
    assert even.imbalance == pytest.approx(0.0)
    skewed = CreationBalance([10, 0], [1.0, 0.0])
    assert skewed.imbalance == pytest.approx(1.0)
    assert skewed.dominant_thread == 0
