"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def test_list_prints_all_kernels(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out.split()
    assert "fib" in out and "sparselu" in out and "uts" in out
    assert len(out) >= 10  # the paper's nine plus registered extras


def test_run_summary_and_exit_code(capsys):
    code = main(["run", "fib", "--size", "test", "--threads", "2"])
    out = capsys.readouterr().out
    assert code == 0
    assert "verified=True" in out
    assert "work" in out and "instr" in out


def test_run_render_and_json_export(tmp_path, capsys):
    target = tmp_path / "profile.json"
    code = main(
        [
            "run",
            "fib",
            "--size",
            "test",
            "--variant",
            "stress",
            "--render",
            "--json",
            str(target),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "main tree" in out
    data = json.loads(target.read_text())
    assert data["format"] == 1


def test_run_uninstrumented(capsys):
    code = main(["run", "sort", "--size", "test", "--no-instrument"])
    out = capsys.readouterr().out
    assert code == 0
    assert "max concurrent" not in out  # no profile without instrumentation


def test_run_trace_timeline(capsys):
    code = main(
        ["run", "fib", "--size", "test", "--variant", "stress", "--trace-timeline"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "utilization" in out
    assert "management/execution ratio" in out


def test_overhead_table(capsys):
    code = main(
        ["overhead", "fib", "--size", "test", "--variant", "stress",
         "--threads", "1,2"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "1 thr" in out and "2 thr" in out and "fib" in out


def test_advise_reports_findings(capsys):
    code = main(["advise", "fib", "--size", "test", "--variant", "stress"])
    out = capsys.readouterr().out
    assert code == 0
    assert "[critical]" in out or "[warning]" in out


@pytest.mark.parametrize("artifact", ["table1", "table3", "sec6"])
def test_paper_artifacts(capsys, artifact):
    code = main(["paper", artifact, "--size", "test"])
    out = capsys.readouterr().out
    assert code == 0
    assert artifact in out


def test_bad_threads_argument_rejected():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["overhead", "fib", "--threads", "x,y"])


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["frobnicate"])


def test_scaling_command(capsys):
    code = main(["scaling", "nqueens", "--size", "test", "--threads", "1,2"])
    out = capsys.readouterr().out
    assert code == 0
    assert "nqueens_task" in out
    assert "flat" in out


def test_unknown_kernel_exits_2_with_suggestion(capsys):
    code = main(["run", "fibb", "--size", "test"])
    err = capsys.readouterr().err
    assert code == 2
    assert "unknown kernel 'fibb'" in err
    assert "did you mean fib" in err


@pytest.mark.parametrize(
    "argv",
    [
        ["report", "qneens", "--size", "test"],
        ["advise", "qneens", "--size", "test"],
        ["overhead", "fib", "qneens", "--size", "test"],
        ["scaling", "qneens", "--size", "test"],
        ["faults", "--apps", "qneens"],
    ],
)
def test_unknown_kernel_rejected_everywhere(argv, capsys):
    code = main(argv)
    err = capsys.readouterr().err
    assert code == 2
    assert "unknown kernel 'qneens'" in err
    assert "nqueens" in err


def test_run_tolerate_errors_salvages_faulty_run(capsys):
    code = main(
        ["run", "fib", "--size", "test", "--threads", "2",
         "--fault-mode", "drop_events", "--tolerate-errors"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "status=partial" in out
    assert "partial profile" in out


def test_run_strict_fault_reports_precise_error(capsys):
    code = main(
        ["run", "fib", "--size", "test", "--threads", "2",
         "--fault-mode", "task_exception", "--strict"]
    )
    err = capsys.readouterr().err
    assert code == 1
    assert "FaultInjectionError" in err


def test_run_strict_healthy_run_passes_validation(capsys):
    code = main(["run", "fib", "--size", "test", "--threads", "2", "--strict"])
    assert code == 0
    assert "verified=True" in capsys.readouterr().out


def test_tolerate_and_strict_are_mutually_exclusive():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "fib", "--tolerate-errors", "--strict"])


def test_faults_campaign_smoke(capsys):
    code = main(
        ["faults", "--apps", "fib", "--modes", "drop_events,task_exception",
         "--seeds", "0", "--size", "test"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "2/2 cells degraded gracefully" in out


def test_faults_rejects_unknown_mode(capsys):
    code = main(["faults", "--modes", "cosmic_rays"])
    assert code == 2
    assert "unknown fault mode" in capsys.readouterr().err


def test_diff_command(tmp_path, capsys):
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    main(["run", "fib", "--size", "test", "--variant", "stress", "--json", str(a)])
    main(["run", "fib", "--size", "test", "--variant", "optimized", "--json", str(b)])
    capsys.readouterr()
    code = main(["diff", str(a), str(b), "--limit", "3"])
    out = capsys.readouterr().out
    assert code == 0
    assert "->" in out
