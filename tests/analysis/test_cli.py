"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def test_list_prints_all_kernels(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out.split()
    assert "fib" in out and "sparselu" in out and "uts" in out
    assert len(out) >= 10  # the paper's nine plus registered extras


def test_run_summary_and_exit_code(capsys):
    code = main(["run", "fib", "--size", "test", "--threads", "2"])
    out = capsys.readouterr().out
    assert code == 0
    assert "verified=True" in out
    assert "work" in out and "instr" in out


def test_run_render_and_json_export(tmp_path, capsys):
    target = tmp_path / "profile.json"
    code = main(
        [
            "run",
            "fib",
            "--size",
            "test",
            "--variant",
            "stress",
            "--render",
            "--json",
            str(target),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "main tree" in out
    data = json.loads(target.read_text())
    assert data["format"] == 1


def test_run_uninstrumented(capsys):
    code = main(["run", "sort", "--size", "test", "--no-instrument"])
    out = capsys.readouterr().out
    assert code == 0
    assert "max concurrent" not in out  # no profile without instrumentation


def test_run_trace_timeline(capsys):
    code = main(
        ["run", "fib", "--size", "test", "--variant", "stress", "--trace-timeline"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "utilization" in out
    assert "management/execution ratio" in out


def test_overhead_table(capsys):
    code = main(
        ["overhead", "fib", "--size", "test", "--variant", "stress",
         "--threads", "1,2"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "1 thr" in out and "2 thr" in out and "fib" in out


def test_advise_reports_findings(capsys):
    code = main(["advise", "fib", "--size", "test", "--variant", "stress"])
    out = capsys.readouterr().out
    assert code == 0
    assert "[critical]" in out or "[warning]" in out


@pytest.mark.parametrize("artifact", ["table1", "table3", "sec6"])
def test_paper_artifacts(capsys, artifact):
    code = main(["paper", artifact, "--size", "test"])
    out = capsys.readouterr().out
    assert code == 0
    assert artifact in out


def test_bad_threads_argument_rejected():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["overhead", "fib", "--threads", "x,y"])


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["frobnicate"])


def test_scaling_command(capsys):
    code = main(["scaling", "nqueens", "--size", "test", "--threads", "1,2"])
    out = capsys.readouterr().out
    assert code == 0
    assert "nqueens_task" in out
    assert "flat" in out


def test_diff_command(tmp_path, capsys):
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    main(["run", "fib", "--size", "test", "--variant", "stress", "--json", str(a)])
    main(["run", "fib", "--size", "test", "--variant", "optimized", "--json", str(b)])
    capsys.readouterr()
    code = main(["diff", str(a), str(b), "--limit", "3"])
    out = capsys.readouterr().out
    assert code == 0
    assert "->" in out
