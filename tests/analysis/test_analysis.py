"""Tests for the analysis layer (experiment runner, overhead, statistics)."""

import pytest

from repro.analysis import (
    ascii_bar_chart,
    cutoff_speedup,
    format_table,
    max_concurrent_tasks,
    measure_overhead,
    nqueens_depth_table,
    nqueens_region_times,
    run_app,
    task_statistics,
)
from repro.analysis.advisor import advise
from repro.analysis.charts import grouped_bar_chart, sparkline
from repro.analysis.nqueens_study import creation_vs_execution
from repro.analysis.overhead import classify_bimodal, overhead_sweep
from repro.analysis.tables import format_percent
from repro.analysis.taskstats import combined_task_stats, granularity_ratios


# ----------------------------------------------------------------------
# run_app
# ----------------------------------------------------------------------
def test_run_app_returns_verified_result():
    result = run_app("fib", size="test", variant="stress", n_threads=2, seed=0)
    assert result.verified
    assert result.kernel_time > 0
    assert result.profile is not None
    assert result.result_value == 55  # fib(10)


def test_run_app_uninstrumented_has_no_profile():
    result = run_app("fib", size="test", n_threads=2, instrument=False)
    assert result.profile is None
    assert result.bucket_total("instr") == 0.0


def test_run_app_forwards_program_kwargs():
    result = run_app(
        "nqueens",
        size="test",
        variant="stress",
        n_threads=1,
        program_kwargs={"depth_parameter": True},
    )
    by_param = result.profile.task_trees_by_parameter("nqueens_task")
    assert len(by_param) > 1  # split by depth


# ----------------------------------------------------------------------
# Overhead
# ----------------------------------------------------------------------
def test_measure_overhead_points_shape():
    points = measure_overhead("fib", size="test", variant="stress", threads=(1, 2))
    assert [p.n_threads for p in points] == [1, 2]
    for p in points:
        assert p.uninstrumented > 0
        assert p.instrumented > 0
    # tiny tasks, one thread: overhead must be clearly positive
    assert points[0].overhead > 0.5


def test_overhead_shadowing_with_threads():
    """The paper's Fig. 14 effect: tiny-task overhead collapses when the
    runtime's own lock contention dominates."""
    points = measure_overhead("fib", size="test", variant="stress", threads=(1, 4))
    assert points[0].overhead > points[-1].overhead


def test_overhead_sweep_covers_all_apps():
    sweep = overhead_sweep(["fib", "strassen"], size="test", threads=(1,))
    assert set(sweep) == {"fib", "strassen"}


def test_measure_overhead_multi_seed_median():
    points = measure_overhead(
        "fib", size="test", variant="stress", threads=(2,), seeds=(0, 1, 2)
    )
    assert len(points[0].instrumented_samples) == 3
    assert min(points[0].instrumented_samples) <= points[0].instrumented
    assert points[0].instrumented <= max(points[0].instrumented_samples)


def test_measure_overhead_rejects_bad_aggregate():
    with pytest.raises(ValueError, match="aggregate"):
        measure_overhead("fib", size="test", aggregate="max")


def test_classify_bimodal():
    assert classify_bimodal([1.0, 1.1, 2.9, 3.0]) == ([1.0, 1.1], [2.9, 3.0])
    assert classify_bimodal([1.0, 1.05, 1.1]) is None
    assert classify_bimodal([1.0]) is None


# ----------------------------------------------------------------------
# Task statistics (Table I machinery)
# ----------------------------------------------------------------------
def test_task_statistics_rows():
    rows = task_statistics(["fib", "strassen"], size="test", n_threads=2)
    by_code = {r.code: r for r in rows}
    assert by_code["fib"].task_count == 177
    assert by_code["fib"].mean_time_us > 0
    assert by_code["strassen"].task_count == 57


def test_granularity_ratios_relative_to_smallest():
    rows = task_statistics(["fib", "strassen"], size="test", n_threads=2)
    ratios = granularity_ratios(rows)
    assert min(ratios.values()) == 1.0


def test_combined_task_stats_requires_profile():
    result = run_app("fib", size="test", n_threads=1, instrument=False)
    with pytest.raises(ValueError, match="instrumented"):
        combined_task_stats(result)


# ----------------------------------------------------------------------
# Concurrency (Table II machinery)
# ----------------------------------------------------------------------
def test_max_concurrent_alignment_is_one():
    assert max_concurrent_tasks("alignment", size="test", n_threads=2) == 1


def test_cutoff_reduces_max_concurrent():
    stress = max_concurrent_tasks("fib", size="test", variant="stress", n_threads=2)
    optimized = max_concurrent_tasks("fib", size="test", variant="optimized", n_threads=2)
    assert optimized <= stress


# ----------------------------------------------------------------------
# nqueens study (Tables III/IV, Section VI)
# ----------------------------------------------------------------------
def test_nqueens_region_times_task_flat_barrier_grows():
    rows = nqueens_region_times(size="test", threads=(1, 4))
    assert rows[0].task == pytest.approx(rows[1].task, rel=0.05)
    assert rows[1].barrier > rows[0].barrier


def test_nqueens_depth_table_monotone_decreasing_mean():
    rows = nqueens_depth_table(size="test", n_threads=2)
    assert [r.depth for r in rows] == sorted(r.depth for r in rows)
    means = [r.mean_time_us for r in rows]
    # Mean task runtime decreases with depth (Table IV's key shape).
    assert means[0] > means[-1]
    total_tasks = sum(r.task_count for r in rows)
    assert total_tasks > 0


def test_cutoff_speedup_is_positive():
    comparison = cutoff_speedup(size="test", n_threads=4, cutoff=2)
    assert comparison.speedup > 1.0


def test_creation_vs_execution_diagnosis():
    numbers = creation_vs_execution(size="test", n_threads=2)
    assert numbers["task_instances"] > 0
    assert numbers["mean_creation_us"] > 0
    assert numbers["mean_task_exclusive_us"] > 0


# ----------------------------------------------------------------------
# Advisor
# ----------------------------------------------------------------------
def test_advisor_flags_tiny_fib_tasks():
    result = run_app("fib", size="test", variant="stress", n_threads=2)
    findings = advise(result.profile)
    kinds = {f.kind for f in findings}
    assert "small-tasks" in kinds
    assert str(findings[0]).startswith("[")


def test_advisor_quiet_on_large_tasks():
    result = run_app("strassen", size="small", variant="optimized", n_threads=2)
    findings = advise(result.profile, granularity_floor_us=1.0)
    assert not [f for f in findings if f.kind == "small-tasks"]


# ----------------------------------------------------------------------
# Formatting helpers
# ----------------------------------------------------------------------
def test_format_table_basic():
    text = format_table(["a", "bb"], [[1, 2.5], [30, 4]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[2] and "bb" in lines[2]
    assert len(lines) == 6


def test_format_table_rejects_ragged_rows():
    with pytest.raises(ValueError, match="cells"):
        format_table(["a"], [[1, 2]])


def test_format_percent():
    assert format_percent(0.0634) == "+6.3%"
    assert format_percent(-0.05) == "-5.0%"


def test_ascii_bar_chart_renders_negative_bars():
    chart = ascii_bar_chart({"x": 5.0, "y": -3.0}, width=10, unit="%")
    assert "#" in chart and "-" in chart


def test_grouped_bar_chart_and_sparkline():
    chart = grouped_bar_chart({"fib": {1: 100.0, 2: 50.0}}, title="demo")
    assert "fib" in chart and "1 thr" in chart
    assert sparkline([1, 2, 3]) != ""
    assert sparkline([]) == ""
    assert sparkline([2, 2]) == "▁▁"
