"""BOTS variants, sizes, and cross-seed robustness."""

import pytest

from repro.analysis.experiment import run_app
from repro.bots import get_program
from repro.bots.common import first_result
from repro.runtime import RuntimeConfig
from repro.runtime.runtime import run_parallel


def run(name, variant="optimized", n_threads=2, seed=0, size="test", **kwargs):
    prog = get_program(name, size=size, variant=variant, **kwargs)
    config = RuntimeConfig(n_threads=n_threads, instrument=False, seed=seed)
    result = run_parallel(prog.body, config=config, name=prog.label)
    return prog, result


# ----------------------------------------------------------------------
# sparselu variants
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n_threads", [1, 2, 4])
def test_sparselu_for_variant_thread_counts(n_threads):
    prog, result = run("sparselu", variant="for", n_threads=n_threads)
    assert prog.verify(result), f"sparselu/for at {n_threads} threads"


def test_sparselu_block_kernels_match_dense_lu():
    """lu0/fwd/bdiv/bmod on a single full matrix equal a dense in-place LU."""
    import numpy as np

    from repro.bots import sparselu

    rng = np.random.default_rng(3)
    n = 12
    matrix = rng.standard_normal((n, n)) + np.eye(n) * 50.0
    reference = matrix.copy()
    sparselu.lu0(reference)
    rebuilt = sparselu.lu_to_lu_product(reference)
    assert np.allclose(rebuilt, matrix, rtol=1e-9, atol=1e-9)


def test_sparselu_genmat_deterministic():
    import numpy as np

    from repro.bots import sparselu

    a = sparselu.genmat(4, 8, 5)
    b = sparselu.genmat(4, 8, 5)
    assert np.allclose(sparselu.to_dense(a, 8), sparselu.to_dense(b, 8))


def test_sparselu_rejects_unknown_variant():
    with pytest.raises(ValueError, match="sparselu variant"):
        get_program("sparselu", variant="magic")


def test_sparselu_fill_in_occurs():
    """bmod fills blocks that were empty in the original pattern."""
    from repro.bots import sparselu

    blocks = sparselu.genmat(4, 8)
    empty_before = sum(1 for row in blocks for b in row if b is None)
    prog = get_program("sparselu", size="test", variant="single")
    config = RuntimeConfig(n_threads=1, instrument=False, seed=0)
    run_parallel(prog.body, config=config)
    assert empty_before > 0  # the pattern is actually sparse


# ----------------------------------------------------------------------
# Thresholds and cut-off levels change task counts, not results
# ----------------------------------------------------------------------
@pytest.mark.parametrize("threshold", [32, 64, 128])
def test_sort_threshold_sweep(threshold):
    prog, result = run("sort", threshold=threshold)
    assert prog.verify(result)
    assert result.completed_tasks == prog.meta["expected_tasks"]


@pytest.mark.parametrize("threshold", [8, 16, 32])
def test_fft_threshold_sweep(threshold):
    prog, result = run("fft", threshold=threshold)
    assert prog.verify(result)


@pytest.mark.parametrize("cutoff", [1, 2, 3])
def test_health_cutoff_sweep(cutoff):
    prog, result = run("health", cutoff=cutoff)
    assert prog.verify(result)


def test_fib_task_count_decreases_with_cutoff():
    prog, nocutoff = run("fib", variant="stress")
    assert prog.verify(nocutoff)
    counts = [nocutoff.completed_tasks]
    for cutoff in (6, 4, 2):
        prog, result = run("fib", cutoff=cutoff)
        assert prog.verify(result)
        counts.append(result.completed_tasks)
    assert counts == sorted(counts, reverse=True)
    assert counts[-1] < counts[0]


# ----------------------------------------------------------------------
# Seeds only change schedules, never results
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ["fib", "sort", "nqueens", "health"])
def test_results_invariant_across_seeds(name):
    values = set()
    for seed in range(4):
        prog, result = run(name, variant="stress", n_threads=4, seed=seed)
        value = first_result(result)
        values.add(repr(value) if not isinstance(value, (int, float)) else value)
    assert len(values) == 1


# ----------------------------------------------------------------------
# Small sizes smoke (medium is covered by the benchmarks)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ["fib", "sort", "strassen", "fft", "alignment"])
def test_small_size_verified(name):
    prog, result = run(name, size="small", n_threads=4)
    assert prog.verify(result)


def test_meta_describes_program():
    prog = get_program("fib", size="small", variant="optimized")
    assert prog.meta["n"] == 16
    assert prog.meta["cutoff"] is not None
    assert prog.label == "fib/cutoff"
    assert "BotsProgram" in repr(prog)


def test_run_app_reports_stolen_tasks_under_contention():
    result = run_app("strassen", size="test", variant="stress", n_threads=4,
                     instrument=False)
    assert result.parallel.tasks_stolen > 0


# ----------------------------------------------------------------------
# alignment creation variants
# ----------------------------------------------------------------------
@pytest.mark.parametrize("creation", ["single", "for"])
@pytest.mark.parametrize("n_threads", [1, 2, 4])
def test_alignment_creation_variants(creation, n_threads):
    prog = get_program("alignment", size="test", creation=creation)
    config = RuntimeConfig(n_threads=n_threads, instrument=False, seed=0)
    result = run_parallel(prog.body, config=config, name=prog.label)
    assert prog.verify(result)


def test_alignment_for_distributes_creation():
    from repro.analysis.bottleneck import creation_balance
    from repro.analysis.experiment import run_program

    single = run_program(
        get_program("alignment", size="small", creation="single"), n_threads=4
    )
    distributed = run_program(
        get_program("alignment", size="small", creation="for"), n_threads=4
    )
    assert creation_balance(single.profile).imbalance > 0.9
    assert creation_balance(distributed.profile).imbalance < 0.3


def test_alignment_rejects_unknown_creation_mode():
    with pytest.raises(ValueError, match="creation mode"):
        get_program("alignment", size="test", creation="magic")
