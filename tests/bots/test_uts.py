"""Tests for the UTS extra kernel (unbalanced tree search)."""

import pytest

from repro.bots import get_program
from repro.bots.common import first_result
from repro.bots.uts import ROOT_CHILDREN, child_count, child_id, count_serial
from repro.runtime import RuntimeConfig
from repro.runtime.runtime import run_parallel


def run(variant="optimized", n_threads=4, seed=0, size="test", **kwargs):
    prog = get_program("uts", size=size, variant=variant, **kwargs)
    config = RuntimeConfig(n_threads=n_threads, instrument=False, seed=seed)
    return prog, run_parallel(prog.body, config=config, name=prog.label)


def test_tree_model_is_deterministic():
    assert child_count(12345, 70, 4) == child_count(12345, 70, 4)
    assert child_id(1, 0) != child_id(1, 1)
    assert count_serial(42, 70, 4, 8) == count_serial(42, 70, 4, 8)


def test_child_count_bounded_by_m_max():
    for node in range(500):
        assert 0 <= child_count(node, 95, 3) <= 3


def test_tree_is_actually_unbalanced():
    """Sibling subtrees differ in size by large factors."""
    sizes = [
        count_serial(child_id(42, i), 70, 4, 12, depth=1) for i in range(ROOT_CHILDREN)
    ]
    assert max(sizes) > 3 * min(sizes), sizes


@pytest.mark.parametrize("n_threads", [1, 2, 4])
@pytest.mark.parametrize("variant", ["stress", "optimized"])
def test_uts_counts_correctly(n_threads, variant):
    prog, result = run(variant=variant, n_threads=n_threads)
    assert prog.verify(result)
    assert first_result(result) == prog.meta["expected_nodes"]


def test_cutoff_cuts_task_count():
    _, stress = run("stress", n_threads=2)
    _, optimized = run("optimized", n_threads=2)
    assert optimized.completed_tasks < stress.completed_tasks / 10
    assert first_result(stress) == first_result(optimized)


def test_unbalanced_tree_forces_stealing():
    """The whole point of UTS: static splitting cannot balance it."""
    _, result = run("optimized", n_threads=4, seed=3)
    assert result.tasks_stolen > 5


def test_results_invariant_across_seeds():
    values = {first_result(run("optimized", seed=seed)[1]) for seed in range(4)}
    assert len(values) == 1


def test_uts_listed_as_extra_not_in_paper_nine():
    from repro.bots.registry import ALL_KERNELS, EXTRA_KERNELS, list_programs

    assert "uts" in list_programs()
    assert "uts" in EXTRA_KERNELS
    assert "uts" not in ALL_KERNELS
    assert len(ALL_KERNELS) == 9
