"""Functional correctness of each BOTS kernel (real results, verified).

Kernels run at size 'test' across thread counts; every run must produce
the kernel's ground-truth answer regardless of schedule.
"""

import pytest

from repro.bots import get_program, list_programs
from repro.bots.common import first_result
from repro.runtime import RuntimeConfig
from repro.runtime.runtime import run_parallel


def run(name, variant="optimized", n_threads=2, seed=0, size="test", **kwargs):
    prog = get_program(name, size=size, variant=variant, **kwargs)
    config = RuntimeConfig(n_threads=n_threads, instrument=False, seed=seed)
    result = run_parallel(prog.body, config=config, name=prog.label)
    return prog, result


def test_registry_lists_all_nine_kernels_plus_extras():
    programs = list_programs()
    for name in (
        "alignment",
        "fft",
        "fib",
        "floorplan",
        "health",
        "nqueens",
        "sort",
        "sparselu",
        "strassen",
    ):
        assert name in programs
    # extensions beyond the paper's nine are registered too
    assert "uts" in programs


def test_unknown_kernel_and_variant_rejected():
    with pytest.raises(KeyError, match="unknown BOTS kernel"):
        get_program("mandelbrot")
    with pytest.raises(ValueError, match="unknown variant"):
        get_program("fib", variant="turbo")


@pytest.mark.parametrize("name", list_programs())
@pytest.mark.parametrize("n_threads", [1, 4])
def test_optimized_variant_correct(name, n_threads):
    prog, result = run(name, "optimized", n_threads=n_threads)
    assert prog.verify(result), f"{prog.label} produced a wrong result"


@pytest.mark.parametrize("name", list_programs())
def test_stress_variant_correct(name):
    prog, result = run(name, "stress", n_threads=2)
    assert prog.verify(result)


@pytest.mark.parametrize("name", ["fib", "nqueens", "sort", "strassen", "fft"])
def test_task_counts_match_analytic_prediction(name):
    for variant in ("optimized", "stress"):
        prog, result = run(name, variant, n_threads=2)
        assert result.completed_tasks == prog.meta["expected_tasks"], prog.label


def test_fib_value_and_task_count_formulas():
    from repro.bots.fib import call_count, fib_value, task_count

    assert [fib_value(i) for i in range(8)] == [0, 1, 1, 2, 3, 5, 8, 13]
    assert call_count(5) == 15  # 2*F(6)-1
    assert task_count(5, None) == 15
    assert task_count(5, 0) == 1  # cut-off at the root


def test_nqueens_serial_solver_matches_known_counts():
    from repro.bots.nqueens import SOLUTIONS, solve_serial

    for n in (4, 5, 6, 7, 8):
        solutions, nodes = solve_serial(n, ())
        assert solutions == SOLUTIONS[n]
        assert nodes > solutions


def test_nqueens_cutoff_result_independent_of_cutoff_level():
    results = set()
    for cutoff in (None, 1, 2, 3):
        prog, result = run("nqueens", "optimized", n_threads=2, cutoff=cutoff)
        results.add(first_result(result))
    assert len(results) == 1


def test_sort_actually_sorts():
    prog, result = run("sort", "optimized", n_threads=2)
    output = first_result(result)
    assert output == sorted(output)
    assert len(output) == prog.meta["n"]


def test_strassen_matches_numpy():
    import numpy as np

    prog, result = run("strassen", "stress", n_threads=2)
    from repro.bots.strassen import make_inputs

    a, b = make_inputs(prog.meta["n"])
    assert np.allclose(first_result(result), a @ b, rtol=1e-6, atol=1e-6)


def test_sparselu_both_variants_factorize():
    for variant in ("single", "for"):
        prog, result = run("sparselu", variant=variant, n_threads=2)
        assert prog.verify(result), f"sparselu/{variant}"


def test_floorplan_finds_optimum_for_every_seed():
    from repro.bots.floorplan import CELL_SETS, solve_serial

    optimal, _ = solve_serial(CELL_SETS[5], 6)
    for seed in range(3):
        prog, result = run("floorplan", "stress", n_threads=4, seed=seed)
        assert first_result(result) == optimal


def test_health_total_schedule_independent():
    values = set()
    for n_threads in (1, 2, 4):
        for seed in (0, 1):
            _, result = run("health", "stress", n_threads=n_threads, seed=seed)
            values.add(first_result(result))
    assert len(values) == 1


def test_alignment_scores_match_serial_dp():
    from repro.bots.alignment import expected_scores, make_sequences

    prog, result = run("alignment", n_threads=2)
    sequences = make_sequences(prog.meta["sequences"], prog.meta["length"])
    assert first_result(result) == expected_scores(sequences)


def test_alignment_no_nested_tasks():
    """Alignment tasks never suspend: Table II reports max-concurrent 1."""
    prog = get_program("alignment", size="test")
    config = RuntimeConfig(n_threads=2, instrument=True, seed=0)
    result = run_parallel(prog.body, config=config)
    assert result.profile.max_concurrent_tasks_per_thread() == 1


def test_fft_matches_numpy():
    import numpy as np

    prog, result = run("fft", "stress", n_threads=2)
    from repro.bots.fft import make_input

    data = make_input(prog.meta["n"])
    assert np.allclose(first_result(result), np.fft.fft(data), rtol=1e-8, atol=1e-8)


def test_bad_size_rejected_with_helpful_message():
    with pytest.raises(ValueError, match="available"):
        get_program("fib", size="gigantic")
