"""Unit tests for SimLock (FIFO contention in virtual time) and Signal."""

import pytest

from repro.sim import Environment, Process, Signal, SimLock, Timeout


def test_uncontended_lock_acquires_immediately():
    env = Environment()
    lock = SimLock(env, "L")
    times = []

    def body():
        yield lock.acquire()
        times.append(env.now)
        yield Timeout(5.0)
        lock.release()

    Process(env, body())
    env.run()
    assert times == [0.0]
    assert not lock.held
    assert lock.acquisitions == 1
    assert lock.contended_acquisitions == 0


def test_contended_lock_serializes_fifo():
    env = Environment()
    lock = SimLock(env, "L")
    grants = []

    def worker(name, arrive):
        yield Timeout(arrive)
        yield lock.acquire()
        grants.append((name, env.now))
        yield Timeout(10.0)
        lock.release()

    Process(env, worker("a", 0.0))
    Process(env, worker("b", 1.0))
    Process(env, worker("c", 2.0))
    env.run()
    assert grants == [("a", 0.0), ("b", 10.0), ("c", 20.0)]
    assert lock.contended_acquisitions == 2
    assert env.now == 30.0


def test_waiter_count_visible_to_holder():
    env = Environment()
    lock = SimLock(env, "L")
    observed = []

    def holder():
        yield lock.acquire()
        yield Timeout(5.0)
        observed.append(lock.waiter_count)
        lock.release()

    def waiter():
        yield Timeout(1.0)
        yield lock.acquire()
        lock.release()

    Process(env, holder())
    Process(env, waiter())
    Process(env, waiter())
    env.run()
    assert observed == [2]


def test_release_without_hold_raises():
    env = Environment()
    lock = SimLock(env, "L")
    with pytest.raises(RuntimeError):
        lock.release()


def test_signal_wakes_current_waiters_and_rearms():
    env = Environment()
    signal = Signal(env)
    log = []

    def waiter(name):
        yield signal.wait()
        log.append((name, "woke-1", env.now))
        yield signal.wait()
        log.append((name, "woke-2", env.now))

    Process(env, waiter("w"))
    env.schedule(3.0, lambda _: signal.fire())
    env.schedule(7.0, lambda _: signal.fire())
    env.run()
    assert log == [("w", "woke-1", 3.0), ("w", "woke-2", 7.0)]
    assert signal.fires == 2


def test_signal_condition_recheck_loop():
    """The canonical usage pattern: wait until a counter reaches a target."""
    env = Environment()
    signal = Signal(env)
    state = {"count": 0}
    done_at = []

    def consumer():
        while state["count"] < 3:
            yield signal.wait()
        done_at.append(env.now)

    def producer():
        for _ in range(3):
            yield Timeout(2.0)
            state["count"] += 1
            signal.fire()

    Process(env, consumer())
    Process(env, producer())
    env.run()
    assert done_at == [6.0]


def test_lock_fairness_under_many_waiters():
    env = Environment()
    lock = SimLock(env, "L")
    order = []

    def worker(index):
        yield Timeout(float(index) * 0.001)
        yield lock.acquire()
        order.append(index)
        yield Timeout(1.0)
        lock.release()

    for i in range(20):
        Process(env, worker(i))
    env.run()
    assert order == list(range(20))
