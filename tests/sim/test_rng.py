"""Unit tests for the deterministic RNG wrapper."""

import pytest

from repro.sim import DeterministicRNG
from repro.sim.rng import resolve_rng


def test_same_seed_same_stream():
    a = DeterministicRNG(7)
    b = DeterministicRNG(7)
    seq_a = [a.randrange(100) for _ in range(50)]
    seq_b = [b.randrange(100) for _ in range(50)]
    assert seq_a == seq_b


def test_different_seed_different_stream():
    a = DeterministicRNG(1)
    b = DeterministicRNG(2)
    assert [a.randrange(1000) for _ in range(20)] != [
        b.randrange(1000) for _ in range(20)
    ]


def test_choice_from_empty_raises():
    with pytest.raises(IndexError):
        DeterministicRNG(0).choice([])


def test_choice_covers_all_elements():
    rng = DeterministicRNG(3)
    seen = {rng.choice([0, 1, 2, 3]) for _ in range(200)}
    assert seen == {0, 1, 2, 3}


def test_shuffled_does_not_mutate_input():
    rng = DeterministicRNG(5)
    original = [1, 2, 3, 4, 5]
    out = rng.shuffled(original)
    assert original == [1, 2, 3, 4, 5]
    assert sorted(out) == original


def test_spawn_derives_reproducible_children():
    parent_a = DeterministicRNG(11)
    parent_b = DeterministicRNG(11)
    child_a = parent_a.spawn(3)
    child_b = parent_b.spawn(3)
    assert [child_a.randrange(10) for _ in range(10)] == [
        child_b.randrange(10) for _ in range(10)
    ]


def test_resolve_rng_passthrough_and_default():
    rng = DeterministicRNG(9)
    assert resolve_rng(rng) is rng
    assert resolve_rng(None, seed=4).seed == 4
