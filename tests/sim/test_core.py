"""Unit tests for the simulation kernel: environment, events, time."""

import pytest

from repro.errors import DeadlockError, ProcessError
from repro.sim import Environment, Process, Timeout


def test_empty_environment_runs_to_zero():
    env = Environment()
    assert env.run() == 0.0
    assert env.now == 0.0


def test_schedule_orders_by_time():
    env = Environment()
    order = []
    env.schedule(5.0, lambda v: order.append(v), "b")
    env.schedule(1.0, lambda v: order.append(v), "a")
    env.schedule(9.0, lambda v: order.append(v), "c")
    env.run()
    assert order == ["a", "b", "c"]
    assert env.now == 9.0


def test_simultaneous_events_fifo_by_insertion():
    env = Environment()
    order = []
    for tag in ("first", "second", "third"):
        env.schedule(2.0, lambda v: order.append(v), tag)
    env.run()
    assert order == ["first", "second", "third"]


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.schedule(-1.0, lambda v: None)


def test_run_until_pauses_and_resumes():
    env = Environment()
    seen = []
    env.schedule(1.0, seen.append, 1)
    env.schedule(10.0, seen.append, 10)
    env.run(until=5.0)
    assert seen == [1]
    assert env.now == 5.0
    env.run()
    assert seen == [1, 10]
    assert env.now == 10.0


def test_process_timeout_advances_clock():
    env = Environment()

    def body():
        yield Timeout(3.0)
        yield Timeout(4.0)
        return "done"

    proc = Process(env, body())
    env.run()
    assert proc.done
    assert proc.value == "done"
    assert env.now == 7.0


def test_process_return_value_triggers_terminated_event():
    env = Environment()

    def child():
        yield Timeout(2.0)
        return 42

    results = []

    def parent():
        value = yield proc.terminated
        results.append(value)

    proc = Process(env, child())
    Process(env, parent())
    env.run()
    assert results == [42]


def test_waiting_on_already_terminated_process():
    env = Environment()

    def child():
        yield Timeout(1.0)
        return "early"

    proc = Process(env, child())

    def late_parent():
        yield Timeout(5.0)
        value = yield proc.terminated
        return value

    late = Process(env, late_parent())
    env.run()
    assert late.value == "early"
    assert env.now == 5.0


def test_event_trigger_wakes_all_waiters_with_value():
    env = Environment()
    event = env.event()
    got = []

    def waiter(tag):
        value = yield event
        got.append((tag, value, env.now))

    Process(env, waiter("a"))
    Process(env, waiter("b"))
    env.schedule(4.0, lambda _: event.trigger("payload"))
    env.run()
    assert got == [("a", "payload", 4.0), ("b", "payload", 4.0)]


def test_event_double_trigger_raises():
    env = Environment()
    event = env.event()
    event.trigger()
    with pytest.raises(RuntimeError):
        event.trigger()


def test_deadlock_detection_reports_stuck_process():
    env = Environment()
    event = env.event()  # never triggered

    def stuck():
        yield event

    Process(env, stuck(), name="stuck-proc")
    with pytest.raises(DeadlockError, match="stuck-proc"):
        env.run()


def test_process_exception_wrapped_with_original_chained():
    env = Environment()

    def bad():
        yield Timeout(1.0)
        raise ValueError("boom")

    Process(env, bad(), name="bad-proc")
    with pytest.raises(ProcessError, match="boom") as excinfo:
        env.run()
    assert "bad-proc" in str(excinfo.value)
    # The original exception (and hence its traceback) is always chained.
    assert isinstance(excinfo.value.__cause__, ValueError)


def test_library_errors_propagate_with_type_intact():
    from repro.errors import RuntimeModelError

    env = Environment()

    def bad():
        yield Timeout(1.0)
        raise RuntimeModelError("misuse")

    Process(env, bad(), name="model-proc")
    with pytest.raises(RuntimeModelError, match="misuse") as excinfo:
        env.run()
    assert any("model-proc" in note for note in excinfo.value.__notes__)


def test_system_exit_escapes_unwrapped():
    env = Environment()

    def bail():
        yield Timeout(1.0)
        raise SystemExit(3)

    Process(env, bail(), name="bail-proc")
    with pytest.raises(SystemExit):
        env.run()


def test_yielding_garbage_is_an_error():
    env = Environment()

    def confused():
        yield "not a request"

    Process(env, confused(), name="confused")
    with pytest.raises(ProcessError, match="unsupported request"):
        env.run()


def test_two_processes_interleave_deterministically():
    env = Environment()
    trace = []

    def ticker(name, period, count):
        for _ in range(count):
            yield Timeout(period)
            trace.append((name, env.now))

    Process(env, ticker("fast", 1.0, 3))
    Process(env, ticker("slow", 2.0, 2))
    env.run()
    # At t=2.0 both processes wake; "slow" scheduled its wakeup at t=0,
    # before "fast" scheduled its own at t=1, so insertion order puts
    # slow first -- the deterministic tie-break rule.
    assert trace == [
        ("fast", 1.0),
        ("slow", 2.0),
        ("fast", 2.0),
        ("fast", 3.0),
        ("slow", 4.0),
    ]


def test_timeout_rejects_negative():
    with pytest.raises(ValueError):
        Timeout(-0.5)
