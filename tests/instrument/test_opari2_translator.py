"""Tests for the OPARI2-style pragma source translator."""

import pytest

from repro.errors import InstrumentationError, ProcessError
from repro.instrument.opari2 import _preprocess, run_translated, translate_tasking
from repro.runtime import RuntimeConfig, ZERO_COST


def quiet(**kw):
    kw.setdefault("costs", ZERO_COST)
    return RuntimeConfig(**kw)


FIB_SOURCE = """
def fib(n):
    if n < 2:
        omp_compute(1.0)
        return n
    #pragma omp task
    a = fib(n - 1)
    #pragma omp task
    b = fib(n - 2)
    #pragma omp taskwait
    omp_compute(0.5)
    return a + b
"""


def test_preprocess_rewrites_pragma_comments():
    text = _preprocess("    #pragma omp taskwait\nx = 1\n")
    assert "__omp_pragma__('taskwait')" in text
    assert "x = 1" in text


def test_translated_fib_matches_directive_version():
    fns = translate_tasking(FIB_SOURCE)
    result = run_translated(fns, "fib", (10,), quiet(n_threads=4, seed=1))
    assert [v for v in result.return_values if v is not None] == [55]
    # identical task count to the hand-written generator version:
    # root + 2 per internal node = 2*F(11)-1
    assert result.completed_tasks == 177


def test_translated_functions_are_profiled():
    fns = translate_tasking(FIB_SOURCE)
    config = RuntimeConfig(n_threads=2, instrument=True, costs=ZERO_COST, seed=0)
    result = run_translated(fns, "fib", (8,), config)
    tree = result.profile.task_tree("fib")
    assert tree.metrics.durations.count == result.completed_tasks
    assert tree.find_one("taskwait").visits > 0


def test_inline_call_between_translated_functions():
    source = """
def helper(x):
    omp_compute(2.0)
    return x * 10

def main(x):
    value = helper(x)      # plain call -> inlined, no task
    return value + helper(x)
"""
    fns = translate_tasking(source)
    result = run_translated(fns, "main", (3,), quiet(n_threads=1))
    assert [v for v in result.return_values if v is not None] == [60]
    assert result.completed_tasks == 1  # only the root task


def test_bare_call_task_without_binding():
    calls = []
    source = """
def side_effect(x):
    omp_compute(1.0)
    sink(x)

def main():
    #pragma omp task
    side_effect(1)
    #pragma omp task
    side_effect(2)
    #pragma omp taskwait
    return "ok"
"""
    fns = translate_tasking(source)
    # inject the sink into both functions' shared globals
    fns["side_effect"].__globals__["sink"] = calls.append
    result = run_translated(fns, "main", (), quiet(n_threads=2, seed=0))
    assert sorted(calls) == [1, 2]
    assert result.completed_tasks == 3


def test_single_and_barrier_and_critical():
    source = """
def worker(data):
    #pragma omp critical(tally)
    bump(data)
    omp_compute(1.0)

def region_fn(data):
    #pragma omp single
    seed_data(data)
    #pragma omp barrier
    #pragma omp task
    worker(data)
    #pragma omp task
    worker(data)
    #pragma omp taskwait
    return list(data)
"""
    fns = translate_tasking(source)
    fns["region_fn"].__globals__["seed_data"] = lambda d: d.append("seed")
    fns["worker"].__globals__["bump"] = lambda d: d.append("bump")
    shared = []
    # barriers require the SPMD mode: the entry IS the region body.
    result = run_translated(
        fns, "region_fn", (shared,), quiet(n_threads=2, seed=0), mode="spmd"
    )
    value = next(v for v in result.return_values if v is not None)
    assert value.count("seed") == 1
    # SPMD: each of the 2 threads spawned 2 worker tasks.
    assert value.count("bump") == 4


def test_taskyield_pragma():
    source = """
def t(n):
    omp_compute(1.0)
    #pragma omp taskyield
    return n

def main():
    #pragma omp task
    a = t(1)
    #pragma omp task
    b = t(2)
    #pragma omp taskwait
    return a + b
"""
    fns = translate_tasking(source)
    result = run_translated(fns, "main", (), quiet(n_threads=1))
    assert [v for v in result.return_values if v is not None] == [3]


def test_reading_task_result_before_taskwait_is_a_race():
    """The syntactic translation's documented behavior: the variable does
    not exist until the taskwait materializes it."""
    source = """
def t():
    omp_compute(1.0)
    return 42

def main():
    #pragma omp task
    a = t()
    return a
"""
    fns = translate_tasking(source)
    with pytest.raises(ProcessError) as excinfo:
        run_translated(fns, "main", (), quiet(n_threads=1))
    assert isinstance(excinfo.value.__cause__, NameError)


def test_error_task_pragma_before_non_call():
    with pytest.raises(InstrumentationError, match="must precede"):
        translate_tasking(
            """
def main():
    #pragma omp task
    x = 1 + 1
"""
        )


def test_error_task_target_outside_unit():
    with pytest.raises(InstrumentationError, match="not a function"):
        translate_tasking(
            """
def main():
    #pragma omp task
    print("hi")
"""
        )


def test_error_unsupported_pragma():
    with pytest.raises(InstrumentationError, match="unsupported pragma"):
        translate_tasking(
            """
def main():
    #pragma omp sections
    x = 1
"""
        )


def test_error_trailing_task_pragma():
    with pytest.raises(InstrumentationError, match="end of block"):
        translate_tasking(
            """
def main():
    #pragma omp task
"""
        )


def test_error_no_functions():
    with pytest.raises(InstrumentationError, match="no functions"):
        translate_tasking("x = 1\n")


def test_error_unknown_entry():
    fns = translate_tasking(FIB_SOURCE)
    with pytest.raises(KeyError, match="no translated function"):
        run_translated(fns, "nope", ())


def test_pragmas_inside_loops_and_branches():
    source = """
def leaf(i):
    omp_compute(1.0)
    return i

def main(n):
    total = 0
    for i in range(n):
        if i % 2 == 0:
            #pragma omp task
            h = leaf(i)
            #pragma omp taskwait
            total = total + h
    return total
"""
    fns = translate_tasking(source)
    result = run_translated(fns, "main", (6,), quiet(n_threads=2, seed=0))
    assert [v for v in result.return_values if v is not None] == [0 + 2 + 4]
