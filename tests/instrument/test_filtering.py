"""Measurement filtering (Score-P's overhead-control feature)."""

import pytest

from repro.analysis.experiment import run_app
from repro.events.regions import RegionRegistry, RegionType
from repro.instrument import MANAGEMENT_REGIONS_FILTER, RegionFilter
from repro.instrument.filtering import RegionFilter as RF
from repro.runtime import RuntimeConfig


@pytest.fixture()
def regions():
    reg = RegionRegistry()
    return {
        "taskwait": reg.register("taskwait", RegionType.TASKWAIT),
        "create": reg.register("create@fib_task", RegionType.TASK_CREATE),
        "task": reg.register("fib_task", RegionType.TASK),
        "foo": reg.register("foo", RegionType.FUNCTION),
    }


# ----------------------------------------------------------------------
# RegionFilter semantics
# ----------------------------------------------------------------------
def test_exclude_by_name_and_glob(regions):
    f = RegionFilter(exclude=("taskwait", "create@*"))
    assert not f.measures(regions["taskwait"])
    assert not f.measures(regions["create"])
    assert f.measures(regions["task"])
    assert f.measures(regions["foo"])


def test_exclude_by_type(regions):
    f = RegionFilter(exclude_types=(RegionType.TASKWAIT,))
    assert not f.measures(regions["taskwait"])
    assert f.measures(regions["create"])


def test_include_whitelist(regions):
    f = RegionFilter(include=("fib_*",))
    assert f.measures(regions["task"])
    assert not f.measures(regions["foo"])
    # exclude always wins over include
    g = RegionFilter(include=("fib_*",), exclude=("fib_task",))
    assert not g.measures(regions["task"])


# ----------------------------------------------------------------------
# End-to-end behavior
# ----------------------------------------------------------------------
def fib_run(filter_=None, n_threads=1, seed=0):
    return run_app(
        "fib",
        size="test",
        variant="stress",
        n_threads=n_threads,
        seed=seed,
        measurement_filter=filter_,
    )


def test_filtered_regions_missing_from_profile():
    result = fib_run(MANAGEMENT_REGIONS_FILTER)
    names = {
        node.region.name
        for per in result.profile.task_trees
        for tree in per.values()
        for node in tree.walk()
    }
    assert "taskwait" not in names
    assert "create@fib_task" not in names
    # the task construct itself is still fully tracked
    tree = result.profile.task_tree("fib_task")
    assert tree.metrics.durations.count == result.parallel.completed_tasks


def test_filtered_time_melts_into_parent():
    """Inclusive times are preserved; only attribution coarsens."""
    unfiltered = fib_run(None)
    filtered = fib_run(MANAGEMENT_REGIONS_FILTER)
    # the task-tree root still accounts for all instance time; the
    # formerly-separate taskwait/create time is now root-exclusive
    for result in (unfiltered, filtered):
        tree = result.profile.task_tree("fib_task")
        assert tree.metrics.inclusive_time > 0
    filtered_tree = filtered.profile.task_tree("fib_task")
    assert filtered_tree.exclusive_time == pytest.approx(
        filtered_tree.metrics.inclusive_time
    )  # no children left


def test_filtering_reduces_overhead():
    """The point of the feature: fewer events, less instrumentation cost."""
    unfiltered = fib_run(None)
    filtered = fib_run(MANAGEMENT_REGIONS_FILTER)
    assert filtered.parallel.events_dispatched < unfiltered.parallel.events_dispatched
    assert filtered.parallel.total("instr") < unfiltered.parallel.total("instr")
    assert filtered.kernel_time < unfiltered.kernel_time
    assert MANAGEMENT_REGIONS_FILTER.suppressed > 0


def test_filtering_does_not_change_results():
    unfiltered = fib_run(None, n_threads=2, seed=1)
    filtered = fib_run(MANAGEMENT_REGIONS_FILTER, n_threads=2, seed=1)
    assert filtered.verified and unfiltered.verified
    assert filtered.result_value == unfiltered.result_value
    assert (
        filtered.parallel.completed_tasks == unfiltered.parallel.completed_tasks
    )


def test_invariants_hold_under_filtering():
    """Stub accounting survives region filtering."""
    result = fib_run(MANAGEMENT_REGIONS_FILTER, n_threads=2)
    profile = result.profile
    stub_time = sum(
        node.metrics.inclusive_time
        for tree in profile.main_trees
        for node in tree.walk()
        if node.is_stub
    )
    task_time = sum(
        tree.metrics.durations.total
        for per in profile.task_trees
        for tree in per.values()
    )
    assert stub_time == pytest.approx(task_time, rel=1e-9)
