"""The batched instrumentation layer: fill, flush boundaries, parity.

Pins the producer half of the columnar hot path:

* ``events_dispatched`` parity with the legacy per-event layer over an
  identical event sequence (the satellite fix -- batching changes when
  events are consumed, never how many were measured);
* :class:`RegionFilter` parity: suppressed counts match and filtered
  events never reach the batch;
* every flush boundary: hard capacity, scheduling-point enter past the
  soft threshold, task lifecycle soft flushes, and the structural
  phase/finish drains;
* payload round-trip through the packed columns.
"""

import pytest

from repro.events.batch import (
    K_ENTER,
    K_EXIT,
    K_METRIC,
    K_TASK_BEGIN,
    K_TASK_END,
)
from repro.events.regions import RegionRegistry, RegionType
from repro.instrument.filtering import RegionFilter
from repro.instrument.layer import BatchedInstrumentationLayer, InstrumentationLayer


class CollectingListener:
    """Collects per-event callbacks AND the batch protocol."""

    def __init__(self):
        self.calls = []
        self.flushes = 0

    def on_enter(self, thread_id, region, time, parameter=None):
        self.calls.append(("enter", thread_id, region, time, parameter))

    def on_exit(self, thread_id, region, time):
        self.calls.append(("exit", thread_id, region, time))

    def on_task_begin(self, thread_id, region, instance, time, parameter=None):
        self.calls.append(("task_begin", thread_id, region, instance, time, parameter))

    def on_task_end(self, thread_id, region, instance, time):
        self.calls.append(("task_end", thread_id, region, instance, time))

    def on_task_switch(self, thread_id, instance, time):
        self.calls.append(("task_switch", thread_id, instance, time))

    def on_metric(self, thread_id, counters, time):
        self.calls.append(("metric", thread_id, counters, time))

    def on_phase_begin(self, name):
        self.calls.append(("phase_begin", name))

    def on_phase_end(self, name):
        self.calls.append(("phase_end", name))

    def on_finish(self, time):
        self.calls.append(("finish", time))

    def on_batch(self, batch):
        self.flushes += 1
        for kind, thread_id, region, time, instance, payload in batch.rows():
            if kind == K_ENTER:
                self.calls.append(("enter", thread_id, region, time, payload))
            elif kind == K_TASK_BEGIN:
                self.calls.append(("task_begin", thread_id, region, instance, time, payload))
            elif kind == K_METRIC:
                self.calls.append(("metric", thread_id, payload, time))
            elif kind == K_EXIT:
                self.calls.append(("exit", thread_id, region, time))
            elif kind == K_TASK_END:
                self.calls.append(("task_end", thread_id, region, instance, time))
            else:
                self.calls.append(("task_switch", thread_id, instance, time))


@pytest.fixture
def regions():
    reg = RegionRegistry()
    return reg, {
        "main": reg.register("main", RegionType.FUNCTION),
        "f": reg.register("f", RegionType.FUNCTION),
        "task": reg.register("task", RegionType.TASK),
        "wait": reg.register("taskwait", RegionType.TASKWAIT),
    }


def _drive(layer, r):
    """One representative event sequence through any layer."""
    layer.enter(0, r["main"], 0.0)
    layer.enter(0, r["f"], 1.0, parameter=("n", 5))
    layer.task_begin(1, r["task"], 9, 2.0, parameter=("n", 3))
    layer.metric(1, {"spawned": 1}, 2.5)
    layer.task_switch(1, -2, 3.0)
    layer.task_end(1, r["task"], 9, 4.0)
    layer.enter(0, r["wait"], 5.0)
    layer.exit(0, r["wait"], 6.0)
    layer.exit(0, r["f"], 7.0)
    layer.exit(0, r["main"], 8.0)
    layer.finish(9.0)


# ----------------------------------------------------------------------
# Parity with the legacy layer
# ----------------------------------------------------------------------
def test_events_dispatched_and_stream_parity(regions):
    reg, r = regions
    legacy_listener = CollectingListener()
    legacy = InstrumentationLayer(listener=legacy_listener)
    batched_listener = CollectingListener()
    batched = BatchedInstrumentationLayer(listener=batched_listener, registry=reg)

    _drive(legacy, r)
    _drive(batched, r)

    assert batched.events_dispatched == legacy.events_dispatched == 9
    assert batched_listener.calls == legacy_listener.calls


def test_filter_parity_and_suppressed_counts(regions):
    reg, r = regions
    filters = [
        RegionFilter(exclude=("taskwait",)),
        RegionFilter(exclude_types=(RegionType.TASKWAIT,)),
    ]
    legacy = InstrumentationLayer(listener=CollectingListener(), region_filter=filters[0])
    batched_listener = CollectingListener()
    batched = BatchedInstrumentationLayer(
        listener=batched_listener, region_filter=filters[1], registry=reg
    )
    _drive(legacy, r)
    _drive(batched, r)

    assert batched.filter.suppressed == legacy.filter.suppressed == 2
    assert batched.events_dispatched == legacy.events_dispatched == 7
    # the filtered region never reaches the drained stream
    assert all(
        call[2] is not r["wait"]
        for call in batched_listener.calls
        if call[0] in ("enter", "exit")
    )


def test_disabled_layer_is_a_noop(regions):
    reg, r = regions
    listener = CollectingListener()
    layer = BatchedInstrumentationLayer(enabled=False, listener=listener, registry=reg)
    _drive(layer, r)
    layer.flush()
    assert layer.events_dispatched == 0
    assert not listener.calls and not layer.batch.codes


# ----------------------------------------------------------------------
# Flush boundaries
# ----------------------------------------------------------------------
def test_capacity_hard_flush(regions):
    reg, r = regions
    listener = CollectingListener()
    layer = BatchedInstrumentationLayer(
        listener=listener, registry=reg, flush_threshold=4, capacity=4
    )
    for i in range(3):
        layer.enter(0, r["f"], float(i))
    assert listener.flushes == 0  # FUNCTION is not a scheduling point
    layer.enter(0, r["f"], 3.0)  # 4th event hits capacity
    assert listener.flushes == 1
    assert not layer.batch.codes


def test_scheduling_point_enter_soft_flush(regions):
    reg, r = regions
    listener = CollectingListener()
    layer = BatchedInstrumentationLayer(
        listener=listener, registry=reg, flush_threshold=2, capacity=100
    )
    layer.enter(0, r["f"], 0.0)
    layer.enter(0, r["f"], 1.0)  # past threshold, but not a sched point
    assert listener.flushes == 0
    layer.enter(0, r["wait"], 2.0)  # TASKWAIT enter drains
    assert listener.flushes == 1


@pytest.mark.parametrize("event", ["task_begin", "task_end", "task_switch"])
def test_task_lifecycle_soft_flush(regions, event):
    reg, r = regions
    listener = CollectingListener()
    layer = BatchedInstrumentationLayer(
        listener=listener, registry=reg, flush_threshold=2, capacity=100
    )
    layer.enter(0, r["f"], 0.0)
    if event == "task_begin":
        layer.task_begin(1, r["task"], 5, 1.0)
    elif event == "task_end":
        layer.task_end(1, r["task"], 5, 1.0)
    else:
        layer.task_switch(1, 5, 1.0)
    assert listener.flushes == 1
    assert not layer.batch.codes


def test_sched_point_hook_respects_threshold(regions):
    reg, r = regions
    listener = CollectingListener()
    layer = BatchedInstrumentationLayer(
        listener=listener, registry=reg, flush_threshold=3, capacity=100
    )
    layer.enter(0, r["f"], 0.0)
    layer.sched_point()
    assert listener.flushes == 0  # below threshold: nothing drains
    layer.enter(0, r["f"], 1.0)
    layer.enter(0, r["f"], 2.0)
    layer.sched_point()
    assert listener.flushes == 1


def test_phase_and_finish_flush_first(regions):
    reg, r = regions
    listener = CollectingListener()
    layer = BatchedInstrumentationLayer(listener=listener, registry=reg)
    layer.enter(0, r["f"], 0.0)
    layer.phase_begin("compute")
    # the buffered enter drains BEFORE the phase marker
    assert [c[0] for c in listener.calls] == ["enter", "phase_begin"]
    layer.exit(0, r["f"], 1.0)
    layer.phase_end("compute")
    layer.finish(2.0)
    assert [c[0] for c in listener.calls] == [
        "enter", "phase_begin", "exit", "phase_end", "finish",
    ]


def test_flush_of_empty_batch_is_silent(regions):
    reg, _ = regions
    listener = CollectingListener()
    layer = BatchedInstrumentationLayer(listener=listener, registry=reg)
    layer.flush()
    assert listener.flushes == 0


def test_invalid_thresholds_rejected(regions):
    reg, _ = regions
    with pytest.raises(ValueError):
        BatchedInstrumentationLayer(registry=reg, flush_threshold=0)
    with pytest.raises(ValueError):
        BatchedInstrumentationLayer(registry=reg, flush_threshold=10, capacity=5)


# ----------------------------------------------------------------------
# Payload round-trip
# ----------------------------------------------------------------------
def test_payloads_round_trip_through_columns(regions):
    reg, r = regions
    listener = CollectingListener()
    layer = BatchedInstrumentationLayer(listener=listener, registry=reg)
    layer.enter(0, r["f"], 1.0, parameter=("n", 41))
    layer.task_begin(3, r["task"], -7, 2.0, parameter=("depth", 2))
    layer.metric(2, {"queue": 11}, 3.0)
    layer.flush()
    assert listener.calls == [
        ("enter", 0, r["f"], 1.0, ("n", 41)),
        ("task_begin", 3, r["task"], -7, 2.0, ("depth", 2)),
        ("metric", 2, {"queue": 11}, 3.0),
    ]
