"""Tests for the instrumentation layer and POMP2 listeners."""

import pytest

from repro.events import RegionRegistry, RegionType
from repro.events.stream import ProgramTrace
from repro.instrument import InstrumentationLayer, MulticastListener, NullListener
from repro.instrument.pomp2 import RecordingListener


class CountingListener:
    def __init__(self):
        self.counts = {}

    def _bump(self, kind):
        self.counts[kind] = self.counts.get(kind, 0) + 1

    def on_enter(self, *a, **k):
        self._bump("enter")

    def on_exit(self, *a, **k):
        self._bump("exit")

    def on_task_begin(self, *a, **k):
        self._bump("task_begin")

    def on_task_end(self, *a, **k):
        self._bump("task_end")

    def on_task_switch(self, *a, **k):
        self._bump("task_switch")

    def on_phase_begin(self, *a, **k):
        self._bump("phase_begin")

    def on_phase_end(self, *a, **k):
        self._bump("phase_end")

    def on_finish(self, *a, **k):
        self._bump("finish")


@pytest.fixture()
def region():
    return RegionRegistry().register("r", RegionType.FUNCTION)


def test_disabled_layer_is_a_noop(region):
    listener = CountingListener()
    layer = InstrumentationLayer(enabled=False, per_event_cost=1.0, listener=listener)
    layer.enter(0, region, 0.0)
    layer.exit(0, region, 1.0)
    layer.task_begin(0, region, 1, 2.0)
    layer.finish(3.0)
    assert listener.counts == {}
    assert layer.cost == 0.0
    assert layer.events_dispatched == 0


def test_enabled_layer_dispatches_and_counts(region):
    listener = CountingListener()
    layer = InstrumentationLayer(enabled=True, per_event_cost=0.5, listener=listener)
    layer.enter(0, region, 0.0)
    layer.exit(0, region, 1.0)
    layer.task_begin(0, region, 1, 2.0)
    layer.task_switch(0, -1, 3.0)
    layer.task_end(0, region, 1, 4.0)
    layer.phase_begin("p")
    layer.phase_end("p")
    layer.finish(5.0)
    assert layer.events_dispatched == 5  # phase/finish are not events
    assert listener.counts["enter"] == 1
    assert listener.counts["task_switch"] == 1
    assert listener.counts["finish"] == 1
    assert layer.cost == 0.5


def test_add_listener_builds_multicast(region):
    a, b = CountingListener(), CountingListener()
    layer = InstrumentationLayer(enabled=True, listener=a)
    layer.add_listener(b)
    layer.enter(0, region, 0.0)
    assert a.counts["enter"] == 1
    assert b.counts["enter"] == 1
    assert isinstance(layer.listener, MulticastListener)


def test_add_listener_replaces_null():
    layer = InstrumentationLayer(enabled=True)
    assert isinstance(layer.listener, NullListener)
    counting = CountingListener()
    layer.add_listener(counting)
    assert layer.listener is counting


def test_recording_listener_tracks_current_instance(region):
    reg = RegionRegistry()
    task = reg.register("t", RegionType.TASK)
    trace = ProgramTrace(1, reg)
    rec = RecordingListener(trace)
    rec.on_task_begin(0, task, 1, 1.0)
    rec.on_enter(0, region, 2.0)
    rec.on_exit(0, region, 3.0)
    rec.on_task_end(0, task, 1, 4.0)
    events = list(trace.stream(0))
    assert events[1].executing_instance == 1  # enter inside the task
    # after task_end the implicit task is current again
    rec.on_enter(0, region, 5.0)
    assert trace.stream(0)[-1].executing_instance == -1
