"""Property-based tests of the pragma translator.

Generates random task-recursion sources (a family of fib-like programs
with varying arity, cut-off style, and pragma placement), translates
them, runs them at random thread counts/seeds, and checks the functional
result against a direct Python evaluation of the same recursion.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.instrument.opari2 import run_translated, translate_tasking
from repro.runtime import RuntimeConfig, ZERO_COST

TEMPLATE = """
def node(depth):
    omp_compute({leaf_cost})
    if depth >= {max_depth}:
        return 1
    total = 1
{spawn_block}
    return total
"""


def make_source(arity: int, max_depth: int, leaf_cost: float, use_taskwait_each: bool):
    lines = []
    indent = "    "
    if use_taskwait_each:
        for k in range(arity):
            lines.append(f"{indent}#pragma omp task")
            lines.append(f"{indent}child_{k} = node(depth + 1)")
            lines.append(f"{indent}#pragma omp taskwait")
            lines.append(f"{indent}total = total + child_{k}")
    else:
        for k in range(arity):
            lines.append(f"{indent}#pragma omp task")
            lines.append(f"{indent}child_{k} = node(depth + 1)")
        lines.append(f"{indent}#pragma omp taskwait")
        for k in range(arity):
            lines.append(f"{indent}total = total + child_{k}")
    return TEMPLATE.format(
        leaf_cost=leaf_cost,
        max_depth=max_depth,
        spawn_block="\n".join(lines),
    )


def expected_nodes(arity: int, max_depth: int) -> int:
    # full arity-ary tree of the given depth
    total = 0
    layer = 1
    for _ in range(max_depth + 1):
        total += layer
        layer *= arity
    return total


@settings(max_examples=25, deadline=None)
@given(
    arity=st.integers(1, 3),
    max_depth=st.integers(0, 4),
    leaf_cost=st.floats(0.0, 2.0),
    per_spawn_wait=st.booleans(),
    n_threads=st.integers(1, 4),
    seed=st.integers(0, 5),
)
def test_translated_recursions_count_correctly(
    arity, max_depth, leaf_cost, per_spawn_wait, n_threads, seed
):
    source = make_source(arity, max_depth, leaf_cost, per_spawn_wait)
    functions = translate_tasking(source)
    config = RuntimeConfig(
        n_threads=n_threads, seed=seed, instrument=True, costs=ZERO_COST
    )
    result = run_translated(functions, "node", (0,), config)
    values = [v for v in result.return_values if v is not None]
    assert values == [expected_nodes(arity, max_depth)]
    # one task per node (including the root spawned by the region)
    assert result.completed_tasks == expected_nodes(arity, max_depth)
    # the profile agrees with the task count
    tree = result.profile.task_tree("node")
    assert tree.metrics.durations.count == result.completed_tasks
