"""Multi-consumer dispatch through the instrumentation layer.

The contracts several consumers rely on simultaneously:

* multicast fan-out preserves attachment order (profilers that shadow
  state must see events before loggers that read it),
* ``events_dispatched`` counts forwarded events only -- filter-suppressed
  events are tallied on the filter, not the layer,
* metrics piggy-back on an existing event boundary: delivered to every
  listener but never counted or charged,
* toggling ``enabled`` controls the effective cost without losing the
  configured ``per_event_cost``.
"""

import pytest

from repro.events import RegionRegistry, RegionType
from repro.instrument import InstrumentationLayer, MulticastListener, Pomp2Listener
from repro.instrument.filtering import RegionFilter


class JournalingListener(Pomp2Listener):
    """Appends (name, callback) tuples to a shared, order-sensitive log."""

    def __init__(self, name, journal):
        self.name = name
        self.journal = journal

    def on_enter(self, thread_id, region, time, parameter=None):
        self.journal.append((self.name, "enter", region.name))

    def on_exit(self, thread_id, region, time):
        self.journal.append((self.name, "exit", region.name))

    def on_task_begin(self, thread_id, region, instance, time, parameter=None):
        self.journal.append((self.name, "task_begin", instance))

    def on_metric(self, thread_id, counters, time):
        self.journal.append((self.name, "metric", tuple(counters)))


@pytest.fixture()
def registry():
    return RegionRegistry()


def test_multicast_preserves_attachment_order(registry):
    func = registry.register("f", RegionType.FUNCTION)
    journal = []
    layer = InstrumentationLayer(
        listener=MulticastListener(
            [JournalingListener("first", journal), JournalingListener("second", journal)]
        )
    )
    layer.enter(0, func, 1.0)
    layer.exit(0, func, 2.0)
    assert journal == [
        ("first", "enter", "f"),
        ("second", "enter", "f"),
        ("first", "exit", "f"),
        ("second", "exit", "f"),
    ]
    assert layer.events_dispatched == 2


def test_add_listener_upgrades_to_multicast(registry):
    func = registry.register("f", RegionType.FUNCTION)
    journal = []
    layer = InstrumentationLayer(listener=JournalingListener("a", journal))
    layer.add_listener(JournalingListener("b", journal))
    layer.add_listener(JournalingListener("c", journal))
    assert isinstance(layer.listener, MulticastListener)
    layer.enter(0, func, 1.0)
    assert [name for name, _, _ in journal] == ["a", "b", "c"]


def test_dispatched_vs_suppressed_accounting(registry):
    measured = registry.register("hot", RegionType.FUNCTION)
    filtered = registry.register("noise", RegionType.FUNCTION)
    journal = []
    layer = InstrumentationLayer(
        per_event_cost=1.0,
        listener=JournalingListener("only", journal),
        region_filter=RegionFilter(exclude=("noise",)),
    )

    layer.enter(0, measured, 1.0)
    layer.enter(0, filtered, 2.0)
    layer.exit(0, filtered, 3.0)
    layer.exit(0, measured, 4.0)

    # Two events made it through, two were suppressed -- and the split is
    # visible on the right counters.
    assert layer.events_dispatched == 2
    assert layer.filter.suppressed == 2
    assert [entry[2] for entry in journal] == ["hot", "hot"]
    # Suppressed regions also cost nothing; measured ones pay full fare.
    assert layer.region_cost(filtered) == 0.0
    assert layer.region_cost(measured) == 1.0


def test_task_lifecycle_events_bypass_the_filter(registry):
    task = registry.register("noise", RegionType.TASK)
    journal = []
    layer = InstrumentationLayer(
        listener=JournalingListener("only", journal),
        region_filter=RegionFilter(exclude=("noise",)),
    )
    # Even though the region name matches the exclude pattern, task
    # lifecycle events are never filtered (Score-P semantics: the task
    # tree must stay consistent).
    layer.task_begin(0, task, 1, 1.0)
    assert layer.events_dispatched == 1
    assert journal == [("only", "task_begin", 1)]


def test_metric_piggybacks_no_count_no_cost(registry):
    journal = []
    layer = InstrumentationLayer(
        per_event_cost=2.0,
        listener=MulticastListener(
            [JournalingListener("a", journal), JournalingListener("b", journal)]
        ),
    )
    layer.metric(0, {"cache_misses": 41}, 1.0)
    # Delivered to every consumer...
    assert journal == [
        ("a", "metric", ("cache_misses",)),
        ("b", "metric", ("cache_misses",)),
    ]
    # ...but neither counted nor charged: it rides an existing boundary.
    assert layer.events_dispatched == 0


def test_enabled_toggle_preserves_configured_cost(registry):
    # Regression: a layer built with enabled=False used to clobber its
    # per_event_cost to 0.0, so enabling it later measured for free.
    layer = InstrumentationLayer(enabled=False, per_event_cost=1.5)
    assert layer.cost == 0.0
    assert layer.per_event_cost == 1.5
    layer.enabled = True
    assert layer.cost == 1.5
    layer.enabled = False
    assert layer.cost == 0.0


def test_disabled_layer_dispatches_nothing(registry):
    func = registry.register("f", RegionType.FUNCTION)
    journal = []
    layer = InstrumentationLayer(
        enabled=False, listener=JournalingListener("x", journal)
    )
    layer.enter(0, func, 1.0)
    layer.task_begin(0, func, 1, 2.0)
    layer.metric(0, {"c": 1}, 3.0)
    assert journal == []
    assert layer.events_dispatched == 0
