"""Tests for the AST source-to-source instrumenter (compiler analogue)."""

import pytest

from repro.errors import EventOrderError, InstrumentationError
from repro.instrument import instrument_function, instrument_source
from repro.instrument.ast_instrumenter import HOOK_NAME, FunctionHooks


# module-level sample functions (instrument_function needs source access)
def _leaf(x):
    return x + 1


def _caller(x):
    return _leaf(x) * 2


def _recursive(n):
    """Docstring survives instrumentation."""
    if n <= 0:
        return 0
    return 1 + _recursive(n - 1)


def _raises(x):
    raise ValueError(f"bad {x}")


def test_instrument_source_inserts_hooks():
    source = "def f(x):\n    return x * 2\n"
    out = instrument_source(source)
    assert f"{HOOK_NAME}.enter('f')" in out
    assert f"{HOOK_NAME}.exit('f')" in out
    assert "try:" in out and "finally:" in out


def test_instrument_source_requires_functions():
    with pytest.raises(InstrumentationError, match="no function definitions"):
        instrument_source("x = 1\n")


def test_instrument_source_rejects_bad_syntax():
    with pytest.raises(InstrumentationError, match="cannot parse"):
        instrument_source("def broken(:\n")


def test_instrumented_function_preserves_behavior():
    hooks = FunctionHooks()
    fn = instrument_function(_leaf, hooks)
    assert fn(41) == 42
    assert hooks.calls == 1


def test_call_tree_from_nested_calls():
    hooks = FunctionHooks(root_name="<test>")
    # Instrument caller only; _leaf resolves to the uninstrumented module
    # function, so only _caller appears in the tree.
    fn = instrument_function(_caller, hooks)
    fn(1)
    fn(2)
    tree = hooks.finish()
    caller_node = tree.find_one("_caller")
    assert caller_node.visits == 2


def test_self_recursion_is_instrumented():
    hooks = FunctionHooks()
    fn = instrument_function(_recursive, hooks)
    assert fn(3) == 3
    tree = hooks.finish()
    # recursion builds a chain _recursive -> _recursive -> ...
    chain = tree.find(name="_recursive")
    assert len(chain) == 4  # depths 3,2,1,0
    assert fn.__doc__ == "Docstring survives instrumentation."


def test_exceptions_keep_enter_exit_balanced():
    hooks = FunctionHooks()
    fn = instrument_function(_raises, hooks)
    with pytest.raises(ValueError, match="bad 7"):
        fn(7)
    # The finally-based exit kept the profiler stack balanced:
    tree = hooks.finish()
    assert tree.find_one("_raises").visits == 1


def test_closures_rejected():
    y = 10

    def closure(x):
        return x + y

    with pytest.raises(InstrumentationError, match="closure"):
        instrument_function(closure, FunctionHooks())


def test_hooks_detect_mismatched_exit():
    hooks = FunctionHooks()
    hooks.enter("a")
    with pytest.raises(EventOrderError):
        hooks.exit("b")


def test_custom_clock():
    times = iter([0.0, 1.0, 5.0, 9.0])
    hooks = FunctionHooks(clock=lambda: next(times))
    hooks.enter("f")
    hooks.exit("f")
    tree = hooks.finish()
    assert tree.find_one("f").inclusive_time == 4.0
