"""Chunk framing: seal/recover round trips and torn-tail recovery.

The load-bearing property (satellite of the recording tentpole): cut a
sealed stream at *every* byte offset and recovery must always return a
clean prefix of the original records -- never an exception, never a
record that was not in the stream.
"""

import pytest

from repro.faults.recording import RECORDING_CORRUPTION_CLASSES, corrupt_recording
from repro.recorder.chunks import (
    HEADER,
    ChunkWriter,
    read_records,
    recover_chunks,
)
from repro.recorder.store import events_path

from tests.recorder.streams import comparable, random_records


def _write_stream(path, records, *, chunk_records=8, finish_time=999.0):
    writer = ChunkWriter(str(path), chunk_records=chunk_records)
    for record in records:
        writer.append(record)
    writer.close(finish_time=finish_time)


@pytest.fixture()
def sealed(tmp_path):
    records = random_records(5, 40, with_fin=False)
    path = tmp_path / "events.chunks"
    _write_stream(path, records)
    return path


# ----------------------------------------------------------------------
# Clean round trip
# ----------------------------------------------------------------------
def test_write_read_round_trip(sealed):
    records = random_records(5, 40, with_fin=False)
    stream = recover_chunks(str(sealed))
    assert stream.header_ok and not stream.torn_bytes
    assert stream.complete and stream.finish_time == 999.0
    got = [comparable(r) for r in stream.records]
    assert got[:-1] == [comparable(r) for r in records]
    assert got[-1][0] == "fin"


def test_chunk_count_matches_batching(sealed):
    stream = recover_chunks(str(sealed))
    # 41 input records + fin = 42, sealed in batches of 8 -> 6 chunks
    # (close seals the final short batch).
    assert stream.chunks == 6
    assert len(stream.records) == 42


# ----------------------------------------------------------------------
# Truncate at every byte (seeded property test)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_truncation_at_every_byte_yields_clean_prefix(tmp_path, seed):
    path = tmp_path / "events.chunks"
    _write_stream(path, random_records(seed, 40, with_fin=False))
    data = path.read_bytes()
    expected = [comparable(r) for r in recover_chunks(str(path)).records]
    torn = tmp_path / "torn.chunks"
    for cut in range(len(data) + 1):
        torn.write_bytes(data[:cut])
        stream = recover_chunks(str(torn))  # must never raise
        got = [comparable(r) for r in stream.records]
        assert got == expected[: len(got)], f"corrupt prefix at cut={cut}"
        assert stream.good_bytes <= max(cut, len(HEADER))
        assert stream.complete == (cut == len(data))
        if cut < len(HEADER):
            assert not stream.header_ok and not stream.records


def test_truncate_flag_repairs_file_in_place(tmp_path):
    path = tmp_path / "events.chunks"
    _write_stream(path, random_records(9, 40, with_fin=False))
    data = path.read_bytes()
    path.write_bytes(data[: len(data) - 7])  # tear mid-final-chunk
    stream = read_records(str(path), truncate=True)
    assert stream.truncated
    assert path.stat().st_size == stream.good_bytes
    again = read_records(str(path))
    assert not again.notes and not again.torn_bytes
    assert len(again.records) == len(stream.records)


# ----------------------------------------------------------------------
# Seeded corruption classes (past what a torn write can produce)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", RECORDING_CORRUPTION_CLASSES)
@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_corruption_reduces_to_clean_prefix(tmp_path, kind, seed):
    record_dir = tmp_path / "rec"
    record_dir.mkdir()
    _write_stream(events_path(str(record_dir)), random_records(seed, 60, with_fin=False))
    intact = recover_chunks(events_path(str(record_dir)))
    expected = [comparable(r) for r in intact.records]

    info = corrupt_recording(str(record_dir), kind, seed=seed)
    assert info["kind"] == kind
    stream = recover_chunks(events_path(str(record_dir)))
    got = [comparable(r) for r in stream.records]
    assert got == expected[: len(got)]
    if got != expected or kind == "garbage_append":
        assert stream.notes, "damage swallowed without a note"


def test_corrupt_recording_rejects_unknown_kind(tmp_path):
    with pytest.raises(ValueError):
        corrupt_recording(str(tmp_path), "set_on_fire")


def test_mangled_header_means_no_trustworthy_prefix(sealed):
    data = sealed.read_bytes()
    sealed.write_bytes(b"XXX" + data[3:])
    stream = read_records(str(sealed), truncate=True)
    assert not stream.header_ok
    assert not stream.records
    assert not stream.truncated  # nothing trustworthy to truncate *to*
    assert sealed.read_bytes()[:3] == b"XXX"  # file left untouched


def test_unsupported_version_refused(sealed):
    data = bytearray(sealed.read_bytes())
    data[4] = 99
    sealed.write_bytes(bytes(data))
    stream = recover_chunks(str(sealed))
    assert not stream.header_ok
    assert any("version" in note for note in stream.notes)


def test_sigkill_loses_at_most_the_unsealed_buffer(tmp_path):
    """Abandoning a writer (no close) keeps every sealed chunk."""
    records = random_records(11, 40, with_fin=False)
    path = tmp_path / "events.chunks"
    writer = ChunkWriter(str(path), chunk_records=8)
    for record in records:
        writer.append(record)
    # 41 records: 5 sealed chunks of 8, 1 record still buffered
    assert writer.pending_records == 1
    del writer  # simulate death without close/seal
    stream = recover_chunks(str(path))
    assert len(stream.records) == 40
    assert [comparable(r) for r in stream.records] == [
        comparable(r) for r in records[:40]
    ]
