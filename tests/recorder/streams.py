"""Seeded random record streams for the codec/chunk property tests."""

from __future__ import annotations

import random
from typing import List

from repro.events.regions import Region, RegionRegistry, RegionType


def make_regions(registry: RegionRegistry = None) -> List[Region]:
    registry = registry or RegionRegistry()
    return [
        registry.register("main", RegionType.FUNCTION, "main.py", 1),
        registry.register("parallel", RegionType.PARALLEL, "main.py", 10),
        registry.register("task_body", RegionType.TASK, "work.py", 42),
        registry.register("taskwait", RegionType.TASKWAIT),
    ]


def random_records(seed: int, count: int, *, with_fin: bool = True) -> List[tuple]:
    """A seeded stream of every record kind the recorder emits.

    Not a *valid* profiler event sequence -- codec and framing tests
    only care that arbitrary well-formed tuples survive the wire.
    """
    rng = random.Random(seed)
    regions = make_regions()
    records: List[tuple] = [("init", 2, 0.0, regions[0], rng.choice([None, 12]))]
    time = 0.0
    for _ in range(count):
        time += rng.random() * 3.0
        kind = rng.choice(
            ["enter", "exit", "task_begin", "task_end", "task_switch",
             "metric", "phase_begin", "phase_end"]
        )
        region = rng.choice(regions)
        thread_id = rng.randrange(4)
        if kind == "enter":
            parameter = ("depth", rng.randrange(8)) if rng.random() < 0.3 else None
            records.append(("enter", thread_id, time, region, parameter))
        elif kind == "exit":
            records.append(("exit", thread_id, time, region))
        elif kind == "task_begin":
            records.append(
                ("task_begin", thread_id, time, region,
                 rng.randrange(-5, 5000), None)
            )
        elif kind == "task_end":
            records.append(
                ("task_end", thread_id, time, region, rng.randrange(-5, 5000))
            )
        elif kind == "task_switch":
            records.append(("task_switch", thread_id, time, rng.randrange(-3, 100)))
        elif kind == "metric":
            records.append(
                ("metric", thread_id, time,
                 {"tasks_created": rng.randrange(10), "queue_len": rng.randrange(4)})
            )
        elif kind == "phase_begin":
            records.append(("phase_begin", f"phase{rng.randrange(3)}"))
        else:
            records.append(("phase_end", f"phase{rng.randrange(3)}"))
    if with_fin:
        records.append(("fin", time, len(records)))
    return records


def comparable(record: tuple) -> tuple:
    """Region objects -> identity keys, so streams from different
    registries (encoder side vs decoder side) compare by value."""
    out = []
    for item in record:
        if isinstance(item, Region):
            out.append((item.name, item.region_type, item.file, item.line))
        else:
            out.append(item)
    return tuple(out)
