"""Round-trip and malformed-input tests for the record codec."""

import math

import pytest

from repro.errors import RecordingError
from repro.recorder.codec import (
    KIND_ENTER,
    RecordDecoder,
    RecordEncoder,
    decode_varint,
    encode_varint,
    unzigzag,
    zigzag,
)

from tests.recorder.streams import comparable, make_regions, random_records


# ----------------------------------------------------------------------
# Primitives
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "value", [0, 1, 127, 128, 300, 2**20, 2**32, 2**63 - 1]
)
def test_varint_round_trip(value):
    out = bytearray()
    encode_varint(value, out)
    decoded, offset = decode_varint(bytes(out), 0)
    assert decoded == value
    assert offset == len(out)


def test_varint_rejects_negative():
    with pytest.raises(ValueError):
        encode_varint(-1, bytearray())


def test_varint_truncated_raises():
    out = bytearray()
    encode_varint(2**20, out)
    with pytest.raises(RecordingError):
        decode_varint(bytes(out[:-1]), 0)


@pytest.mark.parametrize("value", [0, 1, -1, 63, -64, 2**31, -(2**31)])
def test_zigzag_round_trip(value):
    assert unzigzag(zigzag(value)) == value


# ----------------------------------------------------------------------
# Stream round trip
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 1, 7, 42])
def test_random_stream_round_trips_exactly(seed):
    records = random_records(seed, 120)
    payload = RecordEncoder().encode(records)
    decoded = RecordDecoder().decode(payload)
    assert [comparable(r) for r in decoded] == [comparable(r) for r in records]


def test_times_survive_bit_exactly():
    regions = make_regions()
    awkward = [0.0, 1e-17, math.pi, 1 / 3, 2**53 + 1.0, 123456.789012345]
    records = [("exit", 0, t, regions[0]) for t in awkward]
    decoded = RecordDecoder().decode(RecordEncoder().encode(records))
    for record, time in zip(decoded, awkward):
        # == would pass for close floats; require the identical bits
        assert record[2].hex() == float(time).hex()


def test_regions_interned_once_across_chunks():
    """The second chunk referencing the same region must not re-def it,
    and a decoder that saw chunk 1 must resolve it in chunk 2."""
    regions = make_regions()
    encoder = RecordEncoder()
    first = encoder.encode([("exit", 0, 1.0, regions[0])])
    second = encoder.encode([("exit", 0, 2.0, regions[0])])
    assert len(second) < len(first)  # no repeated REGION_DEF
    decoder = RecordDecoder()
    decoder.decode(first)
    decoded = decoder.decode(second)
    assert comparable(decoded[0]) == comparable(("exit", 0, 2.0, regions[0]))


def test_decoder_interns_regions_by_identity():
    regions = make_regions()
    records = [("enter", 0, 1.0, regions[2], None), ("exit", 0, 2.0, regions[2])]
    decoded = RecordDecoder().decode(RecordEncoder().encode(records))
    assert decoded[0][3] is decoded[1][3]  # same Region object on replay


# ----------------------------------------------------------------------
# Malformed input
# ----------------------------------------------------------------------
def test_unknown_kind_byte_raises():
    with pytest.raises(RecordingError):
        RecordDecoder().decode(bytes([0x6E]))


def test_undefined_region_reference_raises():
    # ENTER referencing region id 5 with no preceding REGION_DEF
    payload = bytearray([KIND_ENTER])
    encode_varint(0, payload)  # thread
    payload += b"\x00" * 8  # time
    encode_varint(5, payload)  # undefined region id
    payload.append(0)  # no parameter
    with pytest.raises(RecordingError):
        RecordDecoder().decode(bytes(payload))


@pytest.mark.parametrize("seed", [0, 3])
def test_truncated_payload_raises_not_garbage(seed):
    """Any mid-record cut raises RecordingError -- it must never decode
    to wrong records or escape with IndexError/UnicodeDecodeError."""
    records = random_records(seed, 30)
    payload = RecordEncoder().encode(records)
    full = RecordDecoder().decode(payload)
    for cut in range(len(payload)):
        try:
            decoded = RecordDecoder().decode(payload[:cut])
        except RecordingError:
            continue
        # A clean record boundary: must be an exact prefix
        assert [comparable(r) for r in decoded] == [
            comparable(r) for r in full[: len(decoded)]
        ]


def test_encoder_rejects_unknown_kind():
    with pytest.raises(ValueError):
        RecordEncoder().encode([("warp", 0)])
