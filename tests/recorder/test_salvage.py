"""Salvage preference order: stream replay > checkpoint > generations."""

import shutil

import pytest

from repro.archive.store import content_hash
from repro.faults.campaign import run_tolerant
from repro.recorder import salvage_recording
from repro.recorder.store import (
    checkpoint_path,
    events_path,
    rotate_generation,
)


@pytest.fixture()
def recorded(tmp_path):
    record_dir = tmp_path / "run"
    outcome = run_tolerant(
        "fib",
        size="test",
        n_threads=2,
        seed=0,
        record_dir=str(record_dir),
        checkpoint_every=32,
    )
    assert outcome.status == "complete"
    return str(record_dir)


def _tear(record_dir, nbytes=40):
    path = events_path(record_dir)
    data = open(path, "rb").read()
    open(path, "wb").write(data[: len(data) - nbytes])


def test_torn_stream_salvages_by_replay(recorded):
    _tear(recorded)
    result = salvage_recording(recorded)
    assert result is not None
    assert result.source == "replay" and result.generation is None
    assert result.records > 0 and result.chunks > 0
    assert not result.complete
    assert result.profile.salvage is not None  # lenient replay marks partial


def test_salvage_is_a_pure_function_of_the_recorded_bytes(recorded):
    """Two salvages of the same prefix produce byte-identical cubes --
    what lets `repro verify --against <salvaged run>` re-derive them."""
    _tear(recorded)
    first = salvage_recording(recorded)
    second = salvage_recording(recorded)
    assert content_hash(first.profile) == content_hash(second.profile)


def test_unreadable_stream_falls_back_to_checkpoint(recorded):
    open(events_path(recorded), "wb").write(b"not a chunk stream")
    result = salvage_recording(recorded)
    assert result is not None
    assert result.source == "checkpoint" and result.generation is None
    assert result.records > 0
    assert any("checkpoint" in note for note in result.notes)


def test_dead_retry_falls_back_to_rotated_generation(recorded):
    # A warm-started retry rotated the good attempt aside, then died so
    # early its own stream holds nothing and it never checkpointed.
    generation = rotate_generation(recorded)
    assert generation == 0
    open(events_path(recorded), "wb").write(b"")
    result = salvage_recording(recorded)
    assert result is not None
    assert result.source == "replay" and result.generation == 0
    assert result.records > 0


def test_generation_checkpoint_is_the_last_resort(recorded):
    generation = rotate_generation(recorded)
    # destroy every stream, keep only the rotated checkpoint
    open(events_path(recorded), "wb").write(b"")
    open(f"{events_path(recorded)}.{generation}", "wb").write(b"garbage")
    result = salvage_recording(recorded)
    assert result is not None
    assert result.source == "checkpoint" and result.generation == 0


def test_nothing_recoverable_returns_none(tmp_path):
    assert salvage_recording(str(tmp_path)) is None
    shutil.rmtree(tmp_path)
    assert salvage_recording(str(tmp_path)) is None


def test_describe_is_json_able(recorded):
    import json

    _tear(recorded)
    info = salvage_recording(recorded).describe()
    assert json.loads(json.dumps(info)) == info
    assert info["source"] == "replay"
