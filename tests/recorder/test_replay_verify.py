"""Replay determinism and byte-identical verification."""

import pytest

from repro.archive.store import content_hash
from repro.cube.export import profile_to_dict
from repro.errors import RecordingError, ReplayDivergence
from repro.faults.campaign import run_tolerant
from repro.recorder import (
    diff_profile_dicts,
    rebuild_profile,
    replay_recording,
    verify_recording,
)
from repro.recorder.chunks import read_records
from repro.recorder.store import events_path, load_manifest

from tests.recorder.streams import random_records


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    record_dir = tmp_path_factory.mktemp("rec") / "run"
    outcome = run_tolerant(
        "fib", size="test", n_threads=2, seed=0,
        record_dir=str(record_dir), checkpoint_every=32,
    )
    assert outcome.status == "complete"
    return str(record_dir), outcome


# ----------------------------------------------------------------------
# Clean-run byte identity (the acceptance criterion)
# ----------------------------------------------------------------------
def test_replay_reproduces_live_cube_byte_identically(recorded):
    record_dir, outcome = recorded
    profile, stream = replay_recording(record_dir)
    assert stream.complete
    assert content_hash(profile) == content_hash(outcome.profile)
    assert profile_to_dict(profile) == profile_to_dict(outcome.profile)


def test_replay_is_deterministic(recorded):
    record_dir, _ = recorded
    first, _ = replay_recording(record_dir)
    second, _ = replay_recording(record_dir)
    assert content_hash(first) == content_hash(second)


def test_verify_matches_manifest_expectation(recorded):
    record_dir, _ = recorded
    report = verify_recording(record_dir)
    assert report.usable and report.matched
    assert report.exit_code == 0
    assert report.strict and report.complete
    assert report.expected_sha == load_manifest(record_dir)["live_sha256"]
    assert report.actual_sha == report.expected_sha


def test_verify_against_explicit_dict(recorded):
    record_dir, outcome = recorded
    report = verify_recording(
        record_dir, expected_dict=profile_to_dict(outcome.profile)
    )
    assert report.matched and report.exit_code == 0


# ----------------------------------------------------------------------
# Divergence surfaces as a structured report
# ----------------------------------------------------------------------
def test_wrong_expectation_is_a_divergence(recorded):
    record_dir, _ = recorded
    report = verify_recording(record_dir, expected_sha="0" * 64)
    assert report.usable and not report.matched
    assert report.exit_code == 1
    assert any("does not reproduce" in reason for reason in report.reasons)


def test_divergence_can_raise_with_report_attached(recorded):
    record_dir, _ = recorded
    with pytest.raises(ReplayDivergence) as excinfo:
        verify_recording(record_dir, expected_sha="0" * 64,
                         raise_on_divergence=True)
    assert excinfo.value.report.exit_code == 1


def test_divergence_against_dict_lists_differences(recorded):
    record_dir, outcome = recorded
    expected = profile_to_dict(outcome.profile)
    expected["n_threads"] = 99
    report = verify_recording(record_dir, expected_dict=expected)
    assert not report.matched
    assert any("n_threads" in diff for diff in report.differences)


def test_torn_tail_verifies_leniently_and_diverges_from_live(recorded, tmp_path):
    import shutil

    record_dir, _ = recorded
    torn_dir = tmp_path / "torn"
    shutil.copytree(record_dir, torn_dir)
    path = events_path(str(torn_dir))
    data = open(path, "rb").read()
    open(path, "wb").write(data[: len(data) - 40])  # tear off FIN chunk
    report = verify_recording(str(torn_dir))
    assert report.usable and not report.complete and not report.strict
    assert report.exit_code == 1  # partial prefix cannot equal the full cube


# ----------------------------------------------------------------------
# Unusable recordings
# ----------------------------------------------------------------------
def test_empty_dir_is_unusable(tmp_path):
    report = verify_recording(str(tmp_path))
    assert not report.usable and report.exit_code == 2


def test_no_expectation_is_unusable(tmp_path):
    from repro.recorder.chunks import ChunkWriter

    tmp_path.mkdir(exist_ok=True)
    writer = ChunkWriter(events_path(str(tmp_path)), chunk_records=8)
    for record in random_records(0, 20, with_fin=False):
        writer.append(record)
    writer.close(finish_time=50.0)
    report = verify_recording(str(tmp_path))  # no manifest, no --against
    assert not report.usable and report.exit_code == 2
    assert any("no expectation" in reason for reason in report.reasons)


def test_strict_replay_requires_fin(recorded, tmp_path):
    record_dir, _ = recorded
    stream = read_records(events_path(record_dir))
    no_fin = [r for r in stream.records if r[0] != "fin"]
    with pytest.raises(RecordingError):
        rebuild_profile(no_fin, strict=True)
    partial = rebuild_profile(no_fin, strict=False)
    assert partial is not None


def test_replay_recording_raises_on_empty_stream(tmp_path):
    with pytest.raises(RecordingError):
        replay_recording(str(tmp_path))


# ----------------------------------------------------------------------
# diff helper
# ----------------------------------------------------------------------
def test_diff_profile_dicts_is_bounded():
    a = {"k": list(range(40))}
    b = {"k": [v + 1 for v in range(40)]}
    diffs = diff_profile_dicts(a, b, limit=5)
    assert len(diffs) == 6  # 5 entries + truncation marker
    assert diffs[-1].startswith("...")


def test_diff_profile_dicts_names_missing_keys():
    diffs = diff_profile_dicts({"only_live": 1}, {"only_replay": 2})
    assert any("missing in live" in d for d in diffs)
    assert any("missing in replayed" in d for d in diffs)
