"""CLI surface: `run --record`, `repro replay`, `repro verify`."""

import json

import pytest

from repro.cli import main
from repro.recorder.store import events_path, load_manifest


@pytest.fixture()
def recorded(tmp_path, capsys):
    record_dir = tmp_path / "rec"
    code = main(
        ["run", "fib", "--size", "test", "--threads", "2",
         "--record", str(record_dir), "--checkpoint-every", "32"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "recorded" in out and "chunk(s)" in out
    return record_dir


def _tear(record_dir, nbytes=40):
    path = events_path(str(record_dir))
    data = open(path, "rb").read()
    open(path, "wb").write(data[: len(data) - nbytes])


# ----------------------------------------------------------------------
# run --record
# ----------------------------------------------------------------------
def test_run_record_stamps_live_sha(recorded):
    manifest = load_manifest(str(recorded))
    assert manifest["complete"] is True
    assert len(manifest["live_sha256"]) == 64


def test_run_record_refuses_no_instrument(tmp_path, capsys):
    code = main(
        ["run", "fib", "--size", "test", "--no-instrument",
         "--record", str(tmp_path / "rec")]
    )
    assert code == 2
    assert "--record needs the profiler" in capsys.readouterr().err


def test_tolerant_run_records_too(tmp_path, capsys):
    record_dir = tmp_path / "rec"
    code = main(
        ["run", "fib", "--size", "test", "--threads", "2",
         "--tolerate-errors", "--record", str(record_dir)]
    )
    assert code == 0
    assert "recording:" in capsys.readouterr().out
    assert main(["verify", str(record_dir)]) == 0


# ----------------------------------------------------------------------
# replay
# ----------------------------------------------------------------------
def test_replay_renders_and_exports(recorded, tmp_path, capsys):
    out_json = tmp_path / "replayed.json"
    code = main(
        ["replay", str(recorded), "--render", "--json", str(out_json)]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "stream complete" in out
    data = json.loads(out_json.read_text())
    assert data["regions"]


def test_replay_strict_fails_on_torn_stream(recorded, capsys):
    _tear(recorded)
    assert main(["replay", str(recorded), "--strict"]) == 2
    assert "RecordingError" in capsys.readouterr().err


def test_replay_lenient_salvages_torn_stream(recorded, capsys):
    _tear(recorded)
    assert main(["replay", str(recorded)]) == 0
    out = capsys.readouterr().out
    assert "partial" in out


def test_replay_empty_dir_fails_cleanly(tmp_path, capsys):
    assert main(["replay", str(tmp_path)]) == 2
    assert "repro:" in capsys.readouterr().err


# ----------------------------------------------------------------------
# verify
# ----------------------------------------------------------------------
def test_verify_clean_run_matches(recorded, capsys):
    assert main(["verify", str(recorded)]) == 0
    assert "MATCH" in capsys.readouterr().out


def test_verify_torn_run_diverges(recorded, capsys):
    _tear(recorded)
    assert main(["verify", str(recorded)]) == 1
    assert "DIVERGED" in capsys.readouterr().out


def test_verify_json_report(recorded, capsys):
    assert main(["verify", str(recorded), "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["matched"] is True and report["exit_code"] == 0


def test_verify_unusable_dir(tmp_path, capsys):
    assert main(["verify", str(tmp_path)]) == 2
    assert "UNUSABLE" in capsys.readouterr().out


def test_verify_against_requires_archive(recorded, capsys):
    assert main(["verify", str(recorded), "--against", "r0001"]) == 2
    assert "--archive" in capsys.readouterr().err


def test_verify_against_archived_run(tmp_path, capsys):
    record_dir, arch = tmp_path / "rec", tmp_path / "arch"
    assert main(
        ["run", "fib", "--size", "test", "--threads", "2",
         "--record", str(record_dir), "--archive", str(arch)]
    ) == 0
    capsys.readouterr()
    assert main(
        ["verify", str(record_dir), "--against", "r0001",
         "--archive", str(arch)]
    ) == 0
    assert "MATCH" in capsys.readouterr().out
    # a different run's cube is a divergence, not a crash
    assert main(
        ["run", "fib", "--size", "test", "--threads", "3",
         "--archive", str(arch)]
    ) == 0
    capsys.readouterr()
    assert main(
        ["verify", str(record_dir), "--against", "r0002",
         "--archive", str(arch)]
    ) == 1


def test_verify_against_unknown_ref(recorded, tmp_path, capsys):
    code = main(
        ["verify", str(recorded), "--against", "r9999",
         "--archive", str(tmp_path / "empty-arch")]
    )
    assert code == 2
    assert "repro:" in capsys.readouterr().err
