"""The recording substrate end-to-end: manifests, checkpoints, warm starts."""

import os

import pytest

from repro.faults.campaign import run_tolerant
from repro.recorder.store import (
    checkpoint_path,
    events_path,
    generation_events_path,
    list_generations,
    load_checkpoint,
    load_manifest,
    rotate_generation,
    update_manifest,
    write_manifest,
)
from repro.recorder.chunks import read_records


def _record_run(record_dir, *, seed=0, checkpoint_every=32):
    return run_tolerant(
        "fib",
        size="test",
        n_threads=2,
        seed=seed,
        record_dir=str(record_dir),
        checkpoint_every=checkpoint_every,
    )


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    record_dir = tmp_path_factory.mktemp("rec") / "run"
    outcome = _record_run(record_dir)
    return record_dir, outcome


# ----------------------------------------------------------------------
# Clean run artifacts
# ----------------------------------------------------------------------
def test_clean_run_seals_a_complete_stream(recorded):
    record_dir, outcome = recorded
    assert outcome.status == "complete"
    stream = read_records(events_path(str(record_dir)))
    assert stream.complete and not stream.torn_bytes
    assert stream.records[0][0] == "init"
    assert stream.records[-1][0] == "fin"


def test_manifest_records_identity_and_live_sha(recorded):
    record_dir, outcome = recorded
    manifest = load_manifest(str(record_dir))
    assert manifest["complete"] is True
    assert manifest["n_threads"] == 2
    assert manifest["records"] > 0 and manifest["chunks"] > 0
    # the tolerant runner stamps the live cube's content hash for verify
    from repro.archive.store import content_hash

    assert manifest["live_sha256"] == content_hash(outcome.profile)


def test_checkpoints_written_with_cursor_and_cube_partial(recorded):
    record_dir, _ = recorded
    checkpoint = load_checkpoint(str(record_dir))
    assert checkpoint is not None
    assert checkpoint["records"] >= 32  # checkpoint_every fired at least once
    cursor = checkpoint["cursor"]
    # cursor counts sealed wire records (incl. the deferred init record),
    # checkpoint["records"] counts dispatched events
    assert 0 < cursor["records"] <= checkpoint["records"] + 1
    assert cursor["chunks"] > 0
    profile = checkpoint["profile"]
    assert profile is not None and profile["regions"]


def test_checkpoint_cursor_points_inside_the_sealed_prefix(recorded):
    record_dir, _ = recorded
    checkpoint = load_checkpoint(str(record_dir))
    stream = read_records(events_path(str(record_dir)))
    assert checkpoint["cursor"]["chunks"] <= stream.chunks
    assert checkpoint["cursor"]["records"] <= len(stream.records)


# ----------------------------------------------------------------------
# Warm start (retry into the same record_dir)
# ----------------------------------------------------------------------
def test_second_attempt_rotates_a_generation(tmp_path):
    record_dir = tmp_path / "run"
    _record_run(record_dir, seed=0)
    first_stream = read_records(events_path(str(record_dir)))
    _record_run(record_dir, seed=0)

    assert list_generations(str(record_dir)) == [0]
    rotated = read_records(generation_events_path(str(record_dir), 0))
    assert len(rotated.records) == len(first_stream.records)
    # the rotated checkpoint travelled with its stream
    assert os.path.exists(checkpoint_path(str(record_dir)) + ".0")
    manifest = load_manifest(str(record_dir))
    assert manifest["warm_start"]["generation"] == 0
    assert manifest["warm_start"]["cursor"]["records"] > 0
    # and the current attempt is itself complete + verifiable
    assert read_records(events_path(str(record_dir))).complete


# ----------------------------------------------------------------------
# Store primitives
# ----------------------------------------------------------------------
def test_rotate_generation_moves_stream_and_checkpoint_together(tmp_path):
    d = str(tmp_path)
    assert rotate_generation(d) is None  # nothing to rotate
    open(events_path(d), "wb").write(b"stream")
    open(checkpoint_path(d), "w").write("{}")
    assert rotate_generation(d) == 0
    assert not os.path.exists(events_path(d))
    assert not os.path.exists(checkpoint_path(d))
    assert os.path.exists(generation_events_path(d, 0))
    assert os.path.exists(checkpoint_path(d) + ".0")
    open(events_path(d), "wb").write(b"stream2")
    assert rotate_generation(d) == 1


def test_update_manifest_merges_or_noops(tmp_path):
    d = str(tmp_path)
    assert update_manifest(d, live_sha256="x") is None  # no manifest yet
    write_manifest(d, {"complete": False})
    merged = update_manifest(d, live_sha256="abc")
    assert merged["live_sha256"] == "abc" and merged["complete"] is False
    assert load_manifest(d)["live_sha256"] == "abc"


def test_stale_checkpoint_version_is_ignored(tmp_path):
    from repro.ioutil import atomic_write

    atomic_write(checkpoint_path(str(tmp_path)), '{"version": 99, "records": 5}')
    assert load_checkpoint(str(tmp_path)) is None
