"""The string-keyed substrate registry."""

import pytest

from repro.errors import SubstrateError
from repro.substrates import (
    OnlineValidationSubstrate,
    ProfilingSubstrate,
    StatsSubstrate,
    Substrate,
    TracingSubstrate,
    available_substrates,
    get_substrate,
    register_substrate,
    unregister_substrate,
)


def test_builtins_are_registered():
    names = available_substrates()
    for builtin in ("profiling", "tracing", "validation", "stats"):
        assert builtin in names


@pytest.mark.parametrize(
    "name,cls",
    [
        ("profiling", ProfilingSubstrate),
        ("tracing", TracingSubstrate),
        ("validation", OnlineValidationSubstrate),
        ("stats", StatsSubstrate),
    ],
)
def test_get_substrate_instantiates_builtin(name, cls):
    substrate = get_substrate(name)
    assert isinstance(substrate, cls)
    assert substrate.name == name
    # A second get returns a *fresh* instance (substrates hold run state).
    assert get_substrate(name) is not substrate


def test_get_substrate_forwards_kwargs():
    substrate = get_substrate("profiling", max_call_path_depth=3, strict=False)
    assert substrate.max_call_path_depth == 3
    assert substrate.strict is False


def test_unknown_name_raises_with_suggestion():
    with pytest.raises(SubstrateError, match="did you mean 'profiling'"):
        get_substrate("profilng")
    with pytest.raises(SubstrateError, match="available:"):
        get_substrate("definitely-not-a-substrate")


def test_register_and_unregister_third_party():
    class CustomSubstrate(Substrate):
        name = "custom-test"

    try:
        register_substrate("custom-test", CustomSubstrate)
        assert "custom-test" in available_substrates()
        assert isinstance(get_substrate("custom-test"), CustomSubstrate)
        with pytest.raises(SubstrateError, match="already registered"):
            register_substrate("custom-test", CustomSubstrate)
        register_substrate("custom-test", CustomSubstrate, replace=True)
    finally:
        unregister_substrate("custom-test")
    assert "custom-test" not in available_substrates()


def test_register_rejects_non_callable():
    with pytest.raises(TypeError):
        register_substrate("bad", object())


def test_factory_must_return_a_substrate():
    try:
        register_substrate("not-a-substrate", lambda: object())
        with pytest.raises(SubstrateError, match="not a Substrate"):
            get_substrate("not-a-substrate")
    finally:
        unregister_substrate("not-a-substrate")
