"""SubstrateManager: fan-out order, quarantine, overhead accounting."""

import pytest

from repro.errors import SubstrateError
from repro.events import RegionRegistry, RegionType
from repro.substrates import Substrate, SubstrateManager


class JournalingSubstrate(Substrate):
    """Records every callback into a shared journal (order-sensitive)."""

    essential = False

    def __init__(self, name, journal, per_event_cost=0.0):
        self.name = name
        self.journal = journal
        self.per_event_cost = per_event_cost
        self.initialized = False
        self.finalized_at = None

    def initialize(self, registry, n_threads, start_time, implicit_region=None):
        self.initialized = True

    def on_enter(self, thread_id, region, time, parameter=None):
        self.journal.append((self.name, "enter", thread_id))

    def on_exit(self, thread_id, region, time):
        self.journal.append((self.name, "exit", thread_id))

    def on_task_begin(self, thread_id, region, instance, time, parameter=None):
        self.journal.append((self.name, "task_begin", instance))

    def finalize(self, time):
        self.finalized_at = time

    def artifact(self):
        return list(self.journal)


class BrokenSubstrate(Substrate):
    def __init__(self, name="broken", essential=False, fail_after=0):
        self.name = name
        self.essential = essential
        self.fail_after = fail_after
        self.seen = 0

    def on_enter(self, thread_id, region, time, parameter=None):
        self.seen += 1
        if self.seen > self.fail_after:
            raise RuntimeError("substrate exploded")


@pytest.fixture()
def region():
    return RegionRegistry().register("r", RegionType.FUNCTION)


def make_manager(*substrates):
    manager = SubstrateManager(list(substrates))
    manager.initialize(RegionRegistry(), 2, 0.0)
    return manager


def test_fanout_preserves_attachment_order(region):
    journal = []
    manager = make_manager(
        JournalingSubstrate("a", journal), JournalingSubstrate("b", journal)
    )
    manager.on_enter(0, region, 1.0)
    manager.on_exit(0, region, 2.0)
    assert journal == [
        ("a", "enter", 0),
        ("b", "enter", 0),
        ("a", "exit", 0),
        ("b", "exit", 0),
    ]
    assert manager.events_delivered == 2


def test_duplicate_names_rejected():
    with pytest.raises(SubstrateError, match="duplicate"):
        SubstrateManager([JournalingSubstrate("x", []), JournalingSubstrate("x", [])])


def test_nonessential_failure_quarantines_without_killing_others(region):
    journal = []
    survivor = JournalingSubstrate("survivor", journal)
    broken = BrokenSubstrate(fail_after=1)
    manager = make_manager(broken, survivor)

    manager.on_enter(0, region, 1.0)  # broken sees event 1, survives
    manager.on_enter(0, region, 2.0)  # broken raises -> quarantined
    manager.on_enter(0, region, 3.0)  # only survivor left

    assert len(manager.incidents) == 1
    incident = manager.incidents[0]
    assert incident.substrate == "broken"
    assert incident.callback == "on_enter"
    assert "substrate exploded" in incident.error
    assert manager.quarantined("broken")
    assert not manager.quarantined("survivor")
    # The survivor saw every event, including the one that broke its peer.
    assert [entry for entry in journal if entry[0] == "survivor"] == [
        ("survivor", "enter", 0),
        ("survivor", "enter", 0),
        ("survivor", "enter", 0),
    ]
    # The broken substrate stopped receiving events after quarantine.
    assert broken.seen == 2


def test_essential_failure_propagates(region):
    manager = make_manager(BrokenSubstrate(essential=True))
    with pytest.raises(RuntimeError, match="substrate exploded"):
        manager.on_enter(0, region, 1.0)
    assert manager.incidents == []


def test_quarantined_substrate_is_not_finalized(region):
    healthy = JournalingSubstrate("healthy", [])
    broken = BrokenSubstrate(fail_after=0)
    manager = make_manager(broken, healthy)
    manager.on_enter(0, region, 1.0)
    manager.on_finish(9.0)
    assert healthy.finalized_at == 9.0
    assert manager.quarantined("broken")


def test_extra_cost_is_summed_and_stable_across_quarantine(region):
    broken = BrokenSubstrate(fail_after=0)
    broken.per_event_cost = 0.5
    cheap = JournalingSubstrate("cheap", [], per_event_cost=0.25)
    manager = make_manager(broken, cheap)
    assert manager.extra_cost_per_event == pytest.approx(0.75)
    manager.on_enter(0, region, 1.0)  # quarantines broken
    # Determinism: the charge is part of the virtual timeline and must
    # not change mid-run.
    assert manager.extra_cost_per_event == pytest.approx(0.75)


def test_report_attributes_events_and_charge_per_substrate(region):
    broken = BrokenSubstrate(fail_after=1)
    cheap = JournalingSubstrate("cheap", [], per_event_cost=0.25)
    manager = make_manager(broken, cheap)
    for t in range(4):
        manager.on_enter(0, region, float(t))
    report = manager.report()
    assert report["cheap"]["events"] == 4
    assert report["cheap"]["charged_us"] == pytest.approx(1.0)
    assert report["cheap"]["quarantined"] is False
    assert report["broken"]["quarantined"] is True
    assert report["broken"]["events"] == 2  # delivery stopped at quarantine
    assert "substrate exploded" in report["broken"]["error"]


def test_artifacts_cover_every_substrate_even_quarantined(region):
    journal = []
    manager = make_manager(
        BrokenSubstrate(fail_after=0), JournalingSubstrate("j", journal)
    )
    manager.on_enter(0, region, 1.0)
    artifacts = manager.artifacts()
    assert set(artifacts) == {"broken", "j"}
    assert artifacts["j"] == [("j", "enter", 0)]


def test_metric_and_phase_do_not_count_as_events(region):
    manager = make_manager(JournalingSubstrate("j", []))
    manager.on_metric(0, {"c": 1}, 1.0)
    manager.on_phase_begin("p")
    manager.on_phase_end("p")
    assert manager.events_delivered == 0


def test_lookup_helpers(region):
    journal = []
    j = JournalingSubstrate("j", journal)
    manager = make_manager(j)
    assert manager.get("j") is j
    assert manager.get("nope") is None
    assert manager.find(JournalingSubstrate) is j
    assert manager.find(BrokenSubstrate) is None
