"""Substrates wired through the runtime: the multi-layer contract.

The acceptance bar for the substrate refactor:

* legacy ``instrument=True`` runs and explicit ``substrates=("profiling",)``
  runs export byte-identical cubes,
* one run feeds many consumers (profile + trace + stats + validation),
* a broken third-party substrate is quarantined, noted in the salvage
  report, and the run still completes,
* a substrate's ``per_event_cost`` is charged on the virtual timeline,
* config-level conveniences (normalization, run_tolerant pass-through).
"""

import pytest

from repro.cube import dumps
from repro.errors import SubstrateError
from repro.faults import run_tolerant
from repro.runtime import RuntimeConfig
from repro.runtime.runtime import run_parallel
from repro.substrates import (
    OnlineValidationSubstrate,
    StatsSubstrate,
    Substrate,
)


def fib(ctx, n):
    if n < 2:
        yield ctx.compute(1.0)
        return n
    a = yield ctx.spawn(fib, n - 1)
    b = yield ctx.spawn(fib, n - 2)
    yield ctx.taskwait()
    yield ctx.compute(0.5)
    return a.result + b.result


def fib_region(ctx, n=7):
    if (yield ctx.single()):
        root = yield ctx.spawn(fib, n)
        yield ctx.taskwait()
        return root.result
    return None


def run(**overrides):
    config = RuntimeConfig(n_threads=2, seed=3, **overrides)
    return run_parallel(fib_region, config=config, name="fib-kernel")


def test_explicit_profiling_substrate_matches_legacy_byte_for_byte():
    legacy = run(instrument=True)
    explicit = run(instrument=True, substrates=("profiling",))
    assert legacy.duration == explicit.duration
    assert legacy.events_dispatched == explicit.events_dispatched
    assert dumps(legacy.profile) == dumps(explicit.profile)


def test_one_run_feeds_many_consumers():
    result = run(
        instrument=True,
        substrates=("profiling", "tracing", "stats", "validation"),
    )
    # Classic artifacts still surface as first-class fields...
    assert result.profile is not None
    assert result.trace is not None
    # ...and every substrate reports through the artifact map.
    artifacts = result.substrate_artifacts
    assert set(artifacts) == {"profiling", "tracing", "stats", "validation"}
    assert artifacts["profiling"] is result.profile
    assert artifacts["tracing"] is result.trace
    stats = artifacts["stats"]
    assert stats["total_events"] == result.events_dispatched
    assert sum(stats["per_thread"]) == result.events_dispatched
    # The online validator agrees with the post-hoc one: a healthy run.
    assert artifacts["validation"]["clean"] is True
    # Per-substrate overhead report rides in ``extra``.
    report = result.extra["substrates"]
    assert set(report) == {"profiling", "tracing", "stats", "validation"}
    for row in report.values():
        assert row["events"] == result.events_dispatched
        assert row["quarantined"] is False


def test_substrates_do_not_perturb_virtual_time():
    baseline = run(instrument=True)
    loaded = run(
        instrument=True,
        substrates=("profiling", "tracing", "stats", "validation"),
    )
    assert loaded.duration == baseline.duration
    assert loaded.events_dispatched == baseline.events_dispatched


class ExplodingSubstrate(Substrate):
    name = "exploding"
    essential = False

    def __init__(self, fail_after=5):
        self.fail_after = fail_after
        self.seen = 0

    def on_enter(self, thread_id, region, time, parameter=None):
        self.seen += 1
        if self.seen > self.fail_after:
            raise RuntimeError("measurement backend fell over")


def test_broken_substrate_is_quarantined_and_noted_in_salvage():
    exploding = ExplodingSubstrate(fail_after=5)
    result = run(instrument=True, substrates=("profiling", exploding))
    # The run completed and the essential consumer is intact.
    assert result.profile is not None
    assert [v for v in result.return_values if v is not None] == [13]
    report = result.extra["substrates"]
    assert report["exploding"]["quarantined"] is True
    assert "fell over" in report["exploding"]["error"]
    assert report["profiling"]["quarantined"] is False
    # The incident is attributed on the profile's salvage report.
    salvage = result.profile.salvage
    assert salvage is not None
    assert any("exploding" in note for note in salvage.notes)


def test_substrate_per_event_cost_is_charged():
    class CostlySubstrate(Substrate):
        name = "costly"
        per_event_cost = 0.5

    free = run(instrument=True, substrates=("profiling",))
    costly = run(instrument=True, substrates=("profiling", CostlySubstrate()))
    assert costly.duration > free.duration
    assert costly.events_dispatched == free.events_dispatched
    instr_free = sum(s["instr"] for s in free.thread_stats)
    instr_costly = sum(s["instr"] for s in costly.thread_stats)
    # Every dispatched event carries the extra 0.5 us charge.
    assert instr_costly - instr_free == pytest.approx(
        0.5 * costly.events_dispatched
    )
    assert costly.extra["substrates"]["costly"]["charged_us"] == pytest.approx(
        0.5 * costly.events_dispatched
    )


def test_substrates_run_without_instrumentation_cost():
    # ``instrument=False``: substrates still observe events, but the
    # base per-event instrumentation charge stays at zero.
    result = run(instrument=False, substrates=("stats",))
    stats = result.substrate_artifacts["stats"]
    assert stats["total_events"] > 0
    assert result.profile is None
    assert sum(s["instr"] for s in result.thread_stats) == 0.0


def test_config_normalizes_substrate_list_to_tuple():
    config = RuntimeConfig(substrates=["stats", "validation"])
    assert config.substrates == ("stats", "validation")
    derived = config.with_substrates("profiling", StatsSubstrate())
    assert derived.substrates[0] == "profiling"
    assert isinstance(derived.substrates[1], StatsSubstrate)
    assert config.substrates == ("stats", "validation")  # original frozen


def test_unknown_substrate_name_fails_fast():
    with pytest.raises(SubstrateError, match="unknown substrate"):
        run(substrates=("profilng",))


def test_run_tolerant_accepts_extra_substrates():
    # ``profiling`` and ``tracing`` are force-added alongside the request,
    # so the salvage machinery keeps both its inputs.
    outcome = run_tolerant("fib", size="test", n_threads=2, substrates=["stats"])
    assert outcome.status == "complete"
    assert outcome.profile is not None
    assert outcome.verified is not False


def test_substrate_instances_in_config_stay_inspectable():
    # Passing a live instance (rather than a registry name) lets callers
    # keep a handle on the consumer and query it after the run.
    sub = OnlineValidationSubstrate()
    result = run(instrument=True, substrates=("profiling", sub))
    assert sub.clean
    assert sub.events_checked == result.events_dispatched
    assert result.substrate_artifacts["validation"] == sub.artifact()
