"""Batched substrate dispatch: the shim contract, quarantine, accounting.

The columnar hot path hands whole :class:`EventBatch`\\ es to
``SubstrateManager.on_batch``.  These tests pin the contract:

* the base-class fallback shim replays the same events in the same order
  the per-event fan-out would deliver;
* ``events_delivered`` counts individual events per batch, not flushes;
* a non-essential substrate raising mid-batch is quarantined exactly as
  under per-event dispatch, and an essential one aborts the run;
* the satellite fix: ``extra_cost_per_event`` is cached at dispatch
  rebuilds and stays stable across a mid-run quarantine.
"""

import pytest

from repro.events.batch import EventBatch
from repro.events.regions import RegionRegistry, RegionType
from repro.substrates.base import Substrate
from repro.substrates.governor import GovernorSubstrate
from repro.substrates.manager import SubstrateManager


class ProbeSubstrate(Substrate):
    """Records every callback invocation; overrides no on_batch."""

    essential = False

    def __init__(self, name="probe", per_event_cost=0.0):
        self.name = name
        self.per_event_cost = per_event_cost
        self.calls = []

    def on_enter(self, thread_id, region, time, parameter=None):
        self.calls.append(("enter", thread_id, region.name, time, parameter))

    def on_exit(self, thread_id, region, time):
        self.calls.append(("exit", thread_id, region.name, time))

    def on_task_begin(self, thread_id, region, instance, time, parameter=None):
        self.calls.append(("task_begin", thread_id, region.name, instance, time, parameter))

    def on_task_end(self, thread_id, region, instance, time):
        self.calls.append(("task_end", thread_id, region.name, instance, time))

    def on_task_switch(self, thread_id, instance, time):
        self.calls.append(("task_switch", thread_id, instance, time))

    def on_metric(self, thread_id, counters, time):
        self.calls.append(("metric", thread_id, counters, time))


class BlowupSubstrate(ProbeSubstrate):
    """Raises from on_enter after ``survive`` successful enters."""

    def __init__(self, name="blowup", survive=0, essential=False):
        super().__init__(name=name)
        self.survive = survive
        self.essential = essential

    def on_enter(self, thread_id, region, time, parameter=None):
        if len([c for c in self.calls if c[0] == "enter"]) >= self.survive:
            raise RuntimeError("boom")
        super().on_enter(thread_id, region, time, parameter)


@pytest.fixture
def regions():
    reg = RegionRegistry()
    return reg, {
        "f": reg.register("f", RegionType.FUNCTION),
        "task": reg.register("task", RegionType.TASK),
        "barrier": reg.register("barrier", RegionType.IMPLICIT_BARRIER),
    }


def _mixed_batch(reg, r):
    batch = EventBatch(reg)
    batch.add_enter(0, r["f"], 1.0)
    batch.add_task_begin(1, r["task"], 7, 2.0, parameter=("n", 3))
    batch.add_metric(0, {"cnt": 4}, 2.5)
    batch.add_task_switch(1, -2, 3.0)
    batch.add_task_end(1, r["task"], 7, 4.0)
    batch.add_exit(0, r["f"], 5.0)
    return batch


# ----------------------------------------------------------------------
# Shim equivalence
# ----------------------------------------------------------------------
def test_shim_replays_same_events_same_order(regions):
    reg, r = regions
    per_event = ProbeSubstrate("per-event")
    batched = ProbeSubstrate("batched")
    manager = SubstrateManager([batched])
    manager.initialize(reg, 2, 0.0)

    # Legacy-style direct delivery to the reference probe...
    per_event.on_enter(0, r["f"], 1.0, None)
    per_event.on_task_begin(1, r["task"], 7, 2.0, ("n", 3))
    per_event.on_metric(0, {"cnt": 4}, 2.5)
    per_event.on_task_switch(1, -2, 3.0)
    per_event.on_task_end(1, r["task"], 7, 4.0)
    per_event.on_exit(0, r["f"], 5.0)
    # ...and one batch through the manager for the other.
    manager.on_batch(_mixed_batch(reg, r))

    assert batched.calls == per_event.calls


def test_events_delivered_counts_events_not_flushes(regions):
    reg, r = regions
    manager = SubstrateManager([ProbeSubstrate()])
    manager.initialize(reg, 2, 0.0)
    batch = _mixed_batch(reg, r)
    assert batch.counted == 5  # the metric row is not cost-bearing
    manager.on_batch(batch)
    manager.on_batch(_mixed_batch(reg, r))
    assert manager.events_delivered == 10


def test_governor_substrate_not_in_batch_fanout(regions):
    reg, r = regions
    gov = GovernorSubstrate()
    probe = ProbeSubstrate()
    manager = SubstrateManager([gov, probe])
    manager.initialize(reg, 2, 0.0)
    assert gov not in manager._targets_on_batch
    assert probe in manager._targets_on_batch
    manager.on_batch(_mixed_batch(reg, r))  # must not touch the governor
    assert len(probe.calls) == 6


# ----------------------------------------------------------------------
# Quarantine semantics
# ----------------------------------------------------------------------
def test_quarantine_mid_batch_spares_other_substrates(regions):
    reg, r = regions
    bad = BlowupSubstrate(survive=0)
    good = ProbeSubstrate("good")
    manager = SubstrateManager([bad, good])
    manager.initialize(reg, 2, 0.0)

    manager.on_batch(_mixed_batch(reg, r))
    assert manager.quarantined("blowup")
    [incident] = manager.incidents
    assert incident.callback == "on_batch"
    # batch granularity: the whole batch was accounted before dispatch
    assert incident.events_delivered == 5
    assert len(good.calls) == 6

    # A second batch is delivered to the survivor only.
    manager.on_batch(_mixed_batch(reg, r))
    assert len(good.calls) == 12
    assert manager.events_delivered == 10


def test_essential_substrate_exception_propagates(regions):
    reg, r = regions
    bad = BlowupSubstrate(survive=0, essential=True)
    manager = SubstrateManager([bad])
    manager.initialize(reg, 2, 0.0)
    with pytest.raises(RuntimeError, match="boom"):
        manager.on_batch(_mixed_batch(reg, r))
    assert not manager.incidents


# ----------------------------------------------------------------------
# Satellite: extra_cost_per_event caching
# ----------------------------------------------------------------------
def test_extra_cost_cached_and_stable_across_quarantine(regions):
    reg, r = regions
    bad = BlowupSubstrate(survive=2)
    bad.per_event_cost = 0.7
    good = ProbeSubstrate("good", per_event_cost=0.3)
    manager = SubstrateManager([bad, good])
    manager.initialize(reg, 2, 0.0)

    assert manager.extra_cost_per_event == pytest.approx(1.0)
    # The property reads the cached field, not a live re-summation.
    assert manager.extra_cost_per_event is manager._extra_cost_per_event

    # Two enters survive, the third quarantines `bad` mid-run...
    for t in (1.0, 2.0, 3.0):
        manager.on_enter(0, r["f"], t)
    assert manager.quarantined("blowup")
    # ...and the charge must NOT drop: the cost model is part of the
    # deterministic virtual timeline.
    assert manager.extra_cost_per_event == pytest.approx(1.0)

    # The cache is re-derived (same value) on the quarantine rebuild.
    assert manager._extra_cost_per_event == pytest.approx(1.0)
