"""Unit tests for the built-in substrates, driven callback-by-callback."""

import pytest

from repro.events import RegionRegistry, RegionType
from repro.substrates import OnlineValidationSubstrate, StatsSubstrate


@pytest.fixture()
def registry():
    return RegionRegistry()


# ----------------------------------------------------------------------
# StatsSubstrate
# ----------------------------------------------------------------------
def test_stats_counts_per_kind_thread_and_region_type(registry):
    func = registry.register("f", RegionType.FUNCTION)
    task = registry.register("t", RegionType.TASK)
    stats = StatsSubstrate()
    stats.initialize(registry, 2, 0.0)

    stats.on_enter(0, func, 1.0)
    stats.on_exit(0, func, 2.0)
    stats.on_task_begin(1, task, 1, 3.0)
    stats.on_task_switch(1, -2, 4.0)
    stats.on_task_end(1, task, 1, 5.0)
    stats.on_metric(0, {"c": 1}, 5.0)

    artifact = stats.artifact()
    assert artifact["total_events"] == 5  # metric piggybacks, not counted
    assert artifact["per_thread"] == [2, 3]
    assert artifact["per_kind"] == {
        "enter": 1,
        "exit": 1,
        "task_begin": 1,
        "task_end": 1,
        "task_switch": 1,
        "metric": 1,
    }
    assert artifact["per_region_type"] == {"function": 1}


# ----------------------------------------------------------------------
# OnlineValidationSubstrate
# ----------------------------------------------------------------------
def test_validation_clean_sequence(registry):
    func = registry.register("f", RegionType.FUNCTION)
    task = registry.register("t", RegionType.TASK)
    sub = OnlineValidationSubstrate()
    sub.initialize(registry, 1, 0.0)

    sub.on_enter(0, func, 1.0)
    sub.on_exit(0, func, 2.0)
    sub.on_task_begin(0, task, 1, 3.0)
    sub.on_task_end(0, task, 1, 4.0)
    sub.finalize(5.0)

    artifact = sub.artifact()
    assert artifact["clean"] is True
    assert artifact["violations"] == 0
    assert artifact["events_checked"] == 4


def test_validation_flags_corrupt_stream_online(registry):
    func = registry.register("f", RegionType.FUNCTION)
    task = registry.register("t", RegionType.TASK)
    sub = OnlineValidationSubstrate()
    sub.initialize(registry, 1, 0.0)

    sub.on_exit(0, func, 1.0)  # exit with no open region
    sub.on_task_end(0, task, 7, 2.0)  # end of a never-begun instance
    sub.on_enter(0, func, 1.5)  # timestamp going backwards
    sub.on_task_begin(0, task, 1, 3.0)  # begun...
    sub.finalize(9.0)  # ...but never ended

    artifact = sub.artifact()
    assert artifact["clean"] is False
    kinds = artifact["by_kind"]
    assert kinds["exit-unmatched"] == 1
    assert kinds["end-inactive"] == 1
    assert kinds["time-order"] == 1
    assert kinds["end-count"] == 1  # instance 1 begun, ended 0 times
    assert kinds["end-without-begin"] == 1  # instance 7 ended, never begun
    assert artifact["violations"] == sum(kinds.values())
    assert artifact["first"]  # human-readable samples retained


def test_validation_detects_cross_thread_double_begin(registry):
    task = registry.register("t", RegionType.TASK)
    sub = OnlineValidationSubstrate()
    sub.initialize(registry, 2, 0.0)

    sub.on_task_begin(0, task, 1, 1.0)
    sub.on_task_end(0, task, 1, 2.0)
    sub.on_task_begin(1, task, 1, 3.0)  # same instance begun again elsewhere
    sub.on_task_end(1, task, 1, 4.0)
    sub.finalize(5.0)

    artifact = sub.artifact()
    assert artifact["by_kind"]["begin-count"] == 1
    assert artifact["by_kind"]["end-count"] == 1


def test_validation_allows_untied_migration_between_threads(registry):
    task = registry.register("t", RegionType.TASK)
    sub = OnlineValidationSubstrate()
    sub.initialize(registry, 2, 0.0)

    # Begin on thread 0, suspend, resume and end on thread 1: legal for
    # untied tasks, and the cross-thread known_active set proves it live.
    sub.on_task_begin(0, task, 1, 1.0)
    sub.on_task_switch(0, -1, 2.0)
    sub.on_task_switch(1, 1, 3.0)
    sub.on_task_end(1, task, 1, 4.0)
    sub.finalize(5.0)

    assert sub.artifact()["clean"] is True


def test_validation_caps_recorded_but_counts_all(registry):
    func = registry.register("f", RegionType.FUNCTION)
    sub = OnlineValidationSubstrate(max_recorded=3)
    sub.initialize(registry, 1, 0.0)
    for i in range(10):
        sub.on_exit(0, func, float(i))  # ten unmatched exits
    assert sub.total_violations == 10
    assert len(sub.violations) == 3
