"""Unit tests for the :class:`ResourceGovernor` degradation ladder."""

import pytest

from repro.errors import MemoryPressureStop
from repro.governor import (
    L0_NORMAL,
    L1_EAGER_RELEASE,
    L2_AGGREGATES_ONLY,
    L3_STUB_ONLY,
    L4_STOP,
    LEVEL_ACTIONS,
    LEVEL_NAMES,
    MemoryBudget,
    PressureIncident,
    ResourceGovernor,
)


def _governor(cap=10, **kwargs):
    return ResourceGovernor(MemoryBudget(max_live_instances=cap, **kwargs))


def test_no_pressure_stays_at_l0():
    gov = _governor()
    gov.live_instances = 4  # 0.4 < soft watermark 0.5
    assert gov.check(now=1.0) == L0_NORMAL
    assert gov.incidents == []
    assert not gov.degraded


def test_watermarks_position_the_rungs():
    gov = _governor()
    gov.live_instances = 5  # soft: 0.5
    assert gov.check(1.0) == L1_EAGER_RELEASE
    gov.live_instances = 8  # hard: 0.8
    assert gov.check(2.0) == L2_AGGREGATES_ONLY
    gov.live_instances = 10  # cap itself
    assert gov.check(3.0) == L3_STUB_ONLY
    assert [i.level for i in gov.incidents] == [1, 2, 3]


def test_pressure_jump_emits_one_incident_per_rung():
    gov = _governor()
    gov.live_instances = 10  # straight from L0 to L3
    assert gov.check(5.0) == L3_STUB_ONLY
    assert [i.level for i in gov.incidents] == [1, 2, 3]
    for incident in gov.incidents:
        assert incident.trigger == "live_instances"
        assert incident.value == 10 and incident.limit == 10
        assert incident.time_us == 5.0
        assert incident.action == LEVEL_ACTIONS[incident.level]


def test_ladder_ratchets_never_recovers():
    gov = _governor()
    gov.live_instances = 8
    assert gov.check(1.0) == L2_AGGREGATES_ONLY
    gov.live_instances = 0  # pressure fully relieved
    assert gov.check(2.0) == L2_AGGREGATES_ONLY
    assert len(gov.incidents) == 2  # no new transitions either


def test_level_actions_fire_once_on_entry():
    gov = _governor()
    fired = []
    gov.on_level(L1_EAGER_RELEASE, lambda: fired.append("l1"))
    gov.on_level(L2_AGGREGATES_ONLY, lambda: fired.append("l2"))
    gov.live_instances = 8
    gov.check(1.0)
    gov.check(2.0)  # still at L2: actions must not re-fire
    assert fired == ["l1", "l2"]


def test_degrade_mode_stops_at_stop_fraction():
    gov = _governor()  # stop_fraction=2.0 -> 20 live instances
    gov.live_instances = 20
    with pytest.raises(MemoryPressureStop, match="L4"):
        gov.check(9.0)
    assert gov.level == L4_STOP
    assert [i.level for i in gov.incidents] == [1, 2, 3, 4]


def test_stop_policy_fires_at_hard_watermark():
    gov = _governor(on_pressure="stop")
    gov.live_instances = 7  # 0.7 < hard 0.8: stop policy ignores soft
    assert gov.check(1.0) == L0_NORMAL
    gov.live_instances = 8
    with pytest.raises(MemoryPressureStop):
        gov.check(2.0)
    assert gov.level == L4_STOP
    assert gov.incidents[-1].level == L4_STOP


def test_unarmed_budget_never_checks():
    gov = ResourceGovernor(MemoryBudget())
    gov.live_instances = 10 ** 6
    assert gov.check(1.0) == L0_NORMAL
    assert gov.incidents == []


def test_on_task_created_counts_stubbed_tasks_at_l3():
    gov = _governor(cap=2)
    assert gov.on_task_created(1.0) == L0_NORMAL
    gov.note_instance_begun(1.0)
    gov.note_instance_begun(1.5)  # at cap: L3 after the walk
    assert gov.level == L3_STUB_ONLY
    assert gov.on_task_created(2.0) == L3_STUB_ONLY
    assert gov.created_tasks == 2
    assert gov.stubbed_tasks == 1


def test_instance_accounting_tracks_peak_and_stub_split():
    gov = _governor(cap=100)
    gov.note_instance_begun(1.0)
    gov.note_instance_begun(1.1)
    gov.note_instance_begun(1.2, stub=True)
    assert gov.live_instances == 2
    assert gov.stub_instances == 1
    assert gov.peak_live == 2
    gov.note_instance_completed()
    gov.note_instance_completed(stub=True)
    assert gov.live_instances == 1
    assert gov.stub_instances == 0
    assert gov.peak_live == 2


def test_completion_never_goes_negative():
    # Salvage quarantine can drop an end event for an instance the
    # governor never saw begin; the counters must saturate at zero.
    gov = _governor()
    gov.note_instance_completed()
    gov.note_instance_completed(stub=True)
    assert gov.live_instances == 0
    assert gov.stub_instances == 0


def test_gauges_feed_pressure():
    gov = ResourceGovernor(MemoryBudget(max_live_instances=100, max_pool_nodes=10))
    gov.attach_gauge("pool_nodes", lambda: 9)
    ratio, trigger, value, cap = gov.pressure()
    assert trigger == "pool_nodes"
    assert (value, cap) == (9, 10)
    assert gov.check(1.0) == L2_AGGREGATES_ONLY
    assert gov.incidents[0].trigger == "pool_nodes"


def test_incident_dict_round_trip_and_describe():
    gov = _governor()
    gov.live_instances = 5
    gov.check(3.5)
    incident = gov.incidents[0]
    data = incident.to_dict()
    assert data["name"] == LEVEL_NAMES[incident.level]
    assert PressureIncident.from_dict(data) == incident
    text = incident.describe()
    assert "L1" in text and "live_instances" in text


def test_report_shape():
    gov = _governor()
    gov.on_task_created(0.5)
    gov.live_instances = 8
    gov.check(1.0)
    report = gov.report()
    assert report["level"] == L2_AGGREGATES_ONLY
    assert report["level_name"] == "aggregates-only"
    assert report["degraded"] is True
    assert report["created_tasks"] == 1
    assert len(report["incidents"]) == 2
    assert report["budget"]["max_live_instances"] == 10
