"""CLI surface of the governor: `repro run --memory-budget` and
`repro governor`."""

import json

from repro.cli import main


def test_run_with_memory_budget_reports_ladder(capsys):
    code = main(
        ["run", "fib", "--size", "test", "--threads", "2",
         "--memory-budget", "4"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "governor: degradation level L3" in out
    assert "L1 eager-release" in out
    assert "L2 aggregates-only" in out
    assert "L3 stub-only" in out


def test_run_tolerant_with_budget_and_json(tmp_path, capsys):
    profile = tmp_path / "profile.json"
    code = main(
        ["run", "fib", "--size", "test", "--threads", "2",
         "--memory-budget", "4", "--tolerate-errors",
         "--json", str(profile)]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "pressure incident(s)" in out
    data = json.loads(profile.read_text())
    assert data["salvage"]["degraded"] is True
    assert len(data["salvage"]["pressure_incidents"]) == 3


def test_run_without_budget_prints_no_governor_lines(capsys):
    assert main(["run", "fib", "--size", "test", "--threads", "2"]) == 0
    assert "governor" not in capsys.readouterr().out


def test_governor_subcommand_writes_json_report(tmp_path, capsys):
    report_path = tmp_path / "gov.json"
    code = main(
        ["governor", "fib", "--memory-budget", "4",
         "--json", str(report_path)]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "budget: memory budget: live_instances<=4" in out
    assert "governor: degradation level L3" in out
    report = json.loads(report_path.read_text())
    assert report["level"] == 3
    assert [i["level"] for i in report["incidents"]] == [1, 2, 3]
    assert report["budget"]["max_live_instances"] == 4


def test_governor_subcommand_stop_policy(capsys):
    code = main(
        ["governor", "fib", "--memory-budget", "2", "--on-pressure", "stop"]
    )
    out = capsys.readouterr().out
    assert code == 0  # salvaged: tolerant semantics
    assert "L4 stop" in out
    assert "MemoryPressureStop" in out


def test_governor_subcommand_unknown_kernel(capsys):
    assert main(["governor", "nope", "--memory-budget", "4"]) == 2
    assert "unknown kernel" in capsys.readouterr().err


def test_run_archives_degraded_run_with_tag(tmp_path, capsys):
    arch = tmp_path / "arch"
    code = main(
        ["run", "fib", "--size", "test", "--threads", "2",
         "--memory-budget", "4", "--tolerate-errors",
         "--archive", str(arch)]
    )
    assert code == 0
    assert "archived as" in capsys.readouterr().out
    from repro.archive import ArchiveStore

    (record,) = ArchiveStore(arch).records()
    assert "degraded" in record.tags
