"""Unit tests for :class:`repro.governor.MemoryBudget`."""

import pytest

from repro.governor import PRESSURE_POLICIES, MemoryBudget


def test_default_budget_is_inert():
    budget = MemoryBudget()
    assert not budget.armed
    assert budget.caps() == {}
    assert "inert" in budget.describe()


def test_any_cap_arms_the_budget():
    assert MemoryBudget(max_live_instances=8).armed
    assert MemoryBudget(max_pool_nodes=100).armed
    assert MemoryBudget(max_events=1000).armed


def test_caps_maps_metric_names():
    budget = MemoryBudget(max_live_instances=8, max_pool_nodes=64, max_events=512)
    assert budget.caps() == {
        "live_instances": 8,
        "pool_nodes": 64,
        "event_buffer": 512,
    }


@pytest.mark.parametrize(
    "kwargs",
    [
        {"max_live_instances": 0},
        {"max_pool_nodes": -1},
        {"max_events": 0},
        {"soft_fraction": 0.0},
        {"soft_fraction": 0.9, "hard_fraction": 0.5},
        {"hard_fraction": 1.5},
        {"stop_fraction": 0.5},
        {"on_pressure": "panic"},
        {"l2_max_free": -1},
    ],
)
def test_invalid_budgets_rejected(kwargs):
    with pytest.raises(ValueError):
        MemoryBudget(**kwargs)


def test_policies_are_documented():
    assert PRESSURE_POLICIES == ("degrade", "stop")


def test_dict_round_trip():
    budget = MemoryBudget(
        max_live_instances=8,
        soft_fraction=0.25,
        hard_fraction=0.75,
        stop_fraction=3.0,
        on_pressure="stop",
        l2_max_free=4,
    )
    assert MemoryBudget.from_dict(budget.to_dict()) == budget


def test_describe_names_caps_and_policy():
    text = MemoryBudget(max_live_instances=8, on_pressure="stop").describe()
    assert "live_instances<=8" in text
    assert "on_pressure=stop" in text
