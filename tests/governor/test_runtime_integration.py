"""End-to-end governor behavior: budgeted runs through the full stack.

The acceptance property from the paper angle (Section V-B, Table II):
measurement memory is bounded by *concurrent* task-instance volume,
which the profiled program controls.  The governor closes the hole --
a run whose budget is smaller than its unbounded peak must still
complete, with aggregate task times preserved and every ladder
transition reported.
"""

import pytest

from repro.analysis import run_app
from repro.cube.export import dumps
from repro.cube.query import flat_region_profile
from repro.faults.campaign import run_tolerant
from repro.faults.plan import FAULT_MODES, plan_for_mode
from repro.governor import MemoryBudget

# fib --size test peaks at 4-5 concurrent instance trees per thread
# unbounded (Table II methodology), so a budget of 4 forces the ladder.
BUDGET = 4


@pytest.fixture(scope="module")
def unbounded():
    return run_app("fib", size="test", n_threads=2, seed=0)


@pytest.fixture(scope="module")
def governed():
    return run_app(
        "fib", size="test", n_threads=2, seed=0,
        memory_budget=MemoryBudget(max_live_instances=BUDGET),
    )


def test_budgeted_run_completes_and_verifies(governed):
    assert governed.verified


def test_ladder_walk_is_fully_reported(governed):
    report = governed.parallel.extra["governor"]
    assert [i["level"] for i in report["incidents"]] == [1, 2, 3]
    assert report["level_name"] == "stub-only"
    assert report["degraded"] is True
    # the budget held: live full trees never exceeded the cap
    assert report["peak_live_instances"] <= BUDGET


def test_aggregate_task_times_survive_degradation(governed, unbounded):
    # Stub-only accounting folds interior call paths into the task's
    # root node, so per-region *aggregate* inclusive time and visit
    # counts are preserved exactly -- only instance-level detail is lost.
    want = flat_region_profile(unbounded.profile)
    got = flat_region_profile(governed.profile)
    assert got["fib_task"]["inclusive"] == pytest.approx(
        want["fib_task"]["inclusive"]
    )
    assert got["fib_task"]["visits"] == want["fib_task"]["visits"]
    # no schedule perturbation either: virtual wall time identical
    assert governed.kernel_time == unbounded.kernel_time


def test_nocutoff_fib_completes_under_budget_with_matching_aggregates():
    # The acceptance case: no-cutoff fib (variant "stress") peaks at 9
    # concurrent instance trees per thread unbounded; a budget of 6 is
    # below that peak, yet the run completes (exit-0 path) with every
    # ladder transition reported and aggregate task time preserved.
    unbounded = run_app("fib", size="test", variant="stress", n_threads=2, seed=0)
    assert unbounded.profile.max_concurrent_tasks_per_thread() == 9
    governed = run_app(
        "fib", size="test", variant="stress", n_threads=2, seed=0,
        memory_budget=MemoryBudget(max_live_instances=6),
    )
    assert governed.verified
    report = governed.parallel.extra["governor"]
    assert [i["level"] for i in report["incidents"]] == [1, 2, 3]
    want = flat_region_profile(unbounded.profile)["fib_task"]
    got = flat_region_profile(governed.profile)["fib_task"]
    assert got["inclusive"] == pytest.approx(want["inclusive"])
    assert got["visits"] == want["visits"]
    assert governed.kernel_time == unbounded.kernel_time


def test_degradation_recorded_in_salvage(governed):
    salvage = governed.profile.salvage
    assert salvage is not None
    assert salvage.degraded
    assert len(salvage.pressure_incidents) == 3
    assert "degradation level L3" in salvage.summary()


def test_governor_substrate_artifact_present(governed):
    artifact = governed.parallel.substrate_artifacts["governor"]
    assert artifact["enabled"] is True
    assert artifact["level"] == 3


def test_l0_profile_byte_identical_to_ungoverned(unbounded):
    # A budget that never comes under pressure must not change one byte
    # of the exported profile: the governed handlers defer to the
    # original ones and no ladder action ever fires.
    roomy = run_app(
        "fib", size="test", n_threads=2, seed=0,
        memory_budget=MemoryBudget(max_live_instances=10 ** 6),
    )
    assert roomy.parallel.extra["governor"]["level"] == 0
    assert dumps(roomy.profile) == dumps(unbounded.profile)


def test_ungoverned_config_builds_no_governor(unbounded):
    assert "governor" not in unbounded.parallel.extra
    assert "governor" not in unbounded.parallel.substrate_artifacts


def test_stop_policy_salvages_partial_profile():
    outcome = run_tolerant(
        "fib", size="test", n_threads=2, seed=0,
        memory_budget=MemoryBudget(max_live_instances=2, on_pressure="stop"),
    )
    assert outcome.status == "partial"
    assert outcome.profile is not None
    assert outcome.degraded
    assert "MemoryPressureStop" in outcome.error
    report = outcome.governor_report
    assert report["incidents"][-1]["level"] == 4
    assert outcome.salvage is not None and outcome.salvage.degraded


def test_pressure_fault_mode_routes_through_governor():
    assert "pressure" in FAULT_MODES
    plan = plan_for_mode("pressure", seed=0)
    assert plan.pressure_budget == 4
    assert not plan.armed  # drives the governor, not the injector
    outcome = run_tolerant("fib", size="test", n_threads=2, seed=0, plan=plan)
    assert outcome.ok
    assert outcome.degraded
    assert outcome.governor_report["incidents"]


def test_degraded_runs_are_tagged_and_kept_out_of_baselines(tmp_path, unbounded):
    from repro.archive import (
        ArchiveStore,
        latest_baseline,
        meta_for_outcome,
        meta_for_result,
    )
    from repro.errors import ArchiveError

    store = ArchiveStore(tmp_path / "arch")
    healthy = store.put(
        unbounded.profile, meta_for_result(unbounded, size="test")
    )
    outcome = run_tolerant(
        "fib", size="test", n_threads=2, seed=1,
        memory_budget=MemoryBudget(max_live_instances=BUDGET),
    )
    degraded = store.put(
        outcome.profile,
        meta_for_outcome(outcome, size="test", variant="optimized", seed=1),
    )
    assert "degraded" in degraded.tags

    baseline = latest_baseline(store, kernel="fib", size="test", runs=5)
    assert list(baseline.run_ids()) == [healthy.run_id]

    # an archive holding only degraded runs yields no baseline at all
    lonely = ArchiveStore(tmp_path / "lonely")
    lonely.put(
        outcome.profile,
        meta_for_outcome(outcome, size="test", variant="optimized", seed=1),
    )
    with pytest.raises(ArchiveError, match="baseline needs"):
        latest_baseline(lonely, kernel="fib", size="test")


def test_pool_trim_engaged_by_ladder(governed):
    # L1/L2 ladder actions cap the per-thread free lists, so the pools
    # report trimmed nodes and retain none of them (l2_max_free=0).
    pools = [stats["pool"] for stats in governed.profile.memory_stats]
    assert sum(p.get("trimmed", 0) for p in pools) > 0
    assert all(p["free"] == 0 for p in pools)
