"""Acceptance gate: the batched hot path changes *speed*, never *numbers*.

ISSUE acceptance criteria, end to end:

* fib / sort / nqueens export byte-identical cubes under the legacy
  per-event path (``batch_events=False``) and the batched default;
* ``events_dispatched`` agrees between the two paths (the satellite
  fix: batched dispatch counts individual events, not flushes);
* a *recorded* batched run replays and verifies MATCH;
* the recorder's wire region ids are the live registry handles -- one
  shared intern table, no double interning (satellite fix).
"""

import json

import pytest

from repro.analysis.experiment import run_app
from repro.archive.store import content_hash
from repro.cube.export import profile_to_dict
from repro.events.regions import RegionRegistry, RegionType
from repro.faults.campaign import run_tolerant
from repro.recorder import verify_recording
from repro.recorder.codec import RecordDecoder, RecordEncoder

APPS = ["fib", "sort", "nqueens"]


@pytest.fixture(scope="module", params=APPS)
def pair(request):
    app = request.param
    legacy = run_app(app, size="test", n_threads=2, seed=0, batch_events=False)
    batched = run_app(app, size="test", n_threads=2, seed=0)
    return app, legacy, batched


def test_both_paths_verify(pair):
    app, legacy, batched = pair
    assert legacy.verified, f"{app}: legacy run failed functional verification"
    assert batched.verified, f"{app}: batched run failed functional verification"


def test_cube_export_byte_identical(pair):
    app, legacy, batched = pair
    ld = profile_to_dict(legacy.profile)
    bd = profile_to_dict(batched.profile)
    assert bd == ld, f"{app}: batched cube dict diverges from legacy"
    # Byte-level: canonical JSON and the archive content hash both agree.
    canon = dict(sort_keys=True, separators=(",", ":"))
    assert json.dumps(bd, **canon).encode() == json.dumps(ld, **canon).encode()
    assert content_hash(batched.profile) == content_hash(legacy.profile)


def test_events_dispatched_identical(pair):
    app, legacy, batched = pair
    assert (
        batched.parallel.events_dispatched == legacy.parallel.events_dispatched
    ), f"{app}: batched path miscounts dispatched events"
    assert batched.parallel.events_dispatched > 0


def test_recorded_batched_run_verifies_match(tmp_path):
    record_dir = tmp_path / "run"
    outcome = run_tolerant(
        "fib", size="test", n_threads=2, seed=0,
        record_dir=str(record_dir), checkpoint_every=32,
    )
    assert outcome.status == "complete"
    report = verify_recording(str(record_dir))
    assert report.usable and report.matched
    assert report.exit_code == 0


def test_codec_uses_live_registry_handles():
    """Wire region ids are the registry handles -- one intern table."""
    reg = RegionRegistry()
    # Burn a few handles first so region handles are not accidentally
    # equal to a dense 0..n-1 renumbering an encoder-private table
    # would produce.
    for i in range(5):
        reg.register(f"burn{i}", RegionType.FUNCTION)
    a = reg.register("alpha", RegionType.FUNCTION, file="a.py", line=1)
    b = reg.register("beta", RegionType.TASK)
    records = [
        ("enter", 0, 1.0, a, None),
        ("task_begin", 1, 2.0, b, 7, None),
        ("task_end", 1, 3.0, b, 7),
        ("exit", 0, 4.0, a),
    ]
    payload = RecordEncoder().encode(records)
    decoder = RecordDecoder()
    decoded = decoder.decode(payload)

    da = decoded[0][3]
    db = decoded[1][3]
    assert (da.name, db.name) == ("alpha", "beta")
    # The decoded regions carry the *live* handles, pinned from the wire.
    assert da.handle == a.handle
    assert db.handle == b.handle
    assert decoder.registry.lookup(a.handle) is da
    assert decoder.registry.lookup(b.handle) is db
    # And re-encoding the same region emits no second REGION_DEF.
    enc = RecordEncoder()
    first = enc.encode([("enter", 0, 1.0, a, None)])
    second = enc.encode([("exit", 0, 2.0, a)])
    assert len(second) < len(first)
