"""Cross-layer integration scenarios on real BOTS kernels."""

import pytest

from repro.analysis import run_app
from repro.cube import dumps, loads, render_profile
from repro.events.validate import validate_program_trace
from repro.runtime import RuntimeConfig


@pytest.mark.parametrize("name", ["nqueens", "sort", "health", "sparselu"])
def test_kernel_traces_validate(name):
    """Recorded event streams of real kernels pass the task-aware rules."""
    result = run_app(name, size="test", n_threads=4, seed=2, record_events=True)
    assert result.verified
    validate_program_trace(result.parallel.trace)


@pytest.mark.parametrize("name", ["fib", "strassen"])
def test_kernel_profiles_roundtrip_and_render(name):
    result = run_app(name, size="test", variant="stress", n_threads=2, seed=0)
    profile = result.profile
    assert dumps(loads(dumps(profile))) == dumps(profile)
    text = render_profile(profile, max_depth=2)
    assert "(stub)" in text


def test_exclusive_time_conservation_across_kernels():
    """For every kernel: region duration * threads == sum of all exclusive
    times in the implicit trees (time is fully attributed, nothing lost,
    nothing double-counted)."""
    for name in ("fib", "sort", "health"):
        result = run_app(name, size="test", variant="stress", n_threads=2, seed=1)
        profile = result.profile
        for tree in profile.main_trees:
            exclusive_sum = sum(
                node.exclusive_time for node in tree.walk()
            )
            assert exclusive_sum == pytest.approx(result.kernel_time, rel=1e-9)


def test_stub_invariant_on_every_kernel():
    for name in ("fib", "nqueens", "sort", "fft", "health", "alignment"):
        result = run_app(name, size="test", variant="stress", n_threads=4, seed=0)
        profile = result.profile
        stub_time = sum(
            node.metrics.inclusive_time
            for tree in profile.main_trees
            for node in tree.walk()
            if node.is_stub
        )
        task_time = sum(
            tree.metrics.durations.total
            for per_thread in profile.task_trees
            for tree in per_thread.values()
        )
        assert stub_time == pytest.approx(task_time, rel=1e-9), name


def test_depth_limited_kernel_run_still_verifies():
    result = run_app(
        "nqueens", size="test", variant="stress", n_threads=2,
        max_call_path_depth=3,
    )
    assert result.verified
    # nqueens task trees would be depth <= 3 anyway (task->create/taskwait);
    # nothing breaks when the limit is active.
    assert result.parallel.extra["truncated_enters"] >= 0


def test_overhead_measurement_is_deterministic():
    from repro.analysis import measure_overhead

    a = measure_overhead("sort", size="test", variant="stress", threads=(2,))
    b = measure_overhead("sort", size="test", variant="stress", threads=(2,))
    assert a[0].instrumented == b[0].instrumented
    assert a[0].uninstrumented == b[0].uninstrumented


def test_instrumentation_does_not_change_schedule_statistics():
    """Same seed: the instrumented run completes the same tasks and steals
    comparably (timing shifts may change individual steals, but the
    functional outcome and task counts are identical)."""
    runs = {}
    for instrument in (False, True):
        result = run_app(
            "health", size="test", variant="stress", n_threads=4, seed=3,
            instrument=instrument,
        )
        runs[instrument] = result
    assert runs[True].result_value == runs[False].result_value
    assert runs[True].parallel.completed_tasks == runs[False].parallel.completed_tasks


def test_events_per_task_is_bounded():
    """Sanity bound on instrumentation volume: roughly a dozen events per
    task instance (enter/exit pairs + task begin/end/switches)."""
    result = run_app("fib", size="test", variant="stress", n_threads=2, seed=0)
    events = result.parallel.events_dispatched
    tasks = result.parallel.completed_tasks
    assert 4 * tasks < events < 20 * tasks
