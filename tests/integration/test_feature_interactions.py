"""Feature-interaction matrix: orthogonal features compose correctly.

Each test combines several independently-tested features (filtering,
depth limits, counters, included tasks, taskyield, untied migration,
user regions, parameter instrumentation) in one run and checks both the
functional result and the core profile invariants.
"""

import pytest

from repro.instrument.filtering import RegionFilter
from repro.runtime import RuntimeConfig, ZERO_COST
from repro.runtime.runtime import run_parallel


def stub_equals_task_time(profile):
    stub = sum(
        n.metrics.inclusive_time
        for t in profile.main_trees
        for n in t.walk()
        if n.is_stub
    )
    task = sum(
        t.metrics.durations.total
        for per in profile.task_trees
        for t in per.values()
    )
    assert stub == pytest.approx(task, rel=1e-9, abs=1e-9)


def kitchen_sink_child(ctx, n, depth):
    yield ctx.begin_region("work", parameter=("depth", depth))
    yield ctx.compute(1.0, counters={"units": n})
    yield ctx.end_region("work")
    if depth < 2:
        # mix of deferred, included, and untied children
        a = yield ctx.spawn(kitchen_sink_child, n, depth + 1)
        b = yield ctx.spawn(kitchen_sink_child, n, depth + 1, if_clause=False)
        c = yield ctx.spawn(kitchen_sink_child, n, depth + 1, tied=False)
        yield ctx.taskyield()
        yield ctx.taskwait()
        return a.result + b.result + c.result + 1
    return 1


def kitchen_sink_region(ctx):
    if (yield ctx.single()):
        handle = yield ctx.spawn(kitchen_sink_child, 5, 0)
        yield ctx.taskwait()
        return handle.result
    return None


EXPECTED_NODES = 1 + 3 + 9  # depths 0,1,2 of a 3-ary tree


@pytest.mark.parametrize("n_threads", [1, 3])
@pytest.mark.parametrize("allow_untied", [False, True])
def test_kitchen_sink_program(n_threads, allow_untied):
    config = RuntimeConfig(
        n_threads=n_threads,
        instrument=True,
        costs=ZERO_COST,
        allow_untied=allow_untied,
        seed=3,
    )
    result = run_parallel(kitchen_sink_region, config=config)
    values = [v for v in result.return_values if v is not None]
    assert values == [EXPECTED_NODES]
    assert result.completed_tasks == EXPECTED_NODES
    profile = result.profile
    stub_equals_task_time(profile)
    # counters survived the feature mix (attributed to the user-region
    # nodes the computes executed inside)
    total_units = sum(
        node.metrics.counter("units")
        for per in profile.task_trees
        for tree in per.values()
        for node in tree.walk()
    )
    assert total_units == 5 * EXPECTED_NODES
    # parameter-split user regions exist at every depth
    merged = profile.task_tree("kitchen_sink_child")
    names = {node.display_name() for node in merged.walk()}
    assert {"work[depth=0]", "work[depth=1]", "work[depth=2]"} <= names


def test_kitchen_sink_with_filter_and_depth_limit():
    config = RuntimeConfig(
        n_threads=2,
        instrument=True,
        costs=ZERO_COST,
        seed=1,
        measurement_filter=RegionFilter(exclude=("taskwait", "taskyield")),
        max_call_path_depth=2,
    )
    result = run_parallel(kitchen_sink_region, config=config)
    values = [v for v in result.return_values if v is not None]
    assert values == [EXPECTED_NODES]
    profile = result.profile
    stub_equals_task_time(profile)
    # the filter removed taskwait nodes everywhere
    all_names = {
        node.region.name
        for trees in ([profile.aggregated_main_tree()],)
        for node in trees[0].walk()
    }
    assert "taskwait" not in all_names


def test_kitchen_sink_deterministic_across_identical_runs():
    config = RuntimeConfig(n_threads=3, instrument=True, costs=ZERO_COST, seed=9)
    a = run_parallel(kitchen_sink_region, config=config)
    b = run_parallel(kitchen_sink_region, config=config)
    assert a.duration == b.duration
    assert a.thread_stats == b.thread_stats


def test_kitchen_sink_trace_validates():
    from repro.events.validate import validate_program_trace

    config = RuntimeConfig(
        n_threads=2, instrument=True, costs=ZERO_COST, seed=4, record_events=True
    )
    result = run_parallel(kitchen_sink_region, config=config)
    validate_program_trace(result.trace)
