"""Custom-counter metrics through the whole stack (PAPI-metric analogue).

Compute directives carry counters (flops, DP cells, ...); the profiler
attributes them to the current call-path node; aggregation, merge, and
JSON export preserve them; and for the kernels that report them the
totals match the analytic formulas exactly.
"""

import pytest

from repro.analysis import run_app
from repro.cube import dumps, loads
from repro.errors import ProcessError
from repro.runtime import RuntimeConfig, ZERO_COST
from repro.runtime.runtime import run_parallel


def quiet(**kw):
    kw.setdefault("costs", ZERO_COST)
    return RuntimeConfig(**kw)


def test_counters_attributed_to_current_node():
    def child(ctx):
        yield ctx.compute(1.0, counters={"flops": 100, "bytes": 64})
        yield ctx.compute(1.0, counters={"flops": 50})

    def body(ctx):
        yield ctx.spawn(child)
        yield ctx.taskwait()
        yield ctx.compute(1.0, counters={"flops": 7})

    result = run_parallel(body, config=quiet(n_threads=1, instrument=True))
    profile = result.profile
    task_tree = profile.task_tree("child")
    assert task_tree.metrics.counter("flops") == 150
    assert task_tree.metrics.counter("bytes") == 64
    # The implicit task's own compute lands on the main tree root.
    assert profile.main_tree(0).metrics.counter("flops") == 7
    # Unknown counters read as zero.
    assert task_tree.metrics.counter("cache_misses") == 0.0


def test_counters_merge_across_instances_and_threads():
    def child(ctx, n):
        yield ctx.compute(1.0, counters={"units": n})

    def body(ctx):
        if (yield ctx.single()):
            for i in range(1, 5):
                yield ctx.spawn(child, i)

    result = run_parallel(body, config=quiet(n_threads=2, instrument=True))
    tree = result.profile.task_tree("child")
    assert tree.metrics.counter("units") == 1 + 2 + 3 + 4


def test_counters_validation():
    def bad_value(ctx):
        yield ctx.compute(1.0, counters={"flops": -1})

    with pytest.raises(ProcessError, match="negative counter"):
        run_parallel(bad_value, config=quiet(n_threads=1))

    def bad_name(ctx):
        yield ctx.compute(1.0, counters={42: 1.0})

    with pytest.raises(ProcessError, match="counter names"):
        run_parallel(bad_name, config=quiet(n_threads=1))


def test_counters_ignored_when_uninstrumented():
    def child(ctx):
        yield ctx.compute(1.0, counters={"flops": 100})

    def body(ctx):
        yield ctx.spawn(child)
        yield ctx.taskwait()

    result = run_parallel(body, config=quiet(n_threads=1, instrument=False))
    assert result.profile is None  # nothing to attribute to; no crash


def test_strassen_flop_count_matches_formula():
    """7^levels base-case multiplications of (n/2^levels)^3 * 2 flops."""
    result = run_app("strassen", size="test", variant="optimized", n_threads=2)
    meta = result.meta
    n, threshold = meta["n"], meta["threshold"]
    levels = 0
    size = n
    while size > threshold:
        size //= 2
        levels += 1
    expected_flops = (7 ** levels) * 2 * size**3
    tree = result.profile.task_tree("strassen_task")
    assert tree.metrics.counter("flops") == expected_flops


def test_alignment_dp_cells_match_formula():
    result = run_app("alignment", size="test", n_threads=2)
    pairs = result.meta["expected_tasks"]
    length = result.meta["length"]
    tree = result.profile.task_tree("align_pair_task")
    assert tree.metrics.counter("dp_cells") == pairs * length * length


def test_counters_survive_json_roundtrip():
    result = run_app("strassen", size="test", variant="optimized", n_threads=2)
    restored = loads(dumps(result.profile))
    original = result.profile.task_tree("strassen_task").metrics.counter("flops")
    assert restored.task_tree("strassen_task").metrics.counter("flops") == original
    assert original > 0


def test_counter_pause_resume_unaffected_by_suspension():
    """Counters are event-attributed, not time-based: suspension between
    two compute calls must not lose or double-count anything."""

    def grandchild(ctx):
        yield ctx.compute(5.0)

    def child(ctx):
        yield ctx.compute(1.0, counters={"units": 10})
        yield ctx.spawn(grandchild)
        yield ctx.taskwait()  # may suspend here
        yield ctx.compute(1.0, counters={"units": 5})

    def body(ctx):
        if (yield ctx.single()):
            yield ctx.spawn(child)

    for n_threads in (1, 4):
        result = run_parallel(body, config=quiet(n_threads=n_threads, instrument=True))
        tree = result.profile.task_tree("child")
        assert tree.metrics.counter("units") == 15
