"""Property-based tests (hypothesis): invariants over random task programs.

A random *program shape* is a recursive tree spec: each node is a task
that computes for a drawn amount of virtual time, spawns its children,
optionally taskwaits in the middle, and combines results.  The properties
assert what the paper's design guarantees for ANY program and ANY
schedule seed:

* functional results are schedule-independent,
* enter/exit nesting holds per task instance (recorded streams validate),
* no negative exclusive times anywhere (execution-node attribution),
* per-run: total stub time == total task execution time,
* instance counts in the aggregate trees == completed task count,
* main trees span the region duration on every thread,
* instance-tree node pools fully recycle.
"""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.events.validate import validate_program_trace
from repro.profiling.metrics import StatAccumulator
from repro.runtime import RuntimeConfig
from repro.runtime.runtime import run_parallel


# ----------------------------------------------------------------------
# Program-shape strategy
# ----------------------------------------------------------------------
@st.composite
def tree_specs(draw, max_depth=4, max_children=3):
    """A recursive spec: (compute_us, [children], taskwait_mid: bool)."""
    compute = draw(st.floats(min_value=0.0, max_value=5.0, allow_nan=False))
    depth_budget = draw(st.integers(min_value=0, max_value=max_depth))
    if depth_budget == 0:
        return (compute, [], False)
    n_children = draw(st.integers(min_value=0, max_value=max_children))
    children = [
        draw(tree_specs(max_depth=depth_budget - 1, max_children=max_children))
        for _ in range(n_children)
    ]
    taskwait_mid = draw(st.booleans())
    return (compute, children, taskwait_mid)


def spec_task(ctx, spec):
    """Execute one spec node as a task; returns the subtree node count."""
    compute, children, taskwait_mid = spec
    yield ctx.compute(compute)
    handles = []
    half = len(children) // 2
    for child in children[:half]:
        handles.append((yield ctx.spawn(spec_task, child)))
    if taskwait_mid and handles:
        yield ctx.taskwait()
    for child in children[half:]:
        handles.append((yield ctx.spawn(spec_task, child)))
    yield ctx.taskwait()
    return 1 + sum(h.result for h in handles)


def spec_region(spec):
    def region(ctx):
        if (yield ctx.single()):
            root = yield ctx.spawn(spec_task, spec)
            yield ctx.taskwait()
            return root.result
        return None

    return region


def spec_size(spec) -> int:
    compute, children, _ = spec
    return 1 + sum(spec_size(c) for c in children)


def run_spec(spec, n_threads, seed, record_events=False):
    config = RuntimeConfig(
        n_threads=n_threads,
        instrument=True,
        seed=seed,
        record_events=record_events,
    )
    return run_parallel(spec_region(spec), config=config, name="prop")


COMMON_SETTINGS = settings(max_examples=60, deadline=None)


# ----------------------------------------------------------------------
# Properties
# ----------------------------------------------------------------------
@COMMON_SETTINGS
@given(spec=tree_specs(), n_threads=st.integers(1, 4), seed=st.integers(0, 7))
def test_functional_result_schedule_independent(spec, n_threads, seed):
    expected = spec_size(spec)
    result = run_spec(spec, n_threads, seed)
    values = [v for v in result.return_values if v is not None]
    assert values == [expected]
    assert result.completed_tasks == expected


@COMMON_SETTINGS
@given(spec=tree_specs(), n_threads=st.integers(1, 4), seed=st.integers(0, 7))
def test_no_negative_exclusive_times(spec, n_threads, seed):
    profile = run_spec(spec, n_threads, seed).profile
    for tree in profile.main_trees:
        for node in tree.walk():
            assert node.exclusive_time >= -1e-6, node.path_names()
    for per_thread in profile.task_trees:
        for tree in per_thread.values():
            for node in tree.walk():
                assert node.exclusive_time >= -1e-6, node.path_names()


@COMMON_SETTINGS
@given(spec=tree_specs(), n_threads=st.integers(1, 4), seed=st.integers(0, 7))
def test_stub_time_matches_task_time(spec, n_threads, seed):
    profile = run_spec(spec, n_threads, seed).profile
    stub_time = sum(
        node.metrics.inclusive_time
        for tree in profile.main_trees
        for node in tree.walk()
        if node.is_stub
    )
    task_time = sum(
        tree.metrics.durations.total
        for per_thread in profile.task_trees
        for tree in per_thread.values()
    )
    assert math.isclose(stub_time, task_time, rel_tol=1e-9, abs_tol=1e-9)


@COMMON_SETTINGS
@given(spec=tree_specs(), n_threads=st.integers(1, 4), seed=st.integers(0, 7))
def test_main_trees_span_region_duration(spec, n_threads, seed):
    result = run_spec(spec, n_threads, seed)
    for tree in result.profile.main_trees:
        assert math.isclose(tree.inclusive_time, result.duration, rel_tol=1e-9)


@COMMON_SETTINGS
@given(spec=tree_specs(), n_threads=st.integers(1, 4), seed=st.integers(0, 7))
def test_instance_samples_equal_completed_tasks(spec, n_threads, seed):
    result = run_spec(spec, n_threads, seed)
    samples = sum(
        tree.metrics.durations.count
        for per_thread in result.profile.task_trees
        for tree in per_thread.values()
    )
    assert samples == result.completed_tasks


@COMMON_SETTINGS
@given(spec=tree_specs(), n_threads=st.integers(1, 3), seed=st.integers(0, 3))
def test_recorded_streams_validate(spec, n_threads, seed):
    result = run_spec(spec, n_threads, seed, record_events=True)
    validate_program_trace(result.trace)


@COMMON_SETTINGS
@given(spec=tree_specs(), n_threads=st.integers(1, 4), seed=st.integers(0, 7))
def test_node_pools_fully_recycle(spec, n_threads, seed):
    result = run_spec(spec, n_threads, seed)
    for stats in result.profile.memory_stats:
        pool = stats["pool"]
        assert pool["released"] == pool["allocated"] + pool["reused"]
        concurrency = stats["concurrency"]
        assert concurrency["overall_max"] <= concurrency["total_instances"]


@COMMON_SETTINGS
@given(spec=tree_specs(), seed=st.integers(0, 7))
def test_determinism_bitwise(spec, seed):
    a = run_spec(spec, 3, seed)
    b = run_spec(spec, 3, seed)
    assert a.duration == b.duration
    assert a.thread_stats == b.thread_stats
    assert a.pool_stats == b.pool_stats


# ----------------------------------------------------------------------
# StatAccumulator algebra (merge is associative/commutative)
# ----------------------------------------------------------------------
@settings(max_examples=100, deadline=None)
@given(
    chunks=st.lists(
        st.lists(st.floats(0.0, 1e6, allow_nan=False), max_size=8), max_size=5
    ),
    order=st.randoms(use_true_random=False),
)
def test_stat_accumulator_merge_order_invariant(chunks, order):
    accumulators = []
    for chunk in chunks:
        acc = StatAccumulator()
        for value in chunk:
            acc.add(value)
        accumulators.append(acc)

    sequential = StatAccumulator()
    for chunk in chunks:
        for value in chunk:
            sequential.add(value)

    shuffled = list(accumulators)
    order.shuffle(shuffled)
    merged = StatAccumulator()
    for acc in shuffled:
        merged.merge(acc)

    assert merged.count == sequential.count
    assert math.isclose(merged.total, sequential.total, rel_tol=1e-12) or (
        merged.total == sequential.total == 0.0
    )
    if sequential.count:
        assert merged.minimum == sequential.minimum
        assert merged.maximum == sequential.maximum


@COMMON_SETTINGS
@given(spec=tree_specs(), n_threads=st.integers(1, 4), seed=st.integers(0, 7))
def test_thread_time_fully_accounted(spec, n_threads, seed):
    """Every thread's accounting buckets sum exactly to the region
    duration: no virtual time is ever unattributed."""
    result = run_spec(spec, n_threads, seed)
    for stats in result.thread_stats:
        assert math.isclose(
            sum(stats.values()), result.duration, rel_tol=1e-9, abs_tol=1e-9
        )
