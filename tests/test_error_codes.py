"""The error-code taxonomy is frozen: codes may be added, never changed.

Every ``--json`` surface emits ``{"code", "type", "message"}`` payloads
and clients are invited to switch on ``code`` -- so an existing
(class name, code) pair changing is an API break.  This test pins the
full mapping as of its introduction; extend ``FROZEN`` when adding a
class, never edit an existing line.
"""

from repro import errors

FROZEN = {
    "ReproError": "E_REPRO",
    "ValidationError": "E_VALIDATION",
    "SimulationError": "E_SIMULATION",
    "DeadlockError": "E_DEADLOCK",
    "EventOrderError": "E_EVENT_ORDER",
    "ProfileError": "E_PROFILE",
    "ProfileFormatError": "E_PROFILE_FORMAT",
    "InstrumentationError": "E_INSTRUMENTATION",
    "RuntimeModelError": "E_RUNTIME_MODEL",
    "FaultInjectionError": "E_FAULT_INJECTION",
    "WatchdogTimeout": "E_WATCHDOG_TIMEOUT",
    "CampaignInterrupted": "E_CAMPAIGN_INTERRUPTED",
    "MemoryPressureStop": "E_MEMORY_PRESSURE_STOP",
    "ProcessError": "E_PROCESS",
    "WallClockTimeout": "E_WALL_CLOCK_TIMEOUT",
    "JournalVersionError": "E_JOURNAL_VERSION",
    "ArchiveError": "E_ARCHIVE",
    "ArchiveLockTimeout": "E_ARCHIVE_LOCK_TIMEOUT",
    "SubstrateError": "E_SUBSTRATE",
    "RecordingError": "E_RECORDING",
    "StreamRepairError": "E_STREAM_REPAIR",
    "ReplayDivergence": "E_REPLAY_DIVERGENCE",
    "AdmissionRejected": "E_ADMISSION_REJECTED",
    "LedgerVersionError": "E_LEDGER_VERSION",
    "CampaignStateError": "E_CAMPAIGN_STATE",
    "CampaignExpired": "E_CAMPAIGN_EXPIRED",
    "CampaignFailed": "E_CAMPAIGN_FAILED",
    "LeaseExpired": "E_LEASE_EXPIRED",
    "IdempotencyConflict": "E_IDEMPOTENCY_CONFLICT",
    "GatewayDraining": "E_GATEWAY_DRAINING",
    "UnknownCampaign": "E_UNKNOWN_CAMPAIGN",
}


def test_frozen_codes_never_change():
    codes = errors.error_codes()
    for name, code in FROZEN.items():
        assert codes.get(name) == code, (
            f"{name} must keep its frozen code {code} (got {codes.get(name)}); "
            f"clients switch on these"
        )


def test_every_class_has_a_distinct_code():
    codes = errors.error_codes()
    # A class that forgets to declare `code` inherits its parent's --
    # two classes sharing a code would make payloads ambiguous.
    assert len(set(codes.values())) == len(codes), sorted(codes.items())
    for name, code in codes.items():
        assert code.startswith("E_"), (name, code)


def test_new_classes_must_be_frozen_here():
    unpinned = set(errors.error_codes()) - set(FROZEN)
    assert not unpinned, (
        f"add the new error class(es) {sorted(unpinned)} to FROZEN "
        f"(append-only) so their codes are pinned"
    )


def test_error_payload_shape():
    payload = errors.error_payload(errors.UnknownCampaign("nope"))
    assert payload == {
        "code": "E_UNKNOWN_CAMPAIGN",
        "type": "UnknownCampaign",
        "message": "nope",
    }


def test_error_payload_degrades_for_foreign_exceptions():
    payload = errors.error_payload(ValueError("bad input"))
    assert payload["code"] == "E_REPRO"
    assert payload["type"] == "ValueError"
