"""Tests for the call-path pattern query language."""

import pytest

from repro.analysis import run_app
from repro.cube.paths import _match, match_nodes, query, query_time, query_visits
from repro.events import RegionRegistry, RegionType
from repro.profiling import CallTreeNode


# ----------------------------------------------------------------------
# Matcher unit tests
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "path,pattern,expected",
    [
        (["a", "b", "c"], ["a", "b", "c"], True),
        (["a", "b", "c"], ["a", "*", "c"], True),
        (["a", "b", "c"], ["a", "c"], False),
        (["a", "b", "c"], ["**", "c"], True),
        (["a", "b", "c"], ["**"], True),
        (["a"], ["**", "a"], True),
        (["a", "b", "c"], ["a", "**"], True),
        (["a", "b", "c"], ["a", "**", "b"], False),
        (["a", "b", "c", "d"], ["a", "**", "d"], True),
        (["a", "b"], ["*", "*", "*"], False),
        (["task[depth=3]"], ["task[depth=*]"], True),
    ],
)
def test_segment_matcher(path, pattern, expected):
    assert _match(path, pattern) is expected


def test_empty_pattern_rejected():
    reg = RegionRegistry()
    root = CallTreeNode(reg.register("r", RegionType.FUNCTION))
    with pytest.raises(ValueError):
        match_nodes(root, "")


def test_match_nodes_on_literal_tree():
    reg = RegionRegistry()
    root = CallTreeNode(reg.register("main", RegionType.FUNCTION))
    a = root.child(reg.register("a", RegionType.FUNCTION))
    b = a.child(reg.register("b", RegionType.FUNCTION))
    a2 = b.child(reg.register("a", RegionType.FUNCTION))
    assert match_nodes(root, "main") == [root]
    assert set(match_nodes(root, "**/a")) == {a, a2}
    assert match_nodes(root, "main/a/b") == [b]
    assert match_nodes(root, "**/b/**") == [b, a2]


# ----------------------------------------------------------------------
# Profile-level queries
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fib_profile():
    return run_app("fib", size="test", variant="stress", n_threads=2, seed=1).profile


def test_query_spans_main_and_task_trees(fib_profile):
    taskwaits = query(fib_profile, "**/taskwait")
    # one in the implicit tree (thread 0) + per-thread task trees
    assert len(taskwaits) >= 2
    assert all(n.region.name == "taskwait" for n in taskwaits)


def test_query_stub_nodes_by_wildcard(fib_profile):
    stubs = query(fib_profile, "**/* (stub)")
    assert stubs
    assert all(n.is_stub for n in stubs)


def test_query_time_matches_direct_sum(fib_profile):
    via_query = query_time(fib_profile, "**/create@*", metric="inclusive")
    direct = sum(
        node.metrics.inclusive_time
        for tree in list(fib_profile.main_trees)
        + [t for per in fib_profile.task_trees for t in per.values()]
        for node in tree.walk()
        if node.region.name.startswith("create@")
    )
    assert via_query == pytest.approx(direct)


def test_query_visits_and_bad_metric(fib_profile):
    assert query_visits(fib_profile, "fib_task") == 177
    with pytest.raises(ValueError, match="metric"):
        query_time(fib_profile, "**", metric="median")


def test_query_no_matches_is_empty(fib_profile):
    assert query(fib_profile, "**/nonexistent_region") == []
    assert query_time(fib_profile, "**/nonexistent_region") == 0.0
