"""Tests for the CUBE-style renderer, export/import, queries, and diff."""

import json

import pytest

from repro.analysis import run_app
from repro.cube import (
    diff_profiles,
    dumps,
    flat_region_profile,
    hot_path,
    loads,
    profile_from_dict,
    render_node,
    render_profile,
    top_regions,
)
from repro.cube.diff import summarize_diff
from repro.cube.query import find_task_stub_summary
from repro.events import RegionRegistry, RegionType
from repro.profiling import CallTreeNode


@pytest.fixture(scope="module")
def fib_profile():
    return run_app("fib", size="test", variant="stress", n_threads=2, seed=1).profile


@pytest.fixture(scope="module")
def fib_cutoff_profile():
    return run_app("fib", size="test", variant="optimized", n_threads=2, seed=1).profile


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def test_render_profile_contains_fig5_elements(fib_profile):
    text = render_profile(fib_profile)
    assert "task trees" in text
    assert "main tree" in text
    assert "(stub)" in text  # stub nodes marked, as in Fig. 5
    assert "fib_task" in text
    assert "instances=177" in text


def test_render_node_depth_limit_and_min_time(fib_profile):
    main = fib_profile.aggregated_main_tree()
    shallow = render_node(main, max_depth=1)
    assert "..." in shallow or shallow.count("\n") < render_node(main).count("\n")
    filtered = render_node(main, min_time=1e12)
    assert "below" in filtered


def test_render_per_thread_view(fib_profile):
    text = render_profile(fib_profile, thread_id=0)
    assert "thread 0" in text


def test_render_tree_glyphs():
    reg = RegionRegistry()
    root = CallTreeNode(reg.register("main", RegionType.FUNCTION))
    root.child(reg.register("a", RegionType.FUNCTION)).metrics.record_visit(1.0)
    root.child(reg.register("b", RegionType.FUNCTION)).metrics.record_visit(2.0)
    root.metrics.record_visit(4.0)
    text = render_node(root)
    assert "|- a" in text
    assert "`- b" in text


# ----------------------------------------------------------------------
# Export / import
# ----------------------------------------------------------------------
def test_json_roundtrip_is_lossless_and_canonical(fib_profile):
    blob = dumps(fib_profile)
    restored = loads(blob)
    assert dumps(restored) == blob
    assert restored.n_threads == fib_profile.n_threads
    a = fib_profile.task_tree("fib_task").metrics.durations
    b = restored.task_tree("fib_task").metrics.durations
    assert a == b


def test_export_is_valid_json_with_format_marker(fib_profile):
    data = json.loads(dumps(fib_profile))
    assert data["format"] == 1
    assert data["n_threads"] == 2
    assert isinstance(data["regions"], list)


def test_import_rejects_unknown_format(fib_profile):
    data = json.loads(dumps(fib_profile))
    data["format"] = 99
    with pytest.raises(ValueError, match="unsupported"):
        profile_from_dict(data)


def test_roundtrip_preserves_queries(fib_profile):
    restored = loads(dumps(fib_profile))
    assert top_regions(restored, limit=5) == top_regions(fib_profile, limit=5)
    assert restored.max_concurrent_tasks_per_thread() == (
        fib_profile.max_concurrent_tasks_per_thread()
    )


# ----------------------------------------------------------------------
# Queries
# ----------------------------------------------------------------------
def test_hot_path_descends_heaviest(fib_profile):
    main = fib_profile.aggregated_main_tree()
    path = hot_path(main)
    assert path[0] is main
    for parent, child in zip(path, path[1:]):
        assert child.parent is parent
        heaviest = max(parent.children.values(), key=lambda c: c.metrics.inclusive_time)
        assert child is heaviest


def test_top_regions_sorted_descending(fib_profile):
    ranked = top_regions(fib_profile, limit=6)
    values = [v for _, v in ranked]
    assert values == sorted(values, reverse=True)
    # For tiny fib tasks, management regions (taskwait) rival the task
    # bodies themselves -- the paper's central observation; the task
    # region must still rank at the top alongside them.
    assert "fib_task" in [name for name, _ in ranked[:2]]


def test_flat_profile_excludes_stub_double_counting(fib_profile):
    flat = flat_region_profile(fib_profile)
    # Stub time is an alternate attribution of fib_task execution; the
    # flat view must count the task region once.
    region_total = flat["fib_task"]["inclusive"]
    agg = fib_profile.task_tree("fib_task")
    assert region_total == pytest.approx(agg.metrics.inclusive_time)


def test_stub_summary_lists_scheduling_points(fib_profile):
    stubs = find_task_stub_summary(fib_profile)
    assert stubs
    anchors = {anchor.split(":")[1] for anchor, _, _, _ in stubs}
    assert any("taskwait" in a or "barrier" in a for a in anchors)
    for _anchor, construct, time_us, fragments in stubs:
        assert construct == "fib_task"
        assert time_us >= 0
        assert fragments >= 1


# ----------------------------------------------------------------------
# Diff
# ----------------------------------------------------------------------
def test_diff_detects_cutoff_improvement(fib_profile, fib_cutoff_profile):
    entries = diff_profiles(fib_profile, fib_cutoff_profile)
    by_region = {e.region: e for e in entries}
    # The cut-off drastically reduces taskwait and creation time.
    assert by_region["taskwait"].ratio < 0.5
    assert by_region["create@fib_task"].ratio < 0.5


def test_diff_identical_profiles_is_empty(fib_profile):
    assert diff_profiles(fib_profile, fib_profile) == []


def test_diff_summary_renders(fib_profile, fib_cutoff_profile):
    text = summarize_diff(diff_profiles(fib_profile, fib_cutoff_profile), limit=3)
    assert "->" in text
    assert summarize_diff([]) == "(no significant changes)"


def test_diff_sort_is_stable_for_appeared_and_vanished(monkeypatch):
    # Appeared/vanished regions are all "infinite" movers; without the
    # name tie-break their order depended on float inf comparisons.
    import repro.cube.diff as diff_mod

    views = [
        {"m": {"exclusive": 10.0}, "gone_b": {"exclusive": 5.0},
         "gone_a": {"exclusive": 5.0}},
        {"m": {"exclusive": 20.0}, "new_b": {"exclusive": 5.0},
         "new_a": {"exclusive": 5.0}},
    ]
    monkeypatch.setattr(diff_mod, "flat_region_profile", lambda p: views[p])
    entries = diff_mod.diff_profiles(0, 1)
    assert [e.region for e in entries] == [
        "gone_a", "gone_b", "new_a", "new_b", "m"
    ]
    # and the order is deterministic across repeated calls
    assert [e.region for e in diff_mod.diff_profiles(0, 1)] == [
        e.region for e in entries
    ]


def test_diff_entry_renders_new_and_gone_markers():
    from repro.cube.diff import DiffEntry

    assert str(DiffEntry("r", "exclusive", 0.0, 5.0)).endswith("[new]")
    assert str(DiffEntry("r", "exclusive", 5.0, 0.0)).endswith("[gone]")
    assert str(DiffEntry("r", "exclusive", 5.0, 10.0)).endswith("(2.00x)")
    assert "inf" not in str(DiffEntry("r", "exclusive", 0.0, 5.0))


# ----------------------------------------------------------------------
# Format errors and byte stability
# ----------------------------------------------------------------------
def test_unknown_format_raises_structured_error(fib_profile):
    from repro.errors import ProfileFormatError, ReproError

    data = json.loads(dumps(fib_profile))
    data["format"] = 99
    with pytest.raises(ProfileFormatError) as excinfo:
        profile_from_dict(data)
    err = excinfo.value
    assert err.found == 99 and err.supported == 1
    assert "version 1" in str(err)
    assert isinstance(err, ReproError) and isinstance(err, ValueError)
    with pytest.raises(ProfileFormatError, match="supports version 1"):
        profile_from_dict({"format": None})


def _assert_export_byte_stable(profile):
    first = dumps(profile)
    second = dumps(profile_from_dict(json.loads(first)))
    assert first == second


def test_export_byte_stable_with_parameters():
    from repro.analysis import run_app

    result = run_app(
        "nqueens", size="test", variant="stress", n_threads=2,
        program_kwargs={"depth_parameter": True},
    )
    assert result.profile.task_trees_by_parameter("nqueens_task")
    _assert_export_byte_stable(result.profile)


def test_export_byte_stable_with_counters():
    from repro.analysis import run_app

    result = run_app("strassen", size="test", n_threads=2)
    _assert_export_byte_stable(result.profile)


def test_export_byte_stable_with_stubs(fib_profile):
    assert find_task_stub_summary(fib_profile)  # stress fib schedules stubs
    _assert_export_byte_stable(fib_profile)


def test_export_byte_stable_with_salvage_report():
    from repro.faults.campaign import run_tolerant
    from repro.faults.plan import plan_for_mode

    outcome = run_tolerant(
        "fib", plan=plan_for_mode("drop_events", seed=1), seed=1
    )
    assert outcome.status == "partial" and outcome.profile is not None
    assert outcome.profile.salvage is not None
    _assert_export_byte_stable(outcome.profile)
