"""Salvaged profiles survive JSON export and are flagged when rendered."""

import pytest

from repro.cube.export import dumps, loads, profile_to_dict
from repro.cube.render import render_profile
from repro.faults import plan_for_mode, run_tolerant


@pytest.fixture(scope="module")
def partial_profile():
    outcome = run_tolerant(
        "fib", size="test", n_threads=2, seed=0,
        plan=plan_for_mode("drop_events", seed=0),
    )
    assert outcome.profile is not None and outcome.profile.is_partial
    return outcome.profile


@pytest.fixture(scope="module")
def complete_profile():
    outcome = run_tolerant("fib", size="test", n_threads=2, seed=0)
    assert outcome.profile is not None
    return outcome.profile


def test_salvage_report_survives_export_roundtrip(partial_profile):
    clone = loads(dumps(partial_profile))
    assert clone.is_partial
    assert clone.salvage.events_dropped == partial_profile.salvage.events_dropped
    assert clone.salvage.events_repaired == partial_profile.salvage.events_repaired
    assert (
        clone.salvage.instances_quarantined
        == partial_profile.salvage.instances_quarantined
    )


def test_complete_profiles_export_without_salvage_key(complete_profile):
    data = profile_to_dict(complete_profile)
    assert "salvage" not in data
    assert not loads(dumps(complete_profile)).is_partial


def test_render_flags_partial_profiles(partial_profile):
    text = render_profile(partial_profile)
    assert "PARTIAL PROFILE" in text
    assert "salvage mode" in text


def test_render_of_complete_profile_has_no_banner(complete_profile):
    assert "PARTIAL" not in render_profile(complete_profile)
