"""Run specs: serialization, grid builders, spec files."""

import json

import pytest

from repro.supervisor.spec import (
    RunSpec,
    call_cell,
    check_unique_cell_ids,
    fault_cell,
    fault_grid,
    load_spec_file,
    spec_from_dict,
)


def test_spec_roundtrips_through_dict():
    spec = fault_cell("fib", "drop_events", 3, size="test", wall_timeout_s=2.5)
    clone = spec_from_dict(spec.to_dict())
    assert clone == spec
    assert clone.cell_id == "fib|drop_events|s3"


def test_fault_grid_is_app_major_and_unique():
    grid = fault_grid(["fib", "nqueens"], ["drop_events", "none"], [0, 1])
    assert len(grid) == 8
    assert grid[0].cell_id == "fib|drop_events|s0"
    assert grid[-1].cell_id == "nqueens|none|s1"
    check_unique_cell_ids(grid)  # must not raise


def test_duplicate_cell_ids_rejected():
    grid = [call_cell("m:f", cell_id="same"), call_cell("m:g", cell_id="same")]
    with pytest.raises(ValueError, match="duplicate"):
        check_unique_cell_ids(grid)


def test_invalid_specs_rejected():
    with pytest.raises(ValueError, match="kind"):
        RunSpec(kind="nope", cell_id="x")
    with pytest.raises(ValueError, match="cell_id"):
        RunSpec(kind="call", cell_id="")
    with pytest.raises(ValueError, match="wall_timeout_s"):
        RunSpec(kind="call", cell_id="x", wall_timeout_s=0)
    with pytest.raises(ValueError, match="target"):
        call_cell("not-a-dotted-target")


def test_load_spec_file_json_list(tmp_path):
    path = tmp_path / "grid.json"
    path.write_text(json.dumps([
        {"kind": "call", "cell_id": "a", "params": {"target": "m:f"}},
        {"kind": "fault", "cell_id": "b",
         "params": {"app": "fib", "mode": "none", "seed": 0}},
    ]))
    specs = load_spec_file(str(path))
    assert [s.cell_id for s in specs] == ["a", "b"]
    assert specs[1].kind == "fault"


def test_load_spec_file_jsonl(tmp_path):
    path = tmp_path / "grid.jsonl"
    path.write_text(
        '{"kind": "call", "cell_id": "a", "params": {"target": "m:f"}}\n'
        '{"kind": "call", "cell_id": "b", "params": {"target": "m:g"}}\n'
    )
    assert [s.cell_id for s in load_spec_file(str(path))] == ["a", "b"]


def test_load_spec_file_empty_rejected(tmp_path):
    path = tmp_path / "empty.json"
    path.write_text("  \n")
    with pytest.raises(ValueError, match="empty"):
        load_spec_file(str(path))
