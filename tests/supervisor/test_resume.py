"""Crash-safety of the supervisor *itself*, via the real CLI.

These tests launch ``python -m repro supervise`` as a subprocess and
kill it -- SIGKILL mid-campaign (nothing can be flushed) and SIGINT
(graceful drain).  They assert the acceptance criteria of the issue:
the journal replays cleanly, ``--resume`` completes the grid without
re-executing journaled-complete cells, the final results match an
uninterrupted run, and Ctrl-C exits 130 with the partial table printed.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.supervisor.journal import load_journal

ROOT = Path(__file__).resolve().parents[2]
SRC = ROOT / "src"


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _write_grid(tmp_path, n=6, wall_s=0.5):
    # The grid must take several seconds at --jobs 1 so the kill signal
    # lands mid-campaign even on a loaded machine.
    specs = [
        {
            "kind": "call",
            "cell_id": f"cell-{i}",
            "params": {
                "target": "repro.supervisor.stubs:sleep_cell",
                "kwargs": {"wall_s": wall_s},
            },
        }
        for i in range(n)
    ]
    path = tmp_path / "grid.json"
    path.write_text(json.dumps(specs))
    return path


def _supervise(grid, journal, *extra, jobs=1):
    return [
        sys.executable, "-m", "repro", "supervise",
        "--spec-file", str(grid), "--journal", str(journal),
        "--jobs", str(jobs), "--timeout-s", "30", *extra,
    ]


def _wait_for_first_result(journal, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            if '"type":"result"' in journal.read_text():
                return
        except FileNotFoundError:
            pass
        time.sleep(0.05)
    pytest.fail("supervisor produced no journaled result in time")


def test_sigkill_mid_campaign_then_resume_completes(tmp_path):
    grid = _write_grid(tmp_path)
    journal = tmp_path / "journal.jsonl"

    proc = subprocess.Popen(
        _supervise(grid, journal), env=_env(),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    try:
        _wait_for_first_result(journal)
    finally:
        proc.kill()  # SIGKILL: no handler, no flush, no goodbye
        proc.wait(timeout=30)

    state = load_journal(str(journal))
    done_before = state.completed
    attempts_before = dict(state.attempts)
    assert 1 <= len(done_before) < 6  # killed genuinely mid-campaign

    resumed = subprocess.run(
        _supervise(grid, journal, "--resume", str(journal), jobs=2),
        env=_env(), capture_output=True, text=True, timeout=120,
    )
    assert resumed.returncode == 0, resumed.stderr
    assert "6/6 cells ok" in resumed.stdout

    after = load_journal(str(journal))
    assert after.completed == {f"cell-{i}" for i in range(6)}
    # journaled-complete cells were replayed, not re-executed
    for cell in done_before:
        assert after.attempts[cell] == attempts_before[cell]

    # ...and the resumed grid matches an uninterrupted run, cell by cell
    fresh_journal = tmp_path / "fresh.jsonl"
    fresh = subprocess.run(
        _supervise(grid, fresh_journal, jobs=2), env=_env(),
        capture_output=True, text=True, timeout=120,
    )
    assert fresh.returncode == 0, fresh.stderr
    fresh_state = load_journal(str(fresh_journal))
    key = lambda s: {
        c: (r["outcome"], r["ok"], r["summary"]) for c, r in s.results.items()
    }
    assert key(after) == key(fresh_state)


def test_sigint_drains_prints_partial_table_and_exits_130(tmp_path):
    grid = _write_grid(tmp_path)
    journal = tmp_path / "journal.jsonl"

    proc = subprocess.Popen(
        _supervise(grid, journal), env=_env(),
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    try:
        _wait_for_first_result(journal)
        proc.send_signal(signal.SIGINT)
        stdout, _stderr = proc.communicate(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)

    assert proc.returncode == 130
    # completed cells survived and the partial table was printed
    assert "cell-0" in stdout and "slept" in stdout
    assert "campaign interrupted" in stdout
    assert "--resume" in stdout
    state = load_journal(str(journal))
    assert state.interrupted
    assert len(state.completed) >= 1

    # the interrupted journal is a valid resume point
    resumed = subprocess.run(
        _supervise(grid, journal, "--resume", str(journal), jobs=2),
        env=_env(), capture_output=True, text=True, timeout=120,
    )
    assert resumed.returncode == 0, resumed.stderr
    assert "6/6 cells ok" in resumed.stdout


def test_sigkilled_worker_is_classified_and_retried_by_cli(tmp_path):
    marker = tmp_path / "flaky.marker"
    grid = tmp_path / "grid.json"
    grid.write_text(json.dumps([
        {
            "kind": "call",
            "cell_id": "flaky",
            "params": {
                "target": "repro.supervisor.stubs:flaky_cell",
                "kwargs": {"marker": str(marker)},
            },
        }
    ]))
    journal = tmp_path / "journal.jsonl"
    result = subprocess.run(
        _supervise(grid, journal, "--retries", "1", "--backoff-s", "0.05"),
        env=_env(), capture_output=True, text=True, timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert "recovered on retry" in result.stdout
    state = load_journal(str(journal))
    assert state.results["flaky"]["outcome"] == "ok"
    assert state.attempts["flaky"] == 2
    # the first attempt's death by signal was journaled as a crash
    lines = [json.loads(l) for l in journal.read_text().splitlines()]
    crashes = [
        e for e in lines
        if e.get("type") == "result" and e.get("outcome") == "crash"
    ]
    assert len(crashes) == 1 and "SIGKILL" in crashes[0]["summary"]
