"""Fabric-hardened supervisor: heartbeats, breakers, deadlines, admission.

Process-level integration tests for the PR-6 robustness layers: a
SIGSTOP'd worker is classified ``stuck`` (not ``timeout``), a
perpetually-crashing class is short-circuited with a bounded launch
count, a campaign deadline cancels queued cells resumably, and
admission overload policies journal instead of losing work.
"""

import json

import pytest

from repro.errors import JournalVersionError
from repro.fabric import AdmissionPolicy, BreakerPolicy
from repro.supervisor import (
    FAST_BACKOFF,
    Journal,
    Supervisor,
    call_cell,
    load_journal,
    outcome_table,
    run_supervised,
)


def _stub(name, kwargs=None, cell_id=None, **spec_kw):
    return call_cell(
        f"repro.supervisor.stubs:{name}", kwargs, cell_id=cell_id or name,
        **spec_kw,
    )


# ----------------------------------------------------------------------
# Heartbeats & stuck classification
# ----------------------------------------------------------------------
def test_stopped_worker_is_stuck_not_timeout():
    # SIGSTOP freezes the worker: SIGALRM is never delivered, beats stop,
    # but the process stays alive -- only stall detection catches it.
    report = run_supervised(
        [_stub("stalled_cell")],
        timeout_s=30.0,  # far away: the stall must fire first
        retries=0,
        heartbeat_s=0.1,
        stall_factor=3.0,
    )
    (result,) = report.results
    assert result.outcome == "stuck"
    assert not result.ok
    assert "silent" in result.summary
    assert result.duration_s < 10.0  # classified at the stall window


def test_busy_worker_keeps_beating_and_times_out_instead():
    # A pure-Python busy loop still shares the GIL with the heartbeat
    # thread, so beats keep flowing: the cell is slow, not stuck, and
    # the wall-clock limit is what finally kills it.
    report = run_supervised(
        [_stub("busy_cell", wall_timeout_s=0.5)],
        retries=0,
        heartbeat_s=0.1,
        stall_factor=3.0,
    )
    (result,) = report.results
    assert result.outcome == "timeout"


def test_stuck_is_retryable(tmp_path):
    journal = tmp_path / "j.jsonl"
    report = run_supervised(
        [_stub("stalled_cell")],
        timeout_s=30.0,
        retries=1,
        backoff=FAST_BACKOFF,
        heartbeat_s=0.1,
        stall_factor=3.0,
        journal_path=str(journal),
    )
    (result,) = report.results
    assert result.outcome == "stuck"
    assert result.attempts == 2  # retried like timeout/crash/oom
    state = load_journal(str(journal))
    assert state.attempts["stalled_cell"] == 2


def test_healthy_grid_unaffected_by_heartbeats():
    specs = [_stub("ok_cell", {"value": i}, cell_id=f"c{i}") for i in range(4)]
    report = run_supervised(specs, jobs=2, heartbeat_s=0.05)
    assert report.ok
    assert [r.outcome for r in report.results] == ["ok"] * 4


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
def test_breaker_bounds_launches_of_an_always_crashing_class(tmp_path):
    journal = tmp_path / "grid.jsonl"
    policy = BreakerPolicy(threshold=3, max_probes=2, probe_after=4)
    specs = [
        _stub("crash_cell", {}, cell_id=f"c{i:02d}") for i in range(50)
    ]
    report = run_supervised(
        specs,
        retries=0,
        journal_path=str(journal),
        breaker=policy,
    )
    outcomes = [r.outcome for r in report.results]
    assert outcomes.count("crash") <= policy.threshold + policy.max_probes
    assert outcomes.count("short_circuited") == 50 - outcomes.count("crash")
    assert not report.ok  # deterministically nonzero for CI
    # The journal proves the launch bound: start records == real launches.
    starts = sum(
        1
        for line in journal.read_text().splitlines()
        if json.loads(line).get("type") == "start"
    )
    assert starts <= policy.threshold + policy.max_probes
    assert report.breaker_summary  # class state surfaced on the report
    (state,) = report.breaker_summary.values()
    assert state["state"] in ("open", "half_open")
    assert state["last_failure"] == "crash"


def test_breaker_counts_retries_toward_threshold_and_caps_retry_burn(tmp_path):
    # A single cell's retries open the class by themselves, and once it
    # is open the remaining retry budget is short-circuited too instead
    # of relaunching a known-bad configuration.
    journal = tmp_path / "j.jsonl"
    report = run_supervised(
        [_stub("crash_cell", {})],
        retries=5,
        backoff=FAST_BACKOFF,
        journal_path=str(journal),
        breaker=BreakerPolicy(threshold=3, max_probes=0),
    )
    (result,) = report.results
    assert result.outcome == "short_circuited"  # retry 4 was refused
    starts = sum(
        1
        for line in journal.read_text().splitlines()
        if json.loads(line).get("type") == "start"
    )
    assert starts == 3  # exactly the threshold, not 1 + retries


def test_probe_recloses_a_recovered_class(tmp_path):
    scratch = tmp_path / "attempts"
    specs = [
        _stub(
            "crash_until_attempts",
            {"scratch": str(scratch), "need": 3},
            cell_id=f"c{i}",
        )
        for i in range(8)
    ]
    report = run_supervised(
        specs,
        retries=0,
        breaker=BreakerPolicy(threshold=2, max_probes=3, probe_after=1),
    )
    outcomes = [r.outcome for r in report.results]
    # c0, c1 crash (class opens); a cool-down cell short-circuits; the
    # first probe burns the third attempt and fails; after another
    # cool-down the second probe finds the class recovered and closes
    # it -- every later cell runs normally.
    assert outcomes[:2] == ["crash", "crash"]
    assert outcomes[-1] == "ok"
    assert "ok" in outcomes and "short_circuited" in outcomes
    assert report.breaker_summary  # and the class ended closed
    (state,) = report.breaker_summary.values()
    assert state["state"] == "closed"


def test_short_circuited_is_terminal_on_resume(tmp_path):
    journal = tmp_path / "j.jsonl"
    specs = [_stub("crash_cell", {}, cell_id=f"c{i}") for i in range(6)]
    kwargs = dict(
        retries=0,
        journal_path=str(journal),
        breaker=BreakerPolicy(threshold=2, max_probes=0),
    )
    first = run_supervised(specs, **kwargs)
    assert [r.outcome for r in first.results][2:] == ["short_circuited"] * 4
    second = run_supervised(specs, resume=True, **kwargs)
    # Short-circuited cells replay from the journal; only the crashed
    # ones re-run (and re-open the class).
    for result in second.results:
        if result.outcome == "short_circuited":
            assert result.cached


# ----------------------------------------------------------------------
# Campaign deadline
# ----------------------------------------------------------------------
def test_deadline_cancels_queued_cells_resumably(tmp_path):
    journal = tmp_path / "j.jsonl"
    specs = [
        _stub("sleep_cell", {"wall_s": 0.3}, cell_id=f"s{i}") for i in range(4)
    ]
    report = run_supervised(
        specs, jobs=1, journal_path=str(journal), deadline_s=0.15
    )
    assert report.deadline_hit
    assert not report.ok
    outcomes = [r.outcome for r in report.results]
    # The in-flight cell drains to completion; everything queued is
    # journaled cancelled without launching.
    assert outcomes[0] == "ok"
    assert outcomes[1:] == ["cancelled"] * 3
    assert all(
        "deadline" in r.summary for r in report.results if r.outcome == "cancelled"
    )
    # cancelled is resumable: a second run without a deadline finishes.
    resumed = run_supervised(
        specs, jobs=2, journal_path=str(journal), resume=True
    )
    assert resumed.ok
    assert resumed.results[0].cached  # the completed cell replayed
    assert all(r.outcome == "ok" for r in resumed.results)
    assert not resumed.deadline_hit


def test_deadline_suppresses_retries_of_in_flight_cells(tmp_path):
    journal = tmp_path / "j.jsonl"
    # The cell's own wall limit (0.3 s) fires well after the campaign
    # deadline (0.05 s): the attempt settles post-deadline and must keep
    # its transient outcome without burning the remaining retry budget.
    report = run_supervised(
        [_stub("busy_cell", wall_timeout_s=0.3)],
        retries=5,
        backoff=FAST_BACKOFF,
        journal_path=str(journal),
        deadline_s=0.05,
    )
    (result,) = report.results
    assert result.outcome == "timeout"
    assert result.attempts == 1
    starts = sum(
        1
        for line in journal.read_text().splitlines()
        if json.loads(line).get("type") == "start"
    )
    assert starts == 1


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
def test_block_policy_paces_a_batch_grid_to_completion():
    specs = [_stub("ok_cell", {"value": i}, cell_id=f"c{i}") for i in range(12)]
    report = run_supervised(
        specs,
        jobs=2,
        admission=AdmissionPolicy(max_pending=3, policy="block"),
    )
    assert report.ok
    assert report.admission_stats is not None
    assert report.admission_stats["admitted"] == 12
    assert report.admission_stats["peak_pending"] <= 3


def test_reject_policy_journals_overflow_as_cancelled(tmp_path):
    journal = tmp_path / "j.jsonl"
    specs = [
        _stub("sleep_cell", {"wall_s": 0.2}, cell_id=f"c{i}") for i in range(6)
    ]
    report = run_supervised(
        specs,
        jobs=1,
        journal_path=str(journal),
        admission=AdmissionPolicy(max_pending=2, policy="reject"),
    )
    outcomes = [r.outcome for r in report.results]
    assert outcomes.count("cancelled") == report.admission_stats["rejected"]
    assert outcomes.count("cancelled") >= 1
    assert outcomes.count("ok") == 6 - outcomes.count("cancelled")
    # Rejected cells resume cleanly later.
    resumed = run_supervised(specs, jobs=2, journal_path=str(journal), resume=True)
    assert resumed.ok


def test_shed_policy_evicts_rather_than_grows(tmp_path):
    specs = [
        _stub("sleep_cell", {"wall_s": 0.2}, cell_id=f"c{i}") for i in range(6)
    ]
    report = run_supervised(
        specs,
        jobs=1,
        admission=AdmissionPolicy(max_pending=2, policy="shed"),
    )
    outcomes = [r.outcome for r in report.results]
    assert report.admission_stats["shed"] == outcomes.count("cancelled")
    assert outcomes.count("ok") + outcomes.count("cancelled") == 6
    assert report.admission_stats["peak_pending"] <= 2


# ----------------------------------------------------------------------
# Journal schema version
# ----------------------------------------------------------------------
def test_future_journal_version_is_refused(tmp_path):
    journal = tmp_path / "future.jsonl"
    journal.write_text('{"type":"meta","version":99,"cells":1}\n')
    with pytest.raises(JournalVersionError) as excinfo:
        load_journal(str(journal))
    assert "version 99" in str(excinfo.value)


def test_resume_against_future_journal_fails_up_front(tmp_path):
    journal = tmp_path / "future.jsonl"
    journal.write_text('{"type":"meta","version":99,"cells":1}\n')
    with pytest.raises(JournalVersionError):
        run_supervised(
            [_stub("ok_cell")], journal_path=str(journal), resume=True
        )


def test_current_journals_replay_and_older_metas_load(tmp_path):
    journal = tmp_path / "old.jsonl"
    # A v1 journal (previous format) must keep loading.
    journal.write_text(
        '{"type":"meta","version":1,"cells":1}\n'
        '{"type":"start","cell":"ok_cell","attempt":1}\n'
        '{"type":"result","cell":"ok_cell","attempt":1,"outcome":"ok",'
        '"ok":true,"status":"complete","summary":"done","error":null}\n'
    )
    state = load_journal(str(journal))
    assert state.completed == {"ok_cell"}


# ----------------------------------------------------------------------
# outcome_table surfaces
# ----------------------------------------------------------------------
def test_outcome_table_counts_fabric_outcomes(tmp_path):
    specs = [_stub("crash_cell", {}, cell_id=f"c{i}") for i in range(4)]
    report = run_supervised(
        specs, retries=0, breaker=BreakerPolicy(threshold=1, max_probes=0)
    )
    table = outcome_table(report)
    assert "cells ok" in table  # the historic summary line survives
    assert "3 short_circuited" in table
    assert "breaker:" in table

    deadline_report = run_supervised(
        [
            _stub("sleep_cell", {"wall_s": 0.25}, cell_id="a"),
            _stub("sleep_cell", {"wall_s": 0.25}, cell_id="b"),
        ],
        jobs=1,
        deadline_s=0.1,
    )
    deadline_table = outcome_table(deadline_report)
    assert "1 cancelled" in deadline_table
    assert "campaign deadline hit" in deadline_table
