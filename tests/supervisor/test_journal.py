"""The crash-safe journal and the atomic_write helper."""

import json
import os

import pytest

from repro.ioutil import atomic_write
from repro.supervisor.journal import (
    TERMINAL_OUTCOMES,
    Journal,
    load_journal,
)


def _result_payload(outcome="ok", ok=True):
    return {
        "outcome": outcome,
        "ok": ok,
        "status": "complete" if outcome == "ok" else outcome,
        "summary": "s",
        "error": None,
        "duration_s": 0.1,
    }


def test_journal_roundtrip(tmp_path):
    path = tmp_path / "j.jsonl"
    with Journal(str(path)) as journal:
        journal.meta(2)
        journal.start("a", 1)
        journal.result("a", 1, _result_payload())
        journal.start("b", 1)
        journal.result("b", 1, _result_payload("crash", ok=False))
        journal.start("b", 2)
    state = load_journal(str(path))
    assert state.results["a"]["outcome"] == "ok"
    assert state.results["b"]["outcome"] == "crash"
    assert state.attempts == {"a": 1, "b": 2}
    assert state.completed == {"a"}  # crash is not terminal
    assert state.skipped_lines == 0 and not state.interrupted


def test_torn_final_line_is_tolerated(tmp_path):
    path = tmp_path / "j.jsonl"
    with Journal(str(path)) as journal:
        journal.start("a", 1)
        journal.result("a", 1, _result_payload())
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"type":"result","cell":"b","att')  # SIGKILL mid-append
    state = load_journal(str(path))
    assert state.completed == {"a"}
    assert state.skipped_lines == 1


def test_interrupt_record_is_replayed(tmp_path):
    path = tmp_path / "j.jsonl"
    with Journal(str(path)) as journal:
        journal.result("a", 1, _result_payload("interrupted", ok=False))
        journal.interrupt(completed=0)
    state = load_journal(str(path))
    assert state.interrupted
    assert state.completed == set()  # interrupted cells re-run on resume


def test_missing_journal_is_empty_state(tmp_path):
    state = load_journal(str(tmp_path / "nope.jsonl"))
    assert state.results == {} and state.attempts == {}


def test_terminal_outcomes_are_the_not_worth_retrying_set():
    assert TERMINAL_OUTCOMES == {
        "ok", "partial", "degraded", "error", "short_circuited"
    }
    # and the retryable/resumable sets never overlap the terminal one
    from repro.supervisor.journal import RESUMABLE_OUTCOMES, RETRYABLE_OUTCOMES

    assert not TERMINAL_OUTCOMES & RETRYABLE_OUTCOMES
    assert not TERMINAL_OUTCOMES & RESUMABLE_OUTCOMES
    assert not RETRYABLE_OUTCOMES & RESUMABLE_OUTCOMES


# ----------------------------------------------------------------------
# atomic_write
# ----------------------------------------------------------------------
def test_atomic_write_creates_and_replaces(tmp_path):
    target = tmp_path / "out" / "profile.json"
    atomic_write(target, '{"v": 1}')
    assert json.loads(target.read_text()) == {"v": 1}
    atomic_write(target, '{"v": 2}')
    assert json.loads(target.read_text()) == {"v": 2}
    # no staging litter left behind
    assert os.listdir(target.parent) == ["profile.json"]


def test_atomic_write_failure_leaves_original_intact(tmp_path, monkeypatch):
    target = tmp_path / "data.json"
    atomic_write(target, "good")

    def explode(_src, _dst):
        raise OSError("disk on fire")

    monkeypatch.setattr(os, "replace", explode)
    with pytest.raises(OSError, match="disk on fire"):
        atomic_write(target, "half-written garbage")
    monkeypatch.undo()
    assert target.read_text() == "good"
    assert os.listdir(tmp_path) == ["data.json"]  # temp file cleaned up


def test_atomic_write_accepts_bytes(tmp_path):
    target = tmp_path / "blob.bin"
    atomic_write(target, b"\x00\x01")
    assert target.read_bytes() == b"\x00\x01"


def test_atomic_write_fsyncs_file_then_rename_then_directory(tmp_path, monkeypatch):
    """Durability order regression test: the *file* is fsync'd before the
    rename (content reaches disk before it becomes visible), and the
    *parent directory* is fsync'd after it (the rename itself survives
    power loss).  Skipping the directory fsync was a real recorder bug
    class: the checkpoint exists in memory-cached metadata but vanishes
    on replay after a crash."""
    import stat

    calls = []
    real_fsync, real_replace = os.fsync, os.replace

    def spy_fsync(fd):
        is_dir = stat.S_ISDIR(os.fstat(fd).st_mode)
        calls.append("fsync-dir" if is_dir else "fsync-file")
        return real_fsync(fd)

    def spy_replace(src, dst):
        calls.append("rename")
        return real_replace(src, dst)

    monkeypatch.setattr(os, "fsync", spy_fsync)
    monkeypatch.setattr(os, "replace", spy_replace)
    atomic_write(tmp_path / "checkpoint.json", "{}")
    assert calls == ["fsync-file", "rename", "fsync-dir"]


def test_atomic_write_durable_false_skips_fsync(tmp_path, monkeypatch):
    calls = []
    monkeypatch.setattr(os, "fsync", lambda fd: calls.append("fsync"))
    atomic_write(tmp_path / "scratch.json", "{}", durable=False)
    assert calls == []
    assert (tmp_path / "scratch.json").read_text() == "{}"
