"""Supervisor-side salvage: dead cells yield partial archived profiles.

The acceptance scenario of the recording tentpole: SIGKILL a recording
worker mid-run, and the supervisor must archive a ``partial``-tagged
profile salvaged from the sealed chunk prefix -- then ``repro verify
--against`` that archived run must re-derive it byte-identically.
"""

import pytest

from repro.archive import ArchiveStore
from repro.cube.export import profile_to_dict
from repro.recorder import verify_recording
from repro.supervisor import (
    SALVAGEABLE_OUTCOMES,
    Supervisor,
    attempt_cell_salvage,
    call_cell,
    fault_cell,
)
from repro.supervisor.backoff import BackoffPolicy


def _kill_cell(record_dir, archive_dir=None, **kwargs):
    spec_kwargs = {
        "record_dir": str(record_dir),
        "die_after_records": 1500,
        "app": "fib",
        "size": "small",
    }
    if archive_dir is not None:
        spec_kwargs["archive_dir"] = str(archive_dir)
    spec_kwargs.update(kwargs)
    return call_cell(
        "repro.faults.recording:record_until_killed",
        spec_kwargs,
        cell_id="kill-mid-record",
    )


# ----------------------------------------------------------------------
# Unit behavior of attempt_cell_salvage
# ----------------------------------------------------------------------
def test_no_record_dir_means_no_salvage():
    spec = fault_cell("fib", "none", 0)
    assert attempt_cell_salvage(spec, "crash") is None


def test_missing_directory_means_no_salvage(tmp_path):
    spec = fault_cell("fib", "none", 0, record_dir=str(tmp_path / "never"))
    assert attempt_cell_salvage(spec, "crash") is None


def test_empty_directory_reports_error_not_raise(tmp_path):
    spec = fault_cell("fib", "none", 0, record_dir=str(tmp_path))
    info = attempt_cell_salvage(spec, "crash")
    assert info == {"error": "no recoverable recording state"}


def test_call_cell_kwargs_are_searched_for_record_dir(tmp_path):
    spec = _kill_cell(tmp_path / "never")
    assert attempt_cell_salvage(spec, "crash") is None  # dir doesn't exist


def test_salvageable_outcomes_are_the_worker_death_modes():
    assert set(SALVAGEABLE_OUTCOMES) == {"crash", "timeout", "oom", "stuck"}


# ----------------------------------------------------------------------
# End-to-end: SIGKILL mid-record -> salvaged partial archived profile
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def killed_campaign(tmp_path_factory):
    root = tmp_path_factory.mktemp("salvage")
    record_dir = root / "rec"
    archive_dir = root / "arch"
    report = Supervisor(
        [_kill_cell(record_dir, archive_dir)],
        jobs=1,
        retries=0,
        timeout_s=60.0,
    ).run()
    return report, record_dir, archive_dir


def test_killed_cell_is_salvaged_not_discarded(killed_campaign):
    report, _, _ = killed_campaign
    result = report.results[0]
    assert result.outcome == "crash"
    assert "salvaged" in result.summary
    assert "recorded events" in result.summary


def test_salvaged_profile_is_archived_partial(killed_campaign):
    _, _, archive_dir = killed_campaign
    records = ArchiveStore(str(archive_dir)).records()
    assert len(records) == 1
    record = records[0]
    tags = set(record.tags)
    assert {"partial", "salvaged", "outcome:crash"} <= tags
    assert any(tag.startswith("source:") for tag in tags)
    assert record.meta.source == "salvage"
    assert record.meta.kernel == "fib"
    assert record.meta.extra["records"] > 0


def test_salvaged_archive_verifies_against_the_recording(killed_campaign):
    _, record_dir, archive_dir = killed_campaign
    profile = ArchiveStore(str(archive_dir)).load_profile("r0001")
    report = verify_recording(
        str(record_dir), expected_dict=profile_to_dict(profile)
    )
    assert report.usable and report.matched
    assert report.exit_code == 0
    assert not report.complete  # it really was a partial prefix


def test_retry_warm_starts_then_terminal_attempt_salvages(tmp_path):
    from repro.recorder.store import list_generations

    record_dir = tmp_path / "rec"
    archive_dir = tmp_path / "arch"
    report = Supervisor(
        [_kill_cell(record_dir, archive_dir)],
        jobs=1,
        retries=1,
        backoff=BackoffPolicy(base_s=0.01),
        timeout_s=60.0,
    ).run()
    result = report.results[0]
    assert result.attempts == 2
    assert result.outcome == "crash"
    assert "salvaged" in result.summary
    # the first attempt's stream was rotated aside, not clobbered
    assert list_generations(str(record_dir)) == [0]
    assert len(ArchiveStore(str(archive_dir)).records()) == 1
