"""`degraded` is a terminal outcome: archived, never retried.

A governor-degraded cell is the deterministic product of its memory
budget -- retrying it would only reproduce the same ladder walk -- so it
must be treated like ``ok``/``partial``, not like the transient ``oom``
(an out-of-memory *kill*, where another attempt may fit).
"""

from repro.archive import ArchiveStore
from repro.supervisor import FAST_BACKOFF, call_cell, run_supervised
from repro.supervisor.journal import RETRYABLE_OUTCOMES, TERMINAL_OUTCOMES
from repro.supervisor.spec import fault_cell
from repro.supervisor.worker import execute_spec


def test_outcome_taxonomy_separates_degraded_from_oom():
    assert "degraded" in TERMINAL_OUTCOMES
    assert "degraded" not in RETRYABLE_OUTCOMES
    assert "oom" in RETRYABLE_OUTCOMES


def test_pressure_cell_reports_degraded_and_archives_partial_profile(tmp_path):
    arch = tmp_path / "arch"
    payload = execute_spec(fault_cell("fib", "pressure", 0, archive_dir=arch))
    assert payload["outcome"] == "degraded"
    assert payload["ok"]  # completed: the ladder kept it alive
    assert payload["status"] == "complete"
    record = ArchiveStore(arch).get_record(payload["archive"]["run_id"])
    assert "degraded" in record.tags
    assert "mode:pressure" in record.tags
    # the degraded profile itself is loadable from the store
    assert ArchiveStore(arch).load_profile(record.run_id) is not None


def test_degraded_cell_consumes_no_retry(tmp_path):
    report = run_supervised(
        [fault_cell("fib", "pressure", 0, archive_dir=tmp_path / "arch")],
        retries=3,
        backoff=FAST_BACKOFF,
    )
    result = report.results[0]
    assert result.outcome == "degraded"
    assert result.ok
    assert result.attempts == 1  # deterministic: a retry would only repeat it


def test_oom_cell_is_still_retried_in_the_same_grid(tmp_path):
    # Contrast in one grid: the oom stub burns every retry while the
    # pressure cell settles on attempt one.
    report = run_supervised(
        [
            fault_cell("fib", "pressure", 0),
            call_cell("repro.supervisor.stubs:oom_cell", cell_id="oom"),
        ],
        jobs=2,
        retries=1,
        backoff=FAST_BACKOFF,
    )
    pressure = report.result_for("fib|pressure|s0")
    oom = report.result_for("oom")
    assert pressure.outcome == "degraded" and pressure.attempts == 1
    assert oom.outcome == "oom" and oom.attempts == 2


def test_degraded_cell_not_rerun_on_resume(tmp_path):
    journal = tmp_path / "journal.jsonl"
    specs = [fault_cell("fib", "pressure", 0)]
    first = run_supervised(specs, journal_path=str(journal))
    assert first.results[0].outcome == "degraded"
    second = run_supervised(specs, journal_path=str(journal), resume=True)
    cached = second.results[0]
    assert cached.cached  # journaled terminal outcome: no new attempt
    assert cached.outcome == "degraded"
    assert cached.attempts == first.results[0].attempts
