"""Retry pacing: exponential growth, cap, deterministic jitter."""

import pytest

from repro.supervisor.backoff import FAST_BACKOFF, BackoffPolicy


def test_delays_grow_exponentially_without_jitter():
    policy = BackoffPolicy(base_s=0.5, factor=2.0, max_s=30.0, jitter=0.0)
    assert [policy.delay(a) for a in (1, 2, 3, 4)] == [0.5, 1.0, 2.0, 4.0]


def test_delay_is_capped_at_max():
    policy = BackoffPolicy(base_s=1.0, factor=10.0, max_s=5.0, jitter=0.0)
    assert policy.delay(4) == 5.0


def test_jitter_is_bounded_and_deterministic():
    policy = BackoffPolicy(base_s=1.0, factor=2.0, max_s=30.0, jitter=0.25)
    first = policy.delay(1, key="fib|drop_events|s0")
    again = policy.delay(1, key="fib|drop_events|s0")
    other = policy.delay(1, key="fib|drop_events|s1")
    assert first == again  # seeded by (key, attempt): replayable
    assert first != other  # but de-synchronized across cells
    assert 0.75 <= first <= 1.25


def test_attempt_must_be_positive():
    with pytest.raises(ValueError):
        BackoffPolicy().delay(0)


def test_invalid_policies_rejected():
    with pytest.raises(ValueError):
        BackoffPolicy(base_s=-1.0)
    with pytest.raises(ValueError):
        BackoffPolicy(factor=0.5)
    with pytest.raises(ValueError):
        BackoffPolicy(jitter=1.0)


def test_fast_backoff_is_fast():
    assert FAST_BACKOFF.delay(1, key="x") < 0.1
