"""The worker: spec dispatch, outcome classification, wall-clock guard.

``execute_spec`` runs in-process here (the tests are the "worker"), so
the SIGALRM guard genuinely interrupts a busy loop in the pytest main
thread -- exactly what it must do inside a worker subprocess.
"""

import pytest

from repro.errors import WallClockTimeout
from repro.supervisor.spec import call_cell, fault_cell
from repro.supervisor.worker import execute_spec, wall_clock_guard


def test_wall_clock_guard_interrupts_a_busy_loop():
    with pytest.raises(WallClockTimeout, match="wall-clock limit"):
        with wall_clock_guard(0.1):
            while True:  # no virtual time, no yields: watchdog_us is blind
                pass


def test_wall_clock_guard_noop_when_disabled():
    with wall_clock_guard(None):
        pass
    with wall_clock_guard(0):
        pass


def test_busy_kernel_stub_reports_timeout_not_hang():
    spec = call_cell("repro.supervisor.stubs:busy_cell", wall_timeout_s=0.1)
    payload = execute_spec(spec, wall_timeout_s=spec.wall_timeout_s)
    assert payload["outcome"] == "timeout"
    assert not payload["ok"]
    assert "WallClockTimeout" in payload["error"]


def test_deterministic_exception_classified_as_error():
    spec = call_cell("repro.supervisor.stubs:error_cell",
                     {"message": "boom"})
    payload = execute_spec(spec)
    assert payload["outcome"] == "error"
    assert "ValueError: boom" in payload["summary"]


def test_memory_error_classified_as_oom():
    payload = execute_spec(call_cell("repro.supervisor.stubs:oom_cell"))
    assert payload["outcome"] == "oom"
    assert "MemoryError" in payload["error"]


def test_bad_call_target_is_an_error_payload():
    payload = execute_spec(call_cell("repro.no_such_module:fn"))
    assert payload["outcome"] == "error"
    assert "ModuleNotFoundError" in payload["summary"]


def test_healthy_fault_cell_is_ok():
    payload = execute_spec(fault_cell("fib", "none", 0))
    assert payload["outcome"] == "ok"
    assert payload["ok"] and payload["status"] == "complete"


def test_faulty_cell_degrades_to_partial():
    payload = execute_spec(fault_cell("fib", "task_exception", 0))
    assert payload["outcome"] == "partial"
    assert payload["ok"]  # degraded gracefully, salvage accounted
    assert "FaultInjectionError" in payload["error"]


def test_call_cell_merges_returned_dict():
    payload = execute_spec(
        call_cell("repro.supervisor.stubs:ok_cell", {"value": 9})
    )
    assert payload["outcome"] == "ok"
    assert payload["summary"] == "ok (value=9)"
