"""SIGTERM parity: an orchestrator's TERM drains like Ctrl-C.

The supervisor CLI contract: SIGTERM mid-campaign exits 143 (128+15,
shell-style), journals partial state, and a ``--resume`` run finishes
the remaining cells without re-running completed ones.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

pytestmark = pytest.mark.slow

SPEC_CELLS = [
    {
        "kind": "call",
        "cell_id": "quick",
        "params": {"target": "repro.supervisor.stubs:ok_cell", "kwargs": {}},
    },
    {
        "kind": "call",
        "cell_id": "slow",
        "params": {
            "target": "repro.supervisor.stubs:sleep_cell",
            "kwargs": {"wall_s": 30.0},
        },
    },
]


def _supervise_cmd(spec_file, journal, resume=False):
    cmd = [
        sys.executable, "-m", "repro", "supervise",
        "--spec-file", str(spec_file), "--jobs", "1",
        "--timeout-s", "60", "--retries", "0", "--no-archive",
    ]
    if resume:
        cmd += ["--resume", str(journal)]
    else:
        cmd += ["--journal", str(journal)]
    return cmd


def _env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    return env


def _journaled_cells(journal):
    cells = set()
    with open(journal, encoding="utf-8") as handle:
        for line in handle:
            try:
                entry = json.loads(line)
            except ValueError:
                continue
            if entry.get("type") == "result":
                cells.add(entry.get("cell"))
    return cells


def test_sigterm_exits_143_and_resume_finishes(tmp_path):
    spec_file = tmp_path / "cells.json"
    spec_file.write_text(json.dumps(SPEC_CELLS))
    journal = tmp_path / "campaign.jsonl"

    proc = subprocess.Popen(
        _supervise_cmd(spec_file, journal),
        env=_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        # Wait until the quick cell's result is journaled, so the TERM
        # lands while the slow cell is genuinely mid-flight.
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if journal.exists() and "quick" in _journaled_cells(journal):
                break
            time.sleep(0.05)
        else:
            pytest.fail("quick cell never journaled; supervisor stuck?")
        proc.send_signal(signal.SIGTERM)
        stdout, _stderr = proc.communicate(timeout=60.0)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()

    assert proc.returncode == 143, stdout
    assert "terminated (SIGTERM)" in stdout
    assert "quick" in _journaled_cells(journal)

    # The journal resumes: the completed cell replays, the drained one
    # re-runs.  Resume keys on cell_id, so the re-run spec can carry a
    # short sleep and still count as the same cell.
    resume_cells = json.loads(json.dumps(SPEC_CELLS))
    resume_cells[1]["params"]["kwargs"]["wall_s"] = 0.01
    spec_file.write_text(json.dumps(resume_cells))
    done = subprocess.run(
        _supervise_cmd(spec_file, journal, resume=True),
        env=_env(),
        capture_output=True,
        text=True,
        timeout=120.0,
    )
    assert done.returncode == 0, done.stdout + done.stderr
    assert {"quick", "slow"} <= _journaled_cells(journal)
