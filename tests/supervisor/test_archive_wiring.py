"""Tests for the supervisor -> profile-archive wiring."""

from repro.archive import ArchiveStore
from repro.cli import main
from repro.supervisor.spec import fault_cell, fault_grid
from repro.supervisor.worker import execute_spec


def test_fault_cell_carries_archive_dir(tmp_path):
    spec = fault_cell("fib", "none", 0, archive_dir=tmp_path / "arch")
    assert spec.params["archive_dir"] == str(tmp_path / "arch")
    grid = fault_grid(["fib"], ["none"], [0, 1], archive_dir=tmp_path / "arch")
    assert all(s.params["archive_dir"] == str(tmp_path / "arch") for s in grid)
    # without the flag the param is absent, keeping old spec files valid
    assert "archive_dir" not in fault_cell("fib", "none", 0).params


def test_execute_spec_archives_healthy_cell(tmp_path):
    arch = tmp_path / "arch"
    spec = fault_cell("fib", "none", 0, archive_dir=arch)
    payload = execute_spec(spec)
    assert payload["outcome"] == "ok"
    info = payload["archive"]
    assert info["run_id"] == "r0001" and not info["deduplicated"]
    record = ArchiveStore(arch).get_record(info["run_id"])
    assert record.sha256 == info["sha256"]
    assert record.meta.kernel == "fib" and record.meta.source == "supervisor"
    assert record.meta.tags == ()  # healthy cells carry no mode tag


def test_execute_spec_archives_salvaged_cell_with_mode_tags(tmp_path):
    arch = tmp_path / "arch"
    spec = fault_cell("fib", "drop_events", 1, archive_dir=arch)
    payload = execute_spec(spec)
    assert payload["outcome"] == "partial"
    record = ArchiveStore(arch).get_record(payload["archive"]["run_id"])
    assert "mode:drop_events" in record.tags and "partial" in record.tags
    # the salvaged profile is loadable from the store
    profile = ArchiveStore(arch).load_profile(record.run_id)
    assert profile is not None


def test_execute_spec_without_archive_dir_adds_no_payload_key(tmp_path):
    payload = execute_spec(fault_cell("fib", "none", 0))
    assert "archive" not in payload


def test_supervise_cli_archives_next_to_journal(tmp_path, capsys):
    journal = tmp_path / "run.jsonl"
    code = main(
        [
            "supervise", "--apps", "fib", "--modes", "none",
            "--seeds", "0,1", "--journal", str(journal),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    arch = str(journal) + ".archive"
    assert f"cell profiles archived to {arch}" in out
    records = ArchiveStore(arch).records()
    assert len(records) == 2
    assert records[0].sha256 == records[1].sha256  # deterministic -> dedup


def test_supervise_no_archive_flag_disables(tmp_path, capsys):
    journal = tmp_path / "run.jsonl"
    code = main(
        [
            "supervise", "--apps", "fib", "--modes", "none", "--seeds", "0",
            "--journal", str(journal), "--no-archive",
        ]
    )
    assert code == 0
    assert "archived to" not in capsys.readouterr().out
    assert ArchiveStore(str(journal) + ".archive").records() == []
