"""End-to-end supervisor behavior with process isolation.

Every test runs real worker subprocesses against the stub cells in
:mod:`repro.supervisor.stubs` -- crashes, busy loops, flaky recoveries --
and asserts the acceptance properties: transient outcomes are retried
with bounded backoff, deterministic errors are not, a hung cell is
killed by the wall-clock watchdog without blocking the rest of the
grid, and a journaled grid resumes without re-executing finished cells.
"""

import pytest

from repro.supervisor import (
    FAST_BACKOFF,
    Supervisor,
    call_cell,
    load_journal,
    outcome_table,
    run_supervised,
)


def _stub(name, kwargs=None, cell_id=None, **spec_kw):
    return call_cell(
        f"repro.supervisor.stubs:{name}", kwargs, cell_id=cell_id or name,
        **spec_kw,
    )


def test_grid_completes_in_parallel_preserving_order():
    report = run_supervised(
        [
            _stub("ok_cell", {"value": 1}, cell_id="a"),
            _stub("sleep_cell", {"wall_s": 0.05}, cell_id="b"),
            _stub("ok_cell", {"value": 2}, cell_id="c"),
        ],
        jobs=2,
        backoff=FAST_BACKOFF,
    )
    assert report.ok
    assert [r.cell_id for r in report.results] == ["a", "b", "c"]
    assert all(r.attempts == 1 and not r.cached for r in report.results)


def test_flaky_cell_recovers_via_retry(tmp_path):
    marker = tmp_path / "flaky.marker"
    report = run_supervised(
        [_stub("flaky_cell", {"marker": str(marker)})],
        retries=1,
        backoff=FAST_BACKOFF,
    )
    result = report.results[0]
    assert result.ok and result.outcome == "ok"
    assert result.attempts == 2
    assert result.summary == "recovered on retry"


def test_persistent_crash_exhausts_bounded_retries():
    report = run_supervised(
        [_stub("crash_cell")], retries=2, backoff=FAST_BACKOFF
    )
    result = report.results[0]
    assert result.outcome == "crash" and not result.ok
    assert result.attempts == 3  # 1 + retries, then give up
    assert "SIGKILL" in result.summary


def test_deterministic_error_is_never_retried():
    report = run_supervised(
        [_stub("error_cell", {"message": "same every time"})],
        retries=5,
        backoff=FAST_BACKOFF,
    )
    result = report.results[0]
    assert result.outcome == "error"
    assert result.attempts == 1


def test_hung_cell_times_out_without_blocking_the_grid():
    report = run_supervised(
        [
            _stub("busy_cell", cell_id="hung", wall_timeout_s=0.2),
            _stub("ok_cell", {"value": 1}, cell_id="x"),
            _stub("ok_cell", {"value": 2}, cell_id="y"),
        ],
        jobs=2,
        retries=1,
        backoff=FAST_BACKOFF,
    )
    hung = report.result_for("hung")
    assert hung.outcome == "timeout" and not hung.ok
    assert hung.attempts == 2  # timeouts are transient: retried, bounded
    assert report.result_for("x").ok and report.result_for("y").ok


def test_oom_is_retryable(tmp_path):
    report = run_supervised(
        [_stub("oom_cell")], retries=1, backoff=FAST_BACKOFF
    )
    assert report.results[0].outcome == "oom"
    assert report.results[0].attempts == 2


def test_journal_written_and_resume_skips_completed(tmp_path):
    journal = tmp_path / "journal.jsonl"
    specs = [
        _stub("ok_cell", {"value": 1}, cell_id="a"),
        _stub("ok_cell", {"value": 2}, cell_id="b"),
    ]
    first = run_supervised(specs, journal_path=str(journal))
    assert first.ok
    state = load_journal(str(journal))
    assert state.completed == {"a", "b"}

    second = run_supervised(
        specs, journal_path=str(journal), resume=True
    )
    assert second.ok
    assert all(r.cached for r in second.results)
    # no new attempts were launched for journaled-complete cells
    after = load_journal(str(journal))
    assert after.attempts == state.attempts


def test_resume_reruns_only_failed_cells(tmp_path):
    journal = tmp_path / "journal.jsonl"
    marker = tmp_path / "flaky.marker"
    specs = [
        _stub("ok_cell", {"value": 1}, cell_id="good"),
        _stub("flaky_cell", {"marker": str(marker)}, cell_id="flaky"),
    ]
    # First pass: no retries, so the flaky cell ends as a crash.
    first = run_supervised(
        specs, retries=0, journal_path=str(journal), backoff=FAST_BACKOFF
    )
    assert first.result_for("good").ok
    assert first.result_for("flaky").outcome == "crash"

    second = run_supervised(
        specs, retries=0, journal_path=str(journal), resume=True,
        backoff=FAST_BACKOFF,
    )
    assert second.ok
    assert second.result_for("good").cached  # not re-executed
    flaky = second.result_for("flaky")
    assert not flaky.cached and flaky.attempts == 2  # attempt numbering continues


def test_duplicate_cells_rejected():
    with pytest.raises(ValueError, match="duplicate"):
        Supervisor([_stub("ok_cell"), _stub("ok_cell")])


def test_invalid_limits_rejected():
    with pytest.raises(ValueError):
        Supervisor([_stub("ok_cell")], jobs=0)
    with pytest.raises(ValueError):
        Supervisor([_stub("ok_cell")], retries=-1)
    with pytest.raises(ValueError):
        Supervisor([_stub("ok_cell")], timeout_s=0)


def test_outcome_table_mentions_attempts_and_cached(tmp_path):
    journal = tmp_path / "j.jsonl"
    specs = [_stub("ok_cell", {"value": 1}, cell_id="a")]
    run_supervised(specs, journal_path=str(journal))
    report = run_supervised(specs, journal_path=str(journal), resume=True)
    table = outcome_table(report)
    assert "1/1 cells ok" in table
    assert "(cached)" in table
    assert "replayed from journal" in table
