"""End-to-end CLI tests for `run --archive`, `archive *` and `sentinel`."""

import json

import pytest

from repro.cli import main


def _archive_run(arch, seed, *extra):
    return main(
        [
            "run", "fib", "--size", "test", "--threads", "2",
            "--seed", str(seed), "--archive", str(arch), *extra,
        ]
    )


@pytest.fixture()
def seeded_archive(tmp_path):
    arch = tmp_path / "arch"
    for seed in (0, 1, 2):
        assert _archive_run(arch, seed, "--tag", "baseline") == 0
    return arch


def _sentinel(arch, *extra):
    return main(
        [
            "sentinel", "fib", "--archive", str(arch),
            "--size", "test", "--threads", "2", "--seed", "3", *extra,
        ]
    )


# ----------------------------------------------------------------------
# run --archive
# ----------------------------------------------------------------------
def test_run_archive_identical_config_deduplicates(tmp_path, capsys):
    arch = tmp_path / "arch"
    assert _archive_run(arch, 0) == 0
    first = capsys.readouterr().out
    assert "archived as r0001" in first and "sha256=" in first
    assert _archive_run(arch, 0) == 0
    second = capsys.readouterr().out
    assert "archived as r0002" in second
    assert "deduplicated: identical content already stored" in second
    sha = [w for w in first.split() if w.startswith("sha256=")][0]
    assert sha in second  # byte-identical content, same address


def test_run_archive_without_profile_warns(tmp_path, capsys):
    code = main(
        [
            "run", "fib", "--size", "test", "--no-instrument",
            "--archive", str(tmp_path / "arch"),
        ]
    )
    assert code == 0
    assert "nothing to archive" in capsys.readouterr().err


# ----------------------------------------------------------------------
# archive subcommands
# ----------------------------------------------------------------------
def test_archive_list_show_and_baseline(seeded_archive, capsys):
    assert main(["archive", "list", str(seeded_archive)]) == 0
    out = capsys.readouterr().out
    assert "r0001" in out and "r0003" in out and "baseline" in out

    assert main(["archive", "show", str(seeded_archive), "r0001"]) == 0
    out = capsys.readouterr().out
    assert "fib" in out and "sha256" in out

    code = main(
        ["archive", "baseline", str(seeded_archive), "--kernel", "fib"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "3-run baseline" in out or "n=3" in out or "3 run" in out


def test_archive_tag_and_gc(seeded_archive, capsys):
    assert main(["archive", "tag", str(seeded_archive), "r0002", "pinned"]) == 0
    capsys.readouterr()
    assert main(["archive", "gc", str(seeded_archive), "--keep", "2"]) == 0
    out = capsys.readouterr().out
    assert "1" in out  # one run dropped
    assert main(["archive", "list", str(seeded_archive)]) == 0
    out = capsys.readouterr().out
    assert "r0001" not in out and "r0002" in out and "pinned" in out


def test_archive_errors_exit_2(tmp_path, capsys):
    code = main(["archive", "show", str(tmp_path / "empty"), "r0001"])
    assert code == 2
    assert "no archived run" in capsys.readouterr().err


def test_archive_show_verify_reports_intact(seeded_archive, capsys):
    assert main(["archive", "show", str(seeded_archive), "r0001", "--verify"]) == 0
    assert "intact" in capsys.readouterr().out


def test_archive_show_verify_fails_on_corrupt_object(seeded_archive, capsys):
    """`show --verify` must recompute the sha256 on read and exit
    non-zero when the object bytes no longer hash to their name."""
    import gzip
    import os

    objects_dir = seeded_archive / "objects"
    path = next(
        os.path.join(root, name)
        for root, _, names in os.walk(objects_dir)
        for name in names
    )
    payload = gzip.decompress(open(path, "rb").read())
    with open(path, "wb") as handle:
        handle.write(gzip.compress(payload + b" ", mtime=0))

    code = main(["archive", "show", str(seeded_archive), "r0001", "--verify"])
    assert code == 2
    err = capsys.readouterr().err
    assert "fails verification" in err


# ----------------------------------------------------------------------
# sentinel
# ----------------------------------------------------------------------
def test_sentinel_clean_run_exits_zero(seeded_archive, capsys):
    assert _sentinel(seeded_archive) == 0
    out = capsys.readouterr().out
    assert "sentinel OK" in out


def test_sentinel_injected_slowdown_exits_nonzero(seeded_archive, tmp_path, capsys):
    report_path = tmp_path / "report.json"
    code = _sentinel(
        seeded_archive, "--instr-cost", "5.0", "--json", str(report_path)
    )
    assert code == 1
    out = capsys.readouterr().out
    assert "sentinel REGRESSED" in out
    assert "regressed" in out and "fib" in out  # names the regressed regions
    data = json.loads(report_path.read_text())
    assert data["exit_code"] == 1
    assert data["counts"]["regressed"] >= 1


def test_sentinel_candidate_file(seeded_archive, tmp_path, capsys):
    profile_path = tmp_path / "cand.json"
    assert main(
        [
            "run", "fib", "--size", "test", "--threads", "2",
            "--seed", "5", "--json", str(profile_path),
        ]
    ) == 0
    capsys.readouterr()
    code = _sentinel(seeded_archive, "--candidate", str(profile_path))
    assert code == 0
    assert "sentinel OK" in capsys.readouterr().out


def test_sentinel_without_baseline_exits_2(tmp_path, capsys):
    code = _sentinel(tmp_path / "nothing-here")
    assert code == 2
    err = capsys.readouterr().err
    assert "baseline needs" in err


def test_sentinel_archives_candidate_on_request(seeded_archive, capsys):
    code = _sentinel(seeded_archive, "--archive-candidate")
    assert code == 0
    capsys.readouterr()
    assert main(["archive", "list", str(seeded_archive)]) == 0
    out = capsys.readouterr().out
    assert "r0004" in out and "candidate" in out
