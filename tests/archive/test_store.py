"""Tests for the content-addressed store and its index."""

import gzip
import json
import os

import pytest

from repro.analysis import run_app
from repro.archive import (
    ArchiveStore,
    canonical_profile_bytes,
    content_hash,
    meta_for_result,
)
from repro.errors import ArchiveError


@pytest.fixture(scope="module")
def fib_result():
    return run_app("fib", size="test", variant="optimized", n_threads=2, seed=0)


@pytest.fixture(scope="module")
def stress_result():
    return run_app("fib", size="test", variant="stress", n_threads=2, seed=0)


def _put(store, result, **kwargs):
    kwargs.setdefault("variant", "optimized")
    meta = meta_for_result(result, size="test", **kwargs)
    return store.put(result.profile, meta)


# ----------------------------------------------------------------------
# Content addressing
# ----------------------------------------------------------------------
def test_put_same_content_deduplicates(tmp_path, fib_result):
    store = ArchiveStore(tmp_path / "arch")
    first = _put(store, fib_result)
    second = _put(store, fib_result)
    assert first.sha256 == second.sha256
    assert not first.deduplicated
    assert second.deduplicated
    assert first.run_id == "r0001" and second.run_id == "r0002"
    # exactly one object on disk backs both run records
    objects = [
        name
        for _, _, names in os.walk(tmp_path / "arch" / "objects")
        for name in names
    ]
    assert objects == [first.sha256 + ".json.gz"]


def test_object_bytes_are_pure_function_of_content(tmp_path, fib_result):
    a = ArchiveStore(tmp_path / "a")
    b = ArchiveStore(tmp_path / "b")
    sha_a, _ = a.put_object(fib_result.profile)
    sha_b, _ = b.put_object(fib_result.profile)
    assert sha_a == sha_b
    with open(a.object_path(sha_a), "rb") as fa, open(b.object_path(sha_b), "rb") as fb:
        assert fa.read() == fb.read()  # gzip mtime is zeroed


def test_different_profiles_get_different_hashes(fib_result, stress_result):
    assert content_hash(fib_result.profile) != content_hash(stress_result.profile)


def test_load_round_trips_profile(tmp_path, fib_result):
    store = ArchiveStore(tmp_path / "arch")
    record = _put(store, fib_result)
    loaded = store.load_profile(record.run_id)
    assert canonical_profile_bytes(loaded) == canonical_profile_bytes(
        fib_result.profile
    )


# ----------------------------------------------------------------------
# Corruption and lookup failures
# ----------------------------------------------------------------------
def test_load_missing_object_raises(tmp_path, fib_result):
    store = ArchiveStore(tmp_path / "arch")
    record = _put(store, fib_result)
    os.unlink(store.object_path(record.sha256))
    with pytest.raises(ArchiveError, match="missing"):
        store.load_profile(record.run_id)


def test_load_detects_on_disk_corruption(tmp_path, fib_result):
    store = ArchiveStore(tmp_path / "arch")
    record = _put(store, fib_result)
    tampered = json.loads(canonical_profile_bytes(fib_result.profile))
    tampered["n_threads"] = 99
    blob = gzip.compress(
        json.dumps(tampered, sort_keys=True, separators=(",", ":")).encode(), mtime=0
    )
    with open(store.object_path(record.sha256), "wb") as handle:
        handle.write(blob)
    with pytest.raises(ArchiveError, match="verification"):
        store.load_object(record.sha256)


def test_load_rejects_non_gzip_object(tmp_path, fib_result):
    store = ArchiveStore(tmp_path / "arch")
    record = _put(store, fib_result)
    with open(store.object_path(record.sha256), "wb") as handle:
        handle.write(b"not gzip at all")
    with pytest.raises(ArchiveError, match="gzip"):
        store.load_object(record.sha256)


def test_get_record_by_id_and_hash_prefix(tmp_path, fib_result):
    store = ArchiveStore(tmp_path / "arch")
    record = _put(store, fib_result)
    assert store.get_record("r0001").sha256 == record.sha256
    assert store.get_record(record.sha256[:8]).run_id == record.run_id
    with pytest.raises(ArchiveError, match="recent run ids"):
        store.get_record("r9999")


def test_records_tolerate_torn_index_lines(tmp_path, fib_result):
    store = ArchiveStore(tmp_path / "arch")
    _put(store, fib_result)
    with open(store.index_path, "a", encoding="utf-8") as handle:
        handle.write('{"type":"run","run_id":"r00\n')  # torn mid-write
        handle.write("garbage line\n")
    _put(store, fib_result)
    records = store.records()
    assert [r.run_id for r in records] == ["r0001", "r0002"]


# ----------------------------------------------------------------------
# Tags
# ----------------------------------------------------------------------
def test_tag_appends_and_folds(tmp_path, fib_result):
    store = ArchiveStore(tmp_path / "arch")
    record = _put(store, fib_result, tags=("nightly",))
    store.tag(record.run_id, "baseline")
    store.tag(record.run_id, "baseline")  # idempotent
    tags = store.records()[0].tags
    assert tags == ["nightly", "baseline"]
    with pytest.raises(ArchiveError):
        store.tag(record.run_id, "")


# ----------------------------------------------------------------------
# Garbage collection
# ----------------------------------------------------------------------
def test_gc_keeps_newest_per_group_and_deletes_objects(
    tmp_path, fib_result, stress_result
):
    store = ArchiveStore(tmp_path / "arch")
    for _ in range(3):
        _put(store, fib_result)  # all dedup to one object
    other = _put(store, stress_result, variant="stress")
    stats = store.gc(keep_last=1)
    assert stats.runs_dropped == 2
    remaining = store.records()
    # one fib run and the stress run survive (different group keys)
    assert {r.meta.variant for r in remaining} == {"optimized", "stress"}
    assert store.has_object(other.sha256)


def test_gc_removes_unreferenced_orphan_objects(tmp_path, fib_result, stress_result):
    store = ArchiveStore(tmp_path / "arch")
    _put(store, fib_result)
    orphan_sha, _ = store.put_object(stress_result.profile)  # no index record
    stats = store.gc()
    assert stats.objects_deleted == 1
    assert stats.bytes_freed > 0
    assert not store.has_object(orphan_sha)


def test_gc_rejects_nonpositive_keep(tmp_path):
    with pytest.raises(ArchiveError, match="keep_last"):
        ArchiveStore(tmp_path / "arch").gc(keep_last=0)


def test_gc_never_reuses_pruned_run_ids(tmp_path, fib_result, stress_result):
    # Regression: ids used to be derived from the surviving-record count,
    # so puts after a gc collided with (and silently shadowed) kept runs.
    store = ArchiveStore(tmp_path / "arch")
    for _ in range(3):
        _put(store, fib_result)  # r0001..r0003
    _put(store, stress_result, variant="stress")  # r0004
    store.gc(keep_last=1)  # keeps r0003 + r0004
    assert _put(store, fib_result).run_id == "r0005"
    assert _put(store, fib_result).run_id == "r0006"
    assert [r.run_id for r in store.records()] == [
        "r0003", "r0004", "r0005", "r0006",
    ]
    # the high-water mark survives a second prune as well
    store.gc(keep_last=1)
    assert _put(store, fib_result).run_id == "r0007"


def test_gc_survives_failing_unlink_with_consistent_index(
    tmp_path, fib_result, stress_result, monkeypatch
):
    # Fault injection: the filesystem refuses deletions mid-prune
    # (ENOSPC-style OSError).  The index -- rewritten, counter record
    # first, *before* any object is deleted -- must stay consistent:
    # surviving records loadable, pruned ids never reused, and the
    # undeleted garbage re-collectable by a later healthy gc.
    store = ArchiveStore(tmp_path / "arch")
    for _ in range(3):
        _put(store, fib_result)  # r0001..r0003, one shared object
    orphan_sha, _ = store.put_object(stress_result.profile)

    real_unlink = os.unlink

    def failing_unlink(path, *args, **kwargs):
        if str(path).endswith(".json.gz"):
            raise OSError(28, "No space left on device", str(path))
        return real_unlink(path, *args, **kwargs)

    monkeypatch.setattr(os, "unlink", failing_unlink)
    stats = store.gc(keep_last=1)
    monkeypatch.setattr(os, "unlink", real_unlink)

    assert stats.runs_dropped == 2
    assert stats.objects_deleted == 0
    assert stats.bytes_freed == 0  # only what was actually unlinked counts
    assert stats.objects_failed == 1  # the orphan we could not remove
    # index is consistent: the surviving record still has its object...
    (record,) = store.records()
    assert record.run_id == "r0003"
    store.load_object(record.sha256)
    # ...and the id high-water counter was written before deletion, so
    # pruned ids are still never handed out again.
    assert _put(store, fib_result).run_id == "r0004"
    # the stranded orphan is garbage a later healthy gc re-collects
    assert store.has_object(orphan_sha)
    retry = store.gc()
    assert retry.objects_deleted == 1 and retry.objects_failed == 0
    assert not store.has_object(orphan_sha)


def test_concurrent_put_and_gc_keep_records_loadable(
    tmp_path, fib_result, stress_result
):
    # put() writes object + index record under the same lock gc holds,
    # so gc can never delete a fresh object as an orphan mid-put.
    import threading

    store = ArchiveStore(tmp_path / "arch")
    _put(store, fib_result)
    failures = []

    def putter():
        try:
            for _ in range(5):
                _put(store, stress_result, variant="stress")
        except Exception as exc:  # pragma: no cover - failure path
            failures.append(exc)

    def collector():
        try:
            for _ in range(5):
                store.gc(keep_last=1)
        except Exception as exc:  # pragma: no cover - failure path
            failures.append(exc)

    threads = [threading.Thread(target=putter), threading.Thread(target=collector)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not failures
    records = store.records()
    assert records
    for record in records:  # every surviving record's blob must load
        store.load_object(record.sha256)
