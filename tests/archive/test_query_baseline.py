"""Tests for the query layer and baseline aggregation."""

import pytest

from repro.analysis import run_app
from repro.archive import (
    ArchiveStore,
    Baseline,
    baselines_available,
    config_fingerprint,
    find_runs,
    latest_baseline,
    meta_for_result,
)
from repro.archive.baseline import MetricStats
from repro.errors import ArchiveError
from repro.runtime.config import RuntimeConfig
from repro.runtime.costs import JUROPA_LIKE


@pytest.fixture(scope="module")
def results():
    return [
        run_app("fib", size="test", variant="optimized", n_threads=2, seed=seed)
        for seed in (0, 1, 2)
    ]


@pytest.fixture()
def store(tmp_path, results):
    store = ArchiveStore(tmp_path / "arch")
    for result in results:
        store.put(
            result.profile,
            meta_for_result(result, size="test", variant="optimized"),
        )
    return store


# ----------------------------------------------------------------------
# Configuration fingerprints
# ----------------------------------------------------------------------
def test_fingerprint_ignores_seed_but_not_costs():
    base = RuntimeConfig(n_threads=2, seed=0)
    assert config_fingerprint(base) == config_fingerprint(
        RuntimeConfig(n_threads=2, seed=7)
    )
    inflated = RuntimeConfig(
        n_threads=2, costs=JUROPA_LIKE.with_instrumentation_cost(5.0)
    )
    assert config_fingerprint(base) != config_fingerprint(inflated)
    assert config_fingerprint(base) != config_fingerprint(RuntimeConfig(n_threads=4))


# ----------------------------------------------------------------------
# find_runs
# ----------------------------------------------------------------------
def test_find_runs_filters(store):
    assert len(find_runs(store, kernel="fib")) == 3
    assert len(find_runs(store, kernel="nqueens")) == 0
    assert len(find_runs(store, kernel="fib", seed=1)) == 1
    assert len(find_runs(store, variant="optimized", n_threads=2)) == 3
    assert find_runs(store, tag="baseline") == []


def test_find_runs_limit_keeps_newest(store):
    newest = find_runs(store, kernel="fib", limit=2)
    assert [r.run_id for r in newest] == ["r0002", "r0003"]
    reversed_order = find_runs(store, kernel="fib", limit=2, newest_first=True)
    assert [r.run_id for r in reversed_order] == ["r0003", "r0002"]


def test_find_runs_by_tag_after_tagging(store):
    store.tag("r0001", "baseline")
    assert [r.run_id for r in find_runs(store, tag="baseline")] == ["r0001"]


# ----------------------------------------------------------------------
# latest_baseline
# ----------------------------------------------------------------------
def test_latest_baseline_aggregates_newest_runs(store):
    baseline = latest_baseline(store, kernel="fib", runs=3, min_runs=2)
    assert baseline.n_runs == 3
    assert baseline.run_ids() == ("r0001", "r0002", "r0003")
    assert baseline.region_names()  # flat view is non-empty
    for region in baseline.region_names():
        assert baseline.presence(region) >= 1


def test_latest_baseline_insufficient_runs_is_actionable(store):
    with pytest.raises(ArchiveError, match="repro run --archive"):
        latest_baseline(store, kernel="nqueens", min_runs=2)
    with pytest.raises(ArchiveError, match="found 0"):
        latest_baseline(store, kernel="fib", tag="no-such-tag", min_runs=1)
    with pytest.raises(ArchiveError, match="at least 1"):
        latest_baseline(store, kernel="fib", runs=0)


def test_latest_baseline_excludes_candidate_tagged_runs(store, results):
    # `repro sentinel --archive-candidate` stores candidates tagged
    # 'candidate'; they must never become part of the next baseline.
    store.put(
        results[0].profile,
        meta_for_result(
            results[0], size="test", variant="optimized",
            tags=("candidate",), source="sentinel",
        ),
    )
    baseline = latest_baseline(store, kernel="fib", runs=4)
    assert baseline.run_ids() == ("r0001", "r0002", "r0003")
    # explicit opt-ins still see them
    assert latest_baseline(store, kernel="fib", tag="candidate").run_ids() == (
        "r0004",
    )
    assert latest_baseline(
        store, kernel="fib", runs=4, include_candidates=True
    ).run_ids() == ("r0001", "r0002", "r0003", "r0004")


def test_latest_baseline_warns_and_restricts_on_mixed_fingerprints(
    store, results
):
    import dataclasses as dc

    from repro.errors import ArchiveWarning

    meta = meta_for_result(results[0], size="test", variant="optimized")
    store.put(  # same group, different (newer) configuration fingerprint
        results[0].profile, dc.replace(meta, config_hash="deadbeef", seed=99)
    )
    with pytest.warns(ArchiveWarning, match="fingerprints"):
        baseline = latest_baseline(store, kernel="fib", runs=4)
    assert baseline.run_ids() == ("r0004",)


def test_latest_baseline_clean_group_does_not_warn(store, recwarn):
    latest_baseline(store, kernel="fib", runs=3)
    assert not [w for w in recwarn.list if issubclass(w.category, Warning)]


def test_baselines_available_groups(store):
    groups = baselines_available(store)
    assert groups == [(("fib", "test", "optimized", 2), 3)]


# ----------------------------------------------------------------------
# Baseline statistics
# ----------------------------------------------------------------------
def test_metric_stats_basics():
    stats = MetricStats.from_samples([10.0, 20.0, 30.0])
    assert stats.count == 3
    assert stats.mean == pytest.approx(20.0)
    assert stats.minimum == 10.0 and stats.maximum == 30.0
    assert stats.std == pytest.approx(8.1649, rel=1e-3)
    assert stats.zscore(28.1649) == pytest.approx(1.0, rel=1e-3)
    assert MetricStats.from_samples([]).count == 0


def test_identical_samples_clamp_float_residue_to_zero_std():
    # Repeatable runs must not produce astronomical z-scores from
    # 1e-16-level float residue in the variance sum.
    value = 12345.6789
    stats = MetricStats.from_samples([value] * 5)
    assert stats.std == 0.0
    assert stats.zscore(2 * value) is None


def test_baseline_from_deterministic_profiles_has_zero_std(results):
    baseline = Baseline.from_profiles([r.profile for r in results])
    assert baseline.n_runs == 3
    # fib size=test threads=2 is fully deterministic across seeds
    for region in baseline.region_names():
        for metric in ("exclusive", "inclusive", "visits"):
            stats = baseline.stats(region, metric)
            assert stats is not None and stats.count == 3
            assert stats.std == 0.0
            assert stats.minimum == stats.maximum == pytest.approx(stats.mean)


def test_baseline_to_dict_is_jsonable(store):
    import json

    baseline = latest_baseline(store, kernel="fib")
    data = json.loads(json.dumps(baseline.to_dict()))
    assert data["n_runs"] == 3
    assert data["runs"] == ["r0001", "r0002", "r0003"]
    region = next(iter(data["regions"].values()))
    assert set(region["exclusive"]) == {"count", "mean", "std", "min", "max"}
