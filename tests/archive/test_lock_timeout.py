"""Bounded index-lock waits: ArchiveLockTimeout instead of hanging.

Lease-based callers (the campaign gateway) cannot afford an unbounded
block on the archive's advisory index lock -- a wedged peer would eat
the lease TTL.  ``lock_timeout_s`` turns that hang into a stable,
typed error.
"""

import fcntl
import os

import pytest

from repro.analysis import run_app
from repro.archive import ArchiveStore, meta_for_result
from repro.errors import ArchiveLockTimeout


@pytest.fixture(scope="module")
def fib_result():
    return run_app("fib", size="test", variant="optimized", n_threads=2, seed=0)


def _meta(result):
    return meta_for_result(result, size="test", variant="optimized")


def _hold_index_lock(root):
    """An exclusive flock on the store's index.lock, held by this fd."""
    os.makedirs(root, exist_ok=True)
    handle = open(os.path.join(root, "index.lock"), "a+")
    fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
    return handle


def test_lock_timeout_raises_stable_error(tmp_path, fib_result):
    root = str(tmp_path / "arch")
    store = ArchiveStore(root, lock_timeout_s=0.2)
    holder = _hold_index_lock(root)
    try:
        with pytest.raises(ArchiveLockTimeout) as excinfo:
            store.put(fib_result.profile, _meta(fib_result))
        assert excinfo.value.code == "E_ARCHIVE_LOCK_TIMEOUT"
        assert "0.2" in str(excinfo.value)
    finally:
        fcntl.flock(holder.fileno(), fcntl.LOCK_UN)
        holder.close()


def test_put_succeeds_once_lock_releases(tmp_path, fib_result):
    root = str(tmp_path / "arch")
    store = ArchiveStore(root, lock_timeout_s=5.0)
    holder = _hold_index_lock(root)
    fcntl.flock(holder.fileno(), fcntl.LOCK_UN)
    holder.close()
    record = store.put(fib_result.profile, _meta(fib_result))
    assert record.run_id == "r0001"


def test_nonpositive_timeout_rejected(tmp_path):
    with pytest.raises(ValueError):
        ArchiveStore(str(tmp_path / "arch"), lock_timeout_s=0.0)


def test_default_remains_unbounded_blocking(tmp_path):
    # No timeout configured: historical behavior (block indefinitely)
    # is preserved; construction must not opt in accidentally.
    store = ArchiveStore(str(tmp_path / "arch"))
    assert store.lock_timeout_s is None
