"""Multi-process archive stress: concurrent put()/gc()/fsck under the
index flock must lose no records, grow no orphans, and never reuse a
run id.
"""

import multiprocessing
import os

import pytest

from repro.archive import ArchiveStore, fsck
from repro.faults.crash import gc_loop, put_loop, synthetic_meta, synthetic_profile

pytestmark = pytest.mark.skipif(
    os.name != "posix", reason="multi-process flock stress is POSIX-only"
)

WRITERS = 3
PUTS_EACH = 20


def _spawn_children(root):
    ctx = multiprocessing.get_context("fork")
    children = [
        ctx.Process(
            target=put_loop,
            args=(root, 1000 * writer, PUTS_EACH),
            kwargs={"seed": writer},
        )
        for writer in range(WRITERS)
    ]
    children.append(
        ctx.Process(target=gc_loop, args=(root,), kwargs={"passes": 6})
    )
    return children


def test_concurrent_put_gc_fsck_loses_nothing(tmp_path):
    root = str(tmp_path / "archive")
    store = ArchiveStore(root)  # create the root before the race starts

    children = _spawn_children(root)
    for child in children:
        child.start()
    # fsck (read-only) competes for the same flock while writers run;
    # it must never crash or misreport a mid-flight state as damage.
    while any(child.is_alive() for child in children):
        report = fsck(store)
        assert not report.unrepaired  # detection-only never "fails"
        assert set(report.counts()) <= {"orphan_object"}
    for child in children:
        child.join()
        assert child.exitcode == 0

    # No record loss: every writer's serials all landed exactly once.
    records = store.records()
    assert len(records) == WRITERS * PUTS_EACH
    wall_times = sorted(r.meta.wall_time_us for r in records)
    expected = sorted(
        100.0 + 1000 * writer + i
        for writer in range(WRITERS)
        for i in range(PUTS_EACH)
    )
    assert wall_times == expected

    # No orphan growth: with all writers done, gc'd state is clean.
    store.gc()
    assert fsck(store).clean

    # Monotonic, collision-free run ids across all three writers.
    serials = sorted(int(r.run_id[1:]) for r in records)
    assert len(set(serials)) == len(serials)
    assert serials == list(range(serials[0], serials[0] + len(serials)))


def test_run_ids_stay_monotonic_across_concurrent_gc(tmp_path):
    root = str(tmp_path / "archive")
    store = ArchiveStore(root)
    put_loop(root, 0, 10)
    high_water = max(int(r.run_id[1:]) for r in store.records())

    ctx = multiprocessing.get_context("fork")
    racers = [
        ctx.Process(target=gc_loop, args=(root,), kwargs={"passes": 8}),
        ctx.Process(target=put_loop, args=(root, 5000, 10)),
    ]
    for racer in racers:
        racer.start()
    for racer in racers:
        racer.join()
        assert racer.exitcode == 0

    fresh = store.put(synthetic_profile(42), synthetic_meta(42))
    assert int(fresh.run_id[1:]) > high_water + 10 - 1  # never reused
    assert fsck(store).clean


def test_fsck_repair_races_a_live_writer_without_damage(tmp_path):
    # Worst case: --repair (index rewrite) interleaved with live puts.
    # The flock serialises them, so the final state must be whole.
    root = str(tmp_path / "archive")
    store = ArchiveStore(root)
    ctx = multiprocessing.get_context("fork")
    writer = ctx.Process(target=put_loop, args=(root, 0, 30))
    writer.start()
    while writer.is_alive():
        fsck(store, repair=True)
    writer.join()
    assert writer.exitcode == 0
    assert len(store.records()) == 30
    assert fsck(store).clean
    for record in store.records():
        store.load_object(record.sha256)
