"""Archive fsck: every corruption class detected, repaired, and proven
harmless afterwards (list/load/baseline all work on the repaired store).
"""

import json
import os

import pytest

from repro.archive import ArchiveStore, find_runs, fsck, latest_baseline
from repro.faults.crash import (
    CORRUPTION_CLASSES,
    corrupt_archive,
    crash_put_cycle,
    synthetic_meta,
    synthetic_profile,
)


@pytest.fixture()
def seeded_store(tmp_path):
    store = ArchiveStore(str(tmp_path / "archive"))
    for serial in range(6):
        store.put(synthetic_profile(serial), synthetic_meta(serial))
    return store


EXPECTED_ISSUE = {
    "truncated_object": "corrupt_object",
    "bad_sha": "corrupt_object",
    "torn_index": "torn_index_line",
    "orphan_object": "orphan_object",
    "dangling_record": "dangling_record",
}


def test_clean_archive_passes(seeded_store):
    report = fsck(seeded_store)
    assert report.clean
    assert report.objects_checked == 6
    assert report.records_checked == 6
    assert not report.index_rewritten


@pytest.mark.parametrize("kind", CORRUPTION_CLASSES)
def test_each_corruption_class_is_detected_and_repaired(seeded_store, kind):
    corrupt_archive(seeded_store.root, kind, seed=2)
    detected = fsck(seeded_store)
    assert not detected.clean
    assert EXPECTED_ISSUE[kind] in detected.counts()

    repaired = fsck(seeded_store, repair=True)
    assert not repaired.unrepaired
    assert fsck(seeded_store).clean  # idempotent: second pass is quiet

    # The repaired store answers everything the seed store could,
    # minus at most the records whose objects were corrupted away.
    records = seeded_store.records()
    assert len(records) >= 5
    for record in records:
        seeded_store.load_object(record.sha256)
    assert find_runs(seeded_store, kernel="crashkit")
    baseline = latest_baseline(
        seeded_store, kernel="crashkit", runs=3, min_runs=1
    )
    assert baseline.run_ids()


def test_all_classes_at_once_and_run_ids_stay_monotonic(seeded_store):
    for i, kind in enumerate(CORRUPTION_CLASSES):
        corrupt_archive(seeded_store.root, kind, seed=i)
    detected = fsck(seeded_store)
    assert set(detected.counts()) == {
        "corrupt_object",
        "torn_index_line",
        "orphan_object",
        "dangling_record",
    }
    repaired = fsck(seeded_store, repair=True)
    assert not repaired.unrepaired and repaired.index_rewritten
    assert fsck(seeded_store).clean

    # The dangling record carried a high run id (r9xxx); rebuilding the
    # index must preserve the high-water mark so ids never regress.
    fresh = seeded_store.put(synthetic_profile(777), synthetic_meta(777))
    assert int(fresh.run_id[1:]) > 9000


def test_corrupt_objects_are_quarantined_not_destroyed(seeded_store):
    damage = corrupt_archive(seeded_store.root, "bad_sha", seed=0)
    fsck(seeded_store, repair=True)
    assert not os.path.exists(damage["path"])  # gone from objects/
    quarantine = os.path.join(seeded_store.root, "quarantine")
    assert len(os.listdir(quarantine)) == 1  # preserved for forensics


def test_detection_without_repair_mutates_nothing(seeded_store):
    corrupt_archive(seeded_store.root, "orphan_object", seed=1)
    index_before = open(seeded_store.index_path).read()
    report = fsck(seeded_store)
    assert not report.clean
    assert open(seeded_store.index_path).read() == index_before
    # The orphan is still there: detection is read-only.
    assert fsck(seeded_store).counts() == report.counts()


def test_kill9_residue_is_only_orphans_and_fsck_clears_it(tmp_path):
    root = str(tmp_path / "crashy")
    killed = crash_put_cycle(
        root, cycles=3, puts_per_cycle=30, seed=11, kill_after_s=0.05
    )
    assert killed >= 1  # the harness really interrupted work
    store = ArchiveStore(root)
    report = fsck(store, repair=True)
    # Atomic temp+rename writes mean a SIGKILL can leave orphan objects
    # (object landed, index append did not) but never torn indexes or
    # corrupt objects.
    assert set(report.counts()) <= {"orphan_object"}
    assert not report.unrepaired
    assert fsck(store).clean
    for record in store.records():
        store.load_object(record.sha256)


def test_store_rejects_truncated_object_on_put(tmp_path):
    # Satellite: has_object/put_object must not trust a bare exists().
    store = ArchiveStore(str(tmp_path / "a"))
    profile = synthetic_profile(1)
    sha256, created = store.put_object(profile)
    assert created and store.has_object(sha256)
    # Torn to an empty file: no longer "has" it, and put rewrites it.
    path = store.object_path(sha256)
    open(path, "wb").close()
    assert not store.has_object(sha256)
    sha_again, recreated = store.put_object(profile)
    assert sha_again == sha256 and recreated
    assert store.has_object(sha256)
    store_loaded = store.load_object(sha256)
    assert store_loaded.main_trees  # decompresses and verifies again


def test_fsck_report_is_json_able(seeded_store):
    corrupt_archive(seeded_store.root, "torn_index", seed=0)
    report = fsck(seeded_store, repair=True)
    data = json.loads(json.dumps(report.to_dict()))
    assert data["repair"] is True
    assert data["counts"]["torn_index_line"] == 1
    assert data["issues"][0]["action"] == "rewritten"
