"""Tests for the noise-aware regression sentinel."""

import pytest

from repro.analysis import run_app
from repro.analysis.regression import sentinel_table
from repro.archive import (
    Baseline,
    MetricPolicy,
    SentinelPolicy,
    compare_to_baseline,
)
from repro.archive.baseline import MetricStats
from repro.runtime.costs import JUROPA_LIKE


@pytest.fixture(scope="module")
def baseline():
    profiles = [
        run_app("fib", size="test", variant="optimized", n_threads=2, seed=s).profile
        for s in (0, 1, 2)
    ]
    return Baseline.from_profiles(profiles)


@pytest.fixture(scope="module")
def clean_profile():
    return run_app(
        "fib", size="test", variant="optimized", n_threads=2, seed=3
    ).profile


@pytest.fixture(scope="module")
def slow_profile():
    return run_app(
        "fib",
        size="test",
        variant="optimized",
        n_threads=2,
        seed=3,
        costs=JUROPA_LIKE.with_instrumentation_cost(5.0),
    ).profile


# ----------------------------------------------------------------------
# End-to-end verdicts
# ----------------------------------------------------------------------
def test_clean_candidate_passes(baseline, clean_profile):
    report = compare_to_baseline(clean_profile, baseline)
    assert report.ok and report.exit_code == 0
    assert not report.regressions
    assert "OK" in report.summary()
    counts = report.counts
    assert counts["ok"] > 0
    assert counts["appeared"] == counts["vanished"] == 0


def test_inflated_instrumentation_cost_regresses(baseline, slow_profile):
    report = compare_to_baseline(slow_profile, baseline, candidate_label="slow")
    assert report.exit_code == 1
    regressed = {v.region for v in report.regressions}
    assert any("fib" in region for region in regressed)
    assert "REGRESSED" in report.summary()
    # most-severe first: a regression leads the verdict list
    assert report.verdicts[0].verdict == "regressed"
    for verdict in report.regressions:
        assert verdict.ratio >= 1.10


def test_improvement_is_flagged_but_passes(baseline, clean_profile, slow_profile):
    slow_baseline = Baseline.from_profiles([slow_profile] * 3)
    report = compare_to_baseline(clean_profile, slow_baseline)
    assert report.exit_code == 0
    assert report.by_verdict("improved")


# ----------------------------------------------------------------------
# Structural changes
# ----------------------------------------------------------------------
def test_appeared_and_vanished_regions(clean_profile):
    ghost = Baseline(
        n_runs=3,
        regions={
            "ghost_region": {
                "exclusive": MetricStats(count=3, mean=100.0, minimum=100.0,
                                         maximum=100.0)
            }
        },
    )
    report = compare_to_baseline(clean_profile, ghost)
    assert report.by_verdict("appeared")  # every real region is new
    vanished = report.by_verdict("vanished")
    assert [v.region for v in vanished] == ["ghost_region"]
    assert report.exit_code == 0  # structural changes pass by default

    strict = SentinelPolicy(fail_on_vanished=True)
    assert compare_to_baseline(clean_profile, ghost, strict).exit_code == 1
    strict = SentinelPolicy(fail_on_appeared=True)
    assert compare_to_baseline(clean_profile, ghost, strict).exit_code == 1


# ----------------------------------------------------------------------
# Noise-aware gating
# ----------------------------------------------------------------------
def _single_region_baseline(mean, std):
    return Baseline(
        n_runs=3,
        regions={
            "r": {
                "exclusive": MetricStats(
                    count=3, mean=mean, std=std, minimum=mean - std,
                    maximum=mean + std,
                )
            }
        },
    )


def _verdict_for(value, baseline, policy=None):
    # compare_to_baseline needs a Profile; gate logic is unit-tested via
    # a fake flat view instead
    from repro.archive import sentinel as mod

    class FakeProfile:
        pass

    original = mod.flat_region_profile
    mod.flat_region_profile = lambda _p: {"r": {"exclusive": value}}
    try:
        report = compare_to_baseline(FakeProfile(), baseline, policy)
    finally:
        mod.flat_region_profile = original
    (entry,) = report.verdicts
    return entry


def test_ratio_alone_is_not_enough_when_baseline_is_noisy():
    noisy = _single_region_baseline(mean=100.0, std=30.0)
    entry = _verdict_for(120.0, noisy)  # 1.2x but z = 0.67
    assert entry.verdict == "ok"
    entry = _verdict_for(300.0, noisy)  # 3.0x and z = 6.67
    assert entry.verdict == "regressed"
    assert entry.zscore == pytest.approx(6.67, rel=1e-2)


def test_zero_std_baseline_gates_on_ratio_only():
    exact = _single_region_baseline(mean=100.0, std=0.0)
    assert _verdict_for(109.0, exact).verdict == "ok"
    assert _verdict_for(111.0, exact).verdict == "regressed"
    assert _verdict_for(80.0, exact).verdict == "improved"


def test_noise_floor_mutes_tiny_regions():
    tiny = _single_region_baseline(mean=0.4, std=0.0)
    policy = SentinelPolicy(metrics={"exclusive": MetricPolicy(min_abs=1.0)})
    assert _verdict_for(0.9, tiny, policy).verdict == "ok"  # 2.25x but sub-µs


def test_with_thresholds_overrides_one_metric():
    policy = SentinelPolicy().with_thresholds("exclusive", ratio=2.0)
    assert policy.metrics["exclusive"].ratio == 2.0
    assert policy.metrics["exclusive"].zscore == 3.0  # untouched
    exact = _single_region_baseline(mean=100.0, std=0.0)
    assert _verdict_for(150.0, exact, policy).verdict == "ok"


def test_metric_policy_validates_thresholds():
    with pytest.raises(ValueError, match="ratio"):
        MetricPolicy(ratio=1.0)
    with pytest.raises(ValueError, match="zscore"):
        MetricPolicy(zscore=-1.0)


# ----------------------------------------------------------------------
# Report surface
# ----------------------------------------------------------------------
def test_report_to_dict_is_jsonable(baseline, slow_profile):
    import json

    report = compare_to_baseline(slow_profile, baseline, candidate_label="cand")
    data = json.loads(json.dumps(report.to_dict()))
    assert data["exit_code"] == 1 and data["ok"] is False
    assert data["candidate"] == "cand"
    assert data["counts"]["regressed"] >= 1
    entry = data["verdicts"][0]
    assert set(entry) >= {"region", "metric", "verdict", "ratio", "presence"}


def test_sentinel_table_renders(baseline, slow_profile, clean_profile):
    report = compare_to_baseline(slow_profile, baseline)
    text = sentinel_table(report)
    assert "regressed" in text and "sentinel REGRESSED" in text
    assert "±" in text
    clean = compare_to_baseline(clean_profile, baseline)
    text = sentinel_table(clean)
    assert "no regions beyond thresholds" in text
    assert "sentinel OK" in text
