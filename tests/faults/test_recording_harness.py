"""Kill-mid-record harness: real SIGKILLs against the recording substrate."""

import multiprocessing
import os
import signal

import pytest

from repro.faults.recording import crash_recorded_run, record_until_killed
from repro.recorder import read_records, salvage_recording
from repro.recorder.store import events_path


def _fork_ctx():
    methods = multiprocessing.get_all_start_methods()
    if "fork" not in methods:  # pragma: no cover - non-POSIX
        pytest.skip("needs fork start method")
    return multiprocessing.get_context("fork")


def test_die_at_exact_record_count_leaves_salvageable_prefix(tmp_path):
    """The deterministic kill: worker SIGKILLs itself the instant record
    N is appended; salvage recovers every *sealed* record before it."""
    record_dir = str(tmp_path / "rec")
    proc = _fork_ctx().Process(
        target=record_until_killed,
        kwargs={
            "record_dir": record_dir,
            "die_after_records": 600,
            "chunk_records": 128,
            "checkpoint_every": 512,
        },
    )
    proc.start()
    proc.join(timeout=60.0)
    assert proc.exitcode == -signal.SIGKILL

    result = salvage_recording(record_dir)
    assert result is not None
    assert result.source == "replay"
    # sealed prefix: everything up to the last chunk/checkpoint boundary
    assert 0 < result.records <= 600 + 1  # +1 for the init wire record
    assert not result.complete
    assert result.profile.salvage is not None


def test_kill_too_late_still_dies_after_complete_run(tmp_path):
    """A die_after the run never reaches must still SIGKILL (the harness
    promises the parent always observes a signal-9 death)."""
    record_dir = str(tmp_path / "rec")
    proc = _fork_ctx().Process(
        target=record_until_killed,
        kwargs={
            "record_dir": record_dir,
            "die_after_records": 10**9,
            "app": "fib",
            "size": "test",
        },
    )
    proc.start()
    proc.join(timeout=60.0)
    assert proc.exitcode == -signal.SIGKILL
    # the run itself completed before the post-run kill
    stream = read_records(events_path(record_dir))
    assert stream.complete


def test_wall_clock_kills_leave_recoverable_streams(tmp_path):
    """Honest mid-write SIGKILLs: wherever they land, every cycle's
    stream must recover to a clean prefix without an exception.

    The kill delay is wall-clock, so on a loaded machine a short window
    can land every kill before the child seals its first chunk --
    recovery is still exercised (empty prefix), but the run proves
    nothing about mid-stream tears.  Widen the window until at least
    one cycle got past a seal; the never-raises invariant is asserted
    on every round regardless of where the kills landed.
    """
    killed = 0
    recovered = 0
    for round_no, kill_after_s in enumerate((0.2, 0.5, 1.0, 2.0)):
        round_dir = tmp_path / f"round{round_no}"
        killed += crash_recorded_run(
            str(round_dir), cycles=2, seed=0, kill_after_s=kill_after_s,
            size="test",
        )
        for cycle in sorted(os.listdir(round_dir)):
            path = events_path(str(round_dir / cycle))
            if not os.path.exists(path):
                continue
            stream = read_records(path, truncate=True)  # must not raise
            recovered += len(stream.records)
            if stream.records:
                assert stream.records[0][0] == "init"
        if killed >= 1 and recovered > 0:
            break
    assert killed >= 1  # at least one child died mid-flight
    assert recovered > 0
