"""FaultPlan validation and seeded FaultInjector determinism."""

from types import SimpleNamespace

import pytest

from repro.errors import FaultInjectionError
from repro.events import EnterEvent, ExitEvent, RegionRegistry, RegionType
from repro.events.model import implicit_instance_id
from repro.faults import FAULT_MODES, FaultInjector, FaultPlan, plan_for_mode

IMPL = implicit_instance_id(0)


def test_plan_rejects_out_of_range_rates():
    with pytest.raises(ValueError, match="drop_rate"):
        FaultPlan(drop_rate=1.5)
    with pytest.raises(ValueError, match="truncate_after"):
        FaultPlan(truncate_after=-1)


def test_plan_for_mode_covers_every_mode():
    for mode in FAULT_MODES:
        plan = plan_for_mode(mode, seed=7)
        # pressure is armed through the governor, not the injector, so
        # it deliberately keeps plan.armed false
        assert plan.armed or plan.wants_pressure, mode
        assert plan.seed == 7
        assert "no faults" not in plan.describe()


def test_plan_for_mode_rejects_unknown_mode():
    with pytest.raises(ValueError, match="clock_skew"):
        plan_for_mode("cosmic_rays")


def test_unarmed_plan_wants_nothing():
    plan = FaultPlan()
    assert not plan.armed
    assert not plan.wants_task_faults
    assert not plan.wants_stream_faults
    assert "no faults" in plan.describe()


def test_with_seed_returns_reseeded_copy():
    plan = plan_for_mode("drop_events", seed=0)
    reseeded = plan.with_seed(9)
    assert reseeded.seed == 9
    assert reseeded.drop_rate == plan.drop_rate


def _event_burst(n=200):
    reg = RegionRegistry()
    foo = reg.register("foo", RegionType.FUNCTION)
    events = []
    time = 0.0
    for _ in range(n // 2):
        events.append(EnterEvent(0, time, IMPL, foo))
        time += 1.0
        events.append(ExitEvent(0, time, IMPL, foo))
        time += 1.0
    return events


def _corrupt(events, plan):
    injector = FaultInjector(plan)
    out = []
    for event in events:
        out.extend(injector.on_record(event))
    out.extend(injector.drain())
    return out, injector


def test_stream_faults_are_deterministic_per_seed():
    events = _event_burst()
    first, _ = _corrupt(events, plan_for_mode("drop_events", seed=3))
    again, _ = _corrupt(events, plan_for_mode("drop_events", seed=3))
    other, _ = _corrupt(events, plan_for_mode("drop_events", seed=4))
    assert first == again
    assert first != other


def test_drop_mode_actually_drops():
    events = _event_burst()
    out, injector = _corrupt(events, plan_for_mode("drop_events", seed=0))
    assert injector.stats["events_dropped"] > 0
    assert len(out) == len(events) - injector.stats["events_dropped"]


def test_truncation_cuts_the_stream():
    events = _event_burst(100)
    out, injector = _corrupt(events, FaultPlan(seed=0, truncate_after=10))
    assert len(out) == 10
    assert injector.stats["events_truncated"] == 90
    assert "truncate_after=10" in injector.summary()


def test_reordered_events_swap_but_are_not_lost():
    events = _event_burst()
    out, injector = _corrupt(events, plan_for_mode("reorder_events", seed=1))
    assert injector.stats["events_reordered"] > 0
    assert len(out) == len(events)  # withheld events always re-emerge
    assert out != events
    assert sorted(out, key=lambda e: e.time) == events  # swapped, not lost


def test_task_fault_decisions_respect_max_task_faults():
    plan = FaultPlan(seed=1, task_exception_rate=1.0, max_task_faults=2)
    injector = FaultInjector(plan)
    tasks = [
        SimpleNamespace(instance_id=i, region=None, injected_fault=None)
        for i in range(5)
    ]
    for task in tasks:
        injector.on_new_task(task)
    assert sum(t.injected_fault == "exception" for t in tasks) == 2


def test_faulty_body_raises_the_injected_error():
    reg = RegionRegistry()
    region = reg.register("victim", RegionType.TASK)
    task = SimpleNamespace(instance_id=7, region=region, injected_fault="exception")
    ctx = SimpleNamespace(compute=lambda us: ("compute", us))
    injector = FaultInjector(FaultPlan(seed=0, task_exception_rate=1.0))
    body = injector.faulty_body(ctx, task)
    assert next(body) == ("compute", 1.0)
    with pytest.raises(FaultInjectionError, match="instance 7"):
        next(body)
    assert injector.stats["tasks_failed"] == 1


def test_stuck_body_computes_for_the_plan_duration():
    task = SimpleNamespace(instance_id=3, region=None, injected_fault="stuck")
    ctx = SimpleNamespace(compute=lambda us: us)
    injector = FaultInjector(FaultPlan(seed=0, stuck_task_rate=1.0))
    body = injector.faulty_body(ctx, task)
    assert next(body) == injector.plan.stuck_duration_us
    with pytest.raises(StopIteration):
        next(body)
    assert injector.stats["tasks_stuck"] == 1
