"""System-level salvage: tolerant runs, the watchdog, and the fault grid.

The acceptance property of the robustness work: every cell of the
(mode x seed) grid either yields a full profile or a partial profile
with a non-empty salvage report -- never an unhandled exception --
while strict mode keeps raising the precise error type.
"""

import pytest

from repro.analysis.experiment import run_app
from repro.errors import (
    CampaignInterrupted,
    FaultInjectionError,
    ValidationError,
    WatchdogTimeout,
)
from repro.events.validate import validate_program_trace
from repro.faults import plan_for_mode, run_campaign, run_tolerant
from repro.faults.campaign import campaign_table


def test_healthy_tolerant_run_is_complete():
    outcome = run_tolerant("fib", size="test", n_threads=2, seed=0)
    assert outcome.status == "complete"
    assert outcome.ok
    assert outcome.verified is True
    assert outcome.profile is not None
    assert outcome.profile.salvage is None
    assert not outcome.profile.is_partial


def test_injected_exception_salvages_partial_profile():
    outcome = run_tolerant(
        "fib", size="test", n_threads=2, seed=0,
        plan=plan_for_mode("task_exception", seed=0),
    )
    assert outcome.status == "partial"
    assert outcome.ok
    assert "FaultInjectionError" in outcome.salvage.run_error
    assert outcome.profile is not None
    assert outcome.profile.is_partial


def test_corrupt_trace_rebuilds_with_accounting():
    outcome = run_tolerant(
        "fib", size="test", n_threads=2, seed=0,
        plan=plan_for_mode("drop_events", seed=0),
    )
    assert outcome.status == "partial" and outcome.ok
    report = outcome.salvage
    assert report.partial
    assert (
        report.events_dropped
        or report.events_repaired
        or report.instances_quarantined
    )
    # the live run itself stayed healthy, so the result is still verified
    assert outcome.verified is True


def test_stuck_task_trips_the_watchdog():
    outcome = run_tolerant(
        "fib", size="test", n_threads=2, seed=0,
        plan=plan_for_mode("stuck_task", seed=0), watchdog_us=1e5,
    )
    assert outcome.status == "partial" and outcome.ok
    assert outcome.salvage.watchdog_fired
    assert "WatchdogTimeout" in outcome.salvage.run_error


def test_strict_mode_raises_the_precise_fault_error():
    with pytest.raises(FaultInjectionError, match="plan seed 0"):
        run_app(
            "fib", size="test", n_threads=2, seed=0,
            fault_plan=plan_for_mode("task_exception", seed=0),
        )


def test_strict_watchdog_raises_watchdog_timeout():
    with pytest.raises(WatchdogTimeout, match="watchdog deadline"):
        run_app(
            "fib", size="test", n_threads=2, seed=0,
            fault_plan=plan_for_mode("stuck_task", seed=0),
            watchdog_us=1e5,
        )


def test_generous_watchdog_lets_healthy_runs_finish():
    result = run_app("fib", size="test", n_threads=2, seed=0, watchdog_us=1e9)
    assert result.verified


def test_strict_validation_flags_corrupt_trace():
    result = run_app(
        "fib", size="test", n_threads=2, seed=0, record_events=True,
        fault_plan=plan_for_mode("drop_events", seed=0),
    )
    with pytest.raises(ValidationError):
        validate_program_trace(result.parallel.trace)


def test_campaign_grid_degrades_gracefully():
    results = run_campaign(
        apps=("fib",),
        modes=("drop_events", "task_exception", "clock_skew"),
        seeds=(0, 1),
    )
    assert len(results) == 6
    assert all(r.ok for r in results)
    table = campaign_table(results)
    assert "6/6 cells degraded gracefully" in table
    assert "drop_events" in table and "task_exception" in table


def test_keyboard_interrupt_preserves_completed_cells(monkeypatch):
    import repro.faults.campaign as campaign_mod

    real_run_tolerant = campaign_mod.run_tolerant
    calls = {"n": 0}

    def interrupt_on_second(*args, **kwargs):
        calls["n"] += 1
        if calls["n"] == 2:
            raise KeyboardInterrupt
        return real_run_tolerant(*args, **kwargs)

    monkeypatch.setattr(campaign_mod, "run_tolerant", interrupt_on_second)
    with pytest.raises(CampaignInterrupted) as excinfo:
        run_campaign(apps=("fib",), modes=("drop_events",), seeds=(0, 1, 2))
    results = excinfo.value.results
    assert len(results) == 1  # the finished cell survived the Ctrl-C
    assert results[0].seed == 0 and results[0].ok
    assert "1 of 3" in str(excinfo.value)
    campaign_table(results)  # partial table renders


def test_supervised_campaign_matches_sequential(tmp_path):
    kwargs = dict(apps=("fib",), modes=("task_exception", "drop_events"),
                  seeds=(0,))
    sequential = run_campaign(**kwargs)
    supervised = run_campaign(
        **kwargs,
        supervised=True,
        jobs=2,
        journal_path=str(tmp_path / "journal.jsonl"),
    )
    assert len(supervised) == len(sequential) == 2
    cell = lambda r: (r.app, r.mode, r.seed, r.status, r.ok, r.summary)
    assert sorted(map(cell, supervised)) == sorted(map(cell, sequential))
    assert all(r.attempts == 1 for r in supervised)
    # the same journal resumes to the same table without re-running
    resumed = run_campaign(
        **kwargs,
        supervised=True,
        journal_path=str(tmp_path / "journal.jsonl"),
        resume=True,
    )
    assert sorted(map(cell, resumed)) == sorted(map(cell, sequential))


def test_tolerant_runs_are_deterministic():
    plan = plan_for_mode("duplicate_events", seed=2)
    first = run_tolerant("fib", size="test", n_threads=2, seed=2, plan=plan)
    second = run_tolerant("fib", size="test", n_threads=2, seed=2, plan=plan)
    assert first.status == second.status
    summary_of = lambda o: o.salvage.summary() if o.salvage else None
    assert summary_of(first) == summary_of(second)
