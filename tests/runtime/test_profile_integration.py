"""Integration: instrumented runs produce consistent task-aware profiles.

These tests assert the invariants the paper's design guarantees:

* time conservation: the implicit-task tree spans the region duration,
* stub accounting: per thread, total stub time equals the execution time
  of the task fragments that ran on that thread,
* instance counting: aggregate duration samples == completed tasks,
* recorded event streams pass the task-aware validator,
* the uninstrumented configuration dispatches zero events.
"""

import pytest

from repro.events.validate import validate_program_trace
from repro.runtime import OpenMPRuntime, RuntimeConfig
from repro.runtime.runtime import run_parallel


def fib(ctx, n):
    if n < 2:
        yield ctx.compute(1.0)
        return n
    a = yield ctx.spawn(fib, n - 1)
    b = yield ctx.spawn(fib, n - 2)
    yield ctx.taskwait()
    yield ctx.compute(0.5)
    return a.result + b.result


def fib_region(ctx, n=8):
    if (yield ctx.single()):
        root = yield ctx.spawn(fib, n)
        yield ctx.taskwait()
        return root.result
    return None


@pytest.fixture(params=[1, 2, 4])
def instrumented_run(request):
    config = RuntimeConfig(n_threads=request.param, instrument=True, seed=11)
    result = run_parallel(fib_region, config=config, name="fib-kernel")
    return result


def test_functional_result_unaffected_by_instrumentation(instrumented_run):
    values = [v for v in instrumented_run.return_values if v is not None]
    assert values == [21]  # fib(8)


def test_profile_exists_and_counts_instances(instrumented_run):
    profile = instrumented_run.profile
    assert profile is not None
    agg = profile.task_tree("fib")
    assert agg.metrics.durations.count == instrumented_run.completed_tasks
    # fib(8) spawns 2*F(9)-1 = 67 task instances
    assert instrumented_run.completed_tasks == 67


def test_main_tree_spans_region_duration(instrumented_run):
    profile = instrumented_run.profile
    for t in range(profile.n_threads):
        root = profile.main_tree(t)
        assert root.inclusive_time == pytest.approx(
            instrumented_run.duration, rel=1e-9
        )
        # exclusive times non-negative everywhere (execution-node design)
        for node in root.walk():
            assert node.exclusive_time >= -1e-9


def test_stub_time_equals_executed_fragment_time(instrumented_run):
    """Per-thread invariant linking main tree and task trees."""
    profile = instrumented_run.profile
    total_stub = 0.0
    for t in range(profile.n_threads):
        total_stub += sum(
            node.metrics.inclusive_time for node in profile.stub_nodes(t)
        )
    total_task = sum(
        tree.metrics.durations.total
        for per_thread in profile.task_trees
        for tree in per_thread.values()
    )
    assert total_stub == pytest.approx(total_task, rel=1e-9)


def test_taskwait_and_create_regions_present_in_task_tree(instrumented_run):
    agg = instrumented_run.profile.task_tree("fib")
    names = {node.region.name for node in agg.walk()}
    assert "taskwait" in names
    assert "create@fib" in names


def test_uninstrumented_run_dispatches_no_events():
    config = RuntimeConfig(n_threads=2, instrument=False, seed=11)
    result = run_parallel(fib_region, config=config)
    assert result.events_dispatched == 0
    assert result.profile is None
    assert result.total("instr") == 0.0


def test_instrumented_run_is_slower_single_thread():
    """At one thread there is no shadowing: instrumentation costs time."""
    durations = {}
    for instrument in (False, True):
        config = RuntimeConfig(n_threads=1, instrument=instrument, seed=11)
        durations[instrument] = run_parallel(fib_region, config=config).duration
    assert durations[True] > durations[False]


def test_recorded_trace_is_valid_and_matches_profile():
    config = RuntimeConfig(n_threads=2, instrument=True, record_events=True, seed=3)
    result = run_parallel(fib_region, config=config)
    trace = result.trace
    assert trace is not None
    validate_program_trace(trace)
    begins = sum(len(s.task_begins()) for s in trace.streams)
    ends = sum(len(s.task_ends()) for s in trace.streams)
    assert begins == ends == result.completed_tasks


def test_concurrency_tracking_reflects_recursion_depth():
    """Table II mechanism: max concurrent instance trees ~ recursion depth."""
    config = RuntimeConfig(n_threads=1, instrument=True, seed=0)
    result = run_parallel(fib_region, config=config)
    max_concurrent = result.profile.max_concurrent_tasks_per_thread()
    # fib(8) depth-first on one thread: at most ~n concurrent instances.
    assert 1 <= max_concurrent <= 8


def test_work_time_identical_instrumented_or_not():
    """Instrumentation adds instr time but never changes useful work."""
    work = {}
    for instrument in (False, True):
        config = RuntimeConfig(n_threads=2, instrument=instrument, seed=9)
        result = run_parallel(fib_region, config=config)
        work[instrument] = result.total("work")
    assert work[True] == pytest.approx(work[False])


def test_region_time_queries():
    config = RuntimeConfig(n_threads=2, instrument=True, seed=5)
    result = run_parallel(fib_region, config=config)
    profile = result.profile
    create_time = profile.region_time("create@fib", "exclusive", "tasks")
    taskwait_time = profile.region_time("taskwait", "exclusive", "everywhere")
    assert create_time > 0.0
    assert taskwait_time > 0.0


def test_single_region_appears_in_main_tree():
    config = RuntimeConfig(n_threads=2, instrument=True, seed=5)
    result = run_parallel(fib_region, config=config)
    merged = result.profile.aggregated_main_tree()
    single = merged.find_one("single")
    assert single.visits == 2  # both threads pass the construct
