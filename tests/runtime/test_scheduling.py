"""Scheduling semantics: queues, stealing, TSC, suspension, untied tasks."""

import pytest

from repro.runtime import (
    OpenMPRuntime,
    RuntimeConfig,
    ZERO_COST,
)
from repro.runtime.queues import TaskPool
from repro.runtime.runtime import run_parallel
from repro.runtime.task import TaskInstance
from repro.runtime.tsc import eligible_index, may_start
from repro.events.regions import RegionRegistry, RegionType
from repro.sim.rng import DeterministicRNG


def quiet_config(**kw):
    kw.setdefault("instrument", False)
    kw.setdefault("costs", ZERO_COST)
    return RuntimeConfig(**kw)


# ----------------------------------------------------------------------
# TaskPool unit tests
# ----------------------------------------------------------------------
def make_task(reg, instance_id, parent=None, tied=True):
    region = reg.register("t", RegionType.TASK)
    return TaskInstance(instance_id, region, None, (), {}, parent, tied=tied)


def test_pool_lifo_pops_newest():
    reg = RegionRegistry()
    pool = TaskPool(1, "lifo", "sequential", DeterministicRNG(0))
    a, b = make_task(reg, 1), make_task(reg, 2)
    pool.push(0, a)
    pool.push(0, b)
    assert pool.pop_local(0, []) is b
    assert pool.pop_local(0, []) is a
    assert pool.pop_local(0, []) is None


def test_pool_fifo_pops_oldest():
    reg = RegionRegistry()
    pool = TaskPool(1, "fifo", "sequential", DeterministicRNG(0))
    a, b = make_task(reg, 1), make_task(reg, 2)
    pool.push(0, a)
    pool.push(0, b)
    assert pool.pop_local(0, []) is a


def test_steal_takes_oldest_from_victim():
    reg = RegionRegistry()
    pool = TaskPool(2, "lifo", "sequential", DeterministicRNG(0))
    a, b = make_task(reg, 1), make_task(reg, 2)
    pool.push(0, a)
    pool.push(0, b)
    stolen = pool.steal(1, [])
    assert stolen is a  # oldest
    assert pool.stats()["steals"] == 1


def test_steal_with_no_victims_fails():
    pool = TaskPool(2, "lifo", "random", DeterministicRNG(0))
    assert pool.steal(0, []) is None


# ----------------------------------------------------------------------
# Task Scheduling Constraint
# ----------------------------------------------------------------------
def test_tsc_descendant_rules():
    reg = RegionRegistry()
    root = make_task(reg, 1)
    child = make_task(reg, 2, parent=root)
    grandchild = make_task(reg, 3, parent=child)
    sibling = make_task(reg, 4, parent=root)

    assert may_start(grandchild, [root])
    assert may_start(grandchild, [root, child])
    assert not may_start(sibling, [child])
    assert may_start(sibling, [root])
    assert may_start(sibling, [])


def test_tsc_untied_candidate_unconstrained():
    reg = RegionRegistry()
    root = make_task(reg, 1)
    unrelated = make_task(reg, 2, tied=False)
    assert may_start(unrelated, [root])


def test_eligible_index_scans_requested_direction():
    reg = RegionRegistry()
    blocker = make_task(reg, 1)
    eligible = make_task(reg, 2, parent=blocker)
    other = make_task(reg, 3)  # not a descendant of blocker
    queue = [other, eligible]
    assert eligible_index(queue, [blocker], from_end=True) == 1
    assert eligible_index(queue, [blocker], from_end=False) == 1
    assert eligible_index([other], [blocker], from_end=True) == -1


def test_pool_pop_respects_tsc():
    reg = RegionRegistry()
    pool = TaskPool(1, "lifo", "sequential", DeterministicRNG(0))
    blocker = make_task(reg, 1)
    foreign = make_task(reg, 2)
    descendant = make_task(reg, 3, parent=blocker)
    pool.push(0, foreign)
    pool.push(0, descendant)
    # With blocker suspended, only the descendant is eligible.
    assert pool.pop_local(0, [blocker]) is descendant
    assert pool.pop_local(0, [blocker]) is None
    # Once unblocked, the foreign task can go.
    assert pool.pop_local(0, []) is foreign


def test_pool_pop_without_tsc_ignores_suspension():
    reg = RegionRegistry()
    pool = TaskPool(1, "lifo", "sequential", DeterministicRNG(0), tsc_enabled=False)
    blocker = make_task(reg, 1)
    foreign = make_task(reg, 2)
    pool.push(0, foreign)
    assert pool.pop_local(0, [blocker]) is foreign


# ----------------------------------------------------------------------
# End-to-end scheduling behaviour
# ----------------------------------------------------------------------
def test_work_is_shared_across_threads():
    executed_by = []

    def child(ctx, i):
        yield ctx.compute(10.0)
        executed_by.append(ctx.thread_id)

    def body(ctx):
        if (yield ctx.single()):
            for i in range(8):
                yield ctx.spawn(child, i)

    result = run_parallel(body, config=quiet_config(n_threads=4, seed=3))
    assert len(executed_by) == 8
    # With zero-cost management and equal task sizes, all four threads
    # should end up executing some tasks via stealing.
    assert len(set(executed_by)) >= 2
    assert result.tasks_stolen > 0


def test_no_steal_keeps_tasks_on_creator():
    executed_by = []

    def child(ctx, i):
        yield ctx.compute(10.0)
        executed_by.append(ctx.thread_id)

    def body(ctx):
        if (yield ctx.single()):
            creator = ctx.thread_id
            for i in range(6):
                yield ctx.spawn(child, i)
            yield ctx.taskwait()
            return creator
        return None

    result = run_parallel(
        body, config=quiet_config(n_threads=4, steal=False, seed=0)
    )
    creator = next(v for v in result.return_values if v is not None)
    assert set(executed_by) == {creator}
    assert result.tasks_stolen == 0


def test_parallel_speedup_with_threads():
    """Equal independent tasks: wall time shrinks with team size."""

    def child(ctx, i):
        yield ctx.compute(100.0)

    def body(ctx):
        if (yield ctx.single()):
            for i in range(16):
                yield ctx.spawn(child, i)

    durations = {}
    for n in (1, 2, 4):
        result = run_parallel(body, config=quiet_config(n_threads=n, seed=1))
        durations[n] = result.duration
    assert durations[2] < durations[1] * 0.75
    assert durations[4] < durations[2] * 0.75


def test_suspended_tied_task_resumes_on_owner_thread():
    fragments = []

    def grandchild(ctx):
        yield ctx.compute(5.0)

    def child(ctx):
        fragments.append(("start", ctx.thread_id))
        yield ctx.spawn(grandchild)
        yield ctx.taskwait()
        fragments.append(("resume", ctx.thread_id))

    def body(ctx):
        if (yield ctx.single()):
            yield ctx.spawn(child)

    run_parallel(body, config=quiet_config(n_threads=4, seed=7))
    start = dict(fragments[:1])
    assert fragments[0][0] == "start"
    assert fragments[-1][0] == "resume"
    assert fragments[0][1] == fragments[-1][1]  # tied: same thread


def test_untied_downgraded_by_default():
    def child(ctx):
        yield ctx.compute(1.0)

    def body(ctx):
        yield ctx.spawn(child, tied=False)
        yield ctx.taskwait()

    result = run_parallel(body, config=quiet_config(n_threads=1))
    assert result.downgraded_untied == 1


def test_untied_allowed_when_configured():
    def child(ctx):
        yield ctx.compute(1.0)

    def body(ctx):
        yield ctx.spawn(child, tied=False)
        yield ctx.taskwait()

    result = run_parallel(
        body, config=quiet_config(n_threads=1, allow_untied=True)
    )
    assert result.downgraded_untied == 0


def test_deep_taskwait_chain_interleaves_and_completes():
    """Recursive spawn+taskwait exercises suspension under TSC heavily."""

    def node(ctx, depth):
        if depth == 0:
            yield ctx.compute(1.0)
            return 1
        left = yield ctx.spawn(node, depth - 1)
        right = yield ctx.spawn(node, depth - 1)
        yield ctx.taskwait()
        return left.result + right.result

    def body(ctx):
        if (yield ctx.single()):
            root = yield ctx.spawn(node, 6)
            yield ctx.taskwait()
            return root.result
        return None

    for n_threads in (1, 2, 4, 8):
        result = run_parallel(body, config=quiet_config(n_threads=n_threads, seed=5))
        values = [v for v in result.return_values if v is not None]
        assert values == [64]
        assert result.completed_tasks == 2 ** 7 - 1


def test_critical_serializes_with_waiting_time():
    order = []

    def child(ctx, i):
        yield ctx.critical("zone")
        order.append(("in", i))
        yield ctx.compute(10.0)
        order.append(("out", i))
        yield ctx.end_critical("zone")

    def body(ctx):
        if (yield ctx.single()):
            for i in range(4):
                yield ctx.spawn(child, i)

    result = run_parallel(body, config=quiet_config(n_threads=4, seed=2))
    # No two tasks inside the critical zone simultaneously.
    inside = 0
    for kind, _ in order:
        inside += 1 if kind == "in" else -1
        assert 0 <= inside <= 1
    total_wait = sum(s["critical_wait"] for s in result.thread_stats)
    assert total_wait > 0.0


def test_breadth_first_vs_work_first_both_correct():
    def node(ctx, depth):
        if depth == 0:
            yield ctx.compute(1.0)
            return 1
        a = yield ctx.spawn(node, depth - 1)
        b = yield ctx.spawn(node, depth - 1)
        yield ctx.taskwait()
        return a.result + b.result

    def body(ctx):
        if (yield ctx.single()):
            root = yield ctx.spawn(node, 5)
            yield ctx.taskwait()
            return root.result
        return None

    for policy in ("lifo", "fifo"):
        result = run_parallel(
            body, config=quiet_config(n_threads=2, queue_policy=policy, seed=1)
        )
        assert [v for v in result.return_values if v is not None] == [32]
