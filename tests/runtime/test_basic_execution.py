"""Runtime basics: parallel regions, compute, spawn/taskwait, results."""

import pytest

from repro.errors import ProcessError, RuntimeModelError
from repro.runtime import (
    OpenMPRuntime,
    RuntimeConfig,
    TaskState,
    ZERO_COST,
    run_parallel,
)


def quiet_config(**kw):
    kw.setdefault("instrument", False)
    kw.setdefault("costs", ZERO_COST)
    return RuntimeConfig(**kw)


def test_plain_function_body_runs_on_every_thread():
    def body(ctx):
        return ctx.thread_id * 10

    result = run_parallel(body, config=quiet_config(n_threads=3))
    assert result.return_values == [0, 10, 20]
    assert result.completed_tasks == 0


def test_compute_advances_virtual_time():
    def body(ctx):
        yield ctx.compute(5.0)
        yield ctx.compute(2.5)

    result = run_parallel(body, config=quiet_config(n_threads=1))
    assert result.duration == pytest.approx(7.5)
    assert result.thread_stats[0]["work"] == pytest.approx(7.5)


def test_compute_rejects_negative():
    def body(ctx):
        yield ctx.compute(-1.0)

    with pytest.raises(ProcessError, match="negative compute") as excinfo:
        run_parallel(body, config=quiet_config(n_threads=1))
    assert isinstance(excinfo.value.__cause__, ValueError)


def test_spawn_and_taskwait_returns_result():
    def child(ctx, x):
        yield ctx.compute(1.0)
        return x * x

    def body(ctx):
        handle = yield ctx.spawn(child, 7)
        yield ctx.taskwait()
        return handle.result

    result = run_parallel(body, config=quiet_config(n_threads=1))
    assert result.return_values == [49]
    assert result.completed_tasks == 1


def test_handle_result_before_completion_raises():
    def child(ctx):
        yield ctx.compute(1.0)

    def body(ctx):
        handle = yield ctx.spawn(child)
        # No taskwait: reading the result now must fail.
        return handle.result

    with pytest.raises(ProcessError, match="before"):
        run_parallel(body, config=quiet_config(n_threads=1))


def test_tasks_complete_at_implicit_end_barrier():
    seen = []

    def child(ctx, i):
        yield ctx.compute(1.0)
        seen.append(i)

    def body(ctx):
        if (yield ctx.single()):
            for i in range(5):
                yield ctx.spawn(child, i)
        # no explicit taskwait/barrier: the end-of-region barrier catches them

    result = run_parallel(body, config=quiet_config(n_threads=2))
    assert sorted(seen) == [0, 1, 2, 3, 4]
    assert result.completed_tasks == 5


def test_single_claimed_by_exactly_one_thread():
    winners = []

    def body(ctx):
        if (yield ctx.single()):
            winners.append(ctx.thread_id)

    run_parallel(body, config=quiet_config(n_threads=4))
    assert len(winners) == 1


def test_single_in_loop_claims_each_occurrence():
    wins = []

    def body(ctx):
        for i in range(3):
            if (yield ctx.single()):
                wins.append(i)
            yield ctx.barrier()

    run_parallel(body, config=quiet_config(n_threads=2))
    assert wins == [0, 1, 2]


def test_barrier_synchronizes_threads():
    def body(ctx):
        # thread 0 works before the barrier, thread 1 after; both must
        # leave the barrier at the max of the arrivals.
        if ctx.thread_id == 0:
            yield ctx.compute(10.0)
        yield ctx.barrier()
        return ctx._runtime.env.now  # time at barrier exit

    result = run_parallel(body, config=quiet_config(n_threads=2))
    assert result.return_values[0] == pytest.approx(result.return_values[1])
    assert result.return_values[0] >= 10.0


def test_barrier_inside_explicit_task_rejected():
    def child(ctx):
        yield ctx.barrier()

    def body(ctx):
        yield ctx.spawn(child)
        yield ctx.taskwait()

    with pytest.raises(RuntimeModelError, match="forbids barriers"):
        run_parallel(body, config=quiet_config(n_threads=1))


def test_single_inside_explicit_task_rejected():
    def child(ctx):
        yield ctx.single()

    def body(ctx):
        yield ctx.spawn(child)
        yield ctx.taskwait()

    with pytest.raises(RuntimeModelError, match="single construct"):
        run_parallel(body, config=quiet_config(n_threads=1))


def test_unknown_directive_rejected():
    def body(ctx):
        yield "nonsense"

    with pytest.raises(RuntimeModelError, match="expected a runtime directive"):
        run_parallel(body, config=quiet_config(n_threads=1))


def test_runtime_single_use():
    def body(ctx):
        return None

    rt = OpenMPRuntime(quiet_config(n_threads=1))
    rt.parallel(body)
    with pytest.raises(RuntimeModelError, match="already executed"):
        rt.parallel(body)


def test_nested_task_spawning():
    def grandchild(ctx):
        yield ctx.compute(1.0)
        return "leaf"

    def child(ctx):
        handle = yield ctx.spawn(grandchild)
        yield ctx.taskwait()
        return handle.result + "!"

    def body(ctx):
        if not (yield ctx.single()):
            return None
        handle = yield ctx.spawn(child)
        yield ctx.taskwait()
        return handle.result

    result = run_parallel(body, config=quiet_config(n_threads=2))
    assert "leaf!" in result.return_values
    assert result.completed_tasks == 2


def test_yield_from_inlines_serial_recursion():
    """Cut-off style: `yield from` runs the callee inline, no task."""

    def work(ctx, n):
        if n == 0:
            yield ctx.compute(1.0)
            return 1
        sub = yield from work(ctx, n - 1)
        return sub + 1

    def body(ctx):
        value = yield from work(ctx, 4)
        return value

    result = run_parallel(body, config=quiet_config(n_threads=1))
    assert result.return_values == [5]
    assert result.completed_tasks == 0  # no explicit tasks at all


def test_determinism_same_seed_same_everything():
    def child(ctx, n):
        if n == 0:
            yield ctx.compute(1.0)
            return 1
        total = 0
        handles = []
        for _ in range(2):
            handles.append((yield ctx.spawn(child, n - 1)))
        yield ctx.taskwait()
        for handle in handles:
            total += handle.result
        return total

    def body(ctx):
        if (yield ctx.single()):
            root = yield ctx.spawn(child, 5)
            yield ctx.taskwait()
            return root.result
        return None

    config = RuntimeConfig(n_threads=4, seed=42, instrument=False)
    a = run_parallel(body, config=config)
    b = run_parallel(body, config=config)
    assert a.duration == b.duration
    assert a.thread_stats == b.thread_stats
    assert a.pool_stats == b.pool_stats


def test_different_seed_may_change_schedule_but_not_results():
    def child(ctx, n):
        if n == 0:
            yield ctx.compute(1.0)
            return 1
        handles = []
        for _ in range(2):
            handles.append((yield ctx.spawn(child, n - 1)))
        yield ctx.taskwait()
        return sum(h.result for h in handles)

    def body(ctx):
        if (yield ctx.single()):
            root = yield ctx.spawn(child, 6)
            yield ctx.taskwait()
            return root.result
        return None

    values = set()
    for seed in range(4):
        config = RuntimeConfig(n_threads=4, seed=seed, instrument=False)
        result = run_parallel(body, config=config)
        values.add(result.return_values[0])
    assert values == {64}
