"""OpenMP 3.1 taskyield: queued tasks run before the yielder continues."""

import pytest

from repro.runtime import RuntimeConfig, ZERO_COST
from repro.runtime.runtime import run_parallel


def quiet(**kw):
    kw.setdefault("costs", ZERO_COST)
    kw.setdefault("instrument", False)
    return RuntimeConfig(**kw)


def test_taskyield_lets_queued_task_run_first():
    order = []

    def other(ctx):
        yield ctx.compute(1.0)
        order.append("other")

    def yielder(ctx):
        order.append("yielder-start")
        yield ctx.spawn(other)
        yield ctx.taskyield()
        order.append("yielder-end")

    def body(ctx):
        yield ctx.spawn(yielder)
        yield ctx.taskwait()

    result = run_parallel(body, config=quiet(n_threads=1))
    assert order == ["yielder-start", "other", "yielder-end"]
    assert result.completed_tasks == 2


def test_taskyield_noop_when_nothing_queued():
    order = []

    def lone(ctx):
        order.append("start")
        yield ctx.taskyield()
        order.append("end")

    def body(ctx):
        yield ctx.spawn(lone)
        yield ctx.taskwait()

    run_parallel(body, config=quiet(n_threads=1))
    assert order == ["start", "end"]


def test_taskyield_noop_on_implicit_task():
    def body(ctx):
        yield ctx.taskyield()
        return "fine"

    result = run_parallel(body, config=quiet(n_threads=2))
    assert result.return_values == ["fine", "fine"]


def test_taskyield_resumes_on_same_thread_when_tied():
    threads_seen = []

    def filler(ctx, i):
        yield ctx.compute(5.0)

    def yielder(ctx):
        threads_seen.append(ctx.thread_id)
        yield ctx.taskyield()
        threads_seen.append(ctx.thread_id)

    def body(ctx):
        if (yield ctx.single()):
            yield ctx.spawn(yielder)
            for i in range(6):
                yield ctx.spawn(filler, i)

    run_parallel(body, config=quiet(n_threads=4, seed=2))
    assert len(threads_seen) == 2
    assert threads_seen[0] == threads_seen[1]  # tied: same thread


def test_taskyield_profiled_as_suspension():
    """The yield gap is excluded from the yielding task's runtime and the
    taskyield region appears in its tree."""

    def other(ctx):
        yield ctx.compute(50.0)

    def yielder(ctx):
        yield ctx.compute(1.0)
        yield ctx.spawn(other)
        yield ctx.taskyield()
        yield ctx.compute(2.0)

    def body(ctx):
        yield ctx.spawn(yielder)
        yield ctx.taskwait()

    config = RuntimeConfig(n_threads=1, instrument=True, costs=ZERO_COST)
    result = run_parallel(body, config=config)
    profile = result.profile
    ytree = profile.task_tree("yielder")
    # 1 + 2 us of own compute; the 50 us spent in `other` is excluded.
    assert ytree.metrics.durations.total == pytest.approx(3.0)
    assert ytree.find_one("taskyield").visits == 1
    assert profile.task_tree("other").metrics.durations.total == pytest.approx(50.0)


def test_many_yielders_all_complete():
    def worker(ctx, i):
        yield ctx.compute(1.0)
        yield ctx.taskyield()
        yield ctx.compute(1.0)
        return i

    def body(ctx):
        if not (yield ctx.single()):
            return None
        handles = []
        for i in range(20):
            handles.append((yield ctx.spawn(worker, i)))
        yield ctx.taskwait()
        return sorted(h.result for h in handles)

    result = run_parallel(body, config=quiet(n_threads=4, seed=1))
    values = [v for v in result.return_values if v is not None]
    assert values == [list(range(20))]
