"""Runtime edge cases and error paths."""

import pytest

from repro.errors import DeadlockError, ProcessError, RuntimeModelError
from repro.runtime import (
    CostModel,
    OpenMPRuntime,
    RuntimeConfig,
    TaskState,
    ZERO_COST,
)
from repro.runtime.runtime import run_parallel


def quiet(**kw):
    kw.setdefault("instrument", False)
    kw.setdefault("costs", ZERO_COST)
    return RuntimeConfig(**kw)


def test_config_validation():
    with pytest.raises(ValueError, match="n_threads"):
        RuntimeConfig(n_threads=0)
    with pytest.raises(ValueError, match="queue_policy"):
        RuntimeConfig(queue_policy="random")
    with pytest.raises(ValueError, match="steal_policy"):
        RuntimeConfig(steal_policy="roundrobin")


def test_config_builders():
    config = RuntimeConfig()
    assert config.with_threads(8).n_threads == 8
    assert config.with_instrumentation(False).instrument is False
    assert config.with_seed(9).seed == 9
    assert config.with_costs(ZERO_COST).costs is ZERO_COST
    # builders do not mutate the original
    assert config.n_threads == 4 and config.instrument is True


def test_cost_model_builders():
    base = CostModel()
    scaled = base.scaled(2.0)
    assert scaled.enqueue_us == base.enqueue_us * 2
    assert scaled.instr_event_us == base.instr_event_us  # untouched
    assert base.with_instrumentation_cost(9.0).instr_event_us == 9.0
    free = base.without_contention()
    assert free.contention_alpha == 0.0 and free.coherence_beta == 0.0


def test_kwargs_forwarded_to_task_body():
    def child(ctx, a, b=0, c=0):
        yield ctx.compute(1.0)
        return a + b + c

    def body(ctx):
        handle = yield ctx.spawn(child, 1, b=2, c=3)
        yield ctx.taskwait()
        return handle.result

    result = run_parallel(body, config=quiet(n_threads=1))
    assert result.return_values == [6]


def test_spawn_label_overrides_region_name():
    def child(ctx):
        yield ctx.compute(1.0)

    def body(ctx):
        yield ctx.spawn(child, label="custom_name")
        yield ctx.taskwait()

    config = RuntimeConfig(n_threads=1, instrument=True, costs=ZERO_COST)
    result = run_parallel(body, config=config)
    assert result.profile.task_tree("custom_name") is not None
    with pytest.raises(KeyError):
        result.profile.task_tree("child")


def test_parallel_result_total_and_kernel_time():
    def body(ctx):
        yield ctx.compute(5.0)

    result = run_parallel(body, config=quiet(n_threads=2))
    assert result.kernel_time == result.duration
    assert result.total("work") == pytest.approx(10.0)
    with pytest.raises(KeyError):
        result.total("nonexistent")


def test_critical_end_without_begin_raises():
    def body(ctx):
        yield ctx.end_critical("zone")

    with pytest.raises(ProcessError, match="released while not held"):
        run_parallel(body, config=quiet(n_threads=1))


def test_unreleased_critical_deadlocks_other_threads():
    """A task that exits while holding a critical section starves waiters;
    the kernel reports the deadlock instead of hanging."""

    def body(ctx):
        yield ctx.critical("zone")
        if ctx.thread_id == 0:
            return  # thread 0 never releases
        yield ctx.end_critical("zone")

    with pytest.raises(DeadlockError):
        run_parallel(body, config=quiet(n_threads=2))


def test_taskwait_without_children_is_cheap_noop():
    def body(ctx):
        yield ctx.taskwait()
        yield ctx.taskwait()
        return "done"

    result = run_parallel(body, config=quiet(n_threads=1))
    assert result.return_values == ["done"]
    assert result.duration == 0.0


def test_many_sequential_barriers():
    def body(ctx):
        for _ in range(10):
            yield ctx.barrier()
        return ctx.thread_id

    result = run_parallel(body, config=quiet(n_threads=4))
    assert sorted(result.return_values) == [0, 1, 2, 3]


def test_task_state_transitions_visible_on_handle():
    states = []

    def child(ctx):
        yield ctx.compute(1.0)

    def body(ctx):
        handle = yield ctx.spawn(child)
        states.append(handle.done)
        yield ctx.taskwait()
        states.append(handle.done)

    run_parallel(body, config=quiet(n_threads=1))
    assert states == [False, True]


def test_zero_compute_takes_zero_time():
    def body(ctx):
        yield ctx.compute(0.0)

    result = run_parallel(body, config=quiet(n_threads=1))
    assert result.duration == 0.0


def test_deeply_nested_spawn_chain():
    """A 60-deep chain of spawn+taskwait: suspension bookkeeping and the
    TSC cope with long dependency chains (the Section V-B caveat)."""

    def chain(ctx, depth):
        if depth == 0:
            yield ctx.compute(1.0)
            return 0
        handle = yield ctx.spawn(chain, depth - 1)
        yield ctx.taskwait()
        return handle.result + 1

    def body(ctx):
        handle = yield ctx.spawn(chain, 60)
        yield ctx.taskwait()
        return handle.result

    config = RuntimeConfig(n_threads=2, instrument=True, costs=ZERO_COST)
    result = run_parallel(body, config=config)
    assert result.return_values[0] == 60
    # concurrency tracks the chain depth
    assert result.profile.max_concurrent_tasks_per_thread() == 61


def test_record_events_without_instrumentation_still_traces():
    def child(ctx):
        yield ctx.compute(1.0)

    def body(ctx):
        yield ctx.spawn(child)
        yield ctx.taskwait()

    config = RuntimeConfig(
        n_threads=1, instrument=False, record_events=True, costs=ZERO_COST
    )
    result = run_parallel(body, config=config)
    assert result.profile is None
    assert result.trace is not None
    assert result.trace.total_events() > 0


def test_implicit_bodies_see_correct_thread_ids():
    def body(ctx):
        yield ctx.compute(1.0)
        return (ctx.thread_id, ctx.n_threads, ctx.task_depth, ctx.is_implicit_task)

    result = run_parallel(body, config=quiet(n_threads=3))
    assert result.return_values == [(0, 3, 0, True), (1, 3, 0, True), (2, 3, 0, True)]


def test_explicit_task_depth_and_ids():
    def child(ctx):
        yield ctx.compute(1.0)
        return (ctx.task_depth, ctx.is_implicit_task, ctx.instance_id)

    def body(ctx):
        handle = yield ctx.spawn(child)
        yield ctx.taskwait()
        return handle.result

    result = run_parallel(body, config=quiet(n_threads=1))
    depth, is_implicit, instance_id = result.return_values[0]
    assert depth == 1
    assert not is_implicit
    assert instance_id == 1
