"""User-defined measurement regions (Score-P user API analogue)."""

import pytest

from repro.errors import ProfileError
from repro.runtime import RuntimeConfig, ZERO_COST
from repro.runtime.runtime import run_parallel


def config(**kw):
    kw.setdefault("costs", ZERO_COST)
    kw.setdefault("instrument", True)
    return RuntimeConfig(**kw)


def test_user_region_structures_the_profile():
    def body(ctx):
        yield ctx.begin_region("setup")
        yield ctx.compute(3.0)
        yield ctx.end_region("setup")
        yield ctx.begin_region("solve")
        yield ctx.compute(7.0)
        yield ctx.end_region("solve")

    result = run_parallel(body, config=config(n_threads=1))
    main = result.profile.main_tree(0)
    assert main.find_one("setup").inclusive_time == pytest.approx(3.0)
    assert main.find_one("solve").inclusive_time == pytest.approx(7.0)


def test_user_regions_nest():
    def body(ctx):
        yield ctx.begin_region("outer")
        yield ctx.begin_region("inner")
        yield ctx.compute(2.0)
        yield ctx.end_region("inner")
        yield ctx.compute(1.0)
        yield ctx.end_region("outer")

    result = run_parallel(body, config=config(n_threads=1))
    outer = result.profile.main_tree(0).find_one("outer")
    assert outer.inclusive_time == pytest.approx(3.0)
    assert outer.exclusive_time == pytest.approx(1.0)
    assert outer.find_one("inner").inclusive_time == pytest.approx(2.0)


def test_user_region_inside_task_lands_in_task_tree():
    def child(ctx, n):
        yield ctx.begin_region("phase", parameter=("n", n))
        yield ctx.compute(float(n))
        yield ctx.end_region("phase")

    def body(ctx):
        for n in (1, 2):
            yield ctx.spawn(child, n)
        yield ctx.taskwait()

    result = run_parallel(body, config=config(n_threads=1))
    tree = result.profile.task_tree("child")
    # parameter instrumentation split the phase node by value
    names = {node.display_name() for node in tree.walk()}
    assert "phase[n=1]" in names
    assert "phase[n=2]" in names


def test_user_region_survives_suspension():
    """An open user region pauses/resumes with the task, like any region."""

    def grandchild(ctx):
        yield ctx.compute(50.0)

    def child(ctx):
        yield ctx.begin_region("span")
        yield ctx.compute(1.0)
        yield ctx.spawn(grandchild)
        yield ctx.taskwait()  # suspend with "span" open
        yield ctx.compute(2.0)
        yield ctx.end_region("span")

    def body(ctx):
        yield ctx.spawn(child)
        yield ctx.taskwait()

    result = run_parallel(body, config=config(n_threads=1))
    span = result.profile.task_tree("child").find_one("span")
    # 1 + 2 own compute plus the nested taskwait region time; the 50 us
    # spent suspended in the grandchild is excluded.
    assert span.inclusive_time < 10.0
    assert span.inclusive_time >= 3.0


def test_mismatched_user_region_detected():
    def body(ctx):
        yield ctx.begin_region("a")
        yield ctx.end_region("b")

    with pytest.raises(ProfileError, match="does not match"):
        run_parallel(body, config=config(n_threads=1))


def test_unclosed_user_region_detected():
    def body(ctx):
        yield ctx.begin_region("a")

    with pytest.raises(ProfileError, match="open region"):
        run_parallel(body, config=config(n_threads=1))
