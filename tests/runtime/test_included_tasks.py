"""OpenMP `if` and `final` clauses: undeferred / included task execution."""

import pytest

from repro.runtime import RuntimeConfig, ZERO_COST
from repro.runtime.runtime import run_parallel


def quiet(**kw):
    kw.setdefault("costs", ZERO_COST)
    return RuntimeConfig(**kw)


def leaf(ctx, x):
    yield ctx.compute(1.0)
    return x * 2


def test_if_false_executes_immediately():
    order = []

    def body(ctx):
        order.append("before")
        handle = yield ctx.spawn(leaf, 21, if_clause=False)
        order.append("after")
        # No taskwait: an undeferred task is guaranteed complete already.
        return handle.result

    result = run_parallel(body, config=quiet(n_threads=1, instrument=True))
    assert result.return_values == [42]
    assert order == ["before", "after"]
    assert result.completed_tasks == 1


def test_final_task_subtree_runs_inline():
    def node(ctx, depth):
        if depth == 0:
            yield ctx.compute(1.0)
            return 1
        # Children spawned WITHOUT final -- they inherit included-ness
        # from the final ancestor.
        a = yield ctx.spawn(node, depth - 1)
        b = yield ctx.spawn(node, depth - 1)
        yield ctx.taskwait()
        return a.result + b.result

    def body(ctx):
        if not (yield ctx.single()):
            return None
        handle = yield ctx.spawn(node, 4, final=True)
        yield ctx.taskwait()
        return handle.result

    result = run_parallel(body, config=quiet(n_threads=4, instrument=True))
    assert [v for v in result.return_values if v is not None] == [16]
    # Every instance executed; none were queued or stolen.
    assert result.completed_tasks == 2 ** 5 - 1
    assert result.pool_stats["pushes"] == 0
    assert result.tasks_stolen == 0


def test_included_instances_still_profiled():
    def body(ctx):
        yield ctx.spawn(leaf, 1, if_clause=False)
        yield ctx.spawn(leaf, 2, if_clause=False)
        yield ctx.spawn(leaf, 3)
        yield ctx.taskwait()

    result = run_parallel(body, config=quiet(n_threads=1, instrument=True))
    tree = result.profile.task_tree("leaf")
    assert tree.metrics.durations.count == 3  # included + deferred alike


def test_included_inside_explicit_parent_resumes_parent_timing():
    """Parent's time excludes the included child's execution (the child is
    a separate instance), and resumes correctly afterwards."""

    def child(ctx):
        yield ctx.compute(10.0)

    def parent(ctx):
        yield ctx.compute(1.0)
        yield ctx.spawn(child, if_clause=False)
        yield ctx.compute(2.0)

    def body(ctx):
        yield ctx.spawn(parent)
        yield ctx.taskwait()

    result = run_parallel(body, config=quiet(n_threads=1, instrument=True))
    profile = result.profile
    parent_tree = profile.task_tree("parent")
    child_tree = profile.task_tree("child")
    assert child_tree.metrics.durations.total == pytest.approx(10.0)
    # parent: 1 + 2 compute + the create bracketing, but NOT the child's 10.
    assert parent_tree.metrics.durations.total == pytest.approx(3.0)


def test_final_cutoff_equivalent_results():
    """Using final as the cut-off mechanism (the OpenMP-native way) gives
    the same functional result as no cut-off."""

    def fib(ctx, n, depth, final_at):
        if n < 2:
            yield ctx.compute(0.5)
            return n
        make_final = depth + 1 == final_at
        a = yield ctx.spawn(fib, n - 1, depth + 1, final_at, final=make_final)
        b = yield ctx.spawn(fib, n - 2, depth + 1, final_at, final=make_final)
        yield ctx.taskwait()
        return a.result + b.result

    def body(ctx):
        if (yield ctx.single()):
            root = yield ctx.spawn(fib, 10, 0, 3)
            yield ctx.taskwait()
            return root.result
        return None

    result = run_parallel(body, config=quiet(n_threads=4, instrument=True))
    values = [v for v in result.return_values if v is not None]
    assert values == [55]
    # Far fewer queue operations than the 177 instances executed.
    assert result.pool_stats["pushes"] < 40
    assert result.completed_tasks == 177


def test_included_counts_in_concurrency_tracking():
    def child(ctx):
        yield ctx.compute(1.0)

    def parent(ctx):
        yield ctx.spawn(child, if_clause=False)
        yield ctx.compute(1.0)

    def body(ctx):
        yield ctx.spawn(parent)
        yield ctx.taskwait()

    result = run_parallel(body, config=quiet(n_threads=1, instrument=True))
    # During the child's inline execution, two instance trees were live.
    assert result.profile.max_concurrent_tasks_per_thread() == 2
