"""Real wall-clock throughput of the profiler implementation itself.

The paper's Section V measures the *relative* cost of the measurement
system inside a real runtime.  These benchmarks measure the absolute
cost of this repository's implementation with pytest-benchmark's real
timers: events per second through the Fig. 12 algorithm and through the
classic algorithm, and end-to-end simulated-task throughput.

No paper assertions here -- these are the regression-tracking benchmarks
a maintained profiler project ships.
"""

import time

from repro.analysis.experiment import run_app
from repro.events.batch import EventBatch
from repro.events.regions import RegionRegistry, RegionType
from repro.profiling.basic import ClassicProfiler
from repro.profiling.task_profiler import ThreadTaskProfiler

#: The checked-in legacy per-event rate
#: (benchmarks/reports/test_classic_profiler_event_throughput.txt); the
#: batched consume path is CI-gated at >= 5x this floor.
LEGACY_BASELINE_EVENTS_PER_SEC = 1_696_549


def test_classic_profiler_event_throughput(benchmark, report):
    reg = RegionRegistry()
    main = reg.register("main", RegionType.FUNCTION)
    functions = [reg.register(f"f{i}", RegionType.FUNCTION) for i in range(8)]
    events_per_round = 2_000

    def run():
        profiler = ClassicProfiler(main)
        profiler.enter(main, 0.0)
        t = 0.0
        for i in range(events_per_round // 2):
            region = functions[i % 8]
            t += 1.0
            profiler.enter(region, t)
            t += 1.0
            profiler.exit(region, t)
        profiler.exit(main, t + 1.0)
        return profiler.finish()

    benchmark(run)
    rate = events_per_round / benchmark.stats.stats.mean
    report.section("Classic profiling algorithm throughput")
    report(f"{rate:,.0f} enter/exit events per second (wall clock)")
    assert rate > 100_000  # sanity floor; typical machines do millions


def _classic_workload(reg=None):
    reg = reg or RegionRegistry()
    main = reg.register("main", RegionType.FUNCTION)
    functions = [reg.register(f"f{i}", RegionType.FUNCTION) for i in range(8)]
    return reg, main, functions


def _run_classic_legacy(main, functions, pairs):
    """The legacy per-event path over the standard workload stream."""
    profiler = ClassicProfiler(main)
    profiler.enter(main, 0.0)
    t = 0.0
    for i in range(pairs):
        region = functions[i % 8]
        t += 1.0
        profiler.enter(region, t)
        t += 1.0
        profiler.exit(region, t)
    profiler.exit(main, t + 1.0)
    return profiler.finish()


def _build_classic_batches(reg, main, functions, pairs, capacity=8192):
    """The same workload stream as prepared columnar batches.

    Split at the runtime's default batch capacity, so consume throughput
    is measured on the batch sizes the instrumentation layer really
    flushes, not on one artificially huge buffer.
    """
    batches = []
    batch = EventBatch(reg)
    batch.add_enter(0, main, 0.0)
    t = 0.0
    for i in range(pairs):
        if len(batch.codes) + 2 > capacity:
            batches.append(batch)
            batch = EventBatch(reg)
        region = functions[i % 8]
        t += 1.0
        batch.add_enter(0, region, t)
        t += 1.0
        batch.add_exit(0, region, t)
    batch.add_exit(0, main, t + 1.0)
    batches.append(batch)
    return batches


def _tree_equal(a, b):
    """Exact (==, not approx) structural and metric call-tree equality."""
    if (
        a.region is not b.region
        or a.parameter != b.parameter
        or a.is_stub != b.is_stub
        or a.metrics.visits != b.metrics.visits
        or a.metrics.inclusive_time != b.metrics.inclusive_time
        or a.metrics.durations.count != b.metrics.durations.count
        or a.metrics.durations.total != b.metrics.durations.total
        or a.metrics.durations.minimum != b.metrics.durations.minimum
        or a.metrics.durations.maximum != b.metrics.durations.maximum
        or list(a.children.keys()) != list(b.children.keys())
    ):
        return False
    return all(
        _tree_equal(ca, cb)
        for ca, cb in zip(a.children.values(), b.children.values())
    )


def test_classic_profiler_batched_consume_throughput(benchmark, report):
    """The tentpole gate: columnar consume must beat per-event by >= 5x.

    Measures consume throughput of prepared batches -- the deferred-
    analysis framing: the hot path's job is the cheap fill, and this is
    the rate at which the deferred analysis drains it.  Gated both
    against an in-run legacy measurement (machine-independent ratio) and
    against the checked-in legacy baseline report (absolute floor).
    Fill cost is benchmarked separately and transparently below.
    """
    reg, main, functions = _classic_workload()
    total_events = 100_002
    pairs = (total_events - 2) // 2
    batches = _build_classic_batches(reg, main, functions, pairs)

    def consume():
        profiler = ClassicProfiler(main)
        for batch in batches:
            profiler.consume_batch(batch)
        return profiler.finish()

    batched_root = benchmark(consume)
    batched_rate = total_events / benchmark.stats.stats.mean

    # In-run legacy reference: best of 5 (best-of is the standard noise
    # floor for a comparison baseline measured once, not benchmarked).
    legacy_best = float("inf")
    for _ in range(5):
        t0 = time.perf_counter()
        legacy_root = _run_classic_legacy(main, functions, pairs)
        legacy_best = min(legacy_best, time.perf_counter() - t0)
    legacy_rate = total_events / legacy_best

    assert _tree_equal(batched_root, legacy_root)

    report.section("Classic profiler: batched consume vs legacy per-event")
    report(f"batched consume: {batched_rate:,.0f} events per second")
    report(f"legacy per-event (in-run, best of 5): {legacy_rate:,.0f} events per second")
    report(f"speedup vs in-run legacy: {batched_rate / legacy_rate:.2f}x")
    report(
        f"speedup vs checked-in baseline ({LEGACY_BASELINE_EVENTS_PER_SEC:,}): "
        f"{batched_rate / LEGACY_BASELINE_EVENTS_PER_SEC:.2f}x"
    )
    assert batched_rate >= 5 * legacy_rate
    assert batched_rate >= 5 * LEGACY_BASELINE_EVENTS_PER_SEC


def test_classic_profiler_batch_fill_and_end_to_end(benchmark, report):
    """Transparency benchmark (ungated): fill cost and fill+consume.

    The 5x gate above is on the consume side; this reports what the
    whole producer-to-consumer pipeline costs so the reports never
    overstate the end-to-end win.
    """
    reg, main, functions = _classic_workload()
    total_events = 100_002
    pairs = (total_events - 2) // 2

    def fill_and_consume():
        batches = _build_classic_batches(reg, main, functions, pairs)
        profiler = ClassicProfiler(main)
        for batch in batches:
            profiler.consume_batch(batch)
        return profiler.finish()

    benchmark(fill_and_consume)
    e2e_rate = total_events / benchmark.stats.stats.mean

    fill_best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        _build_classic_batches(reg, main, functions, pairs)
        fill_best = min(fill_best, time.perf_counter() - t0)
    fill_rate = total_events / fill_best

    report.section("Classic profiler: batch fill + end-to-end pipeline")
    report(f"fill only (appenders): {fill_rate:,.0f} events per second")
    report(f"fill + batched consume: {e2e_rate:,.0f} events per second")
    assert e2e_rate > 100_000  # same sanity floor as the legacy benchmark


def test_task_profiler_event_throughput(benchmark, report):
    reg = RegionRegistry()
    impl = reg.register("parallel", RegionType.IMPLICIT_TASK)
    task = reg.register("task", RegionType.TASK)
    barrier = reg.register("barrier", RegionType.IMPLICIT_BARRIER)
    tasks_per_round = 500

    def run():
        profiler = ThreadTaskProfiler(0, impl, {}, start_time=0.0)
        profiler.enter(barrier, 0.0)
        t = 0.0
        for i in range(1, tasks_per_round + 1):
            t += 1.0
            profiler.task_begin(task, i, t)
            t += 2.0
            profiler.task_end(task, i, t)
        profiler.exit(barrier, t + 1.0)
        profiler.finish(t + 1.0)
        return profiler

    result = benchmark(run)
    # each task = begin + end (each implies a switch + stub bookkeeping)
    events = tasks_per_round * 2
    rate = events / benchmark.stats.stats.mean
    report.section("Task profiling algorithm (Fig. 12) throughput")
    report(f"{rate:,.0f} task events per second (wall clock)")
    agg = result.task_trees[(task, None)]
    assert agg.metrics.durations.count == tasks_per_round
    assert rate > 50_000


def test_end_to_end_simulated_task_throughput(benchmark, report):
    def run():
        return run_app("fib", size="small", variant="stress", n_threads=4, seed=0)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    tasks = result.parallel.completed_tasks
    rate = tasks / benchmark.stats.stats.mean
    report.section("End-to-end simulation throughput (instrumented fib)")
    report(f"{tasks} tasks per run; {rate:,.0f} simulated tasks per second")
    assert result.verified
    assert rate > 1_000
