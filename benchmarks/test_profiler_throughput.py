"""Real wall-clock throughput of the profiler implementation itself.

The paper's Section V measures the *relative* cost of the measurement
system inside a real runtime.  These benchmarks measure the absolute
cost of this repository's implementation with pytest-benchmark's real
timers: events per second through the Fig. 12 algorithm and through the
classic algorithm, and end-to-end simulated-task throughput.

No paper assertions here -- these are the regression-tracking benchmarks
a maintained profiler project ships.
"""

from repro.analysis.experiment import run_app
from repro.events.regions import RegionRegistry, RegionType
from repro.profiling.basic import ClassicProfiler
from repro.profiling.task_profiler import ThreadTaskProfiler


def test_classic_profiler_event_throughput(benchmark, report):
    reg = RegionRegistry()
    main = reg.register("main", RegionType.FUNCTION)
    functions = [reg.register(f"f{i}", RegionType.FUNCTION) for i in range(8)]
    events_per_round = 2_000

    def run():
        profiler = ClassicProfiler(main)
        profiler.enter(main, 0.0)
        t = 0.0
        for i in range(events_per_round // 2):
            region = functions[i % 8]
            t += 1.0
            profiler.enter(region, t)
            t += 1.0
            profiler.exit(region, t)
        profiler.exit(main, t + 1.0)
        return profiler.finish()

    benchmark(run)
    rate = events_per_round / benchmark.stats.stats.mean
    report.section("Classic profiling algorithm throughput")
    report(f"{rate:,.0f} enter/exit events per second (wall clock)")
    assert rate > 100_000  # sanity floor; typical machines do millions


def test_task_profiler_event_throughput(benchmark, report):
    reg = RegionRegistry()
    impl = reg.register("parallel", RegionType.IMPLICIT_TASK)
    task = reg.register("task", RegionType.TASK)
    barrier = reg.register("barrier", RegionType.IMPLICIT_BARRIER)
    tasks_per_round = 500

    def run():
        profiler = ThreadTaskProfiler(0, impl, {}, start_time=0.0)
        profiler.enter(barrier, 0.0)
        t = 0.0
        for i in range(1, tasks_per_round + 1):
            t += 1.0
            profiler.task_begin(task, i, t)
            t += 2.0
            profiler.task_end(task, i, t)
        profiler.exit(barrier, t + 1.0)
        profiler.finish(t + 1.0)
        return profiler

    result = benchmark(run)
    # each task = begin + end (each implies a switch + stub bookkeeping)
    events = tasks_per_round * 2
    rate = events / benchmark.stats.stats.mean
    report.section("Task profiling algorithm (Fig. 12) throughput")
    report(f"{rate:,.0f} task events per second (wall clock)")
    agg = result.task_trees[(task, None)]
    assert agg.metrics.durations.count == tasks_per_round
    assert rate > 50_000


def test_end_to_end_simulated_task_throughput(benchmark, report):
    def run():
        return run_app("fib", size="small", variant="stress", n_threads=4, seed=0)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    tasks = result.parallel.completed_tasks
    rate = tasks / benchmark.stats.stats.mean
    report.section("End-to-end simulation throughput (instrumented fib)")
    report(f"{tasks} tasks per run; {rate:,.0f} simulated tasks per second")
    assert result.verified
    assert rate > 1_000
