"""The fault/salvage hooks must be free when no fault plan is armed.

The robustness work wires lenient-mode hooks into the profiler's
listener surface, but installs them as *instance* attributes only when
``strict=False`` -- the default strict dispatch is the same class-method
path as before the feature existed.  This benchmark proves that claim
with wall-clock numbers: the shipped :class:`TaskProfiler` is compared
against an inline reference dispatcher with no strict/lenient machinery
at all, over the same workload as ``test_task_profiler_event_throughput``
(task begin/end churn inside a barrier).  Paired best-of-N timing keeps
the comparison stable; the gate is < 2% overhead.
"""

import timeit

from repro.events.regions import RegionRegistry, RegionType
from repro.profiling.task_profiler import TaskProfiler, ThreadTaskProfiler

TASKS_PER_ROUND = 300


class _ReferenceDispatch:
    """The pre-feature listener surface: plain per-thread dispatch,
    no mode switch, no salvage state anywhere."""

    def __init__(self, n_threads, implicit_region):
        self.instance_table = {}
        self.threads = [
            ThreadTaskProfiler(t, implicit_region, self.instance_table, 0.0)
            for t in range(n_threads)
        ]

    def on_enter(self, thread_id, region, time, parameter=None):
        self.threads[thread_id].enter(region, time, parameter)

    def on_exit(self, thread_id, region, time):
        self.threads[thread_id].exit(region, time)

    def on_task_begin(self, thread_id, region, instance, time, parameter=None):
        self.threads[thread_id].task_begin(region, instance, time, parameter)

    def on_task_end(self, thread_id, region, instance, time):
        self.threads[thread_id].task_end(region, instance, time)

    def on_finish(self, time):
        for thread in self.threads:
            thread.finish(time)


def _workload(make_profiler, impl, task, barrier):
    def run():
        profiler = make_profiler(1, impl)
        profiler.on_enter(0, barrier, 0.0)
        t = 0.0
        for i in range(1, TASKS_PER_ROUND + 1):
            t += 1.0
            profiler.on_task_begin(0, task, i, t)
            t += 2.0
            profiler.on_task_end(0, task, i, t)
        profiler.on_exit(0, barrier, t + 1.0)
        profiler.on_finish(t + 1.0)

    return run


def test_disarmed_fault_hook_overhead_below_two_percent(report):
    reg = RegionRegistry()
    impl = reg.register("parallel", RegionType.IMPLICIT_TASK)
    task = reg.register("task", RegionType.TASK)
    barrier = reg.register("barrier", RegionType.IMPLICIT_BARRIER)

    shipped = _workload(TaskProfiler, impl, task, barrier)
    reference = _workload(_ReferenceDispatch, impl, task, barrier)
    lenient = _workload(
        lambda n, r: TaskProfiler(n, r, strict=False), impl, task, barrier
    )

    # Paired alternation cancels machine drift; min-of-repeats is the
    # stable estimator for "how fast can this code path go".
    number, repeats = 25, 9
    shipped_times, reference_times, lenient_times = [], [], []
    for _ in range(repeats):
        reference_times.append(timeit.timeit(reference, number=number))
        shipped_times.append(timeit.timeit(shipped, number=number))
        lenient_times.append(timeit.timeit(lenient, number=number))

    best_reference = min(reference_times)
    best_shipped = min(shipped_times)
    best_lenient = min(lenient_times)
    overhead_pct = 100.0 * (best_shipped - best_reference) / best_reference
    lenient_pct = 100.0 * (best_lenient - best_reference) / best_reference
    events = TASKS_PER_ROUND * 2 * number

    report.section("Disarmed fault-hook overhead (strict TaskProfiler)")
    report(f"workload: {events} task events per timing, best of {repeats}")
    report(f"reference dispatch : {best_reference * 1e3:8.2f} ms")
    report(f"shipped strict     : {best_shipped * 1e3:8.2f} ms  ({overhead_pct:+.2f}%)")
    report(f"lenient (armed)    : {best_lenient * 1e3:8.2f} ms  ({lenient_pct:+.2f}%)")
    report()
    report("gate: shipped strict dispatch within 2% of the no-feature reference")

    assert overhead_pct < 2.0, (
        f"disarmed fault hooks cost {overhead_pct:.2f}% "
        f"(shipped {best_shipped:.4f}s vs reference {best_reference:.4f}s)"
    )
