"""Section VI's punch line: cutting nqueens task creation at level 3.

"Thus, stopping task creation at level 3, as done by the nqueens version
with cut-off, reduces the runtime of the uninstrumented computing kernel
from 187 s to 11.5 s with 4 threads, providing a speedup of 16."

Also reproduces the diagnosis that led there: the mean time to *create*
a task rivals (paper: exceeds) the mean exclusive work of a task.
"""

from repro.analysis.nqueens_study import creation_vs_execution, cutoff_speedup
from repro.analysis.tables import format_table

SIZE = "medium"
THREADS = 4


def test_sec6_cutoff_speedup(benchmark, report):
    comparison = benchmark.pedantic(
        lambda: cutoff_speedup(size=SIZE, n_threads=THREADS, cutoff=3),
        rounds=1,
        iterations=1,
    )

    report.section("Section VI: nqueens cut-off at level 3, 4 threads")
    report(
        format_table(
            ["configuration", "kernel time [us]"],
            [
                ["no cut-off", f"{comparison.nocutoff_time:.0f}"],
                [f"cut-off @ level {comparison.cutoff_level}",
                 f"{comparison.cutoff_time:.0f}"],
            ],
        )
    )
    report(f"speedup: {comparison.speedup:.1f}x   (paper: 187 s -> 11.5 s = 16.3x)")

    # Large speedup from fixing task granularity alone.
    assert comparison.speedup > 4.0


def test_sec6_creation_vs_execution(benchmark, report):
    numbers = benchmark.pedantic(
        lambda: creation_vs_execution(size="small", n_threads=THREADS),
        rounds=1,
        iterations=1,
    )
    report.section("Section VI diagnosis: creation cost vs task work (4 threads)")
    report(f"mean exclusive task work : {numbers['mean_task_exclusive_us']:.2f} us "
           f"(paper: 0.30 us)")
    report(f"mean task creation time  : {numbers['mean_creation_us']:.2f} us "
           f"(paper: 0.86 us)")
    report(f"task instances           : {numbers['task_instances']}")

    # The paper's diagnosis: creating a task costs as much as or more
    # than the task's own exclusive work.
    assert numbers["mean_creation_us"] > 0.5 * numbers["mean_task_exclusive_us"]
