"""Shared fixtures for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper, prints it,
and writes it to ``benchmarks/reports/<name>.txt`` so the regenerated
artifacts survive the pytest run.  Shape assertions (who wins, what
grows, where the crossover is) live in the benchmarks themselves.
"""

from __future__ import annotations

import pathlib

import pytest

REPORTS_DIR = pathlib.Path(__file__).parent / "reports"


@pytest.fixture()
def report(request):
    """Collect lines; on teardown print them and write the report file."""
    lines: list[str] = []

    class Reporter:
        def __call__(self, text: str = "") -> None:
            lines.append(str(text))

        def section(self, title: str) -> None:
            lines.append("")
            lines.append(title)
            lines.append("=" * len(title))

    reporter = Reporter()
    yield reporter
    REPORTS_DIR.mkdir(exist_ok=True)
    name = request.node.name.replace("/", "_")
    text = "\n".join(lines) + "\n"
    (REPORTS_DIR / f"{name}.txt").write_text(text)
    print()
    print(text)
