"""Calibration anchors: the cost-model tuning the reproduction relies on.

EXPERIMENTS.md's paper-vs-measured comparisons assume the cost model is
calibrated to the paper's relative magnitudes.  These anchors pin the
calibration so that an innocent-looking cost change cannot silently
invalidate the shape claims:

* fib's uncontended per-instance granularity ≈ the paper's ~1.5 µs scale,
* strassen-to-fib granularity ratio ≈ two orders of magnitude (Table I),
* nqueens creation cost ≥ its exclusive task work (Section VI diagnosis),
* 1-thread no-cut-off instrumentation overhead is large (Fig. 14) and
  cut-off overheads for the quiet codes are small (Fig. 13).
"""

from repro.analysis.nqueens_study import creation_vs_execution
from repro.analysis.overhead import measure_overhead
from repro.analysis.tables import format_table
from repro.analysis.taskstats import task_statistics

SIZE = "small"


def test_calibration_anchors(benchmark, report):
    def run():
        granularity = task_statistics(
            ["fib", "nqueens", "health", "floorplan", "strassen"],
            size=SIZE,
            variant="stress",
            n_threads=1,
        )
        diagnosis = creation_vs_execution(size=SIZE, n_threads=4)
        fib_overhead = measure_overhead(
            "fib", size=SIZE, variant="stress", threads=(1,)
        )[0]
        strassen_overhead = measure_overhead(
            "strassen", size=SIZE, variant="optimized", threads=(1,)
        )[0]
        return granularity, diagnosis, fib_overhead, strassen_overhead

    granularity, diagnosis, fib_ov, strassen_ov = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    by_code = {r.code: r for r in granularity}

    report.section("Calibration anchors (paper-relative magnitudes)")
    report(
        format_table(
            ["anchor", "measured", "paper", "band"],
            [
                [
                    "fib mean task [us]",
                    f"{by_code['fib'].mean_time_us:.2f}",
                    "1.49",
                    "0.8 - 2.5",
                ],
                [
                    "strassen/fib granularity ratio",
                    f"{by_code['strassen'].mean_time_us / by_code['fib'].mean_time_us:.0f}x",
                    "100x",
                    "40x - 250x",
                ],
                [
                    "floorplan/fib granularity ratio",
                    f"{by_code['floorplan'].mean_time_us / by_code['fib'].mean_time_us:.1f}x",
                    "5.8x",
                    "2x - 15x",
                ],
                [
                    "nqueens create/work ratio",
                    f"{diagnosis['mean_creation_us'] / diagnosis['mean_task_exclusive_us']:.2f}",
                    "2.9",
                    "> 0.5",
                ],
                [
                    "fib no-cutoff overhead @1thr",
                    f"{fib_ov.overhead_pct:+.0f}%",
                    "+527%",
                    "> +80%",
                ],
                [
                    "strassen cutoff overhead @1thr",
                    f"{strassen_ov.overhead_pct:+.1f}%",
                    "~0%",
                    "< 5%",
                ],
            ],
        )
    )

    fib = by_code["fib"].mean_time_us
    assert 0.8 <= fib <= 2.5
    assert 40 <= by_code["strassen"].mean_time_us / fib <= 250
    assert 2 <= by_code["floorplan"].mean_time_us / fib <= 15
    assert diagnosis["mean_creation_us"] > 0.5 * diagnosis["mean_task_exclusive_us"]
    assert fib_ov.overhead > 0.8
    assert abs(strassen_ov.overhead) < 0.05
