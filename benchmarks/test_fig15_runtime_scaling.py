"""Figure 15: runtime of the uninstrumented no-cut-off versions vs threads.

"The runtime is shown in percent compared to the highest measured value
for that code.  When looking at the runtimes of the codes, we can see
that the overall runtime increases [with thread count].  The only
exception is the strassen code."

The mechanism (paper Section V-A): task management inside the runtime
becomes a serial bottleneck due to locking, so adding threads adds
contention faster than it adds compute -- except when tasks are large
enough (strassen) for compute to dominate.
"""

from repro.analysis.charts import grouped_bar_chart
from repro.analysis.overhead import runtime_scaling
from repro.analysis.tables import format_table

APPS = ["fib", "floorplan", "health", "nqueens", "strassen"]
THREADS = (1, 2, 4, 8)
SIZE = "small"


def test_fig15_runtime_scaling(benchmark, report):
    def run():
        return {app: runtime_scaling(app, size=SIZE, threads=THREADS) for app in APPS}

    scaling = benchmark.pedantic(run, rounds=1, iterations=1)

    report.section(
        "Figure 15: uninstrumented no-cut-off kernel time (% of per-code max)"
    )
    rows = [
        [app] + [f"{scaling[app][t]:.0f}%" for t in THREADS] for app in APPS
    ]
    report(format_table(["code"] + [f"{t} thr" for t in THREADS], rows))
    report()
    report(
        grouped_bar_chart(
            {app: dict(series) for app, series in scaling.items()},
            title="runtime [% of max] vs threads (cf. paper Fig. 15)",
        )
    )

    for app in ("fib", "floorplan", "health", "nqueens"):
        series = scaling[app]
        # The 8-thread run is the slowest: management/contention dominates.
        assert series[8] == max(series.values()), (app, series)
        # And it is much slower than the 1-thread run (paper's "overall
        # runtime increases").
        assert series[1] < 70.0, (app, series)

    # strassen scales: more threads -> faster, 1 thread is the maximum.
    strassen = scaling["strassen"]
    assert strassen[1] == 100.0
    assert strassen[8] < strassen[4] < strassen[2] < strassen[1]
