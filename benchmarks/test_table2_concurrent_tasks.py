"""Table II: maximum number of concurrently executing tasks per thread.

Paper values:

    alignment 1, fft 19, fib(cut-off) 4, floorplan 20, floorplan(cut-off) 5,
    health 4, health(cut-off) 3, nqueens 14, nqueens(cut-off) 3, sort 18,
    sparselu 2, strassen 8, strassen(cut-off) 3.

Reproduced claims: the counter never explodes (bounded by ~recursion
depth), alignment is exactly 1 (flat tasks, no suspension), cut-off
variants stay at or below their no-cut-off counterparts, and deep
divide & conquer codes (fft/sort/nqueens no-cut-off) have the largest
values.  Released instance-tree nodes are recycled (pool statistics).
"""

from repro.analysis.concurrency import PAPER_TABLE2_ROWS, concurrency_table
from repro.analysis.experiment import run_app
from repro.analysis.tables import format_table

PAPER_VALUES = {
    "alignment": 1,
    "fft": 19,
    "fib (cut-off)": 4,
    "floorplan": 20,
    "floorplan (cut-off)": 5,
    "health": 4,
    "health (cut-off)": 3,
    "nqueens": 14,
    "nqueens (cut-off)": 3,
    "sort": 18,
    "sparselu": 2,
    "strassen": 8,
    "strassen (cut-off)": 3,
}
SIZE = "small"


def test_table2_concurrent_tasks(benchmark, report):
    entries = [(name, variant) for name, variant, _ in PAPER_TABLE2_ROWS]
    table = benchmark.pedantic(
        lambda: concurrency_table(entries, size=SIZE, n_threads=4),
        rounds=1,
        iterations=1,
    )

    labeled = {
        label: table[(name, variant)] for name, variant, label in PAPER_TABLE2_ROWS
    }
    report.section("Table II: max concurrently executing tasks per thread")
    report(
        format_table(
            ["code", "max tasks (measured)", "paper"],
            [[label, value, PAPER_VALUES[label]] for label, value in labeled.items()],
        )
    )

    # Bounded: never larger than ~20 (the paper's headline).
    assert all(v <= 25 for v in labeled.values()), labeled
    # alignment: exactly 1 -- no nesting, no suspension.
    assert labeled["alignment"] == 1
    # cut-off variants never exceed their no-cut-off counterparts.
    for code in ("floorplan", "health", "nqueens", "strassen"):
        assert labeled[f"{code} (cut-off)"] <= labeled[code], code
    # sparselu: very small (flat phases).
    assert labeled["sparselu"] <= 3
    # the deep recursive codes lead ("the maximum number of concurrent
    # tasks reflects the recursion depth").  fib (cut-off) qualifies here
    # because our cut-off level is deliberately deep (level 10) to keep
    # fib pathological as in the paper's Fig. 13.
    deepest = max(labeled, key=labeled.get)
    assert deepest in (
        "fft",
        "sort",
        "nqueens",
        "floorplan",
        "health",
        "fib (cut-off)",
    )


def test_table2_node_pool_recycles(benchmark, report):
    """Section V-B: released task-instance tree nodes are reused, so
    allocations track *concurrency*, not total task count."""
    result = benchmark.pedantic(
        lambda: run_app("fib", size=SIZE, variant="stress", n_threads=2, seed=0),
        rounds=1,
        iterations=1,
    )
    report.section("Node-pool recycling (Section V-B)")
    total_allocated = 0
    for thread_id, stats in enumerate(result.profile.memory_stats):
        pool = stats["pool"]
        report(f"thread {thread_id}: {pool}")
        total_allocated += pool["allocated"]
        assert pool["released"] == pool["allocated"] + pool["reused"]
    tasks = result.parallel.completed_tasks
    report(f"tasks executed: {tasks}, nodes ever allocated: {total_allocated}")
    # Thousands of tasks, but allocations bounded by live-tree volume.
    assert tasks > 1000
    assert total_allocated < tasks / 10
