"""Gateway overhead: durability must stay cheap per campaign.

The campaign gateway wraps every supervised grid in a durable ledger
(fsync'd submit + admit + lease + running + settle records under a
flock), a lease-renewal thread, and a recovery scan.  That machinery
is the price of kill-anywhere recovery — and it is only acceptable if
a gateway-served campaign stays within a few percent of driving the
supervisor directly.  Gate: serve within 5 % of plain ``run_supervised``
on the same grid (plus an absolute slack so fork jitter on a
sub-second grid cannot flake the ratio).
"""

from __future__ import annotations

import time

from repro.service import CampaignSpec, Gateway
from repro.supervisor import FAST_BACKOFF, call_cell, run_supervised

N_CELLS = 12
GATEWAY_RELATIVE_BUDGET = 1.05
GATEWAY_ABSOLUTE_SLACK_S = 0.25  # fork/scheduler jitter on short grids


def _stub_grid():
    return [
        call_cell(
            "repro.supervisor.stubs:ok_cell", {"value": i}, cell_id=f"cell-{i}"
        )
        for i in range(N_CELLS)
    ]


def _cells_spec(n=N_CELLS):
    return CampaignSpec.from_dict(
        {
            "kind": "cells",
            "cells": [
                {
                    "kind": "call",
                    "cell_id": f"cell-{i}",
                    "params": {
                        "target": "repro.supervisor.stubs:ok_cell",
                        "kwargs": {"value": i},
                    },
                }
                for i in range(n)
            ],
        }
    )


def test_gateway_overhead_within_budget(report, tmp_path):
    """Interleaved min-of-N: ledger + lease + recovery scan vs plain."""
    repeats = 3

    def plain_run(tag):
        return run_supervised(
            _stub_grid(),
            jobs=2,
            backoff=FAST_BACKOFF,
            journal_path=str(tmp_path / f"plain-{tag}.jsonl"),
        )

    def gateway_run(tag):
        gateway = Gateway(
            str(tmp_path / f"home-{tag}"),
            jobs=2,
            reclaim_backoff=FAST_BACKOFF,
        )
        campaign, created = gateway.submit(_cells_spec())
        assert created
        serve = gateway.serve(run_until_idle=True, poll_s=0.01)
        return gateway, campaign, serve

    plain_s, gateway_s = [], []
    for tag in range(repeats):
        start = time.perf_counter()
        assert plain_run(tag).ok
        plain_s.append(time.perf_counter() - start)

        start = time.perf_counter()
        gateway, campaign, serve = gateway_run(tag)
        gateway_s.append(time.perf_counter() - start)
        assert serve.executed == 1 and serve.idle
        refreshed = gateway.campaign(campaign.campaign_id)
        assert refreshed.state == "archived"
        assert refreshed.cells["ok"] == N_CELLS

    plain, served = min(plain_s), min(gateway_s)
    budget = plain * GATEWAY_RELATIVE_BUDGET + GATEWAY_ABSOLUTE_SLACK_S
    report.section("gateway overhead: submit + serve vs plain supervise")
    report(f"cells: {N_CELLS}, jobs: 2, min of {repeats}")
    report(f"plain supervised:  {plain * 1e3:8.1f} ms")
    report(f"gateway served:    {served * 1e3:8.1f} ms")
    report(
        f"budget (5 % + {GATEWAY_ABSOLUTE_SLACK_S * 1e3:.0f} ms slack): "
        f"{budget * 1e3:8.1f} ms"
    )
    assert served <= budget, (
        f"gateway path {served * 1e3:.1f} ms exceeds "
        f"{budget * 1e3:.1f} ms budget"
    )


def test_submit_latency_is_bounded(report, tmp_path):
    """A durable submit is a handful of fsyncs, not a supervised run."""
    gateway = Gateway(str(tmp_path / "home"), reclaim_backoff=FAST_BACKOFF)
    laps = []
    for i in range(10):
        spec = _cells_spec(1)
        start = time.perf_counter()
        gateway.submit(spec, idempotency_key=f"k{i}")
        laps.append(time.perf_counter() - start)
    worst_ms = max(laps) * 1e3
    median_ms = sorted(laps)[len(laps) // 2] * 1e3
    report.section("submit latency (1-cell campaign, fsync'd ledger)")
    report(f"median: {median_ms:8.2f} ms   worst: {worst_ms:8.2f} ms")
    # A submit is flock + one fsync'd append; anything near a second
    # means the ledger path grew accidental work.
    assert worst_ms < 1000.0, f"submit took {worst_ms:.0f} ms"
