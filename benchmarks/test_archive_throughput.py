"""Real wall-clock throughput of the content-addressed profile archive.

The archive sits on the hot path of `repro run --archive` and of every
supervised fault-grid cell, so its absolute cost matters: an archive
write must stay negligible next to the simulated run it records, and a
baseline load must stay negligible next to the candidate run the
sentinel compares.  No paper assertions here -- these are the
regression-tracking benchmarks of the archive subsystem itself.
"""

import itertools

from repro.analysis.experiment import run_app
from repro.archive import ArchiveStore, canonical_profile_bytes, meta_for_result


def _fib_result():
    return run_app("fib", size="test", variant="stress", n_threads=2, seed=0)


def test_archive_cold_write_throughput(benchmark, report, tmp_path):
    result = _fib_result()
    meta = meta_for_result(result, size="test", variant="stress")
    payload_bytes = len(canonical_profile_bytes(result.profile))
    counter = itertools.count()

    def write():
        store = ArchiveStore(tmp_path / f"a{next(counter)}")
        return store.put(result.profile, meta)

    record = benchmark(write)
    assert not record.deduplicated
    per_put = benchmark.stats.stats.mean
    report.section("Archive cold write (object + index)")
    report(f"profile payload: {payload_bytes:,} canonical JSON bytes")
    report(f"{1.0 / per_put:,.0f} archived runs per second")
    report(f"{payload_bytes / per_put / 1e6:,.1f} MB/s canonical payload")
    assert 1.0 / per_put > 20  # sanity floor: well under 50 ms per archive


def test_archive_deduplicated_put_throughput(benchmark, report, tmp_path):
    result = _fib_result()
    meta = meta_for_result(result, size="test", variant="stress")
    store = ArchiveStore(tmp_path / "arch")
    store.put(result.profile, meta)

    record = benchmark(lambda: store.put(result.profile, meta))
    assert record.deduplicated
    per_put = benchmark.stats.stats.mean
    report.section("Archive deduplicated put (content already stored)")
    report(f"{1.0 / per_put:,.0f} deduplicated puts per second")
    assert 1.0 / per_put > 20


def test_archive_read_throughput(benchmark, report, tmp_path):
    result = _fib_result()
    store = ArchiveStore(tmp_path / "arch")
    record = store.put(
        result.profile, meta_for_result(result, size="test", variant="stress")
    )
    payload_bytes = len(canonical_profile_bytes(result.profile))

    profile = benchmark(lambda: store.load_profile(record.run_id))
    assert canonical_profile_bytes(profile) == canonical_profile_bytes(
        result.profile
    )
    per_load = benchmark.stats.stats.mean
    report.section("Archive verified read (decompress + hash check + parse)")
    report(f"{1.0 / per_load:,.0f} profile loads per second")
    report(f"{payload_bytes / per_load / 1e6:,.1f} MB/s canonical payload")
    assert 1.0 / per_load > 50
