"""Full-suite verification at medium size (the paper's 'medium inputs').

One optimized run per kernel (the nine + the uts extra) at 4 threads,
instrumented, each verified against its ground truth, with the headline
profile statistics tabulated.  This is the closest analogue of running
the whole BOTS suite once, and doubles as the slowest-path regression
check of the simulator.
"""

from repro.analysis.experiment import run_app
from repro.analysis.tables import format_table
from repro.bots.registry import ALL_KERNELS, EXTRA_KERNELS


def test_medium_suite_verified(benchmark, report):
    kernels = list(ALL_KERNELS) + list(EXTRA_KERNELS)

    def run():
        out = {}
        for name in kernels:
            result = run_app(
                name, size="medium", variant="optimized", n_threads=4, seed=0
            )
            out[name] = result
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    report.section("Medium-size suite, optimized variants, 4 threads")
    rows = []
    for name, result in results.items():
        stats_count = (
            sum(
                tree.metrics.durations.count
                for per in result.profile.task_trees
                for tree in per.values()
            )
            if result.profile
            else 0
        )
        rows.append(
            [
                name,
                result.verified,
                result.parallel.completed_tasks,
                f"{result.kernel_time:,.0f}",
                result.profile.max_concurrent_tasks_per_thread(),
                result.parallel.tasks_stolen,
            ]
        )
        assert result.verified, name
        assert stats_count == result.parallel.completed_tasks, name
    report(
        format_table(
            ["kernel", "verified", "tasks", "kernel [us]", "max conc.", "stolen"],
            rows,
        )
    )
