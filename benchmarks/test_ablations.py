"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not part of the paper's evaluation, but quantifying the knobs the
reproduction introduces:

* queue policy (work-first LIFO vs breadth-first FIFO) and stealing --
  the runtime scheduling choices;
* the contention model (lock hold scaling) -- the mechanism behind
  Figs. 14/15 and Table III: switching it off must *kill* those effects,
  demonstrating the causal link;
* the per-event instrumentation cost -- a sweep showing overhead is
  linear in it at one thread and shadowed at eight;
* the trace-based management ratio (Section VII outlook) across task
  granularities.
"""

from dataclasses import replace

from repro.analysis.experiment import run_app
from repro.analysis.overhead import measure_overhead, runtime_scaling
from repro.analysis.tables import format_table
from repro.analysis.traces import management_ratio
from repro.runtime.costs import CostModel

SIZE = "small"


def test_ablation_queue_policy_and_stealing(benchmark, report):
    """Queue policy and stealing, on both ends of the granularity scale.

    For coarse tasks (strassen) stealing is what makes the
    single-producer program parallel at all: disabling it serializes.
    For tiny tasks (fib, no cut-off) stealing *hurts* -- contention makes
    4-thread execution slower than letting the producer run everything
    itself, which is the Fig. 15 pathology from a different angle.
    """

    def run():
        rows = {}
        for app in ("strassen", "fib"):
            for label, overrides in (
                ("lifo + steal", {}),
                ("fifo + steal", {"queue_policy": "fifo"}),
                ("lifo, no steal", {"steal": False}),
            ):
                result = run_app(
                    app,
                    size=SIZE,
                    variant="stress",
                    n_threads=4,
                    instrument=False,
                    seed=0,
                    **overrides,
                )
                rows[(app, label)] = (
                    result.kernel_time,
                    result.parallel.tasks_stolen,
                    result.verified,
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    report.section("Ablation: ready-queue policy and work stealing (4 thr)")
    report(
        format_table(
            ["code", "configuration", "kernel [us]", "steals", "verified"],
            [
                [app, label, f"{v[0]:.0f}", v[1], v[2]]
                for (app, label), v in rows.items()
            ],
        )
    )
    # Every configuration computes the right answer.
    assert all(v[2] for v in rows.values())
    # Stealing happens when enabled, never when disabled.
    assert rows[("strassen", "lifo + steal")][1] > 0
    assert rows[("strassen", "lifo, no steal")][1] == 0
    # Coarse tasks: stealing is what buys parallelism.
    assert rows[("strassen", "lifo, no steal")][0] > 1.5 * min(
        rows[("strassen", "lifo + steal")][0],
        rows[("strassen", "fifo + steal")][0],
    )
    # Tiny tasks: parallel execution under contention loses to the
    # producer just running everything (the Fig. 15 inversion).
    assert rows[("fib", "lifo, no steal")][0] < rows[("fib", "lifo + steal")][0]


def test_ablation_contention_model(benchmark, report):
    """Switching the contention model off must kill the Fig. 15 effect."""

    def run():
        contended = runtime_scaling("fib", size=SIZE, threads=(1, 8))
        free = runtime_scaling(
            "fib", size=SIZE, threads=(1, 8), costs=CostModel().without_contention()
        )
        return contended, free

    contended, free = benchmark.pedantic(run, rounds=1, iterations=1)

    report.section("Ablation: lock contention model (fib no cut-off)")
    report(
        format_table(
            ["model", "1 thr [% of max]", "8 thr [% of max]"],
            [
                ["contended (default)", f"{contended[1]:.0f}", f"{contended[8]:.0f}"],
                ["contention-free", f"{free[1]:.0f}", f"{free[8]:.0f}"],
            ],
        )
    )
    # With contention: 8 threads is the max (runtime increases).
    assert contended[8] == 100.0 and contended[1] < 50.0
    # Without contention: 8 threads is FASTER than 1 thread -- the
    # Fig. 15 inversion is caused by the contention model, nothing else.
    assert free[8] < free[1]


def test_ablation_instrumentation_cost_sweep(benchmark, report):
    """Overhead is ~linear in per-event cost at 1 thread, shadowed at 8."""

    def run():
        rows = []
        for cost in (0.1, 0.45, 1.0):
            costs = CostModel().with_instrumentation_cost(cost)
            points = measure_overhead(
                "fib", size=SIZE, variant="stress", threads=(1, 8), costs=costs
            )
            rows.append((cost, points[0].overhead, points[1].overhead))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    report.section("Ablation: per-event instrumentation cost (fib no cut-off)")
    report(
        format_table(
            ["event cost [us]", "overhead @1 thr", "overhead @8 thr"],
            [[c, f"{o1 * 100:+.1f}%", f"{o8 * 100:+.1f}%"] for c, o1, o8 in rows],
        )
    )
    # 1-thread overhead grows with the event cost, roughly linearly.
    ov1 = [o1 for _, o1, _ in rows]
    assert ov1[0] < ov1[1] < ov1[2]
    assert ov1[2] / ov1[0] > 4  # 10x cost -> far more than 4x overhead
    # 8-thread overhead stays shadowed regardless of the event cost.
    assert all(abs(o8) < 0.35 for _, _, o8 in rows)


def test_ablation_management_ratio_by_granularity(benchmark, report):
    """Section VII metric across granularities: the ratio separates
    well-sized from ill-sized task programs."""

    def run():
        out = {}
        for app, variant in (("fib", "stress"), ("strassen", "stress")):
            result = run_app(
                app, size="test", variant=variant, n_threads=4, seed=0,
                record_events=True,
            )
            out[app] = management_ratio(result.parallel.trace)
        return out

    ratios = benchmark.pedantic(run, rounds=1, iterations=1)

    report.section("Trace analysis: management/execution ratio by granularity")
    report(
        format_table(
            ["code", "task exec [us]", "management [us]", "waiting [us]", "ratio"],
            [
                [
                    app,
                    f"{r['task_execution']:.0f}",
                    f"{r['management']:.0f}",
                    f"{r['waiting']:.0f}",
                    f"{r['ratio']:.2f}",
                ]
                for app, r in ratios.items()
            ],
        )
    )
    assert ratios["fib"]["ratio"] > 0.4  # tiny tasks: management rivals work
    assert ratios["strassen"]["ratio"] < 0.2  # large tasks: management negligible


def test_ablation_measurement_filtering(benchmark, report):
    """Score-P-style region filtering recovers most of fib's overhead.

    Filtering the management-region bracketing (taskwait/create enters
    and exits) keeps full task-instance statistics while dropping the
    bulk of the per-task event volume -- the standard mitigation for the
    paper's fib pathology.
    """
    from repro.analysis.overhead import measure_overhead
    from repro.instrument.filtering import RegionFilter

    def run():
        full = measure_overhead("fib", size=SIZE, variant="stress", threads=(1,))
        filtered = measure_overhead(
            "fib",
            size=SIZE,
            variant="stress",
            threads=(1,),
            measurement_filter=RegionFilter(exclude=("taskwait", "taskyield", "create@*")),
        )
        return full[0], filtered[0]

    full, filtered = benchmark.pedantic(run, rounds=1, iterations=1)

    report.section("Ablation: measurement filtering (fib no cut-off, 1 thread)")
    report(
        format_table(
            ["configuration", "overhead"],
            [
                ["full instrumentation", f"{full.overhead_pct:+.1f}%"],
                ["management regions filtered", f"{filtered.overhead_pct:+.1f}%"],
            ],
        )
    )
    assert filtered.overhead < full.overhead * 0.6
    assert filtered.overhead > 0  # task events still cost something
