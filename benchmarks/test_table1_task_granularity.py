"""Table I: mean task execution time and task counts, no-cut-off versions.

Paper values (Juropa, medium inputs):

    code        mean time    number of tasks
    fib         1.49 us      3,690,000,000
    floorplan   8.57 us         73,700,000
    health      2.35 us         17,500,000
    nqueens     1.24 us        378,000,000
    strassen    149.0 us           960,800

Inputs here are scaled down ~10^5x, so task *counts* are proportionally
smaller; the reproduced claims are about granularity: fib/nqueens/health
tasks are ~1-2 us, floorplan's several times larger, and strassen's two
orders of magnitude larger with by far the fewest tasks.
"""

from repro.analysis.tables import format_table
from repro.analysis.taskstats import granularity_ratios, task_statistics

PAPER = {
    "fib": (1.49, 3_690_000_000),
    "floorplan": (8.57, 73_700_000),
    "health": (2.35, 17_500_000),
    "nqueens": (1.24, 378_000_000),
    "strassen": (149.0, 960_800),
}
APPS = list(PAPER)
SIZE = "small"


def test_table1_task_granularity(benchmark, report):
    rows = benchmark.pedantic(
        lambda: task_statistics(APPS, size=SIZE, variant="stress", n_threads=1),
        rounds=1,
        iterations=1,
    )

    report.section("Table I: mean task execution time and task count (no cut-off)")
    report(
        format_table(
            ["code", "mean [us]", "tasks (measured)", "paper mean [us]", "paper tasks"],
            [
                [
                    r.code,
                    f"{r.mean_time_us:.2f}",
                    r.task_count,
                    PAPER[r.code][0],
                    f"{PAPER[r.code][1]:,}",
                ]
                for r in rows
            ],
        )
    )
    ratios = granularity_ratios(rows)
    report()
    report(f"granularity ratios vs smallest: "
           f"{ {k: round(v, 1) for k, v in ratios.items()} }")

    by_code = {r.code: r for r in rows}

    # fib/nqueens: ~1 us scale tasks, the finest of the suite.
    assert by_code["fib"].mean_time_us < 3.0
    assert by_code["nqueens"].mean_time_us < 3.0
    # health in the same ballpark.
    assert by_code["health"].mean_time_us < 5.0
    # floorplan several times larger.
    assert by_code["floorplan"].mean_time_us > 2 * by_code["fib"].mean_time_us
    # strassen: ~two orders of magnitude larger than fib (paper: 100x).
    assert by_code["strassen"].mean_time_us > 50 * by_code["fib"].mean_time_us
    # ...and far fewer tasks than the fine-grained codes.  (floorplan's
    # count is excluded from the ordering claim: its branch & bound
    # pruning makes the task count schedule-dependent, and at this scaled
    # size it explores far fewer nodes than the paper's input.)
    assert by_code["strassen"].task_count < by_code["fib"].task_count / 4
    assert by_code["strassen"].task_count < by_code["nqueens"].task_count / 4
    assert by_code["strassen"].task_count < by_code["health"].task_count
    # fib and nqueens have the most tasks.
    top_two = sorted(rows, key=lambda r: r.task_count, reverse=True)[:2]
    assert {r.code for r in top_two} == {"fib", "nqueens"}
