"""Figure 14: task-profiling overhead, no-cut-off (stress) BOTS versions.

The stress test of the profiling system: "the BOTS version without the
cut-off, which creates a large amount of small tasks".

Paper findings reproduced as assertions:

* 1-thread overheads are large for the tiny-task codes (fib worst),
* with increasing threads the overhead "decreases significantly ... to
  values near or even below zero percent" -- the runtime's own lock
  contention shadows the instrumentation cost,
* strassen is the exception: always low overhead (its tasks are two
  orders of magnitude larger, Table I).
"""

from repro.analysis.charts import grouped_bar_chart
from repro.analysis.overhead import overhead_sweep
from repro.analysis.tables import format_table

APPS = ["fib", "floorplan", "health", "nqueens", "sort", "fft", "strassen"]
THREADS = (1, 2, 4, 8)
SIZE = "small"


def test_fig14_overhead_nocutoff(benchmark, report):
    sweep = benchmark.pedantic(
        lambda: overhead_sweep(APPS, size=SIZE, variant="stress", threads=THREADS),
        rounds=1,
        iterations=1,
    )

    report.section("Figure 14: profiling overhead, no-cut-off (stress) versions")
    rows = [
        [app] + [f"{p.overhead_pct:+.1f}%" for p in points]
        for app, points in sweep.items()
    ]
    report(format_table(["code"] + [f"{t} thr" for t in THREADS], rows))
    report()
    report(
        grouped_bar_chart(
            {
                app: {p.n_threads: p.overhead_pct for p in points}
                for app, points in sweep.items()
            },
            title="overhead [%] vs threads (cf. paper Fig. 14)",
        )
    )

    by_app = {app: {p.n_threads: p.overhead for p in pts} for app, pts in sweep.items()}

    # Tiny-task codes: large 1-thread overhead...
    for small_task_code in ("fib", "nqueens"):
        assert by_app[small_task_code][1] > 0.5, small_task_code
    # fib ranks among the very worst (paper: 527 %, the suite maximum);
    # the other one-instruction-per-task codes (nqueens, no-cut-off fft)
    # share the pathology.
    worst_two = sorted(APPS, key=lambda app: by_app[app][1], reverse=True)[:2]
    assert "fib" in worst_two or "nqueens" in worst_two

    # ...that collapses toward (or below) zero at 8 threads: shadowing.
    for small_task_code in ("fib", "nqueens", "sort", "fft", "health"):
        ov = by_app[small_task_code]
        assert ov[8] < ov[1] / 3, (small_task_code, ov)
        assert ov[8] < 0.25, (small_task_code, ov)

    # The exception: strassen always has low overhead.
    for n_threads, overhead in by_app["strassen"].items():
        assert abs(overhead) < 0.12, (n_threads, overhead)
