"""Section III, third task performance problem: serialized task creation.

"On larger scales, the task creation may become a bottleneck if tasks
are created only by a small number of threads."

The sparselu variants provide the controlled contrast: `single` has one
producer (creation imbalance 1.0), `for` distributes creation across the
team.  The benchmark sweeps thread counts and shows (a) the creation-
balance analysis detecting the single-producer pattern and (b) the
producer's creation time staying serial while the distributed variant
splits it.
"""

from repro.analysis.bottleneck import creation_balance, diagnose_creation_bottleneck
from repro.analysis.experiment import run_app
from repro.analysis.tables import format_table

SIZE = "small"
THREADS = (2, 4, 8)


def test_creation_bottleneck_sparselu(benchmark, report):
    def run():
        rows = {}
        for variant in ("single", "for"):
            for n_threads in THREADS:
                result = run_app(
                    "sparselu", size=SIZE, variant=variant, n_threads=n_threads,
                    seed=0,
                )
                assert result.verified
                balance = creation_balance(result.profile)
                rows[(variant, n_threads)] = (
                    result.kernel_time,
                    balance.imbalance,
                    max(balance.creation_time_per_thread),
                    diagnose_creation_bottleneck(result.profile) is not None,
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    report.section("Task-creation bottleneck: sparselu single vs for")
    report(
        format_table(
            ["variant", "threads", "kernel [us]", "imbalance",
             "max per-thread create [us]", "flagged"],
            [
                [variant, n, f"{v[0]:.0f}", f"{v[1]:.2f}", f"{v[2]:.1f}", v[3]]
                for (variant, n), v in rows.items()
            ],
        )
    )

    for n_threads in THREADS:
        single = rows[("single", n_threads)]
        distributed = rows[("for", n_threads)]
        # single-producer: full imbalance, flagged by the diagnosis.
        assert single[1] > 0.95 and single[3]
        # distributed creation: balanced, not flagged.
        assert distributed[1] < 0.6 and not distributed[3]
    # The single producer's creation time is concentrated on one thread;
    # the distributed variant's per-thread maximum is smaller.
    assert rows[("for", 8)][2] < rows[("single", 8)][2]
