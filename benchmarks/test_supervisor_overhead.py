"""Supervisor overhead: process isolation must stay cheap per cell.

The supervisor exists so the big sweeps (Figs. 13-15, the fault
campaign) can run unattended; that is only viable if forking a worker,
shipping the spec over a pipe, fsync-journaling two records, and
reaping the process costs a small fraction of a real cell.  This
benchmark measures the fixed per-cell cost on trivial stub cells (worst
case: zero useful work) and on real fault-campaign cells.
"""

from __future__ import annotations

import time

from repro.fabric import AdmissionPolicy, BreakerPolicy
from repro.faults.campaign import run_campaign
from repro.supervisor import FAST_BACKOFF, Supervisor, call_cell, run_supervised
from repro.supervisor.worker import execute_spec

N_CELLS = 12
HARDENED_RELATIVE_BUDGET = 1.05
HARDENED_ABSOLUTE_SLACK_S = 0.25  # fork/scheduler jitter on short grids


def _stub_grid():
    return [
        call_cell(
            "repro.supervisor.stubs:ok_cell", {"value": i}, cell_id=f"cell-{i}"
        )
        for i in range(N_CELLS)
    ]


def test_supervisor_per_cell_overhead(report, tmp_path):
    specs = _stub_grid()

    start = time.perf_counter()
    for spec in specs:
        assert execute_spec(spec)["ok"]
    direct_s = time.perf_counter() - start

    start = time.perf_counter()
    result = run_supervised(
        specs,
        jobs=2,
        backoff=FAST_BACKOFF,
        journal_path=str(tmp_path / "journal.jsonl"),
    )
    supervised_s = time.perf_counter() - start
    assert result.ok

    per_cell_ms = (supervised_s - direct_s) / N_CELLS * 1e3
    report.section("supervisor fixed overhead (trivial cells)")
    report(f"cells: {N_CELLS}, jobs: 2, journal: fsync'd JSONL")
    report(f"direct execution:     {direct_s * 1e3:8.1f} ms total")
    report(f"supervised execution: {supervised_s * 1e3:8.1f} ms total")
    report(f"isolation overhead:   {per_cell_ms:8.1f} ms/cell")
    # Fork + pipe + 2 fsync'd journal records + reap must stay well under
    # the cost of any real campaign cell.
    assert per_cell_ms < 500.0, f"supervisor overhead {per_cell_ms:.0f} ms/cell"


def test_hardened_path_overhead(report, tmp_path):
    """Heartbeats + admission + a disarmed breaker must stay within 5 %.

    The fabric hardening is always-on machinery: every healthy cell
    pays for the heartbeat thread, the admission gate, and the breaker
    bookkeeping even when nothing ever trips.  Gate: a hardened run of
    the stub grid within 5 % of the plain supervised run (plus an
    absolute slack so fork jitter on a sub-second grid cannot flake the
    ratio).  Interleaved min-of-N shares machine noise between the two
    configurations.
    """
    repeats = 3

    def plain_run(tag):
        return run_supervised(
            _stub_grid(),
            jobs=2,
            backoff=FAST_BACKOFF,
            journal_path=str(tmp_path / f"plain-{tag}.jsonl"),
        )

    def hardened_run(tag):
        return Supervisor(
            _stub_grid(),
            jobs=2,
            backoff=FAST_BACKOFF,
            journal_path=str(tmp_path / f"hard-{tag}.jsonl"),
            heartbeat_s=0.05,  # 10x the default rate: worst case
            deadline_s=3600.0,
            breaker=BreakerPolicy(threshold=1000),
            admission=AdmissionPolicy(max_pending=N_CELLS * 2),
        ).run()

    plain_s, hardened_s = [], []
    for tag in range(repeats):
        start = time.perf_counter()
        assert plain_run(tag).ok
        plain_s.append(time.perf_counter() - start)

        start = time.perf_counter()
        result = hardened_run(tag)
        hardened_s.append(time.perf_counter() - start)
        assert result.ok
        assert not any(  # armed, never tripped
            s["opened"] for s in result.breaker_summary.values()
        )
        assert result.admission_stats["admitted"] == N_CELLS

    plain, hardened = min(plain_s), min(hardened_s)
    budget = plain * HARDENED_RELATIVE_BUDGET + HARDENED_ABSOLUTE_SLACK_S
    report.section("hardened path: heartbeats + admission + disarmed breaker")
    report(f"cells: {N_CELLS}, jobs: 2, heartbeat: 50 ms, min of {repeats}")
    report(f"plain supervised:    {plain * 1e3:8.1f} ms")
    report(f"hardened supervised: {hardened * 1e3:8.1f} ms")
    report(
        f"budget (5 % + {HARDENED_ABSOLUTE_SLACK_S * 1e3:.0f} ms slack): "
        f"{budget * 1e3:8.1f} ms"
    )
    assert hardened <= budget, (
        f"hardened path {hardened * 1e3:.1f} ms exceeds "
        f"{budget * 1e3:.1f} ms budget"
    )


def test_supervised_campaign_overhead(report, tmp_path):
    kwargs = dict(apps=("fib",), modes=("drop_events", "task_exception"),
                  seeds=(0, 1))

    start = time.perf_counter()
    sequential = run_campaign(**kwargs)
    sequential_s = time.perf_counter() - start

    start = time.perf_counter()
    supervised = run_campaign(
        **kwargs,
        supervised=True,
        jobs=2,
        journal_path=str(tmp_path / "journal.jsonl"),
    )
    supervised_s = time.perf_counter() - start

    assert len(supervised) == len(sequential)
    assert all(r.ok for r in supervised)
    ratio = supervised_s / sequential_s if sequential_s else float("inf")
    report.section("fault campaign: supervised vs in-process")
    report(f"cells: {len(sequential)} (fib x 2 modes x 2 seeds)")
    report(f"sequential in-process: {sequential_s * 1e3:8.1f} ms")
    report(f"supervised (jobs=2):   {supervised_s * 1e3:8.1f} ms")
    report(f"ratio: {ratio:.2f}x (isolation + journal vs parallelism)")
