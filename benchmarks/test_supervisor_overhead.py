"""Supervisor overhead: process isolation must stay cheap per cell.

The supervisor exists so the big sweeps (Figs. 13-15, the fault
campaign) can run unattended; that is only viable if forking a worker,
shipping the spec over a pipe, fsync-journaling two records, and
reaping the process costs a small fraction of a real cell.  This
benchmark measures the fixed per-cell cost on trivial stub cells (worst
case: zero useful work) and on real fault-campaign cells.
"""

from __future__ import annotations

import time

from repro.faults.campaign import run_campaign
from repro.supervisor import FAST_BACKOFF, call_cell, run_supervised
from repro.supervisor.worker import execute_spec

N_CELLS = 12


def _stub_grid():
    return [
        call_cell(
            "repro.supervisor.stubs:ok_cell", {"value": i}, cell_id=f"cell-{i}"
        )
        for i in range(N_CELLS)
    ]


def test_supervisor_per_cell_overhead(report, tmp_path):
    specs = _stub_grid()

    start = time.perf_counter()
    for spec in specs:
        assert execute_spec(spec)["ok"]
    direct_s = time.perf_counter() - start

    start = time.perf_counter()
    result = run_supervised(
        specs,
        jobs=2,
        backoff=FAST_BACKOFF,
        journal_path=str(tmp_path / "journal.jsonl"),
    )
    supervised_s = time.perf_counter() - start
    assert result.ok

    per_cell_ms = (supervised_s - direct_s) / N_CELLS * 1e3
    report.section("supervisor fixed overhead (trivial cells)")
    report(f"cells: {N_CELLS}, jobs: 2, journal: fsync'd JSONL")
    report(f"direct execution:     {direct_s * 1e3:8.1f} ms total")
    report(f"supervised execution: {supervised_s * 1e3:8.1f} ms total")
    report(f"isolation overhead:   {per_cell_ms:8.1f} ms/cell")
    # Fork + pipe + 2 fsync'd journal records + reap must stay well under
    # the cost of any real campaign cell.
    assert per_cell_ms < 500.0, f"supervisor overhead {per_cell_ms:.0f} ms/cell"


def test_supervised_campaign_overhead(report, tmp_path):
    kwargs = dict(apps=("fib",), modes=("drop_events", "task_exception"),
                  seeds=(0, 1))

    start = time.perf_counter()
    sequential = run_campaign(**kwargs)
    sequential_s = time.perf_counter() - start

    start = time.perf_counter()
    supervised = run_campaign(
        **kwargs,
        supervised=True,
        jobs=2,
        journal_path=str(tmp_path / "journal.jsonl"),
    )
    supervised_s = time.perf_counter() - start

    assert len(supervised) == len(sequential)
    assert all(r.ok for r in supervised)
    ratio = supervised_s / sequential_s if sequential_s else float("inf")
    report.section("fault campaign: supervised vs in-process")
    report(f"cells: {len(sequential)} (fib x 2 modes x 2 seeds)")
    report(f"sequential in-process: {sequential_s * 1e3:8.1f} ms")
    report(f"supervised (jobs=2):   {supervised_s * 1e3:8.1f} ms")
    report(f"ratio: {ratio:.2f}x (isolation + journal vs parallelism)")
