"""Table III: nqueens exclusive region times vs thread count (Section VI).

Paper values (nqueens without cut-off, seconds):

                1 thr    2 thr    4 thr    8 thr
    task        106.0    112.6    114.3    106.65
    taskwait      2.44     6.69    24.83    101.7
    create task  56.0     95.9    323.8    1102.3
    barrier       0       40.1    183.0     947.7

Reproduced shape: the task region's exclusive time is *flat* in thread
count (same total work), while taskwait, task creation, and the barrier
grow steeply and superlinearly -- the runtime system's management
becoming the bottleneck.
"""

from repro.analysis.nqueens_study import nqueens_region_times
from repro.analysis.tables import format_table

THREADS = (1, 2, 4, 8)
SIZE = "small"

PAPER = {
    "task": [106.0, 112.6, 114.3, 106.65],
    "taskwait": [2.44, 6.69, 24.83, 101.7],
    "create task": [56.0, 95.9, 323.8, 1102.3],
    "barrier": [0.0, 40.1, 183.0, 947.7],
}


def test_table3_nqueens_regions(benchmark, report):
    rows = benchmark.pedantic(
        lambda: nqueens_region_times(size=SIZE, threads=THREADS),
        rounds=1,
        iterations=1,
    )

    report.section("Table III: nqueens exclusive region times [virtual us]")
    measured = {
        "task": [r.task for r in rows],
        "taskwait": [r.taskwait for r in rows],
        "create task": [r.create_task for r in rows],
        "barrier": [r.barrier for r in rows],
    }
    table_rows = []
    for region, values in measured.items():
        table_rows.append([region] + [f"{v:.0f}" for v in values])
        table_rows.append([f"  (paper [s])"] + [f"{v}" for v in PAPER[region]])
    report(format_table(["region"] + [f"{t} thr" for t in THREADS], table_rows))

    task = measured["task"]
    # Task region flat in thread count (+-10 %): same total work.
    assert max(task) / min(task) < 1.10, task

    for region in ("taskwait", "create task", "barrier"):
        values = measured[region]
        # monotone growth from 1 to 8 threads...
        assert values[-1] > values[0], (region, values)
        # ...by a large factor (paper: 20x-400x)
        base = values[0] if values[0] > 0 else values[1]
        assert values[-1] > 5 * base, (region, values)

    # Management eventually dwarfs the useful task time (the paper's
    # 8-thread column: create+barrier >> task).
    assert measured["create task"][-1] + measured["barrier"][-1] > measured["task"][-1]
