"""Table IV: nqueens per-recursion-depth task statistics (Section VI).

Parameter instrumentation splits the nqueens task construct into one
profile sub-tree per recursion depth.  Paper shape (depths 0-13 at
n=14): mean task time decreases monotonically with depth; the time sum
is dominated by the deep levels; task counts peak just above the deepest
level; the shallow levels (0-3) contribute a tiny fraction of total time
while still providing thousands of reasonably-sized tasks -- the
justification for cutting off at level 3.
"""

from repro.analysis.nqueens_study import nqueens_depth_table
from repro.analysis.tables import format_table

SIZE = "medium"  # n=10: depths 0..10, closest scaled analogue of n=14


def test_table4_depth_stats(benchmark, report):
    rows = benchmark.pedantic(
        lambda: nqueens_depth_table(size=SIZE, n_threads=4),
        rounds=1,
        iterations=1,
    )

    report.section("Table IV: nqueens task statistics per recursion depth")
    report(
        format_table(
            ["depth", "mean [us]", "sum [us]", "tasks"],
            [
                [r.depth, f"{r.mean_time_us:.2f}", f"{r.total_time_us:.0f}", r.task_count]
                for r in rows
            ],
        )
    )

    depths = [r.depth for r in rows]
    means = [r.mean_time_us for r in rows]
    sums = [r.total_time_us for r in rows]
    counts = [r.task_count for r in rows]
    total_time = sum(sums)
    total_tasks = sum(counts)

    report()
    shallow_fraction = sum(sums[:4]) / total_time
    report(f"levels 0-3: {100 * shallow_fraction:.1f}% of task time, "
           f"{sum(counts[:4])} tasks of {total_tasks}")

    # Depths contiguous from the root.
    assert depths == list(range(depths[0], depths[0] + len(depths)))

    # Mean task time decreases with depth (monotone, as in the paper).
    assert all(a >= b for a, b in zip(means, means[1:])), means
    assert means[0] > 4 * means[-1]

    # The time sum is dominated by the deeper half of the levels.
    half = len(rows) // 2
    assert sum(sums[half:]) > sum(sums[:half])

    # Task counts peak near (but not at) the deepest level.
    peak_index = counts.index(max(counts))
    assert peak_index >= len(rows) - 4

    # Shallow levels: insignificant time, but a usable number of tasks
    # (the paper: "2000 tasks should be enough to fill and balance up to
    # 8 threads", scaled here).
    assert shallow_fraction < 0.25
    assert sum(counts[:4]) > 50
