"""Wall-clock overhead of durable event recording.

The recorder substrate spills every measurement event to sealed
CRC32-checksummed chunks and periodically checkpoints the live
profiler.  The hot path is a ``list.append`` per event -- encoding,
CRC, and I/O happen only at chunk-seal boundaries -- so the CI gate:
a recording-enabled run must stay within 5 % of plain profiling on the
fib kernel (plus a small absolute slack so sub-100 ms runs do not
flake on scheduler jitter).  A checkpoint-heavy configuration (every
256 events, forcing many seal+fsync+checkpoint cycles) is timed and
reported but not gated -- its durability work is the point, not
overhead.

Interleaved min-of-N timing: alternating baseline/recorded repeats
shares any machine-wide noise between the configurations.
"""

from __future__ import annotations

import gc
import time

from repro.runtime import RuntimeConfig
from repro.runtime.runtime import run_parallel
from repro.substrates.recorder import RecorderSubstrate

REPEATS = 5
RELATIVE_BUDGET = 1.05
ABSOLUTE_SLACK_S = 0.02


def fib(ctx, n):
    if n < 2:
        yield ctx.compute(1.0)
        return n
    a = yield ctx.spawn(fib, n - 1)
    b = yield ctx.spawn(fib, n - 2)
    yield ctx.taskwait()
    yield ctx.compute(0.5)
    return a.result + b.result


def fib_region(ctx, n=13):
    if (yield ctx.single()):
        root = yield ctx.spawn(fib, n)
        yield ctx.taskwait()
        return root.result
    return None


def _timed_run(extra_substrate=None):
    substrates = ("profiling",)
    if extra_substrate is not None:
        substrates = substrates + (extra_substrate,)
    config = RuntimeConfig(
        n_threads=2, instrument=True, seed=0, substrates=substrates
    )
    # Checkpoint snapshots collect eagerly mid-run; start every timed
    # run from the same collector state so no config inherits (or
    # prepays) another's garbage.
    gc.collect()
    start = time.perf_counter()
    result = run_parallel(fib_region, config=config, name="fib-bench")
    elapsed = time.perf_counter() - start
    return elapsed, result


def test_recording_overhead_gate(report, tmp_path):
    times = {"baseline": [], "recorded": [], "checkpoint-heavy": []}
    events = {}
    run_index = 0
    # Interleave repeats so machine-wide drift hits every config equally;
    # every recorded run gets a fresh directory so generation rotation
    # never bills warm-start I/O to the hot path.
    for _ in range(REPEATS):
        for key in times:
            if key == "baseline":
                recorder = None
            elif key == "recorded":
                recorder = RecorderSubstrate(str(tmp_path / f"r{run_index}"))
            else:
                recorder = RecorderSubstrate(
                    str(tmp_path / f"r{run_index}"), checkpoint_every=256
                )
            run_index += 1
            elapsed, result = _timed_run(recorder)
            times[key].append(elapsed)
            events[key] = result.events_dispatched
    # Same simulated run regardless of who listens.
    assert events["recorded"] == events["baseline"]
    assert events["checkpoint-heavy"] == events["baseline"]

    base = min(times["baseline"])
    recorded = min(times["recorded"])
    heavy = min(times["checkpoint-heavy"])
    budget = base * RELATIVE_BUDGET + ABSOLUTE_SLACK_S

    report.section("Durable recording overhead (fib, 2 threads)")
    report(f"events per run                 : {events['baseline']}")
    report(f"plain profiling  (min of {REPEATS})   : {base * 1e3:8.2f} ms")
    report(f"+recorder (gated)              : {recorded * 1e3:8.2f} ms  "
           f"({(recorded / base - 1.0) * 100.0:+.1f} %)")
    report(f"+checkpoint-every-256 (info)   : {heavy * 1e3:8.2f} ms  "
           f"({(heavy / base - 1.0) * 100.0:+.1f} %)")
    report(f"budget (5 % + {ABSOLUTE_SLACK_S * 1e3:.0f} ms slack)     : {budget * 1e3:8.2f} ms")

    assert recorded <= budget, (
        f"recording-enabled run {recorded * 1e3:.2f} ms exceeds budget "
        f"{budget * 1e3:.2f} ms ({(recorded / base - 1.0) * 100.0:+.1f} % over a "
        f"{base * 1e3:.2f} ms baseline)"
    )
