"""Figure 3: creation-node vs execution-node task attribution.

The paper's didactic example, run quantitatively through both profiler
designs on a real simulated execution (not just the hand-drawn numbers):
a single-producer region whose tasks execute inside the implicit
barrier.

Reproduced claims:

* creation-node attribution produces a *negative* exclusive time on the
  creating region and attributes the tasks' useful work to the barrier;
* execution-node attribution (the shipped design) keeps every exclusive
  time non-negative and splits barrier time into task execution (stub
  nodes) vs. true idle/management time.
"""

from repro.analysis.experiment import run_app
from repro.analysis.tables import format_table
from repro.events.regions import RegionType
from repro.profiling import CreationNodeProfiler
from repro.events import RegionRegistry


def paper_fig3_scenario():
    """The literal Fig. 3 numbers through the creation-node profiler."""
    reg = RegionRegistry()
    impl = reg.register("parallel", RegionType.IMPLICIT_TASK)
    create = reg.register("create_task", RegionType.TASK_CREATE)
    task = reg.register("task", RegionType.TASK)
    barrier = reg.register("barrier", RegionType.IMPLICIT_BARRIER)

    p = CreationNodeProfiler(impl)
    p.enter(create, 1.0)
    p.task_created(task, instance=1)
    p.exit(create, 3.0)
    p.enter(barrier, 3.0)
    p.task_begin(1, 4.0)
    p.task_end(1, 9.0)
    p.exit(barrier, 10.0)
    root = p.finish(10.0)
    return root


def test_fig03_node_assignment(benchmark, report):
    root = benchmark.pedantic(paper_fig3_scenario, rounds=1, iterations=1)

    create_node = root.find_one("create_task")
    barrier_node = root.find_one("barrier")

    report.section("Figure 3: task attribution to creating vs executing node")
    report(
        format_table(
            ["node", "creation-node excl [us]"],
            [
                ["create_task", f"{create_node.exclusive_time:+.1f}"],
                ["barrier", f"{barrier_node.exclusive_time:+.1f}"],
            ],
        )
    )
    # The paper's pathology: negative exclusive time at the creation site,
    # and the barrier swallowing the useful work.
    assert create_node.exclusive_time < 0
    assert barrier_node.exclusive_time == 7.0

    # Now the real design, on a full simulated run: nothing negative,
    # barrier time split into task execution (stubs) and idle.
    result = run_app("fib", size="test", variant="stress", n_threads=2, seed=0)
    profile = result.profile
    negative = [
        node.path_names()
        for tree in profile.main_trees
        for node in tree.walk()
        if node.exclusive_time < -1e-9
    ]
    report()
    report("execution-node attribution on a live fib run:")
    report(f"  nodes with negative exclusive time: {len(negative)}")
    assert negative == []

    for thread_id in range(profile.n_threads):
        barrier_nodes = [
            n
            for n in profile.main_trees[thread_id].walk()
            if n.region.region_type is RegionType.IMPLICIT_BARRIER
        ]
        for node in barrier_nodes:
            stub_time = sum(
                c.metrics.inclusive_time for c in node.children.values() if c.is_stub
            )
            report(
                f"  t{thread_id} barrier: total={node.metrics.inclusive_time:.1f} us, "
                f"task execution={stub_time:.1f} us, "
                f"idle/mgmt={node.exclusive_time:.1f} us"
            )
            assert stub_time <= node.metrics.inclusive_time + 1e-9
