"""Wall-clock overhead of multi-substrate dispatch.

The substrate refactor replaced the single hard-wired profiler listener
with a :class:`~repro.substrates.manager.SubstrateManager` fan-out.  The
CI smoke gate: *dispatching* to several substrates must stay within 5 %
of the single-listener baseline on the fib kernel (plus a small absolute
slack so sub-100 ms runs do not flake on scheduler jitter).  The gated
configuration uses no-op consumers so the measurement isolates fan-out
cost; a configuration with a real extra consumer (``stats``) is timed
and reported but not gated -- its counting work is genuine consumer
cost, not dispatch overhead.

Interleaved min-of-N timing: alternating baseline/multi repeats shares
any machine-wide noise between the configurations.
"""

from __future__ import annotations

import time

from repro.runtime import RuntimeConfig
from repro.runtime.runtime import run_parallel
from repro.substrates import Substrate

REPEATS = 5
RELATIVE_BUDGET = 1.05
ABSOLUTE_SLACK_S = 0.02


def fib(ctx, n):
    if n < 2:
        yield ctx.compute(1.0)
        return n
    a = yield ctx.spawn(fib, n - 1)
    b = yield ctx.spawn(fib, n - 2)
    yield ctx.taskwait()
    yield ctx.compute(0.5)
    return a.result + b.result


def fib_region(ctx, n=13):
    if (yield ctx.single()):
        root = yield ctx.spawn(fib, n)
        yield ctx.taskwait()
        return root.result
    return None


class NoOpSubstrate(Substrate):
    """A consumer that declares no callbacks: measures pure fan-out cost
    (the manager's dispatch tables should make it nearly free)."""

    essential = False

    def __init__(self, name):
        self.name = name


def _timed_run(substrates):
    config = RuntimeConfig(
        n_threads=2, instrument=True, seed=0, substrates=substrates
    )
    start = time.perf_counter()
    result = run_parallel(fib_region, config=config, name="fib-bench")
    elapsed = time.perf_counter() - start
    return elapsed, result


def test_multi_substrate_dispatch_overhead(report):
    configs = {
        "baseline": ("profiling",),
        "fanout": (
            "profiling",
            NoOpSubstrate("noop-a"),
            NoOpSubstrate("noop-b"),
            NoOpSubstrate("noop-c"),
        ),
        "stats": ("profiling", "stats"),
    }
    times = {key: [] for key in configs}
    events = {}
    # Interleave repeats so machine-wide drift hits every config equally.
    for _ in range(REPEATS):
        for key, substrates in configs.items():
            elapsed, result = _timed_run(substrates)
            times[key].append(elapsed)
            events[key] = result.events_dispatched
    # Same simulated run regardless of who listens.
    assert events["fanout"] == events["baseline"]
    assert events["stats"] == events["baseline"]

    base = min(times["baseline"])
    fanout = min(times["fanout"])
    stats = min(times["stats"])
    budget = base * RELATIVE_BUDGET + ABSOLUTE_SLACK_S

    report.section("Substrate dispatch overhead (fib, 2 threads)")
    report(f"events per run                : {events['baseline']}")
    report(f"single listener  (min of {REPEATS})  : {base * 1e3:8.2f} ms")
    report(f"4-substrate fan-out (gated)   : {fanout * 1e3:8.2f} ms  "
           f"({(fanout / base - 1.0) * 100.0:+.1f} %)")
    report(f"+stats consumer (informational): {stats * 1e3:8.2f} ms  "
           f"({(stats / base - 1.0) * 100.0:+.1f} %)")
    report(f"budget (5 % + {ABSOLUTE_SLACK_S * 1e3:.0f} ms slack)    : {budget * 1e3:8.2f} ms")

    assert fanout <= budget, (
        f"multi-substrate dispatch {fanout * 1e3:.2f} ms exceeds budget "
        f"{budget * 1e3:.2f} ms ({(fanout / base - 1.0) * 100.0:+.1f} % over a "
        f"{base * 1e3:.2f} ms baseline)"
    )
