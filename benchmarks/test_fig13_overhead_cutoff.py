"""Figure 13: task-profiling overhead, optimized (cut-off) BOTS versions.

Paper setup: all nine BOTS codes, OPARI2 task instrumentation only,
cut-off versions where provided (fib, floorplan, health, nqueens,
strassen), sparselu in the single-producer version; 1/2/4/8 threads;
overhead = instrumented/uninstrumented kernel time - 1.

Paper findings reproduced as assertions:

* alignment, sparselu and strassen: no measurable overhead (|ov| small),
* nqueens and sort: single-digit-to-moderate overhead,
* fib: pathological (tasks do one addition each) -- large overhead,
* fft and health: elevated at 1 thread, decreasing with thread count.

Additionally the floorplan seed ensemble reproduces the class-A/class-B
bimodality analysis of Section V-A.
"""

import pytest

from repro.analysis.charts import grouped_bar_chart
from repro.analysis.overhead import classify_bimodal, measure_overhead, overhead_sweep
from repro.analysis.tables import format_table

APPS = [
    "alignment",
    "fft",
    "fib",
    "floorplan",
    "health",
    "nqueens",
    "sort",
    "sparselu",
    "strassen",
]
THREADS = (1, 2, 4, 8)
SIZE = "small"


def test_fig13_overhead_cutoff(benchmark, report):
    # The benchmarked unit is the full figure regeneration: 9 codes x
    # 4 thread counts x {instrumented, uninstrumented}.
    sweep = benchmark.pedantic(
        lambda: overhead_sweep(APPS, size=SIZE, variant="optimized", threads=THREADS),
        rounds=1,
        iterations=1,
    )

    report.section("Figure 13: profiling overhead, optimized (cut-off) versions")
    rows = [
        [app] + [f"{p.overhead_pct:+.1f}%" for p in points]
        for app, points in sweep.items()
    ]
    report(format_table(["code"] + [f"{t} thr" for t in THREADS], rows))
    report()
    report(
        grouped_bar_chart(
            {
                app: {p.n_threads: p.overhead_pct for p in points}
                for app, points in sweep.items()
            },
            title="overhead [%] vs threads (cf. paper Fig. 13)",
        )
    )

    by_app = {app: {p.n_threads: p.overhead for p in pts} for app, pts in sweep.items()}

    # -- paper shape assertions -----------------------------------------
    # alignment / sparselu / strassen: no meaningful overhead.
    for quiet in ("alignment", "sparselu", "strassen"):
        for n_threads, overhead in by_app[quiet].items():
            assert abs(overhead) < 0.12, (quiet, n_threads, overhead)

    # sort stays moderate (paper: ~6 %).
    assert 0.0 < by_app["sort"][1] < 0.25

    # fib remains the pathological case: by far the largest 1-thread
    # overhead of the suite (paper: 310 %).
    fib_1 = by_app["fib"][1]
    assert fib_1 > 0.5
    assert fib_1 == max(by_app[app][1] for app in APPS)

    # fft and health: overhead decreases from 1 to 8 threads.
    for decreasing in ("fft", "health"):
        assert by_app[decreasing][1] > by_app[decreasing][8]


def test_fig13_floorplan_bimodality(benchmark, report):
    """Section V-A: instrumented floorplan runs split into two classes.

    The paper saw a fast class A (balanced schedules) and a slow class B
    (half the threads idle).  Schedule-dependent pruning makes floorplan
    time seed-dependent here as well; the ensemble machinery classifies
    the distribution.  (A clear two-class split is not guaranteed at this
    scale, so the assertion is on the machinery and the spread.)
    """
    points = benchmark.pedantic(
        lambda: measure_overhead(
            "floorplan",
            size=SIZE,
            variant="optimized",
            threads=(2, 4),
            seeds=tuple(range(8)),
        ),
        rounds=1,
        iterations=1,
    )
    report.section("Floorplan seed ensemble (Section V-A classes)")
    for point in points:
        samples = sorted(point.instrumented_samples)
        classes = classify_bimodal(samples)
        spread = samples[-1] / samples[0]
        report(
            f"{point.n_threads} threads: spread={spread:.2f}x "
            f"samples={[f'{s:.0f}' for s in samples]}"
        )
        if classes:
            class_a, class_b = classes
            report(
                f"  -> class A ({len(class_a)} runs, fast) vs "
                f"class B ({len(class_b)} runs, slow)"
            )
        assert len(samples) == 8
        assert spread >= 1.0
