"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while letting
genuine programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """Base class for errors raised by the discrete-event simulation kernel."""


class DeadlockError(SimulationError):
    """The event queue drained while processes were still waiting.

    The message lists the stuck processes and what each one was waiting on,
    which is usually enough to diagnose a missing signal or an unsatisfiable
    ``taskwait``.
    """


class ProcessError(SimulationError):
    """A simulated process raised an exception; the original is chained."""


class RuntimeModelError(ReproError):
    """Misuse of the simulated OpenMP runtime API.

    Examples: yielding a barrier from an explicit task, spawning a task
    outside a parallel region, or re-using a consumed task handle.
    """


class InstrumentationError(ReproError):
    """The instrumentation layer received an inconsistent event sequence."""


class ProfileError(ReproError):
    """The profiler detected a violation of its invariants.

    The classic (non task-aware) profiling algorithm raises this when an
    event stream breaks the enter/exit nesting condition -- exactly the
    failure mode the paper's Section IV-B1 describes for task programs.
    """


class EventOrderError(ProfileError):
    """Enter/exit events are not properly nested (Fig. 2 of the paper)."""


class ValidationError(ReproError):
    """An event stream failed structural validation."""
