"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while letting
genuine programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """Base class for errors raised by the discrete-event simulation kernel."""


class DeadlockError(SimulationError):
    """The event queue drained while processes were still waiting.

    The message lists the stuck processes and what each one was waiting on,
    which is usually enough to diagnose a missing signal or an unsatisfiable
    ``taskwait``.
    """


class ProcessError(SimulationError):
    """A simulated process raised an exception; the original is chained."""


class WatchdogTimeout(SimulationError):
    """A watchdog deadline elapsed with the simulation still busy.

    Raised by :meth:`~repro.runtime.runtime.OpenMPRuntime.parallel` when
    ``RuntimeConfig.watchdog_us`` is set and the parallel region has not
    drained its event queue by the deadline -- the simulated analogue of a
    measurement run killed by a batch-system time limit.  The message
    names the pending work so a stuck task is diagnosable.
    """


class WallClockTimeout(ReproError):
    """A wall-clock deadline elapsed while a run was still executing.

    The complement of :class:`WatchdogTimeout`: the virtual-time
    watchdog catches a *simulated* task that never finishes, but a
    kernel stuck in host Python without advancing virtual time (an
    accidental busy loop) never trips it.  Supervised execution
    (:mod:`repro.supervisor`) enforces ``RuntimeConfig.wall_timeout_s``
    in the worker process via ``SIGALRM`` -- and, as a backstop, kills
    the worker from the parent -- raising or reporting this error.
    """


class CampaignInterrupted(ReproError):
    """Ctrl-C arrived mid-campaign; the completed cells are preserved.

    Raised instead of letting a bare ``KeyboardInterrupt`` discard every
    finished cell: ``results`` holds the cells that completed before the
    interrupt, so callers (the CLI) can print the partial table and exit
    with status 130.
    """

    def __init__(self, message: str, results=()):
        super().__init__(message)
        self.results = list(results)


class MemoryPressureStop(ReproError):
    """The resource governor reached ladder level L4 (controlled stop).

    Raised from a task-creation scheduling point when measurement memory
    pressure exceeds the configured stop watermark (or the hard watermark
    with ``on_pressure="stop"``).  Unlike a real OOM kill the profile
    built so far is intact: the tolerant runner's salvage path catches
    this like any other :class:`ReproError` and flushes a partial profile
    whose :class:`~repro.profiling.salvage.SalvageReport` carries the
    :class:`~repro.governor.PressureIncident` history.
    """


class AdmissionRejected(ReproError):
    """The admission controller refused new work (``reject`` policy).

    Raised by :meth:`repro.fabric.AdmissionController.submit` when the
    pending queue is above its high watermark (or a per-tag quota is
    exhausted) and the policy says overload should fail fast at the
    submitter instead of growing the queue without bound.  ``tag`` names
    the quota that refused, when one did.
    """

    def __init__(self, message: str, tag=None):
        super().__init__(message)
        self.tag = tag


class JournalVersionError(ReproError):
    """A supervisor journal was written by an incompatible format.

    Raised by :func:`repro.supervisor.load_journal` when the journal's
    ``meta`` header declares a schema version newer than this build
    understands, so ``--resume`` fails with a clear message instead of a
    ``KeyError`` halfway through replaying records it cannot interpret.
    """

    def __init__(self, found, supported):
        self.found = found
        self.supported = supported
        super().__init__(
            f"journal schema version {found!r} is newer than this build "
            f"supports (<= {supported}); re-run with a matching version "
            f"or start a fresh journal"
        )


class FaultInjectionError(ReproError):
    """An injected fault fired (task-body exception from a FaultPlan).

    Deliberately raised by the fault-injection framework inside simulated
    task bodies; in strict mode it propagates like any application error,
    in lenient mode the salvage pipeline converts it into a partial
    profile plus a :class:`~repro.profiling.salvage.SalvageReport`.
    """


class StreamRepairError(ReproError):
    """repair_stream() received input it cannot even partially recover."""


class RuntimeModelError(ReproError):
    """Misuse of the simulated OpenMP runtime API.

    Examples: yielding a barrier from an explicit task, spawning a task
    outside a parallel region, or re-using a consumed task handle.
    """


class InstrumentationError(ReproError):
    """The instrumentation layer received an inconsistent event sequence."""


class SubstrateError(ReproError):
    """Misuse of the measurement-substrate machinery.

    Examples: requesting an unregistered substrate name, registering a
    duplicate name, or attaching two substrates with the same name to one
    :class:`~repro.substrates.manager.SubstrateManager`.  Failures *inside*
    a substrate's event callbacks are not wrapped in this -- the manager
    either propagates them (essential substrates) or quarantines the
    substrate and records the incident (graceful degradation).
    """


class ProfileFormatError(ReproError, ValueError):
    """An exported profile uses a format version this build cannot read.

    Raised by :func:`repro.cube.export.profile_from_dict` instead of a
    bare ``ValueError`` so the profile archive can surface stale entries
    cleanly.  ``found`` is the version in the data (possibly ``None``),
    ``supported`` the one this build writes and reads.  Derives from
    ``ValueError`` as well for backwards compatibility with callers that
    caught the old exception.
    """

    def __init__(self, found, supported):
        self.found = found
        self.supported = supported
        super().__init__(
            f"unsupported profile format {found!r} "
            f"(this build supports version {supported})"
        )


class ArchiveError(ReproError):
    """The profile archive is missing, inconsistent, or misused.

    Examples: dereferencing an unknown run id or content hash, a content
    object whose bytes no longer match their sha256 name, or asking for
    a baseline the index cannot satisfy.  Format-version mismatches when
    *loading* an archived profile raise :class:`ProfileFormatError`
    instead, so callers can distinguish "corrupt archive" from "old but
    intact archive".
    """


class ArchiveWarning(UserWarning):
    """The archive answered, but something about the query was fishy.

    Emitted (via :mod:`warnings`) rather than raised: e.g. a baseline
    group whose archived runs mix configuration fingerprints, where the
    query layer silently aggregating them would blend incomparable
    measurements into one baseline.
    """


class RecordingError(ReproError):
    """A recorded event stream is structurally invalid.

    Raised by the :mod:`repro.recorder` codec when record payloads are
    malformed (truncated varints, unknown record kinds, references to
    undefined region ids) and by the replay engine when a stream lacks
    the ``init`` record replay needs.  Torn *tails* are not errors --
    chunk recovery truncates those silently -- so this surfacing means
    corruption inside a CRC-valid chunk or misuse of the codec.
    """


class ReplayDivergence(ReproError):
    """Replaying a recorded stream did not reproduce the live profile.

    Carries the structured :class:`~repro.recorder.replay.DivergenceReport`
    as ``report``: expected/actual content hashes plus a bounded diff of
    the canonical profile dictionaries.  A divergence on a complete
    stream means silent corruption or nondeterminism somewhere between
    the event stream and the cube -- exactly the class of bug that
    otherwise ships wrong numbers without a sound.
    """

    def __init__(self, message, report=None):
        super().__init__(message)
        self.report = report


class ProfileError(ReproError):
    """The profiler detected a violation of its invariants.

    The classic (non task-aware) profiling algorithm raises this when an
    event stream breaks the enter/exit nesting condition -- exactly the
    failure mode the paper's Section IV-B1 describes for task programs.
    """


class EventOrderError(ProfileError):
    """Enter/exit events are not properly nested (Fig. 2 of the paper)."""


class ValidationError(ReproError):
    """An event stream failed structural validation."""
