"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while letting
genuine programming errors (``TypeError`` etc.) propagate.

Every subclass carries a **stable string code** (``code``, ``E_*``):
machine-readable identity that survives message rewording, surfaced in
``--json`` outputs and in the campaign gateway's status records so
clients can switch on the *kind* of failure without parsing prose.
Codes are frozen once shipped -- renaming one is a breaking API change
-- and :func:`error_codes` enumerates them so a test can pin the full
taxonomy.
"""

from __future__ import annotations

from typing import Dict, Type


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""

    #: Stable machine-readable identity; every subclass overrides this.
    code = "E_REPRO"


class SimulationError(ReproError):
    """Base class for errors raised by the discrete-event simulation kernel."""

    code = "E_SIMULATION"


class DeadlockError(SimulationError):
    """The event queue drained while processes were still waiting.

    The message lists the stuck processes and what each one was waiting on,
    which is usually enough to diagnose a missing signal or an unsatisfiable
    ``taskwait``.
    """

    code = "E_DEADLOCK"


class ProcessError(SimulationError):
    """A simulated process raised an exception; the original is chained."""

    code = "E_PROCESS"


class WatchdogTimeout(SimulationError):
    """A watchdog deadline elapsed with the simulation still busy.

    Raised by :meth:`~repro.runtime.runtime.OpenMPRuntime.parallel` when
    ``RuntimeConfig.watchdog_us`` is set and the parallel region has not
    drained its event queue by the deadline -- the simulated analogue of a
    measurement run killed by a batch-system time limit.  The message
    names the pending work so a stuck task is diagnosable.
    """

    code = "E_WATCHDOG_TIMEOUT"


class WallClockTimeout(ReproError):
    """A wall-clock deadline elapsed while a run was still executing.

    The complement of :class:`WatchdogTimeout`: the virtual-time
    watchdog catches a *simulated* task that never finishes, but a
    kernel stuck in host Python without advancing virtual time (an
    accidental busy loop) never trips it.  Supervised execution
    (:mod:`repro.supervisor`) enforces ``RuntimeConfig.wall_timeout_s``
    in the worker process via ``SIGALRM`` -- and, as a backstop, kills
    the worker from the parent -- raising or reporting this error.
    """

    code = "E_WALL_CLOCK_TIMEOUT"


class CampaignInterrupted(ReproError):
    """Ctrl-C arrived mid-campaign; the completed cells are preserved.

    Raised instead of letting a bare ``KeyboardInterrupt`` discard every
    finished cell: ``results`` holds the cells that completed before the
    interrupt, so callers (the CLI) can print the partial table and exit
    with status 130.
    """

    code = "E_CAMPAIGN_INTERRUPTED"

    def __init__(self, message: str, results=()):
        super().__init__(message)
        self.results = list(results)


class MemoryPressureStop(ReproError):
    """The resource governor reached ladder level L4 (controlled stop).

    Raised from a task-creation scheduling point when measurement memory
    pressure exceeds the configured stop watermark (or the hard watermark
    with ``on_pressure="stop"``).  Unlike a real OOM kill the profile
    built so far is intact: the tolerant runner's salvage path catches
    this like any other :class:`ReproError` and flushes a partial profile
    whose :class:`~repro.profiling.salvage.SalvageReport` carries the
    :class:`~repro.governor.PressureIncident` history.
    """

    code = "E_MEMORY_PRESSURE_STOP"


class AdmissionRejected(ReproError):
    """The admission controller refused new work (``reject`` policy).

    Raised by :meth:`repro.fabric.AdmissionController.submit` when the
    pending queue is above its high watermark (or a per-tag quota is
    exhausted) and the policy says overload should fail fast at the
    submitter instead of growing the queue without bound.  ``tag`` names
    the quota that refused, when one did.
    """

    code = "E_ADMISSION_REJECTED"

    def __init__(self, message: str, tag=None):
        super().__init__(message)
        self.tag = tag


class JournalVersionError(ReproError):
    """A supervisor journal was written by an incompatible format.

    Raised by :func:`repro.supervisor.load_journal` when the journal's
    ``meta`` header declares a schema version newer than this build
    understands, so ``--resume`` fails with a clear message instead of a
    ``KeyError`` halfway through replaying records it cannot interpret.
    """

    code = "E_JOURNAL_VERSION"

    def __init__(self, found, supported):
        self.found = found
        self.supported = supported
        super().__init__(
            f"journal schema version {found!r} is newer than this build "
            f"supports (<= {supported}); re-run with a matching version "
            f"or start a fresh journal"
        )


class FaultInjectionError(ReproError):
    """An injected fault fired (task-body exception from a FaultPlan).

    Deliberately raised by the fault-injection framework inside simulated
    task bodies; in strict mode it propagates like any application error,
    in lenient mode the salvage pipeline converts it into a partial
    profile plus a :class:`~repro.profiling.salvage.SalvageReport`.
    """

    code = "E_FAULT_INJECTION"


class StreamRepairError(ReproError):
    """repair_stream() received input it cannot even partially recover."""

    code = "E_STREAM_REPAIR"


class RuntimeModelError(ReproError):
    """Misuse of the simulated OpenMP runtime API.

    Examples: yielding a barrier from an explicit task, spawning a task
    outside a parallel region, or re-using a consumed task handle.
    """

    code = "E_RUNTIME_MODEL"


class InstrumentationError(ReproError):
    """The instrumentation layer received an inconsistent event sequence."""

    code = "E_INSTRUMENTATION"


class SubstrateError(ReproError):
    """Misuse of the measurement-substrate machinery.

    Examples: requesting an unregistered substrate name, registering a
    duplicate name, or attaching two substrates with the same name to one
    :class:`~repro.substrates.manager.SubstrateManager`.  Failures *inside*
    a substrate's event callbacks are not wrapped in this -- the manager
    either propagates them (essential substrates) or quarantines the
    substrate and records the incident (graceful degradation).
    """

    code = "E_SUBSTRATE"


class ProfileFormatError(ReproError, ValueError):
    """An exported profile uses a format version this build cannot read.

    Raised by :func:`repro.cube.export.profile_from_dict` instead of a
    bare ``ValueError`` so the profile archive can surface stale entries
    cleanly.  ``found`` is the version in the data (possibly ``None``),
    ``supported`` the one this build writes and reads.  Derives from
    ``ValueError`` as well for backwards compatibility with callers that
    caught the old exception.
    """

    code = "E_PROFILE_FORMAT"

    def __init__(self, found, supported):
        self.found = found
        self.supported = supported
        super().__init__(
            f"unsupported profile format {found!r} "
            f"(this build supports version {supported})"
        )


class ArchiveError(ReproError):
    """The profile archive is missing, inconsistent, or misused.

    Examples: dereferencing an unknown run id or content hash, a content
    object whose bytes no longer match their sha256 name, or asking for
    a baseline the index cannot satisfy.  Format-version mismatches when
    *loading* an archived profile raise :class:`ProfileFormatError`
    instead, so callers can distinguish "corrupt archive" from "old but
    intact archive".
    """

    code = "E_ARCHIVE"


class ArchiveWarning(UserWarning):
    """The archive answered, but something about the query was fishy.

    Emitted (via :mod:`warnings`) rather than raised: e.g. a baseline
    group whose archived runs mix configuration fingerprints, where the
    query layer silently aggregating them would blend incomparable
    measurements into one baseline.
    """


class RecordingError(ReproError):
    """A recorded event stream is structurally invalid.

    Raised by the :mod:`repro.recorder` codec when record payloads are
    malformed (truncated varints, unknown record kinds, references to
    undefined region ids) and by the replay engine when a stream lacks
    the ``init`` record replay needs.  Torn *tails* are not errors --
    chunk recovery truncates those silently -- so this surfacing means
    corruption inside a CRC-valid chunk or misuse of the codec.
    """

    code = "E_RECORDING"


class ReplayDivergence(ReproError):
    """Replaying a recorded stream did not reproduce the live profile.

    Carries the structured :class:`~repro.recorder.replay.DivergenceReport`
    as ``report``: expected/actual content hashes plus a bounded diff of
    the canonical profile dictionaries.  A divergence on a complete
    stream means silent corruption or nondeterminism somewhere between
    the event stream and the cube -- exactly the class of bug that
    otherwise ships wrong numbers without a sound.
    """

    code = "E_REPLAY_DIVERGENCE"

    def __init__(self, message, report=None):
        super().__init__(message)
        self.report = report


class ProfileError(ReproError):
    """The profiler detected a violation of its invariants.

    The classic (non task-aware) profiling algorithm raises this when an
    event stream breaks the enter/exit nesting condition -- exactly the
    failure mode the paper's Section IV-B1 describes for task programs.
    """

    code = "E_PROFILE"


class EventOrderError(ProfileError):
    """Enter/exit events are not properly nested (Fig. 2 of the paper)."""

    code = "E_EVENT_ORDER"


class ValidationError(ReproError):
    """An event stream failed structural validation."""

    code = "E_VALIDATION"


class ArchiveLockTimeout(ArchiveError):
    """Acquiring the archive index lock exceeded its timeout.

    Raised by :meth:`repro.archive.ArchiveStore._locked` when the store
    was built with ``lock_timeout_s`` and the advisory flock stayed held
    past the deadline.  Without a timeout a wedged lock holder would
    block forever -- in lease-based execution that means a worker hangs
    past its lease expiry and a reclaiming peer re-runs the work it is
    still holding the lock for.  Failing loudly here keeps lock waits
    shorter than lease lifetimes.
    """

    code = "E_ARCHIVE_LOCK_TIMEOUT"


class LedgerVersionError(ReproError):
    """A gateway ledger was written by an incompatible (newer) format.

    The service-layer twin of :class:`JournalVersionError`: recovery
    against a ledger whose ``meta`` header declares a schema version
    newer than this build refuses up front instead of misreading
    transition records it predates.
    """

    code = "E_LEDGER_VERSION"

    def __init__(self, found, supported):
        self.found = found
        self.supported = supported
        super().__init__(
            f"ledger schema version {found!r} is newer than this build "
            f"supports (<= {supported}); upgrade, or point the gateway "
            f"at a fresh home directory"
        )


class CampaignStateError(ReproError):
    """An illegal campaign state-machine transition was requested.

    The gateway's lifecycle is a fixed graph (``submitted -> admitted ->
    leased -> running -> {archived, failed, cancelled, expired}`` plus
    the reclaim edges back to ``admitted``); any request that would step
    outside it -- cancelling an already-terminal campaign, executing one
    that was never leased -- raises this instead of corrupting the
    ledger with an unreplayable edge.
    """

    code = "E_CAMPAIGN_STATE"

    def __init__(self, message: str, campaign_id=None, from_state=None,
                 to_state=None):
        super().__init__(message)
        self.campaign_id = campaign_id
        self.from_state = from_state
        self.to_state = to_state


class LeaseExpired(ReproError):
    """A worker acted on a campaign whose lease it no longer holds.

    Leases are the mutual-exclusion primitive of the gateway: a worker
    that stalls past its lease expiry may find the campaign reclaimed
    and re-leased to a peer.  Acting anyway would double-run the work,
    so the stale holder gets this error instead.
    """

    code = "E_LEASE_EXPIRED"


class IdempotencyConflict(ReproError):
    """An idempotency key was reused with a *different* campaign spec.

    Resubmitting the same spec under the same key is the designed-for
    retry path (it returns the original campaign, never double-runs);
    the same key with different content is a client bug that silently
    dropping either spec would hide.
    """

    code = "E_IDEMPOTENCY_CONFLICT"

    def __init__(self, message: str, key=None, campaign_id=None):
        super().__init__(message)
        self.key = key
        self.campaign_id = campaign_id


class GatewayDraining(ReproError):
    """The gateway is shutting down and no longer admits new work.

    Raised by ``submit`` after a drain began (SIGTERM): leased work is
    being finished and everything else journaled resumable, so new
    submissions must go to another instance or wait for a restart.
    """

    code = "E_GATEWAY_DRAINING"


class UnknownCampaign(ReproError):
    """A campaign id (or idempotency key) the ledger has never seen."""

    code = "E_UNKNOWN_CAMPAIGN"


class CampaignExpired(ReproError):
    """A campaign's wall-clock deadline passed before it finished.

    Used as the structured ``error`` of the terminal ``expired`` state:
    whatever cells completed are archived, the rest were never started
    or were cancelled by the supervisor's deadline drain.
    """

    code = "E_CAMPAIGN_EXPIRED"


class CampaignFailed(ReproError):
    """A campaign ran to completion but some cells did not succeed.

    The gateway's terminal ``failed`` state for executed-but-unhealthy
    campaigns (as opposed to infrastructure refusals, which carry their
    own codes); the per-outcome cell counts ride alongside in the
    transition record.
    """

    code = "E_CAMPAIGN_FAILED"


# ----------------------------------------------------------------------
# Code registry
# ----------------------------------------------------------------------
def _error_classes() -> Dict[str, Type[ReproError]]:
    """Every :class:`ReproError` subclass currently defined, by name."""
    found: Dict[str, Type[ReproError]] = {"ReproError": ReproError}
    stack = [ReproError]
    while stack:
        for sub in stack.pop().__subclasses__():
            if sub.__name__ not in found:
                found[sub.__name__] = sub
                stack.append(sub)
    return found


def error_codes() -> Dict[str, str]:
    """Map of exception class name -> stable ``E_*`` code.

    The taxonomy test pins this mapping: new classes may be added, but
    an existing (name, code) pair never changes -- clients are allowed
    to switch on codes.
    """
    return {name: cls.code for name, cls in _error_classes().items()}


def error_payload(exc: BaseException) -> Dict[str, str]:
    """The JSON-able error record every ``--json`` surface emits.

    Non-:class:`ReproError` exceptions get the generic ``E_REPRO`` code
    (they are still reported, just without a finer classification).
    """
    code = getattr(exc, "code", None)
    if not isinstance(code, str) or not code.startswith("E_"):
        code = ReproError.code
    return {
        "code": code,
        "type": type(exc).__name__,
        "message": str(exc),
    }
