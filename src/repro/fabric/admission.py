"""Admission control: a bounded pending queue with overload policies.

The roadmap's service surface ("thousands of concurrent campaigns,
backpressure instead of failure") needs one primitive the supervisor
never had: a hard bound on how much *not-yet-running* work the fabric
will hold, and a declared answer for what happens to work beyond it.

:class:`AdmissionPolicy` is that declaration -- frozen configuration in
the style of the governor's :class:`~repro.governor.MemoryBudget`:

* ``max_pending`` caps the queue; the **high watermark** (a fraction of
  the cap) is where overload handling engages, the **low watermark** is
  where a saturated queue is considered drained again.  The hysteresis
  gap keeps the controller from flapping between "full" and "open"
  on every pop.
* ``policy`` picks the overload behavior: ``block`` parks the submitter
  until the queue drains below the low watermark (classic
  backpressure), ``reject`` raises
  :class:`~repro.errors.AdmissionRejected` at the submitter (fail fast),
  ``shed`` admits the new item but evicts the *oldest* pending work to
  make room (freshness wins under overload).
* ``tag_quotas`` bound pending work per tag (kernel name, tenant, ...)
  so one hot tag cannot starve the rest of the queue even while the
  global cap still has room.

:class:`AdmissionController` enforces the policy.  It is thread-safe:
the blocking ``submit`` path is what a service front-end calls from
request handlers, while the non-blocking ``offer``/``pop`` pair is what
the single-threaded supervisor loop uses to drain a batch backlog
through the same bound.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import AdmissionRejected

#: Overload policies: park the submitter, refuse the item, or evict the
#: oldest pending item to admit the new one.
ADMISSION_POLICIES = ("block", "reject", "shed")


@dataclass(frozen=True)
class AdmissionPolicy:
    """Frozen description of one queue's admission rules.

    Attributes
    ----------
    max_pending:
        Hard cap on queued (admitted but not yet started) items.
    high_fraction / low_fraction:
        Watermarks as fractions of ``max_pending``: reaching
        ``high_fraction`` saturates the queue (overload handling
        engages); a saturated queue stays saturated until it drains to
        ``low_fraction`` (hysteresis).
    policy:
        One of :data:`ADMISSION_POLICIES`.
    tag_quotas:
        Optional per-tag pending caps; a tag at quota triggers the same
        overload policy for that tag only.
    """

    max_pending: int = 256
    high_fraction: float = 1.0
    low_fraction: float = 0.5
    policy: str = "block"
    tag_quotas: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {self.max_pending!r}")
        if not (0.0 < self.low_fraction <= self.high_fraction <= 1.0):
            raise ValueError(
                "need 0 < low_fraction <= high_fraction <= 1, got "
                f"low={self.low_fraction!r} high={self.high_fraction!r}"
            )
        if self.policy not in ADMISSION_POLICIES:
            raise ValueError(
                f"policy must be one of {ADMISSION_POLICIES}, got {self.policy!r}"
            )
        for tag, quota in dict(self.tag_quotas).items():
            if quota < 1:
                raise ValueError(
                    f"tag quota for {tag!r} must be >= 1, got {quota!r}"
                )

    @property
    def high_watermark(self) -> int:
        """Absolute queue depth at which overload handling engages."""
        return max(1, int(self.max_pending * self.high_fraction))

    @property
    def low_watermark(self) -> int:
        """Absolute depth a saturated queue must drain to before reopening."""
        return max(0, min(int(self.max_pending * self.low_fraction),
                          self.high_watermark - 1))

    def quota_for(self, tag: Optional[str]) -> Optional[int]:
        if tag is None:
            return None
        return dict(self.tag_quotas).get(tag)

    def describe(self) -> str:
        parts = [
            f"pending<={self.max_pending}",
            f"watermarks high={self.high_watermark} low={self.low_watermark}",
            f"policy={self.policy}",
        ]
        quotas = dict(self.tag_quotas)
        if quotas:
            parts.append(
                "quotas "
                + ",".join(f"{tag}<={cap}" for tag, cap in sorted(quotas.items()))
            )
        return "admission: " + ", ".join(parts)


@dataclass
class AdmissionStats:
    """Counters one controller accumulated over its lifetime."""

    admitted: int = 0
    rejected: int = 0
    shed: int = 0
    #: offers answered "deferred" (block policy, queue saturated)
    deferred: int = 0
    #: times a blocking submit actually had to wait
    blocked: int = 0
    peak_pending: int = 0

    def to_dict(self) -> dict:
        return {
            "admitted": self.admitted,
            "rejected": self.rejected,
            "shed": self.shed,
            "deferred": self.deferred,
            "blocked": self.blocked,
            "peak_pending": self.peak_pending,
        }


class AdmissionController:
    """Thread-safe bounded queue enforcing one :class:`AdmissionPolicy`."""

    def __init__(self, policy: Optional[AdmissionPolicy] = None):
        self.policy = policy if policy is not None else AdmissionPolicy()
        self.stats = AdmissionStats()
        self._cond = threading.Condition()
        self._queue: deque = deque()  # (item, tag)
        self._per_tag: Dict[str, int] = {}
        #: hysteresis latch: set at the high watermark, cleared at the low
        self._saturated = False
        self._saturated_tags: Dict[str, bool] = {}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._cond:
            return len(self._queue)

    def pending_for(self, tag: str) -> int:
        with self._cond:
            return self._per_tag.get(tag, 0)

    # ------------------------------------------------------------------
    def _tag_saturated(self, tag: Optional[str]) -> bool:
        """Per-tag quota check with the same hysteresis as the queue."""
        quota = self.policy.quota_for(tag)
        if quota is None:
            return False
        count = self._per_tag.get(tag, 0)
        if count >= quota:
            self._saturated_tags[tag] = True
        elif count <= max(0, int(quota * self.policy.low_fraction)):
            self._saturated_tags[tag] = False
        return self._saturated_tags.get(tag, False)

    def _queue_saturated(self) -> bool:
        depth = len(self._queue)
        if depth >= self.policy.high_watermark:
            self._saturated = True
        elif depth <= self.policy.low_watermark:
            self._saturated = False
        return self._saturated

    def _admit(self, item: Any, tag: Optional[str]) -> None:
        self._queue.append((item, tag))
        if tag is not None:
            self._per_tag[tag] = self._per_tag.get(tag, 0) + 1
        self.stats.admitted += 1
        self.stats.peak_pending = max(self.stats.peak_pending, len(self._queue))

    def _shed_oldest(self, tag: Optional[str]) -> Optional[Tuple[Any, Any]]:
        """Evict the oldest pending item (preferring the offending tag)."""
        victim_index = None
        if tag is not None and self._per_tag.get(tag, 0) > 0 and self._tag_saturated(tag):
            for i, (_, item_tag) in enumerate(self._queue):
                if item_tag == tag:
                    victim_index = i
                    break
        if victim_index is None:
            victim_index = 0 if self._queue else None
        if victim_index is None:
            return None
        self._queue.rotate(-victim_index)
        victim = self._queue.popleft()
        self._queue.rotate(victim_index)
        if victim[1] is not None:
            self._per_tag[victim[1]] = max(0, self._per_tag.get(victim[1], 0) - 1)
        self.stats.shed += 1
        return victim

    # ------------------------------------------------------------------
    def offer(self, item: Any, *, tag: Optional[str] = None):
        """Non-blocking admission attempt.

        Returns ``(verdict, shed)`` where ``verdict`` is ``"admitted"``,
        ``"deferred"`` (block policy: saturated, try again after the
        queue drains) or ``"rejected"``, and ``shed`` is the list of
        evicted ``(item, tag)`` pairs (``shed`` policy only).
        """
        with self._cond:
            saturated = self._queue_saturated() or self._tag_saturated(tag)
            if not saturated:
                self._admit(item, tag)
                return "admitted", []
            if self.policy.policy == "block":
                self.stats.deferred += 1
                return "deferred", []
            if self.policy.policy == "reject":
                self.stats.rejected += 1
                return "rejected", []
            # shed: evict the oldest pending work to admit the new item.
            shed = []
            victim = self._shed_oldest(tag)
            if victim is not None:
                shed.append(victim)
            self._admit(item, tag)
            return "admitted", shed

    def submit(self, item: Any, *, tag: Optional[str] = None,
               timeout: Optional[float] = None) -> List[Tuple[Any, Any]]:
        """Blocking admission for streaming submitters.

        ``block`` policy waits (up to ``timeout`` seconds) for the queue
        to drain below the low watermark; ``reject`` raises
        :class:`~repro.errors.AdmissionRejected`; ``shed`` returns the
        evicted items so the caller can account for them.
        """
        deadline = time.monotonic() + timeout if timeout is not None else None
        waited = False
        with self._cond:
            while True:
                saturated = self._queue_saturated() or self._tag_saturated(tag)
                if not saturated:
                    self._admit(item, tag)
                    return []
                if self.policy.policy == "reject":
                    self.stats.rejected += 1
                    raise AdmissionRejected(
                        f"admission queue refused new work "
                        f"({len(self._queue)} pending, {self.policy.describe()})",
                        tag=tag if self._tag_saturated(tag) else None,
                    )
                if self.policy.policy == "shed":
                    shed = []
                    victim = self._shed_oldest(tag)
                    if victim is not None:
                        shed.append(victim)
                    self._admit(item, tag)
                    return shed
                # block: park until a pop drains the hysteresis gap open.
                if not waited:
                    self.stats.blocked += 1
                    waited = True
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._cond.wait(remaining):
                        raise AdmissionRejected(
                            f"admission wait timed out after {timeout:g} s "
                            f"({len(self._queue)} pending)"
                        )
                else:
                    self._cond.wait()

    def reset(self, items) -> None:
        """Replace the pending queue from an external source of truth.

        Recovery paths that persist admission durably elsewhere (the
        campaign gateway's ledger) rebuild the in-memory queue from it
        wholesale: ``items`` is an iterable of ``(item, tag)`` pairs in
        queue order.  Lifetime counters are untouched -- a rebuild is
        not an admission -- but watermark/hysteresis state is refreshed
        against the new depth.
        """
        with self._cond:
            self._queue.clear()
            self._per_tag.clear()
            for item, tag in items:
                self._queue.append((item, tag))
                if tag is not None:
                    self._per_tag[tag] = self._per_tag.get(tag, 0) + 1
            self.stats.peak_pending = max(
                self.stats.peak_pending, len(self._queue)
            )
            if not self._queue_saturated():
                self._cond.notify_all()

    def pop(self) -> Optional[Tuple[Any, Any]]:
        """Take the oldest admitted item, or None when the queue is empty."""
        with self._cond:
            if not self._queue:
                return None
            item, tag = self._queue.popleft()
            if tag is not None:
                self._per_tag[tag] = max(0, self._per_tag.get(tag, 0) - 1)
            # Wake blocked submitters only once the hysteresis gap opens.
            if not self._queue_saturated():
                self._cond.notify_all()
            return item, tag
