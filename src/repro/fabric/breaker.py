"""Per-class circuit breakers: stop paying for a known-bad configuration.

A large campaign grid multiplies every pathological configuration --
Tuft et al. catalogue task-runtime setups that reliably hang, thrash,
or serialize, and a grid crossing kernels x configs x seeds runs each
of them many times.  Retry-with-backoff, the supervisor's per-cell
answer, is exactly wrong for that shape of failure: every seed of a
bad (kernel, configuration) class burns its full launch + retry budget
rediscovering the same defect.

The breaker tracks outcomes per **class** -- cells sharing a
:meth:`~repro.supervisor.spec.RunSpec.class_key`, i.e. the same kernel
and the same seed-excluded parameter fingerprint (the archive's
:func:`~repro.archive.meta.config_fingerprint` convention).  After
``threshold`` *consecutive* infrastructure failures (crash / timeout /
oom / stuck -- a deterministic ``error`` means the worker ran fine and
does not count), the class **opens**: subsequent cells are refused
without launching a worker and journaled with the terminal
``short_circuited`` outcome.  An open breaker re-closes through
**half-open probes**: after a seeded number of short-circuits, one cell
is let through as a probe; if it succeeds the class closes and runs
normally again, if it fails the breaker re-opens.  ``max_probes``
bounds the total probes, so a permanently-bad class costs at most
``threshold + max_probes`` worker launches no matter how many cells
the grid contains.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Optional

#: Outcomes that count as infrastructure failures for the breaker.
#: ``error`` is absent deliberately: a deterministic exception proves the
#: worker launched, ran, and reported -- the runtime is healthy even if
#: the cell is not.
BREAKER_FAILURE_OUTCOMES = frozenset({"crash", "timeout", "oom", "stuck"})


@dataclass(frozen=True)
class BreakerPolicy:
    """Frozen breaker configuration (inert until attached).

    Attributes
    ----------
    threshold:
        Consecutive failures that open a class.
    max_probes:
        Total half-open probe cells an open class may spend trying to
        re-close; with the opening launches this bounds the class's
        worker launches at ``threshold + max_probes``.
    probe_after:
        Short-circuited cells between probes (the cool-down, measured in
        refused cells rather than wall time so a paused campaign does
        not silently re-arm).
    probe_jitter:
        Extra, per-class deterministic spacing in ``[0, probe_jitter]``
        derived from ``seed`` and the class key, so grids sweeping many
        bad classes do not probe in lockstep.
    seed:
        Seed for the per-class jitter.
    """

    threshold: int = 3
    max_probes: int = 2
    probe_after: int = 4
    probe_jitter: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {self.threshold!r}")
        if self.max_probes < 0:
            raise ValueError(f"max_probes must be >= 0, got {self.max_probes!r}")
        if self.probe_after < 0:
            raise ValueError(f"probe_after must be >= 0, got {self.probe_after!r}")
        if self.probe_jitter < 0:
            raise ValueError(
                f"probe_jitter must be >= 0, got {self.probe_jitter!r}"
            )

    def spacing_for(self, key: str) -> int:
        """Deterministic probe spacing for one class (seeded jitter)."""
        if self.probe_jitter == 0:
            return self.probe_after
        digest = hashlib.sha256(f"{self.seed}:{key}".encode("utf-8")).digest()
        return self.probe_after + digest[0] % (self.probe_jitter + 1)

    def describe(self) -> str:
        return (
            f"breaker: open after {self.threshold} consecutive failures, "
            f"{self.max_probes} probe(s) every {self.probe_after}+ refusals"
        )


@dataclass
class BreakerState:
    """Mutable per-class bookkeeping."""

    #: ``closed`` | ``open`` | ``half_open`` (a probe is in flight)
    state: str = "closed"
    consecutive_failures: int = 0
    probes_used: int = 0
    short_circuited: int = 0
    #: times this class has transitioned closed -> open
    opened: int = 0
    #: refusals since the class opened / since the last probe launched
    since_probe: int = 0
    last_failure: Optional[str] = None

    def to_dict(self) -> dict:
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "probes_used": self.probes_used,
            "short_circuited": self.short_circuited,
            "opened": self.opened,
            "last_failure": self.last_failure,
        }


class CircuitBreaker:
    """Track outcomes per class and gate launches accordingly.

    The supervisor asks :meth:`admit` before every worker launch and
    reports every settled attempt through :meth:`record`; everything
    else is internal state.  Single-threaded by design -- the supervisor
    loop is the only caller.
    """

    def __init__(self, policy: Optional[BreakerPolicy] = None):
        self.policy = policy if policy is not None else BreakerPolicy()
        self._classes: Dict[str, BreakerState] = {}

    def state_of(self, key: str) -> BreakerState:
        state = self._classes.get(key)
        if state is None:
            state = self._classes[key] = BreakerState()
        return state

    # ------------------------------------------------------------------
    def admit(self, key: str) -> str:
        """Gate one launch: ``run`` | ``probe`` | ``short_circuit``."""
        state = self.state_of(key)
        if state.state == "closed":
            return "run"
        if state.state == "half_open":
            # One probe at a time: everything else stays refused until
            # the in-flight probe settles.
            state.short_circuited += 1
            state.since_probe += 1
            return "short_circuit"
        # open
        if (
            state.probes_used < self.policy.max_probes
            and state.since_probe >= self.policy.spacing_for(key)
        ):
            state.state = "half_open"
            state.probes_used += 1
            state.since_probe = 0
            return "probe"
        state.short_circuited += 1
        state.since_probe += 1
        return "short_circuit"

    def record(self, key: str, outcome: str, *, probe: bool = False) -> None:
        """Fold one settled attempt's outcome into the class state."""
        state = self.state_of(key)
        if outcome in BREAKER_FAILURE_OUTCOMES:
            state.consecutive_failures += 1
            state.last_failure = outcome
            if probe or state.state == "half_open":
                # Failed probe: straight back to open, cool-down restarts.
                state.state = "open"
                state.since_probe = 0
            elif (
                state.state == "closed"
                and state.consecutive_failures >= self.policy.threshold
            ):
                state.state = "open"
                state.opened += 1
                state.since_probe = 0
        else:
            # Any completed run -- ok, partial, degraded, even a
            # deterministic error -- proves the class launches fine.
            state.state = "closed"
            state.consecutive_failures = 0
            state.probes_used = 0
            state.since_probe = 0

    # ------------------------------------------------------------------
    @property
    def open_classes(self) -> Dict[str, BreakerState]:
        return {
            key: state
            for key, state in self._classes.items()
            if state.state in ("open", "half_open")
        }

    def total_short_circuited(self) -> int:
        return sum(s.short_circuited for s in self._classes.values())

    def summary(self) -> Dict[str, dict]:
        """JSON-able per-class state (stable key order)."""
        return {
            key: self._classes[key].to_dict() for key in sorted(self._classes)
        }
