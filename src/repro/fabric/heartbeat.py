"""Worker liveness: heartbeats on the result pipe, stall detection.

The supervisor's two existing watchdogs both have a blind spot.  The
in-worker ``SIGALRM`` guard can be defeated by code that masks signals
or never returns to the interpreter (native extensions, a deadlocked
C library, a SIGSTOP'd process), and the parent-side wall-clock kill
cannot tell *wedged* from *slow* -- it fires at the deadline whether
the worker was one instruction from finishing or frozen since launch.

Heartbeats close the gap.  The worker emits a small ``heartbeat``
record over the same pipe its result travels on (no extra file
descriptors, ordering guaranteed); the parent's
:class:`LivenessTracker` timestamps arrivals and flags a worker whose
beats *stop* -- alive but silent -- as ``stuck``, long before the wall
deadline.  Stuck workers are escalated: SIGTERM first (a cooperative
chance to die cleanly), SIGKILL if that is ignored -- which it will be
by the very failure modes that motivate this (a stopped or wedged
process does not run signal handlers, but SIGKILL needs none).

The outcome taxonomy this feeds:

* ``timeout`` -- wall-clock limit reached, heartbeats were still
  flowing: the cell is slow, not dead.
* ``stuck`` -- heartbeats stopped while the process lived: the worker
  is wedged.  Retryable, like ``timeout``.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

#: Default interval between worker heartbeats (seconds).  Small enough
#: that stall detection reacts in single-digit seconds, large enough
#: that the pipe traffic is noise (a heartbeat is a ~40-byte pickle).
DEFAULT_HEARTBEAT_S = 0.5

#: A worker is declared stuck after this many missed intervals.  The
#: factor absorbs scheduler jitter and GIL contention in a busy worker;
#: a genuinely wedged process misses *every* interval, so the exact
#: value only tunes detection latency.
DEFAULT_STALL_FACTOR = 6.0


def heartbeat_message(seq: int) -> dict:
    """The record a worker sends every interval."""
    return {"type": "heartbeat", "seq": seq}


def is_heartbeat(message) -> bool:
    return isinstance(message, dict) and message.get("type") == "heartbeat"


class LivenessTracker:
    """Parent-side bookkeeping: who beat when, and who has gone silent.

    Pure bookkeeping over caller-supplied timestamps (``time.monotonic``
    by default), so stall classification is unit-testable without
    processes or sleeps.
    """

    def __init__(self, interval_s: float, stall_factor: float = DEFAULT_STALL_FACTOR):
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s!r}")
        if stall_factor < 2.0:
            raise ValueError(
                f"stall_factor must be >= 2 (one missed beat is jitter, "
                f"not a stall), got {stall_factor!r}"
            )
        self.interval_s = interval_s
        self.stall_after_s = interval_s * stall_factor
        self._last_beat: Dict[str, float] = {}
        self._beats: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def started(self, key: str, now: Optional[float] = None) -> None:
        """Launch counts as the first sign of life."""
        self._last_beat[key] = time.monotonic() if now is None else now
        self._beats[key] = 0

    def beat(self, key: str, now: Optional[float] = None) -> None:
        self._last_beat[key] = time.monotonic() if now is None else now
        self._beats[key] = self._beats.get(key, 0) + 1

    def beats(self, key: str) -> int:
        return self._beats.get(key, 0)

    def silent_for(self, key: str, now: Optional[float] = None) -> float:
        now = time.monotonic() if now is None else now
        last = self._last_beat.get(key)
        return 0.0 if last is None else max(0.0, now - last)

    def stalled(self, key: str, now: Optional[float] = None) -> bool:
        """True when the worker has been silent past the stall window."""
        return self.silent_for(key, now) > self.stall_after_s

    def forget(self, key: str) -> None:
        self._last_beat.pop(key, None)
        self._beats.pop(key, None)
