"""Campaign fabric: the robustness layer for unattended fleets of runs.

The supervisor (:mod:`repro.supervisor`) makes *one* grid crash-safe;
this subpackage adds the controls that make the supervisor + archive
pair safe to put a service on -- thousands of campaigns submitted by
callers who cannot be trusted to size their grids, containing cells
that Tuft et al. ("Detrimental task execution patterns in mainstream
OpenMP runtimes") show will inevitably hang, thrash, or serialize:

* :mod:`~repro.fabric.admission` -- :class:`AdmissionController`: a
  bounded pending queue with high/low watermarks, ``block``/``reject``/
  ``shed`` overload policies and per-tag quotas, so overload produces
  backpressure (or a fast, explicit refusal) instead of unbounded
  queues.
* :mod:`~repro.fabric.breaker` -- :class:`CircuitBreaker`: per-class
  failure tracking keyed by ``(kernel, config fingerprint)``; after a
  threshold of consecutive crash/timeout/oom/stuck outcomes the class
  is *opened* and its remaining cells fail fast as ``short_circuited``
  instead of burning worker launches and retry budget, re-closing via
  seeded half-open probe cells.
* :mod:`~repro.fabric.heartbeat` -- worker liveness: periodic
  heartbeats over the result pipe plus a parent-side
  :class:`LivenessTracker` that distinguishes ``stuck`` (alive but
  silent -- SIGALRM can be defeated by native or signal-masked code)
  from merely slow, so escalation (SIGTERM then SIGKILL) fires on
  evidence, not guesswork.

All policies are frozen dataclasses styled after the governor's
:class:`~repro.governor.MemoryBudget`: pure configuration, validated on
construction, inert until armed.
"""

from repro.fabric.admission import (
    ADMISSION_POLICIES,
    AdmissionController,
    AdmissionPolicy,
    AdmissionStats,
)
from repro.fabric.breaker import (
    BREAKER_FAILURE_OUTCOMES,
    BreakerPolicy,
    BreakerState,
    CircuitBreaker,
)
from repro.fabric.heartbeat import (
    DEFAULT_HEARTBEAT_S,
    DEFAULT_STALL_FACTOR,
    LivenessTracker,
    heartbeat_message,
    is_heartbeat,
)

__all__ = [
    "ADMISSION_POLICIES",
    "AdmissionController",
    "AdmissionPolicy",
    "AdmissionStats",
    "BREAKER_FAILURE_OUTCOMES",
    "BreakerPolicy",
    "BreakerState",
    "CircuitBreaker",
    "DEFAULT_HEARTBEAT_S",
    "DEFAULT_STALL_FACTOR",
    "LivenessTracker",
    "heartbeat_message",
    "is_heartbeat",
]
