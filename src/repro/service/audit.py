"""Gateway audit: prove the ledger invariant after arbitrary crashes.

The chaos harness (:mod:`repro.faults.service`) SIGKILLs a serving
gateway at every state transition, restarts it, lets it finish, and
then calls :func:`verify_gateway` to assert the contract the whole
subsystem exists for:

* **exactly one valid state** -- every campaign replays to a legal
  state through legal edges only (the ledger records violations during
  replay; any violation is an audit failure);
* **no lost work** -- with ``require_settled=True``, no campaign is
  stranded in a non-terminal state, and an ``archived`` campaign has a
  terminal, successful journal result for every cell of its spec;
* **no duplicated work** -- no cell has more than one terminal result
  in its campaign journal (a cell that *executed* twice would have
  journaled twice; resume replays, it does not re-append), and a fault
  campaign's archived runs collapse to at most one distinct profile
  sha per cell (content-addressed dedup is the designed backstop for a
  kill landing between "cell finished" and "result journaled").

Torn trailing lines (at most one per file per kill) are the expected
residue of SIGKILL-during-append and are tolerated, counted, and
reported -- they are exactly what write-ahead + fsync bounds the damage
to.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.service.ledger import LedgerState, load_ledger
from repro.service.model import TERMINAL_STATES
from repro.supervisor.journal import TERMINAL_OUTCOMES


@dataclass
class GatewayAudit:
    """Everything :func:`verify_gateway` found."""

    #: invariant violations; empty means the contract held
    problems: List[str] = field(default_factory=list)
    #: campaign -> state, for reporting
    states: Dict[str, str] = field(default_factory=dict)
    #: tolerated torn/corrupt lines (ledger + journals)
    torn_lines: int = 0
    campaigns: int = 0

    @property
    def ok(self) -> bool:
        return not self.problems

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "campaigns": self.campaigns,
            "states": dict(self.states),
            "torn_lines": self.torn_lines,
            "problems": list(self.problems),
        }


def _journal_terminal_counts(path: str) -> Tuple[Dict[str, int], int]:
    """Per-cell count of *terminal* result records, plus torn lines.

    Counts raw records (not the folded latest-wins view) because the
    no-duplication claim is about executions that happened, not about
    the final state.
    """
    counts: Dict[str, int] = {}
    torn = 0
    try:
        handle = open(path, encoding="utf-8")
    except FileNotFoundError:
        return counts, torn
    with handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                torn += 1
                continue
            if (
                entry.get("type") == "result"
                and entry.get("outcome") in TERMINAL_OUTCOMES
            ):
                cell = str(entry.get("cell"))
                counts[cell] = counts.get(cell, 0) + 1
    return counts, torn


def _audit_archive(
    audit: GatewayAudit, archive_dir: str, state: LedgerState
) -> None:
    """Per campaign + cell group, distinct archived shas must be <= 1."""
    if not os.path.isdir(archive_dir):
        return
    try:
        from repro.archive.store import ArchiveStore

        records = ArchiveStore(archive_dir).records()
    except Exception as exc:
        audit.problems.append(f"archive unreadable: {type(exc).__name__}: {exc}")
        return
    shas: Dict[Tuple[str, str, int, str], set] = {}
    for record in records:
        for tag in record.tags:
            if not tag.startswith("campaign:"):
                continue
            cid = tag.split(":", 1)[1]
            mode = next(
                (
                    t.split(":", 1)[1]
                    for t in record.tags
                    if t.startswith("mode:")
                ),
                "none",
            )
            group = (cid, record.meta.kernel, record.meta.seed, mode)
            shas.setdefault(group, set()).add(record.sha256)
    for (cid, kernel, seed, mode), hashes in sorted(shas.items()):
        if len(hashes) > 1:
            audit.problems.append(
                f"{cid}: cell ({kernel}, mode={mode}, seed={seed}) archived "
                f"{len(hashes)} distinct profiles -- duplicated execution "
                f"with divergent results"
            )


def verify_gateway(
    home: str, *, require_settled: bool = False
) -> GatewayAudit:
    """Audit one gateway home against the crash-safety contract."""
    audit = GatewayAudit()
    home = os.fspath(home)
    ledger_path = os.path.join(home, "ledger.jsonl")
    state = load_ledger(ledger_path)
    audit.torn_lines += state.skipped_lines
    audit.campaigns = len(state.campaigns)
    for violation in state.violations:
        audit.problems.append(f"ledger: {violation}")
    for cid, campaign in state.campaigns.items():
        audit.states[cid] = campaign.state
        if require_settled and campaign.state not in TERMINAL_STATES:
            audit.problems.append(
                f"{cid}: stranded in non-terminal state {campaign.state!r}"
            )
        journal_path = os.path.join(home, "journals", f"{cid}.jsonl")
        counts, torn = _journal_terminal_counts(journal_path)
        audit.torn_lines += torn
        for cell, count in sorted(counts.items()):
            if count > 1:
                audit.problems.append(
                    f"{cid}: cell {cell!r} has {count} terminal journal "
                    f"results -- work was duplicated"
                )
        if campaign.state == "archived":
            expected = {
                spec.cell_id
                for spec in campaign.spec.build_specs(cid, None)
            }
            missing = sorted(expected - set(counts))
            if missing:
                audit.problems.append(
                    f"{cid}: archived but {len(missing)} cell(s) have no "
                    f"terminal journal result: {', '.join(missing[:5])}"
                )
    _audit_archive(audit, os.path.join(home, "archive"), state)
    return audit


__all__ = ["GatewayAudit", "verify_gateway"]
