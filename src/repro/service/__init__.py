"""repro.service -- the crash-safe campaign gateway.

Layered front-end over the supervisor + fabric + archive stack:

* :mod:`repro.service.model` -- the domain: campaign states, the
  transition machine, specs, leases.
* :mod:`repro.service.ledger` -- the infrastructure: a flock-serialized,
  fsync'd write-ahead ledger with torn-line-tolerant replay.
* :mod:`repro.service.gateway` -- the application: submit / admit /
  claim / execute / recover / serve, with idempotency keys, lease-based
  mutual exclusion, end-to-end deadline propagation, and SIGTERM drain.
* :mod:`repro.service.api` -- the interface: validated dict requests
  and responses for the CLI (and any future remote surface).
* :mod:`repro.service.audit` -- the proof: verify a gateway home against
  the kill-anywhere contract (every campaign in exactly one valid
  state, no lost work, no duplicated work).
"""

from repro.service.audit import GatewayAudit, verify_gateway
from repro.service.api import GatewayAPI, parse_submit_request
from repro.service.gateway import (
    DEFAULT_LEASE_TTL_S,
    Gateway,
    RecoveryReport,
    ServeReport,
)
from repro.service.ledger import LEDGER_VERSION, Ledger, LedgerState, load_ledger
from repro.service.model import (
    CAMPAIGN_STATES,
    HAPPY_PATH_EDGES,
    RESUMABLE_STATES,
    TERMINAL_STATES,
    VALID_TRANSITIONS,
    Campaign,
    CampaignSpec,
    check_transition,
)

__all__ = [
    "CAMPAIGN_STATES",
    "DEFAULT_LEASE_TTL_S",
    "Campaign",
    "CampaignSpec",
    "Gateway",
    "GatewayAPI",
    "GatewayAudit",
    "HAPPY_PATH_EDGES",
    "LEDGER_VERSION",
    "Ledger",
    "LedgerState",
    "RESUMABLE_STATES",
    "RecoveryReport",
    "ServeReport",
    "TERMINAL_STATES",
    "VALID_TRANSITIONS",
    "check_transition",
    "load_ledger",
    "parse_submit_request",
    "verify_gateway",
]
