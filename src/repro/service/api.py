"""The gateway's request/response surface: validated dicts in and out.

This is the layer the CLI (and any future HTTP front-end) talks to:
plain JSON-able dicts both ways, request validation with stable error
codes, and no domain objects leaking upward.  Every response that can
fail carries the taxonomy's ``{"code", "type", "message"}`` error
payload (:func:`repro.errors.error_payload`), so clients switch on
``code``, never on message text.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

from repro.errors import ValidationError
from repro.service.gateway import Gateway
from repro.service.model import Campaign, CampaignSpec

#: Submit-request keys we understand; anything else is a typo'd field
#: the client should hear about, not a silently dropped option.
_SUBMIT_KEYS = frozenset(
    {
        "kind",
        "apps",
        "modes",
        "seeds",
        "size",
        "n_threads",
        "watchdog_us",
        "substrates",
        "wall_timeout_s",
        "cells",
        "idempotency_key",
        "deadline_s",
    }
)


def parse_submit_request(request: Mapping[str, Any]) -> Dict[str, Any]:
    """Validate a submit request into spec kwargs + gateway options.

    Raises :class:`~repro.errors.ValidationError` (``E_VALIDATION``)
    with a message naming every offending field, so a client fixes its
    request in one round trip.
    """
    problems = []
    unknown = sorted(set(request) - _SUBMIT_KEYS)
    if unknown:
        problems.append(f"unknown field(s): {', '.join(unknown)}")
    kind = request.get("kind", "fault")
    if kind == "fault" and not request.get("apps"):
        problems.append("a fault campaign needs a non-empty 'apps' list")
    if kind == "cells" and not request.get("cells"):
        problems.append("a cells campaign needs a non-empty 'cells' list")
    seeds = request.get("seeds")
    if seeds is not None:
        try:
            [int(seed) for seed in seeds]
        except (TypeError, ValueError):
            problems.append(f"'seeds' must be a list of integers, got {seeds!r}")
    deadline_s = request.get("deadline_s")
    if deadline_s is not None:
        try:
            if float(deadline_s) <= 0:
                problems.append(
                    f"'deadline_s' must be positive, got {deadline_s!r}"
                )
        except (TypeError, ValueError):
            problems.append(f"'deadline_s' must be a number, got {deadline_s!r}")
    key = request.get("idempotency_key")
    if key is not None and (not isinstance(key, str) or not key):
        problems.append(
            f"'idempotency_key' must be a non-empty string, got {key!r}"
        )
    if problems:
        raise ValidationError("invalid submit request: " + "; ".join(problems))
    spec_fields = {
        k: v
        for k, v in request.items()
        if k not in ("idempotency_key", "deadline_s") and v is not None
    }
    return {
        "spec": spec_fields,
        "idempotency_key": key,
        "deadline_s": float(deadline_s) if deadline_s is not None else None,
    }


class GatewayAPI:
    """Dict-shaped facade over one :class:`Gateway`."""

    def __init__(self, gateway: Gateway):
        self.gateway = gateway

    # ------------------------------------------------------------------
    def submit(self, request: Mapping[str, Any]) -> Dict[str, Any]:
        """Submit a campaign; idempotent under ``idempotency_key``."""
        parsed = parse_submit_request(request)
        spec = CampaignSpec.from_dict(parsed["spec"])
        campaign, created = self.gateway.submit(
            spec,
            idempotency_key=parsed["idempotency_key"],
            deadline_s=parsed["deadline_s"],
        )
        return {"campaign": campaign.to_dict(), "created": created}

    def status(self, campaign_id: Optional[str] = None) -> Dict[str, Any]:
        """One campaign's record, or the whole ledger's worth."""
        self.gateway.refresh()
        if campaign_id is not None:
            return {"campaign": self.gateway.campaign(campaign_id).to_dict()}
        return {
            "campaigns": [
                campaign.to_dict()
                for campaign in self.gateway.state.campaigns.values()
            ],
            "skipped_lines": self.gateway.state.skipped_lines,
        }

    def cancel(self, campaign_id: str) -> Dict[str, Any]:
        return {"campaign": self.gateway.cancel(campaign_id).to_dict()}

    def fetch(self, campaign_id: str) -> Dict[str, Any]:
        """A settled campaign's record plus its archived runs.

        The runs come back from the shared archive by the
        ``campaign:<id>`` tag the gateway stamps on every cell, so the
        response is complete even across reclaims and resumes (dedup
        means a cell re-executed after a kill shows up once).
        """
        self.gateway.refresh()
        campaign = self.gateway.campaign(campaign_id)
        runs = []
        try:
            from repro.archive.query import find_runs
            from repro.archive.store import ArchiveStore

            store = ArchiveStore(self.gateway.archive_dir)
            runs = [
                record.to_dict()
                for record in find_runs(store, tag=f"campaign:{campaign_id}")
            ]
        except FileNotFoundError:
            pass  # nothing archived yet (cells kind, or not yet run)
        return {"campaign": campaign.to_dict(), "runs": runs}


def campaign_brief(campaign: Campaign) -> Dict[str, Any]:
    """The one-line summary fields the status table renders."""
    error = campaign.error or {}
    cells = campaign.cells or {}
    return {
        "campaign_id": campaign.campaign_id,
        "state": campaign.state,
        "cells": campaign.spec.n_cells,
        "ok": cells.get("ok", 0),
        "attempts": campaign.attempts,
        "code": error.get("code", ""),
    }


__all__ = ["GatewayAPI", "campaign_brief", "parse_submit_request"]
