"""The campaign ledger: a flock-serialized, fsync'd write-ahead log.

The gateway's single source of truth is one append-only JSONL file.
Every state change is appended -- flushed and fsync'd -- *before* the
action it describes takes effect, so a SIGKILL at any byte offset costs
at most the final, partial line; :func:`load_ledger` tolerates exactly
that and replays the rest.  Unlike the per-campaign supervisor journal
(single writer), the ledger has *multiple* writers -- the serving
process plus any number of ``repro submit`` / ``repro cancel`` clients
-- so every append, and every read-decide-append sequence (idempotency
lookup, lease claim), runs under an advisory ``flock`` on a sidecar
lock file.  That lock is what makes a lease claim atomic: two gateways
racing for the same campaign serialize on the flock, and the loser
re-reads a ledger that already shows the winner's lease.

Record types::

    {"type":"meta","version":1}
    {"type":"submit","cid":ID,"spec":{...},"at":T,
     "key":...,"deadline_at":...}
    {"type":"lease","cid":ID,"owner":...,"attempt":K,
     "expires_at":T,"at":T}            # implies admitted -> leased
    {"type":"renew","cid":ID,"owner":...,"expires_at":T,"at":T}
    {"type":"transition","cid":ID,"from":S,"to":S,"at":T,
     "error":...,"cells":...,"not_before":...}

The ``lease`` record *is* the ``admitted -> leased`` edge: granting a
lease must be one atomic append (decide-and-record under one flock),
so the grant and the transition cannot be torn apart by a crash between
two records.  The ``meta`` record doubles as the schema-version header:
replaying a ledger that declares a *newer* version than this build
raises :class:`~repro.errors.LedgerVersionError` up front.  Replay
validates every edge against the domain state machine; an illegal edge
is recorded as a violation (surfaced by ``repro.service.audit``) but
still applied, because recovery must reconstruct what *happened*, not
refuse to look at it.
"""

from __future__ import annotations

import fcntl
import json
import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.errors import LedgerVersionError
from repro.service.model import (
    Campaign,
    CampaignSpec,
    TERMINAL_STATES,
    VALID_TRANSITIONS,
)

LEDGER_VERSION = 1


class Ledger:
    """Append-only writer with a process-wide advisory lock.

    :meth:`locked` serializes read-decide-append sequences across
    *processes* (flock on ``<path>.lock``) and across *threads* of this
    process (an RLock, because flock on two fds of one file deadlocks
    within a single process).  :meth:`append` may be called bare -- it
    takes the lock itself -- or inside a ``locked()`` block, where the
    depth counter keeps it from re-acquiring the flock it already holds.
    """

    def __init__(self, path: str):
        self.path = os.fspath(path)
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._lock_path = self.path + ".lock"
        self._tlock = threading.RLock()
        self._depth = 0

    @contextmanager
    def locked(self) -> Iterator[None]:
        with self._tlock:
            if self._depth == 0:
                self._lock_handle = open(self._lock_path, "a+")
                fcntl.flock(self._lock_handle.fileno(), fcntl.LOCK_EX)
            self._depth += 1
            try:
                yield
            finally:
                self._depth -= 1
                if self._depth == 0:
                    fcntl.flock(self._lock_handle.fileno(), fcntl.LOCK_UN)
                    self._lock_handle.close()

    def append(self, record: dict) -> None:
        """Durably append one record (write-ahead: fsync before return)."""
        with self.locked():
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(
                    json.dumps(record, separators=(",", ":"), sort_keys=True)
                    + "\n"
                )
                handle.flush()
                os.fsync(handle.fileno())

    def ensure_header(self) -> None:
        """Write the version header iff the ledger is new/empty."""
        with self.locked():
            if not os.path.exists(self.path) or os.path.getsize(self.path) == 0:
                self.append({"type": "meta", "version": LEDGER_VERSION})


@dataclass
class LedgerState:
    """Every campaign's current state, as replayed from the ledger."""

    #: cid -> campaign, in submission order
    campaigns: Dict[str, Campaign] = field(default_factory=dict)
    #: idempotency key -> cid
    by_key: Dict[str, str] = field(default_factory=dict)
    #: unparseable lines (a crash mid-append leaves at most 1)
    skipped_lines: int = 0
    #: illegal edges / malformed records seen during replay -- applied
    #: anyway, but the audit fails on them
    violations: List[str] = field(default_factory=list)

    def get(self, campaign_id: str) -> Optional[Campaign]:
        return self.campaigns.get(campaign_id)

    def in_state(self, *states: str) -> List[Campaign]:
        wanted = frozenset(states)
        return [c for c in self.campaigns.values() if c.state in wanted]

    @property
    def open_campaigns(self) -> List[Campaign]:
        return [c for c in self.campaigns.values() if c.state not in TERMINAL_STATES]

    def next_campaign_id(self) -> str:
        serial = 0
        for cid in self.campaigns:
            if cid.startswith("c") and cid[1:].isdigit():
                serial = max(serial, int(cid[1:]))
        return f"c{serial + 1:04d}"


def _apply_transition(
    state: LedgerState, campaign: Campaign, entry: dict
) -> None:
    to_state = entry.get("to")
    from_state = entry.get("from")
    if to_state not in VALID_TRANSITIONS:
        state.violations.append(
            f"{campaign.campaign_id}: transition to unknown state {to_state!r}"
        )
        return
    if from_state != campaign.state or to_state not in VALID_TRANSITIONS.get(
        campaign.state, frozenset()
    ):
        state.violations.append(
            f"{campaign.campaign_id}: illegal edge "
            f"{campaign.state!r} -> {to_state!r} "
            f"(record claimed from={from_state!r})"
        )
    campaign.state = to_state
    campaign.updated_at = float(entry.get("at", campaign.updated_at))
    campaign.not_before = float(entry.get("not_before", 0.0))
    if entry.get("error") is not None:
        campaign.error = dict(entry["error"])
    if entry.get("cells") is not None:
        campaign.cells = dict(entry["cells"])
    # Every edge except leased -> running (the holder starting its own
    # work) ends whatever lease was outstanding.
    if to_state != "running":
        campaign.lease_owner = None
        campaign.lease_expires_at = None


def load_ledger(path: str) -> LedgerState:
    """Replay a ledger, tolerating a torn final line.

    Corruption is counted, never fatal (recovery must not refuse to
    run); the one deliberate refusal is a header from a newer schema,
    which raises :class:`~repro.errors.LedgerVersionError` rather than
    guessing at record types this build predates.
    """
    state = LedgerState()
    try:
        handle = open(path, encoding="utf-8")
    except FileNotFoundError:
        return state
    with handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                state.skipped_lines += 1
                continue
            kind = entry.get("type")
            if kind == "meta":
                version = entry.get("version")
                if not isinstance(version, int) or version > LEDGER_VERSION:
                    raise LedgerVersionError(version, LEDGER_VERSION)
            elif kind == "submit":
                cid = entry.get("cid")
                if not cid:
                    state.violations.append("submit record without cid")
                    continue
                try:
                    spec = CampaignSpec.from_dict(entry.get("spec") or {})
                except (ValueError, TypeError) as exc:
                    state.violations.append(f"{cid}: bad spec in submit ({exc})")
                    continue
                if cid in state.campaigns:
                    state.violations.append(f"{cid}: duplicate submit record")
                    continue
                campaign = Campaign(
                    campaign_id=cid,
                    spec=spec,
                    state="submitted",
                    idempotency_key=entry.get("key"),
                    submitted_at=float(entry.get("at", 0.0)),
                    updated_at=float(entry.get("at", 0.0)),
                    deadline_at=entry.get("deadline_at"),
                )
                state.campaigns[cid] = campaign
                if campaign.idempotency_key:
                    state.by_key[campaign.idempotency_key] = cid
            elif kind in ("lease", "renew", "transition"):
                cid = entry.get("cid")
                campaign = state.campaigns.get(cid)
                if campaign is None:
                    state.violations.append(
                        f"{kind} record for unknown campaign {cid!r}"
                    )
                    continue
                if kind == "lease":
                    if campaign.state != "admitted":
                        state.violations.append(
                            f"{cid}: lease granted in state {campaign.state!r}"
                        )
                    campaign.state = "leased"
                    campaign.lease_owner = entry.get("owner")
                    campaign.lease_expires_at = entry.get("expires_at")
                    campaign.attempts = max(
                        campaign.attempts, int(entry.get("attempt", 0))
                    )
                    campaign.updated_at = float(
                        entry.get("at", campaign.updated_at)
                    )
                elif kind == "renew":
                    if campaign.state not in ("leased", "running"):
                        state.violations.append(
                            f"{cid}: lease renewed in state {campaign.state!r}"
                        )
                    else:
                        campaign.lease_expires_at = entry.get(
                            "expires_at", campaign.lease_expires_at
                        )
                else:
                    _apply_transition(state, campaign, entry)
            # Unknown record types within a known version are skipped
            # silently: the format only ever gains types minor-compatibly.
    return state


__all__ = ["LEDGER_VERSION", "Ledger", "LedgerState", "load_ledger"]
