"""Domain model of the campaign gateway: states, specs, campaigns.

The gateway's unit of work is a **campaign** -- one client submission
that expands into a supervised grid of cells.  Its life is a fixed
state machine::

                    submit            claim             execute
    submitted ---------------> admitted ------> leased ---------> running
        |                        |  ^             |                  |
        |                        |  +--reclaim----+---- reclaim -----+
        |                        |        (lease expired)            |
        v                        v                                   v
    {cancelled, expired,     {cancelled, expired}        {archived, failed,
     failed}                                              expired}

    terminal states: archived | failed | cancelled | expired
    resumable states: submitted | admitted | leased | running

Every edge is validated by :func:`check_transition` before it is
written to the ledger, so an illegal edge is a raised
:class:`~repro.errors.CampaignStateError`, never a corrupt record.  The
**reclaim** edges (``leased``/``running`` back to ``admitted``) are how
a silently dead worker forfeits its lease: recovery rewinds the
campaign to the queue with a seeded backoff gate (``not_before``)
instead of losing or double-running it -- the re-execution resumes the
campaign's supervisor journal, so completed cells replay instead of
re-running.

Everything here is pure data + validation; ledger I/O lives in
:mod:`repro.service.ledger`, orchestration in
:mod:`repro.service.gateway`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import CampaignStateError
from repro.supervisor.spec import RunSpec, fault_cell, spec_from_dict

#: Every state a campaign can be in, in lifecycle order.
CAMPAIGN_STATES = (
    "submitted",
    "admitted",
    "leased",
    "running",
    "archived",
    "failed",
    "cancelled",
    "expired",
)

#: States that settle a campaign; re-serving cannot change them.
TERMINAL_STATES = frozenset({"archived", "failed", "cancelled", "expired"})

#: States a restart picks back up (directly or after lease reclaim).
RESUMABLE_STATES = frozenset({"submitted", "admitted", "leased", "running"})

#: The legal state-machine edges.  ``leased -> admitted`` and
#: ``running -> admitted`` are the lease-reclaim edges; ``leased ->
#: failed`` is lease-attempt exhaustion.
VALID_TRANSITIONS: Mapping[str, frozenset] = {
    "submitted": frozenset({"admitted", "cancelled", "failed", "expired"}),
    "admitted": frozenset({"leased", "cancelled", "expired"}),
    "leased": frozenset({"running", "admitted", "failed", "expired"}),
    "running": frozenset({"archived", "failed", "expired", "admitted"}),
    "archived": frozenset(),
    "failed": frozenset(),
    "cancelled": frozenset(),
    "expired": frozenset(),
}

#: The healthy path, as (from, to) edges -- what the chaos harness
#: SIGKILLs at, one by one.
HAPPY_PATH_EDGES: Tuple[Tuple[str, str], ...] = (
    ("submitted", "admitted"),
    ("admitted", "leased"),
    ("leased", "running"),
    ("running", "archived"),
)

SPEC_KINDS = ("fault", "cells")


def check_transition(
    from_state: str, to_state: str, campaign_id: Optional[str] = None
) -> None:
    """Raise :class:`CampaignStateError` unless ``from -> to`` is legal."""
    allowed = VALID_TRANSITIONS.get(from_state)
    if allowed is None:
        raise CampaignStateError(
            f"unknown campaign state {from_state!r} "
            f"(states: {', '.join(CAMPAIGN_STATES)})",
            campaign_id=campaign_id,
            from_state=from_state,
            to_state=to_state,
        )
    if to_state not in allowed:
        raise CampaignStateError(
            f"illegal campaign transition {from_state!r} -> {to_state!r}"
            + (f" for {campaign_id}" if campaign_id else "")
            + (
                f" (legal: {', '.join(sorted(allowed))})"
                if allowed
                else f" ({from_state!r} is terminal)"
            ),
            campaign_id=campaign_id,
            from_state=from_state,
            to_state=to_state,
        )


@dataclass(frozen=True)
class CampaignSpec:
    """What one campaign runs: a fault grid, or explicit cells.

    ``kind='fault'`` expands ``apps x modes x seeds`` into fault-campaign
    cells (the service's production shape); ``kind='cells'`` carries raw
    :class:`~repro.supervisor.spec.RunSpec` dicts verbatim (stub grids
    for tests and the chaos harness).  Pure JSON-able data either way:
    the spec crosses the ledger, the idempotency fingerprint, and -- as
    cells -- the worker process boundary.
    """

    kind: str = "fault"
    apps: Tuple[str, ...] = ()
    modes: Tuple[str, ...] = ("none",)
    seeds: Tuple[int, ...] = (0,)
    size: str = "test"
    n_threads: int = 2
    watchdog_us: Optional[float] = None
    substrates: Optional[Tuple[str, ...]] = None
    #: per-cell wall-clock limit (the gateway clamps it to the remaining
    #: campaign deadline budget at execution time)
    wall_timeout_s: Optional[float] = None
    #: raw RunSpec dicts (``kind='cells'`` only)
    cells: Tuple[Dict[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in SPEC_KINDS:
            raise ValueError(
                f"spec kind must be one of {SPEC_KINDS}, got {self.kind!r}"
            )
        if self.kind == "fault" and not self.apps:
            raise ValueError("a fault campaign needs at least one app")
        if self.kind == "cells" and not self.cells:
            raise ValueError("a cells campaign needs at least one cell")
        if self.wall_timeout_s is not None and self.wall_timeout_s <= 0:
            raise ValueError(
                f"wall_timeout_s must be positive, got {self.wall_timeout_s!r}"
            )
        # Freeze the mutable collection fields into tuples so the spec
        # is hashable and its fingerprint stable.
        object.__setattr__(self, "apps", tuple(self.apps))
        object.__setattr__(self, "modes", tuple(self.modes) or ("none",))
        object.__setattr__(self, "seeds", tuple(int(s) for s in self.seeds))
        if self.substrates is not None:
            object.__setattr__(self, "substrates", tuple(self.substrates))
        object.__setattr__(
            self, "cells", tuple(dict(cell) for cell in self.cells)
        )

    @property
    def admission_tag(self) -> str:
        """Per-tag quota grouping: the first kernel, or ``cells``."""
        if self.kind == "fault":
            return self.apps[0]
        return "cells"

    def to_dict(self) -> dict:
        data: Dict[str, Any] = {"kind": self.kind}
        if self.kind == "fault":
            data.update(
                apps=list(self.apps),
                modes=list(self.modes),
                seeds=list(self.seeds),
                size=self.size,
                n_threads=self.n_threads,
            )
            if self.watchdog_us is not None:
                data["watchdog_us"] = self.watchdog_us
            if self.substrates is not None:
                data["substrates"] = list(self.substrates)
        else:
            data["cells"] = [dict(cell) for cell in self.cells]
        if self.wall_timeout_s is not None:
            data["wall_timeout_s"] = self.wall_timeout_s
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        return cls(
            kind=data.get("kind", "fault"),
            apps=tuple(data.get("apps") or ()),
            modes=tuple(data.get("modes") or ("none",)),
            seeds=tuple(data.get("seeds") or (0,)),
            size=data.get("size", "test"),
            n_threads=int(data.get("n_threads", 2)),
            watchdog_us=data.get("watchdog_us"),
            substrates=(
                tuple(data["substrates"])
                if data.get("substrates") is not None
                else None
            ),
            wall_timeout_s=data.get("wall_timeout_s"),
            cells=tuple(data.get("cells") or ()),
        )

    def fingerprint(self) -> str:
        """Content hash for idempotency-conflict detection.

        Two submissions under one idempotency key must agree on this,
        or the resubmit is a client bug
        (:class:`~repro.errors.IdempotencyConflict`), not a retry.
        """
        canonical = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def build_specs(
        self, campaign_id: str, archive_dir: Optional[str] = None
    ) -> List[RunSpec]:
        """Expand into the supervised grid this campaign executes.

        Fault cells archive into ``archive_dir`` tagged
        ``campaign:<id>`` so the campaign's runs stay queryable; cell
        ids are prefixed with the campaign id because all campaigns of
        one gateway share journal-per-campaign files but the archive is
        shared.
        """
        if self.kind == "cells":
            return [spec_from_dict(dict(cell)) for cell in self.cells]
        return [
            fault_cell(
                app,
                mode,
                seed,
                size=self.size,
                n_threads=self.n_threads,
                watchdog_us=self.watchdog_us,
                wall_timeout_s=self.wall_timeout_s,
                substrates=self.substrates,
                archive_dir=archive_dir,
                archive_tags=(f"campaign:{campaign_id}",),
            )
            for app in self.apps
            for mode in self.modes
            for seed in self.seeds
        ]

    @property
    def n_cells(self) -> int:
        if self.kind == "cells":
            return len(self.cells)
        return len(self.apps) * len(self.modes) * len(self.seeds)


@dataclass
class Campaign:
    """One campaign's current view, as replayed from the ledger."""

    campaign_id: str
    spec: CampaignSpec
    state: str = "submitted"
    idempotency_key: Optional[str] = None
    submitted_at: float = 0.0
    updated_at: float = 0.0
    #: absolute wall-clock deadline (epoch seconds); None = no deadline
    deadline_at: Optional[float] = None
    #: lease attempts ever granted (monotone across reclaims)
    attempts: int = 0
    #: earliest epoch time the next lease may be granted (reclaim backoff)
    not_before: float = 0.0
    lease_owner: Optional[str] = None
    lease_expires_at: Optional[float] = None
    #: structured failure context ({code, type, message}), when any
    error: Optional[Dict[str, str]] = None
    #: cell outcome counts stamped by the terminal transition
    cells: Optional[Dict[str, int]] = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def lease_active(self, now: float) -> bool:
        """A live lease: granted, unexpired, and the campaign still holds it."""
        return (
            self.state in ("leased", "running")
            and self.lease_expires_at is not None
            and now < self.lease_expires_at
        )

    def deadline_passed(self, now: float) -> bool:
        return self.deadline_at is not None and now >= self.deadline_at

    def remaining_budget_s(self, now: float) -> Optional[float]:
        """Seconds left until the campaign deadline (None = unbounded)."""
        if self.deadline_at is None:
            return None
        return max(0.0, self.deadline_at - now)

    def to_dict(self) -> dict:
        data: Dict[str, Any] = {
            "campaign_id": self.campaign_id,
            "state": self.state,
            "spec": self.spec.to_dict(),
            "submitted_at": self.submitted_at,
            "updated_at": self.updated_at,
            "attempts": self.attempts,
        }
        if self.idempotency_key is not None:
            data["idempotency_key"] = self.idempotency_key
        if self.deadline_at is not None:
            data["deadline_at"] = self.deadline_at
        if self.not_before:
            data["not_before"] = self.not_before
        if self.lease_owner is not None:
            data["lease"] = {
                "owner": self.lease_owner,
                "expires_at": self.lease_expires_at,
            }
        if self.error is not None:
            data["error"] = dict(self.error)
        if self.cells is not None:
            data["cells"] = dict(self.cells)
        return data


def cells_summary(results: Sequence[Any]) -> Dict[str, int]:
    """Fold supervisor :class:`CellResult`s into outcome counts."""
    counts: Dict[str, int] = {}
    for result in results:
        outcome = getattr(result, "outcome", None) or "unknown"
        counts[outcome] = counts.get(outcome, 0) + 1
    counts["total"] = len(results)
    return counts


__all__ = [
    "CAMPAIGN_STATES",
    "TERMINAL_STATES",
    "RESUMABLE_STATES",
    "VALID_TRANSITIONS",
    "HAPPY_PATH_EDGES",
    "Campaign",
    "CampaignSpec",
    "cells_summary",
    "check_transition",
]
