"""The campaign gateway: crash-safe orchestration over the supervisor.

One :class:`Gateway` owns a **home** directory::

    <home>/ledger.jsonl        the write-ahead campaign ledger
    <home>/journals/<cid>.jsonl  per-campaign supervisor journal
    <home>/archive/            shared content-addressed profile store

and drives every campaign through the domain state machine
(:mod:`repro.service.model`).  The crash-safety contract is
**kill-anywhere**: because each transition is an fsync'd ledger append
*before* its effect, and each campaign's execution runs over its own
supervisor journal with ``resume=True``, a SIGKILL at any instant
leaves every campaign in exactly one valid state, from which
:meth:`recover` + :meth:`serve` finish the work without re-running
completed cells (the content-addressed archive dedups the residue of a
kill inside a cell).

Lifecycle responsibilities, by method:

* :meth:`submit` -- durable intake, idempotency keys, deadline stamping.
* :meth:`admit` -- backpressure via the fabric's
  :class:`~repro.fabric.admission.AdmissionController` (block / reject /
  shed + per-tag quotas), deadline expiry of stale queue entries.
* :meth:`claim` -- atomic lease grant (one flock'd read-decide-append),
  honoring reclaim-backoff gates (``not_before``).
* :meth:`execute` -- run the campaign under its remaining deadline
  budget: the gateway deadline clamps both the supervisor's
  ``deadline_s`` and every cell's wall-clock limit, so one slow cell
  cannot eat the budget of the rest.  A lease-renewal thread keeps the
  lease alive for as long as the work is genuinely running.
* :meth:`recover` -- startup/maintenance pass: reclaim expired (or, on
  takeover, all) leases with seeded backoff, fail lease-exhausted
  campaigns, expire deadline-passed ones.
* :meth:`serve` -- the loop: recover, then admit/claim/execute until
  idle, a budget expires, or a drain signal (SIGTERM) arrives --
  whereupon in-flight work is drained via the supervisor's own SIGTERM
  parity and journaled resumable.

``transition_hook`` exists for the chaos harness
(:mod:`repro.faults.service`): it is called around every ledger append
that changes a campaign's state, which is exactly where a process can
be SIGKILLed to prove the kill-anywhere contract.
"""

from __future__ import annotations

import os
import signal
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import (
    AdmissionRejected,
    CampaignExpired,
    CampaignFailed,
    GatewayDraining,
    IdempotencyConflict,
    LeaseExpired,
    UnknownCampaign,
    error_payload,
)
from repro.fabric.admission import AdmissionController, AdmissionPolicy
from repro.fabric.breaker import BreakerPolicy
from repro.service.ledger import Ledger, LedgerState, load_ledger
from repro.service.model import (
    Campaign,
    CampaignSpec,
    cells_summary,
    check_transition,
)
from repro.supervisor.backoff import BackoffPolicy
from repro.supervisor.supervisor import Supervisor, SupervisorReport

#: Default lease TTL: generous, because expiry means "the holder is
#: presumed dead" -- renewal (every TTL/3) keeps honest long work alive.
DEFAULT_LEASE_TTL_S = 300.0

#: A hook receives (campaign_id, from_state, to_state, phase) with
#: phase "before" (the decision is made, nothing written) or "after"
#: (the ledger append is durable, the in-memory effect not yet applied).
TransitionHook = Callable[[str, str, str, str], None]


class _ServeDrain(BaseException):
    """Raised by the serve loop's SIGTERM handler to begin the drain."""


@dataclass
class RecoveryReport:
    """What one :meth:`Gateway.recover` pass did."""

    #: leases rewound to ``admitted`` (with backoff gates)
    reclaimed: List[str] = field(default_factory=list)
    #: campaigns failed for exhausting their lease attempts
    exhausted: List[str] = field(default_factory=list)
    #: campaigns expired for a passed deadline
    expired: List[str] = field(default_factory=list)
    #: torn/corrupt ledger lines tolerated during replay
    skipped_lines: int = 0

    @property
    def touched(self) -> int:
        return len(self.reclaimed) + len(self.exhausted) + len(self.expired)

    def to_dict(self) -> dict:
        return {
            "reclaimed": list(self.reclaimed),
            "exhausted": list(self.exhausted),
            "expired": list(self.expired),
            "skipped_lines": self.skipped_lines,
        }


@dataclass
class ServeReport:
    """What one :meth:`Gateway.serve` invocation did."""

    executed: int = 0
    #: the loop stopped because a drain was requested
    drained: bool = False
    #: the drain was a SIGTERM (exit 143) rather than a Ctrl-C
    terminated: bool = False
    #: the loop stopped because no resumable work remained
    idle: bool = False
    recovery: Optional[RecoveryReport] = None

    def to_dict(self) -> dict:
        return {
            "executed": self.executed,
            "drained": self.drained,
            "terminated": self.terminated,
            "idle": self.idle,
            "recovery": self.recovery.to_dict() if self.recovery else None,
        }


class _LeaseRenewer:
    """Daemon thread renewing one campaign's lease while work runs.

    Renewal happens at TTL/3 so two consecutive missed renewals still
    leave slack before expiry; a renewal failure is swallowed (the
    worst case is the designed one -- the lease expires and recovery
    reclaims the campaign).
    """

    def __init__(self, gateway: "Gateway", campaign_id: str):
        self._gateway = gateway
        self._campaign_id = campaign_id
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, name=f"lease-renew-{campaign_id}", daemon=True
        )

    def start(self) -> "_LeaseRenewer":
        self._thread.start()
        return self

    def _loop(self) -> None:
        interval = self._gateway.lease_ttl_s / 3.0
        while not self._stop.wait(interval):
            try:
                self._gateway.renew_lease(self._campaign_id)
            except Exception:  # lease loss is survivable by design
                return

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)


class Gateway:
    """Durable campaign front-end over one home directory.

    Thread-compatible but process-oriented: many processes may
    ``submit``/``status`` against one home concurrently (the ledger
    flock serializes them), while :meth:`serve` assumes it is the only
    *server* for the home -- which is why startup recovery may take
    over outstanding leases.
    """

    def __init__(
        self,
        home: str,
        *,
        jobs: int = 1,
        lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
        max_lease_attempts: int = 3,
        reclaim_backoff: Optional[BackoffPolicy] = None,
        admission: Optional[AdmissionPolicy] = None,
        breaker: Optional[BreakerPolicy] = None,
        cell_timeout_s: Optional[float] = None,
        retries: int = 1,
        heartbeat_s: Optional[float] = None,
        owner: Optional[str] = None,
        clock: Callable[[], float] = time.time,
        transition_hook: Optional[TransitionHook] = None,
    ):
        if lease_ttl_s <= 0:
            raise ValueError(f"lease_ttl_s must be positive, got {lease_ttl_s!r}")
        if max_lease_attempts < 1:
            raise ValueError(
                f"max_lease_attempts must be >= 1, got {max_lease_attempts!r}"
            )
        self.home = os.fspath(home)
        os.makedirs(self.home, exist_ok=True)
        self.archive_dir = os.path.join(self.home, "archive")
        self.journals_dir = os.path.join(self.home, "journals")
        os.makedirs(self.journals_dir, exist_ok=True)
        self.ledger = Ledger(os.path.join(self.home, "ledger.jsonl"))
        self.ledger.ensure_header()
        self.jobs = jobs
        self.lease_ttl_s = lease_ttl_s
        self.max_lease_attempts = max_lease_attempts
        self.reclaim_backoff = (
            reclaim_backoff if reclaim_backoff is not None else BackoffPolicy()
        )
        self.admission_policy = admission
        self.breaker_policy = breaker
        self.cell_timeout_s = cell_timeout_s
        self.retries = retries
        self.heartbeat_s = heartbeat_s
        self.owner = owner or f"pid:{os.getpid()}-{uuid.uuid4().hex[:8]}"
        self.clock = clock
        self.transition_hook = transition_hook
        self.state = LedgerState()
        self._draining = False
        #: the drain was signal-initiated (SIGTERM) rather than Ctrl-C
        self._drain_terminated = False
        self._admission = (
            AdmissionController(admission) if admission is not None else None
        )
        self.refresh()

    # ------------------------------------------------------------------
    # State access
    # ------------------------------------------------------------------
    def refresh(self) -> LedgerState:
        self.state = load_ledger(self.ledger.path)
        return self.state

    def campaign(self, campaign_id: str) -> Campaign:
        found = self.state.get(campaign_id)
        if found is None:
            raise UnknownCampaign(
                f"campaign {campaign_id!r} is not in this gateway's ledger "
                f"({self.ledger.path})"
            )
        return found

    @property
    def draining(self) -> bool:
        return self._draining

    # ------------------------------------------------------------------
    # Transitions (the only writers besides submit/lease)
    # ------------------------------------------------------------------
    def _hook(self, cid: str, frm: str, to: str, phase: str) -> None:
        if self.transition_hook is not None:
            self.transition_hook(cid, frm, to, phase)

    def _transition(
        self,
        campaign: Campaign,
        to_state: str,
        *,
        now: float,
        error: Optional[Dict[str, str]] = None,
        cells: Optional[Dict[str, int]] = None,
        not_before: float = 0.0,
    ) -> Campaign:
        """Write-ahead one state edge, then apply it in memory.

        Caller must hold ``self.ledger.locked()``; the edge is validated
        against the domain machine before anything is written.
        """
        from_state = campaign.state
        check_transition(from_state, to_state, campaign.campaign_id)
        record: Dict[str, object] = {
            "type": "transition",
            "cid": campaign.campaign_id,
            "from": from_state,
            "to": to_state,
            "at": now,
        }
        if error is not None:
            record["error"] = error
        if cells is not None:
            record["cells"] = cells
        if not_before:
            record["not_before"] = not_before
        self._hook(campaign.campaign_id, from_state, to_state, "before")
        self.ledger.append(record)
        self._hook(campaign.campaign_id, from_state, to_state, "after")
        campaign.state = to_state
        campaign.updated_at = now
        campaign.not_before = not_before
        if error is not None:
            campaign.error = dict(error)
        if cells is not None:
            campaign.cells = dict(cells)
        if to_state != "running":
            campaign.lease_owner = None
            campaign.lease_expires_at = None
        return campaign

    # ------------------------------------------------------------------
    # Intake
    # ------------------------------------------------------------------
    def submit(
        self,
        spec: CampaignSpec,
        *,
        idempotency_key: Optional[str] = None,
        deadline_s: Optional[float] = None,
    ) -> Tuple[Campaign, bool]:
        """Durably accept one campaign; returns ``(campaign, created)``.

        With an idempotency key, resubmitting the same spec returns the
        original campaign (``created=False``) -- the client may retry a
        submit over a crashed connection forever without double-running
        anything.  The same key with a *different* spec fingerprint is
        an :class:`~repro.errors.IdempotencyConflict`.
        """
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError(f"deadline_s must be positive, got {deadline_s!r}")
        if self._draining:
            raise GatewayDraining(
                "gateway is draining; new submissions are refused"
            )
        now = self.clock()
        with self.ledger.locked():
            self.refresh()
            if idempotency_key is not None:
                existing_id = self.state.by_key.get(idempotency_key)
                if existing_id is not None:
                    existing = self.state.campaigns[existing_id]
                    if existing.spec.fingerprint() != spec.fingerprint():
                        raise IdempotencyConflict(
                            f"idempotency key {idempotency_key!r} was already "
                            f"used by campaign {existing_id} with a different "
                            f"spec (fingerprint "
                            f"{existing.spec.fingerprint()[:12]} != "
                            f"{spec.fingerprint()[:12]})",
                            key=idempotency_key,
                            campaign_id=existing_id,
                        )
                    return existing, False
            cid = self.state.next_campaign_id()
            record: Dict[str, object] = {
                "type": "submit",
                "cid": cid,
                "spec": spec.to_dict(),
                "at": now,
            }
            if idempotency_key is not None:
                record["key"] = idempotency_key
            if deadline_s is not None:
                record["deadline_at"] = now + deadline_s
            self.ledger.append(record)
            campaign = Campaign(
                campaign_id=cid,
                spec=spec,
                state="submitted",
                idempotency_key=idempotency_key,
                submitted_at=now,
                updated_at=now,
                deadline_at=record.get("deadline_at"),
            )
            self.state.campaigns[cid] = campaign
            if idempotency_key is not None:
                self.state.by_key[idempotency_key] = cid
            return campaign, True

    def cancel(self, campaign_id: str) -> Campaign:
        """Cancel a campaign that has not started executing.

        Idempotent on already-cancelled campaigns; anything leased or
        running must drain or expire instead (cancelling under a live
        lease would race the holder).
        """
        now = self.clock()
        with self.ledger.locked():
            self.refresh()
            campaign = self.campaign(campaign_id)
            if campaign.state == "cancelled":
                return campaign
            return self._transition(campaign, "cancelled", now=now)

    # ------------------------------------------------------------------
    # Queue movement
    # ------------------------------------------------------------------
    def admit(self) -> List[Campaign]:
        """Move submitted campaigns through admission control.

        Without an :class:`AdmissionPolicy` every submitted campaign is
        admitted immediately.  With one, the fabric controller applies
        the configured overload behavior: ``block`` defers (the campaign
        stays ``submitted`` and is re-offered next loop), ``reject``
        fails it with the stable admission code, ``shed`` admits it but
        cancels the oldest admitted-not-leased campaign to make room.
        """
        admitted: List[Campaign] = []
        now = self.clock()
        with self.ledger.locked():
            self.refresh()
            self._sync_admission()
            for campaign in self.state.in_state("submitted"):
                if campaign.deadline_passed(now):
                    self._expire(campaign, now)
                    continue
                if self._admission is None:
                    admitted.append(
                        self._transition(campaign, "admitted", now=now)
                    )
                    continue
                verdict, shed = self._admission.offer(
                    campaign.campaign_id, tag=campaign.spec.admission_tag
                )
                for victim_id, _tag in shed:
                    victim = self.state.get(victim_id)
                    if victim is not None and victim.state == "admitted":
                        self._transition(
                            victim,
                            "cancelled",
                            now=now,
                            error=error_payload(
                                AdmissionRejected(
                                    "shed by admission control to admit "
                                    "fresher work (resubmit to retry)"
                                )
                            ),
                        )
                if verdict == "admitted":
                    admitted.append(
                        self._transition(campaign, "admitted", now=now)
                    )
                elif verdict == "rejected":
                    self._transition(
                        campaign,
                        "failed",
                        now=now,
                        error=error_payload(
                            AdmissionRejected(
                                "rejected by admission control: pending "
                                "queue at its high watermark"
                            )
                        ),
                    )
                # deferred: stays submitted, re-offered next pass
        return admitted

    def _sync_admission(self) -> None:
        """Rebuild the controller's pending set from the ledger.

        The controller is in-memory; after a restart (or out-of-band
        ledger writes by peer processes) its queue must mirror the
        campaigns currently in ``admitted`` -- the ledger, not the
        controller, is the source of truth.
        """
        if self._admission is None:
            return
        self._admission.reset(
            (campaign.campaign_id, campaign.spec.admission_tag)
            for campaign in self.state.in_state("admitted")
        )

    def _expire(self, campaign: Campaign, now: float) -> Campaign:
        budget = (
            f"{campaign.deadline_at - campaign.submitted_at:g} s"
            if campaign.deadline_at is not None
            else "?"
        )
        return self._transition(
            campaign,
            "expired",
            now=now,
            error=error_payload(
                CampaignExpired(
                    f"campaign deadline ({budget} after submission) passed "
                    f"in state {campaign.state!r}"
                )
            ),
        )

    def claim(self) -> Optional[Campaign]:
        """Atomically lease the oldest claimable admitted campaign.

        The whole read-decide-append runs under one ledger flock, so two
        gateways racing over a shared home cannot double-claim: the
        loser's refresh already shows the winner's lease record.
        """
        now = self.clock()
        with self.ledger.locked():
            self.refresh()
            for campaign in self.state.in_state("admitted"):
                if campaign.not_before > now:
                    continue
                if campaign.deadline_passed(now):
                    self._expire(campaign, now)
                    continue
                attempt = campaign.attempts + 1
                expires_at = now + self.lease_ttl_s
                self._hook(campaign.campaign_id, "admitted", "leased", "before")
                self.ledger.append(
                    {
                        "type": "lease",
                        "cid": campaign.campaign_id,
                        "owner": self.owner,
                        "attempt": attempt,
                        "expires_at": expires_at,
                        "at": now,
                    }
                )
                self._hook(campaign.campaign_id, "admitted", "leased", "after")
                campaign.state = "leased"
                campaign.attempts = attempt
                campaign.lease_owner = self.owner
                campaign.lease_expires_at = expires_at
                campaign.updated_at = now
                if self._admission is not None:
                    self._admission.pop()
                return campaign
        return None

    def renew_lease(self, campaign_id: str) -> None:
        """Extend a held lease; raises :class:`LeaseExpired` if lost."""
        now = self.clock()
        with self.ledger.locked():
            self.refresh()
            campaign = self.campaign(campaign_id)
            if (
                campaign.state not in ("leased", "running")
                or campaign.lease_owner != self.owner
                or not campaign.lease_active(now)
            ):
                raise LeaseExpired(
                    f"lease on {campaign_id} is no longer held by "
                    f"{self.owner} (state={campaign.state!r}, "
                    f"owner={campaign.lease_owner!r})"
                )
            expires_at = now + self.lease_ttl_s
            self.ledger.append(
                {
                    "type": "renew",
                    "cid": campaign_id,
                    "owner": self.owner,
                    "expires_at": expires_at,
                    "at": now,
                }
            )
            campaign.lease_expires_at = expires_at

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, campaign_id: str) -> Campaign:
        """Run one leased campaign to a settled (or resumable) state.

        Deadline propagation happens here: the campaign's remaining
        budget becomes the supervisor's ``deadline_s`` *and* clamps the
        per-cell wall-clock limit, so the end-to-end promise "this
        campaign is over by T" holds at every layer.  Execution resumes
        the campaign's own journal, so a reclaimed campaign replays its
        completed cells instead of re-running them.
        """
        now = self.clock()
        with self.ledger.locked():
            self.refresh()
            campaign = self.campaign(campaign_id)
            if campaign.state != "leased" or campaign.lease_owner != self.owner:
                raise LeaseExpired(
                    f"cannot execute {campaign_id}: lease not held by "
                    f"{self.owner} (state={campaign.state!r})"
                )
            if not campaign.lease_active(now):
                raise LeaseExpired(
                    f"cannot execute {campaign_id}: lease expired "
                    f"{now - (campaign.lease_expires_at or now):.1f} s ago"
                )
            remaining = campaign.remaining_budget_s(now)
            if remaining is not None and remaining <= 0:
                return self._expire(campaign, now)
            self._transition(campaign, "running", now=now)

        renewer = _LeaseRenewer(self, campaign_id).start()
        try:
            report = self._run_supervised(campaign, remaining)
        except Exception as exc:
            # A campaign whose spec will not even expand (or whose
            # supervisor blew up outright) fails in place; one poisoned
            # submission must not take the whole serve loop down.
            return self._fail_execution(campaign_id, exc)
        finally:
            renewer.stop()
        return self._settle(campaign_id, report)

    def _fail_execution(self, campaign_id: str, exc: Exception) -> Campaign:
        now = self.clock()
        with self.ledger.locked():
            self.refresh()
            campaign = self.campaign(campaign_id)
            return self._transition(
                campaign,
                "failed",
                now=now,
                error=error_payload(
                    CampaignFailed(
                        f"execution error: {type(exc).__name__}: {exc}"
                    )
                ),
            )

    def _run_supervised(
        self, campaign: Campaign, remaining: Optional[float]
    ) -> SupervisorReport:
        specs = campaign.spec.build_specs(
            campaign.campaign_id,
            self.archive_dir if campaign.spec.kind == "fault" else None,
        )
        timeout_s = self.cell_timeout_s
        if remaining is not None:
            timeout_s = min(timeout_s, remaining) if timeout_s else remaining
        supervisor = Supervisor(
            specs,
            jobs=self.jobs,
            timeout_s=timeout_s,
            retries=self.retries,
            journal_path=os.path.join(
                self.journals_dir, f"{campaign.campaign_id}.jsonl"
            ),
            resume=True,
            heartbeat_s=self.heartbeat_s,
            deadline_s=remaining,
            breaker=self.breaker_policy,
        )
        return supervisor.run()

    def _settle(self, campaign_id: str, report: SupervisorReport) -> Campaign:
        """Fold a supervisor report into the campaign's next state."""
        now = self.clock()
        summary = cells_summary(report.results)
        with self.ledger.locked():
            self.refresh()
            campaign = self.campaign(campaign_id)
            if report.interrupted:
                # Drained, not failed: rewind to admitted with no
                # backoff gate -- the next serve (or another instance)
                # resumes the journal immediately.  Any interrupt means
                # someone wants this server to stop, so the loop drains.
                self._draining = True
                if report.terminated:
                    self._drain_terminated = True
                return self._transition(
                    campaign, "admitted", now=now, cells=summary
                )
            if report.deadline_hit or campaign.deadline_passed(now):
                return self._transition(
                    campaign,
                    "expired",
                    now=now,
                    error=error_payload(
                        CampaignExpired(
                            "deadline budget exhausted during execution; "
                            "completed cells are archived"
                        )
                    ),
                    cells=summary,
                )
            if all(result.ok for result in report.results):
                return self._transition(
                    campaign, "archived", now=now, cells=summary
                )
            bad = sum(1 for r in report.results if not r.ok)
            return self._transition(
                campaign,
                "failed",
                now=now,
                error=error_payload(
                    CampaignFailed(
                        f"{bad}/{len(report.results)} cells did not succeed"
                    )
                ),
                cells=summary,
            )

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def recover(self, *, takeover: bool = True) -> RecoveryReport:
        """Reconcile the ledger after a crash (or before serving).

        ``takeover=True`` (the default, correct for the unique server of
        a home) reclaims *every* outstanding lease -- a lease held by a
        SIGKILLed predecessor would otherwise park its campaign until
        TTL expiry.  ``takeover=False`` is the polite maintenance mode:
        only expired leases are reclaimed.
        """
        now = self.clock()
        report = RecoveryReport()
        with self.ledger.locked():
            self.refresh()
            report.skipped_lines = self.state.skipped_lines
            for campaign in list(self.state.campaigns.values()):
                if campaign.state in ("leased", "running"):
                    own = campaign.lease_owner == self.owner
                    # An active lease we hold ourselves is real work in
                    # flight -- never reclaim it.  An active lease held
                    # by someone else falls only to a takeover.
                    if campaign.lease_active(now) and (own or not takeover):
                        continue
                    if campaign.attempts >= self.max_lease_attempts:
                        self._transition(
                            campaign,
                            "failed",
                            now=now,
                            error=error_payload(
                                LeaseExpired(
                                    f"lease expired {campaign.attempts} "
                                    f"times (max "
                                    f"{self.max_lease_attempts}); giving up"
                                )
                            ),
                        )
                        report.exhausted.append(campaign.campaign_id)
                        continue
                    gate = now + self.reclaim_backoff.delay(
                        max(1, campaign.attempts), key=campaign.campaign_id
                    )
                    self._transition(
                        campaign, "admitted", now=now, not_before=gate
                    )
                    report.reclaimed.append(campaign.campaign_id)
                if campaign.state in ("submitted", "admitted") and (
                    campaign.deadline_passed(now)
                ):
                    self._expire(campaign, now)
                    report.expired.append(campaign.campaign_id)
        return report

    # ------------------------------------------------------------------
    # The serve loop
    # ------------------------------------------------------------------
    def serve(
        self,
        *,
        run_until_idle: bool = False,
        poll_s: float = 0.05,
        max_campaigns: Optional[int] = None,
        budget_s: Optional[float] = None,
    ) -> ServeReport:
        """Recover, then admit/claim/execute until told to stop.

        Stops when: a drain signal arrives (SIGTERM sets
        ``terminated``; Ctrl-C drains too), ``run_until_idle`` and no
        resumable work remains, ``max_campaigns`` executions happened,
        or ``budget_s`` of wall time elapsed.  In-flight work survives
        every one of these: the supervisor drains and journals, and
        :meth:`_settle` rewinds interrupted campaigns to ``admitted``.
        """
        report = ServeReport()
        in_main = threading.current_thread() is threading.main_thread()
        previous_term = None
        if in_main:
            def _on_term(_signum, _frame):
                self._draining = True
                raise _ServeDrain()

            try:
                previous_term = signal.signal(signal.SIGTERM, _on_term)
            except (ValueError, OSError):  # pragma: no cover - exotic host
                previous_term = None
        started = time.monotonic()
        try:
            report.recovery = self.recover()
            while not self._draining:
                if budget_s is not None and time.monotonic() - started >= budget_s:
                    break
                if (
                    max_campaigns is not None
                    and report.executed >= max_campaigns
                ):
                    break
                self.admit()
                claimed = self.claim()
                if claimed is None:
                    if run_until_idle and not self.state.open_campaigns:
                        report.idle = True
                        break
                    # Either a long-lived server awaiting submissions,
                    # or open campaigns exist but none are claimable yet
                    # (backoff gates / deferred admission).  The polite
                    # recover pass reclaims any lease that expired while
                    # we were looping (e.g. a peer gateway died).
                    self.recover(takeover=False)
                    time.sleep(poll_s)
                    continue
                self.execute(claimed.campaign_id)
                report.executed += 1
        except (KeyboardInterrupt, _ServeDrain) as exc:
            self._draining = True
            self._drain_terminated = (
                self._drain_terminated or isinstance(exc, _ServeDrain)
            )
        finally:
            if in_main and previous_term is not None:
                signal.signal(signal.SIGTERM, previous_term)
        if self._draining:
            report.drained = True
            report.terminated = self._drain_terminated
        return report


__all__ = [
    "DEFAULT_LEASE_TTL_S",
    "Gateway",
    "RecoveryReport",
    "ServeReport",
]
