"""Deterministic random choice for scheduler decisions.

Every nondeterministic decision a real OpenMP runtime makes (which victim
to steal from, tie-breaks between runnable tasks) flows through one
:class:`DeterministicRNG` owned by the simulated runtime.  Seeding it makes
whole-program execution reproducible; sweeping the seed reproduces
schedule-dependent effects such as the floorplan class-A/class-B bimodality
the paper reports in Section V-A.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, TypeVar

T = TypeVar("T")


class DeterministicRNG:
    """A thin, explicitly-seeded wrapper over :class:`random.Random`.

    The wrapper exists so that (a) no library code ever touches the global
    ``random`` state, and (b) the call surface is small enough to audit for
    determinism.
    """

    __slots__ = ("_random", "seed")

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._random = random.Random(seed)

    def choice(self, seq: Sequence[T]) -> T:
        """Uniformly pick one element of a non-empty sequence."""
        if not seq:
            raise IndexError("choice from empty sequence")
        return seq[self._random.randrange(len(seq))]

    def randrange(self, n: int) -> int:
        """Uniform integer in ``[0, n)``."""
        return self._random.randrange(n)

    def shuffled(self, seq: Sequence[T]) -> List[T]:
        """Return a shuffled copy of ``seq`` (the input is not mutated)."""
        out = list(seq)
        self._random.shuffle(out)
        return out

    def uniform(self, lo: float, hi: float) -> float:
        """Uniform float in ``[lo, hi]``."""
        return self._random.uniform(lo, hi)

    def spawn(self, salt: int) -> "DeterministicRNG":
        """Derive an independent child RNG (e.g. one per thread)."""
        return DeterministicRNG(hash((self.seed, salt)) & 0x7FFFFFFF)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DeterministicRNG(seed={self.seed})"


def resolve_rng(rng: Optional[DeterministicRNG], seed: int = 0) -> DeterministicRNG:
    """Return ``rng`` if given, else a fresh RNG seeded with ``seed``."""
    return rng if rng is not None else DeterministicRNG(seed)
