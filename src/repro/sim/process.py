"""Generator-based simulated processes and the requests they may yield.

A process body is a generator.  Each ``yield`` hands the kernel a *request*
describing what the process wants to wait for:

``Timeout(duration)``
    Resume the process ``duration`` µs later.

:class:`~repro.sim.core.SimEvent`
    Resume when the event is triggered; the trigger value becomes the value
    of the ``yield`` expression.

:class:`~repro.sim.sync.AcquireRequest` (from ``lock.acquire()``)
    Resume once the lock has been granted to this process.

Processes terminate by returning; the return value is stored in
:attr:`Process.value` and the :attr:`Process.terminated` event fires.
Exceptions raised inside a process propagate out of
:meth:`Environment.run` wrapped in :class:`~repro.errors.ProcessError`.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.errors import ProcessError, ReproError, SimulationError
from repro.sim.core import Environment, SimEvent


class Timeout:
    """Request: advance this process's resume point by ``duration`` µs."""

    __slots__ = ("duration",)

    def __init__(self, duration: float) -> None:
        if duration < 0:
            raise ValueError(f"negative timeout: {duration!r}")
        self.duration = duration

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Timeout({self.duration!r})"


class Process:
    """A running simulated process wrapping a generator.

    Parameters
    ----------
    env:
        The simulation environment.
    generator:
        The process body.  It is started on the next tick of the event
        queue, not synchronously, so creation order does not leak into the
        schedule beyond the deterministic sequence numbers.
    name:
        Used in deadlock reports.
    """

    __slots__ = ("env", "name", "_generator", "done", "value", "terminated", "_key")

    _next_key = 0

    def __init__(
        self,
        env: Environment,
        generator: Generator[Any, Any, Any],
        name: str = "process",
    ) -> None:
        self.env = env
        self.name = name
        self._generator = generator
        self.done = False
        self.value: Any = None
        self.terminated: SimEvent = env.event()
        Process._next_key += 1
        self._key = Process._next_key
        env._register_process()
        env.schedule(0.0, self._resume, None)

    # ------------------------------------------------------------------
    def _resume(self, send_value: Any) -> None:
        """Advance the generator by one step and act on the request."""
        env = self.env
        env._note_unblocked(self._key)
        try:
            request = self._generator.send(send_value)
        except StopIteration as stop:
            self.done = True
            self.value = stop.value
            env._unregister_process()
            self.terminated.trigger(stop.value)
            return
        except ReproError as exc:
            # Library errors propagate with their precise type intact
            # (callers catch DeadlockError, RuntimeModelError, ...);
            # annotate with the process name for diagnosis.
            env._unregister_process()
            exc.add_note(f"(raised inside simulated process {self.name!r})")
            raise
        except (KeyboardInterrupt, SystemExit):
            # Never swallow or rewrap interpreter-control exceptions.
            env._unregister_process()
            raise
        except Exception as exc:
            # Application errors are wrapped so callers can distinguish
            # "a simulated process blew up" from errors of their own; the
            # original is always chained (``raise ... from``) so the full
            # traceback survives.
            env._unregister_process()
            raise ProcessError(
                f"process {self.name!r} raised {type(exc).__name__}: {exc}"
            ) from exc

        if isinstance(request, Timeout):
            env.schedule(request.duration, self._resume, None)
        elif isinstance(request, SimEvent):
            env._note_blocked(self._key, f"{self.name} waiting on event")
            request._add_waiter(self._resume)
        elif hasattr(request, "_grant_to"):  # AcquireRequest duck type
            env._note_blocked(self._key, f"{self.name} waiting on {request}")
            request._grant_to(self._resume)
        else:
            self._generator.close()
            env._unregister_process()
            raise ProcessError(
                f"process {self.name!r} yielded unsupported request "
                f"{request!r}; expected Timeout, SimEvent, or lock.acquire()"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.done else "running"
        return f"<Process {self.name} {state}>"


def run_all(env: Environment, until: Optional[float] = None) -> float:
    """Convenience wrapper: run the environment to completion."""
    return env.run(until=until)
