"""Synchronization primitives: FIFO locks and broadcast signals.

:class:`SimLock` models a contended mutex (the simulated OpenMP runtime's
internal task-pool lock and ``critical`` sections).  Waiting happens in
virtual time, so lock contention shows up in the simulated timings exactly
as it does in the paper's measurements of the real libgomp runtime.

:class:`Signal` is a re-armable broadcast used for "state changed" wakeups
(new task enqueued, task completed, thread arrived at a barrier).  Waiters
grab the *current* one-shot event via :meth:`Signal.wait` and re-check
their condition after waking; :meth:`Signal.fire` wakes everyone and
re-arms.  Because signals only fire on actual state changes, wakeup storms
terminate.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional

from repro.sim.core import Environment, SimEvent

Callback = Callable[[Any], None]


class AcquireRequest:
    """The object returned by :meth:`SimLock.acquire`; yield it to wait."""

    __slots__ = ("lock",)

    def __init__(self, lock: "SimLock") -> None:
        self.lock = lock

    def _grant_to(self, callback: Callback) -> None:
        self.lock._enqueue(callback)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<acquire {self.lock.name}>"


class SimLock:
    """A FIFO mutex living in virtual time.

    Usage inside a process generator::

        yield lock.acquire()
        yield Timeout(hold_cost)
        lock.release()

    The lock tracks :attr:`waiter_count` while held, which the runtime's
    cost model uses to scale hold times under contention (modelling cache
    coherence and retry traffic in a real runtime's task pool).
    """

    __slots__ = ("env", "name", "_held", "_waiters", "acquisitions", "contended_acquisitions")

    def __init__(self, env: Environment, name: str = "lock") -> None:
        self.env = env
        self.name = name
        self._held = False
        self._waiters: Deque[Callback] = deque()
        #: total number of successful acquisitions (statistics)
        self.acquisitions = 0
        #: acquisitions that had to wait behind another holder
        self.contended_acquisitions = 0

    # ------------------------------------------------------------------
    @property
    def held(self) -> bool:
        return self._held

    @property
    def waiter_count(self) -> int:
        """Number of processes currently queued behind the holder."""
        return len(self._waiters)

    def acquire(self) -> AcquireRequest:
        """Return a request object; yield it from a process to acquire."""
        return AcquireRequest(self)

    def release(self) -> None:
        """Release the lock, handing it to the next FIFO waiter if any."""
        if not self._held:
            raise RuntimeError(f"lock {self.name!r} released while not held")
        if self._waiters:
            callback = self._waiters.popleft()
            # The next holder takes over immediately; the lock stays held.
            self.acquisitions += 1
            self.env.schedule(0.0, callback, None)
        else:
            self._held = False

    # ------------------------------------------------------------------
    def _enqueue(self, callback: Callback) -> None:
        if not self._held:
            self._held = True
            self.acquisitions += 1
            self.env.schedule(0.0, callback, None)
        else:
            self.contended_acquisitions += 1
            self._waiters.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "held" if self._held else "free"
        return f"<SimLock {self.name} {state}, {len(self._waiters)} waiting>"


class Signal:
    """Re-armable broadcast event for condition re-check loops.

    A waiter does::

        while not condition():
            yield signal.wait()

    and any state mutator calls :meth:`fire`.  Every ``fire`` wakes all
    waiters registered on the *current* underlying event and replaces it
    with a fresh one, so late waiters never miss future fires and early
    waiters never wait on a stale event.
    """

    __slots__ = ("env", "_event", "fires")

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._event: SimEvent = env.event()
        #: number of times the signal fired (statistics)
        self.fires = 0

    def wait(self) -> SimEvent:
        """Return the current one-shot event to yield on."""
        return self._event

    def fire(self, value: Any = None) -> None:
        """Wake all current waiters and re-arm."""
        self.fires += 1
        event, self._event = self._event, self.env.event()
        event.trigger(value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Signal fires={self.fires}>"
