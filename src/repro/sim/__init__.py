"""Discrete-event simulation kernel (mini process-based DES).

This subpackage is the bottom-most substrate of the reproduction: a small,
deterministic, process-based discrete-event simulator in the style of SimPy.
The simulated OpenMP runtime (:mod:`repro.runtime`) runs each simulated
thread as one :class:`~repro.sim.process.Process` on a shared
:class:`~repro.sim.core.Environment`.

Design points:

* **Virtual time** is a float in *microseconds*.  Nothing in the kernel
  depends on wall-clock time, so identical inputs give identical schedules.
* **Determinism**: simultaneous events are ordered by an insertion sequence
  number; all randomness used by higher layers flows through
  :class:`~repro.sim.rng.DeterministicRNG`.
* **Processes** are plain Python generators that yield *requests*
  (:class:`~repro.sim.process.Timeout`, lock acquisitions,
  :class:`~repro.sim.core.SimEvent` waits).  The kernel never inspects user
  frames, so higher layers are free to drive *their own* nested generators
  (the simulated runtime drives task-body generators this way).
* **Deadlock detection**: if the event queue drains while processes are
  still blocked, :class:`repro.errors.DeadlockError` is raised with a
  description of every stuck process.
"""

from repro.sim.core import Environment, SimEvent
from repro.sim.process import Process, Timeout
from repro.sim.sync import Signal, SimLock
from repro.sim.rng import DeterministicRNG

__all__ = [
    "Environment",
    "SimEvent",
    "Process",
    "Timeout",
    "SimLock",
    "Signal",
    "DeterministicRNG",
]
