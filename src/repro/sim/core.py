"""Event queue, virtual clock, and waitable events.

The :class:`Environment` owns a binary-heap event queue of
``(time, sequence, callback, value)`` entries.  ``sequence`` is a
monotonically increasing integer that breaks ties between events scheduled
for the same virtual time, which makes the whole simulation deterministic:
two runs with identical inputs replay identical event orders.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import DeadlockError

Callback = Callable[[Any], None]


class Environment:
    """A discrete-event simulation environment with a virtual clock.

    Attributes
    ----------
    now:
        Current virtual time in microseconds.  Only :meth:`run` advances it.
    """

    __slots__ = ("now", "_queue", "_seq", "_active", "_blocked")

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: List[Tuple[float, int, Callback, Any]] = []
        self._seq: int = 0
        # Number of live processes; used for deadlock detection.
        self._active: int = 0
        # Debug registry of blocked process descriptions keyed by id.
        self._blocked: dict[int, str] = {}

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callback, value: Any = None) -> None:
        """Schedule ``callback(value)`` to run ``delay`` µs from now.

        ``delay`` must be non-negative; a zero delay schedules the callback
        after all callbacks already queued for the current instant.
        """
        if delay < 0:
            raise ValueError(f"negative delay: {delay!r}")
        self._seq += 1
        heapq.heappush(self._queue, (self.now + delay, self._seq, callback, value))

    def event(self) -> "SimEvent":
        """Create a fresh :class:`SimEvent` bound to this environment."""
        return SimEvent(self)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Run the simulation until the queue drains (or ``until`` is hit).

        Returns the final virtual time.  Raises
        :class:`~repro.errors.DeadlockError` if the queue drains while
        registered processes are still blocked.
        """
        queue = self._queue
        while queue:
            time, _seq, callback, value = heapq.heappop(queue)
            if until is not None and time > until:
                # Push the event back: the caller may resume the run later.
                heapq.heappush(queue, (time, _seq, callback, value))
                self.now = until
                return self.now
            self.now = time
            callback(value)
        if self._active > 0:
            details = "; ".join(sorted(self._blocked.values())) or "<no detail>"
            raise DeadlockError(
                f"event queue drained with {self._active} process(es) still "
                f"blocked: {details}"
            )
        return self.now

    def pending(self) -> int:
        """Number of queued events (non-zero after a truncated ``run``)."""
        return len(self._queue)

    def blocked_report(self) -> str:
        """Human-readable list of currently blocked processes."""
        return "; ".join(sorted(self._blocked.values())) or "<none>"

    # ------------------------------------------------------------------
    # Process bookkeeping (used by repro.sim.process)
    # ------------------------------------------------------------------
    def _register_process(self) -> None:
        self._active += 1

    def _unregister_process(self) -> None:
        self._active -= 1

    def _note_blocked(self, key: int, description: str) -> None:
        self._blocked[key] = description

    def _note_unblocked(self, key: int) -> None:
        self._blocked.pop(key, None)


class SimEvent:
    """A one-shot waitable event.

    Processes wait on a ``SimEvent`` by yielding it.  :meth:`trigger` wakes
    every waiter at the current virtual time, passing ``value`` into each
    waiting generator.  Waiting on an already-triggered event resumes the
    process immediately (at the current instant) with the stored value.
    """

    __slots__ = ("env", "_waiters", "triggered", "value")

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._waiters: List[Callback] = []
        self.triggered: bool = False
        self.value: Any = None

    def trigger(self, value: Any = None) -> None:
        """Fire the event, waking all current waiters with ``value``."""
        if self.triggered:
            raise RuntimeError("SimEvent triggered twice")
        self.triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for callback in waiters:
            self.env.schedule(0.0, callback, value)

    def _add_waiter(self, callback: Callback) -> None:
        if self.triggered:
            self.env.schedule(0.0, callback, self.value)
        else:
            self._waiters.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "triggered" if self.triggered else f"{len(self._waiters)} waiter(s)"
        return f"<SimEvent {state}>"
