"""Call-path pattern queries over profiles (CUBE's path navigation).

A *path pattern* selects call-tree nodes by their root-to-node region
names, with shell-style wildcards per segment and ``**`` matching any
number of segments::

    "parallel/implicit barrier/*"      children of the barrier
    "**/taskwait"                      every taskwait anywhere
    "fib_task/create@*"                creation regions under the task root
    "**/*task*/**"                     anything below a task-ish region

Matching is over ``display names`` (region name plus parameter/stub
qualifiers), case sensitive.  Patterns never match across tree
boundaries; query functions take whole profiles and search every main
tree and task tree.
"""

from __future__ import annotations

import re
from functools import lru_cache
from typing import Iterable, List, Sequence, Tuple

from repro.profiling.calltree import CallTreeNode
from repro.profiling.profile import Profile


def _segments(pattern: str) -> List[str]:
    parts = [p for p in pattern.split("/") if p != ""]
    if not parts:
        raise ValueError("empty path pattern")
    return parts


@lru_cache(maxsize=512)
def _segment_regex(segment: str) -> "re.Pattern":
    """Compile one glob segment: only ``*`` and ``?`` are special.

    Unlike :mod:`fnmatch`, brackets are literal -- display names contain
    ``[depth=3]``-style parameter qualifiers.
    """
    out = []
    for char in segment:
        if char == "*":
            out.append(".*")
        elif char == "?":
            out.append(".")
        else:
            out.append(re.escape(char))
    return re.compile("".join(out) + r"\Z")


def _match(path_names: Sequence[str], pattern: Sequence[str]) -> bool:
    """Glob-match a concrete path against pattern segments ('**' = any run)."""
    # dynamic programming over (path index, pattern index)
    memo = {}

    def go(i: int, j: int) -> bool:
        key = (i, j)
        if key in memo:
            return memo[key]
        if j == len(pattern):
            result = i == len(path_names)
        elif pattern[j] == "**":
            # consume zero or more path segments
            result = go(i, j + 1) or (i < len(path_names) and go(i + 1, j))
        elif i < len(path_names) and _segment_regex(pattern[j]).match(path_names[i]):
            result = go(i + 1, j + 1)
        else:
            result = False
        memo[key] = result
        return result

    return go(0, 0)


def match_nodes(root: CallTreeNode, pattern: str) -> List[CallTreeNode]:
    """All nodes of one tree whose root-to-node path matches ``pattern``."""
    segments = _segments(pattern)
    matches = []
    stack: List[Tuple[CallTreeNode, List[str]]] = [(root, [root.display_name()])]
    while stack:
        node, path = stack.pop()
        if _match(path, segments):
            matches.append(node)
        for child in node.children.values():
            stack.append((child, path + [child.display_name()]))
    return matches


def query(profile: Profile, pattern: str) -> List[CallTreeNode]:
    """Match ``pattern`` against every tree of the profile.

    Searches all per-thread main trees and all per-thread task trees;
    duplicate positions across threads appear once per thread (sum their
    metrics with :func:`query_time` if you want totals).
    """
    out: List[CallTreeNode] = []
    for tree in profile.main_trees:
        out.extend(match_nodes(tree, pattern))
    for per_thread in profile.task_trees:
        for tree in per_thread.values():
            out.extend(match_nodes(tree, pattern))
    return out


def query_time(profile: Profile, pattern: str, metric: str = "inclusive") -> float:
    """Summed metric over every node the pattern selects."""
    if metric not in ("inclusive", "exclusive"):
        raise ValueError(f"unknown metric {metric!r}")
    total = 0.0
    for node in query(profile, pattern):
        total += (
            node.metrics.inclusive_time if metric == "inclusive" else node.exclusive_time
        )
    return total


def query_visits(profile: Profile, pattern: str) -> int:
    return sum(node.metrics.visits for node in query(profile, pattern))
