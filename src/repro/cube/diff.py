"""Profile comparison.

Compares two runs region-by-region on the flat view -- the workflow the
paper's Section VI uses manually ("comparison of profiles of instrumented
runs with different numbers of threads shows...").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from repro.cube.query import flat_region_profile
from repro.profiling.profile import Profile


@dataclass
class DiffEntry:
    region: str
    metric: str
    before: float
    after: float

    @property
    def delta(self) -> float:
        return self.after - self.before

    @property
    def ratio(self) -> float:
        if self.before == 0:
            return float("inf") if self.after > 0 else 1.0
        return self.after / self.before

    def __str__(self) -> str:
        if self.before == 0 and self.after > 0:
            change = "[new]"
        elif self.after == 0 and self.before > 0:
            change = "[gone]"
        else:
            change = f"({self.ratio:.2f}x)"
        return (
            f"{self.region} [{self.metric}]: {self.before:.2f} -> "
            f"{self.after:.2f} {change}"
        )


def diff_profiles(
    before: Profile,
    after: Profile,
    metric: str = "exclusive",
    min_change_ratio: float = 1.05,
) -> List[DiffEntry]:
    """Regions whose summed metric changed by at least the given ratio.

    Sorted by |log ratio| descending, so the biggest movers lead.
    Regions present in only one profile appear with 0.0 on the other side.
    """
    flat_before = flat_region_profile(before)
    flat_after = flat_region_profile(after)
    entries: List[DiffEntry] = []
    for region in sorted(set(flat_before) | set(flat_after)):
        b = flat_before.get(region, {}).get(metric, 0.0)
        a = flat_after.get(region, {}).get(metric, 0.0)
        if b == 0.0 and a == 0.0:
            continue
        ratio = (a / b) if b > 0 else float("inf")
        if b == 0.0 or a == 0.0 or ratio >= min_change_ratio or ratio <= 1 / min_change_ratio:
            entries.append(DiffEntry(region, metric, b, a))

    def sort_key(entry: DiffEntry) -> Tuple[float, str]:
        # Appeared/vanished regions all rank as infinitely-large movers;
        # the region-name tie-break keeps their relative order stable.
        if entry.before <= 0 or entry.after <= 0:
            magnitude = math.inf
        else:
            magnitude = abs(math.log(entry.after / entry.before))
        return (-magnitude, entry.region)

    entries.sort(key=sort_key)
    return entries


def summarize_diff(entries: List[DiffEntry], limit: int = 10) -> str:
    lines = [str(e) for e in entries[:limit]]
    if len(entries) > limit:
        lines.append(f"... ({len(entries) - limit} more)")
    return "\n".join(lines) if lines else "(no significant changes)"
