"""Metric queries over profiles: hot paths, top regions, flat views."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.profiling.calltree import CallTreeNode
from repro.profiling.profile import Profile

try:  # numpy backs the flat aggregations; the dict path is exact too
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a baked-in dependency
    _np = None


def _flat_by_handle(profile: Profile, include_stubs: bool):
    """Group the profile's flat metric columns by region handle.

    Returns ``(regions, exclusive, inclusive, visits)`` where ``regions``
    is handle -> Region in first-encounter order and the three arrays are
    indexable by handle.  ``np.bincount`` accumulates each bin in row
    order (a sequential C fold), so the per-handle sums are bit-identical
    to the dict accumulation the pure-Python path performs.  Returns
    ``None`` when numpy is unavailable or the profile is empty.
    """
    if _np is None:
        return None
    handles, regions, exclusive, inclusive, visits = profile.flat_metric_columns(
        include_stubs
    )
    if not handles:
        return None
    h = _np.asarray(handles, dtype=_np.int64)
    minlength = int(h.max()) + 1
    excl = _np.bincount(h, weights=_np.asarray(exclusive), minlength=minlength)
    incl = _np.bincount(h, weights=_np.asarray(inclusive), minlength=minlength)
    vis = _np.bincount(
        h, weights=_np.asarray(visits, dtype=_np.float64), minlength=minlength
    )
    return regions, excl, incl, vis


def hot_path(node: CallTreeNode) -> List[CallTreeNode]:
    """Follow the heaviest-inclusive child from ``node`` to a leaf.

    The classic CUBE "hot path" expansion: at each level descend into the
    child with the largest inclusive time, stopping when the node's own
    exclusive time exceeds every child.
    """
    path = [node]
    current = node
    while current.children:
        heaviest = max(
            current.children.values(), key=lambda c: c.metrics.inclusive_time
        )
        if heaviest.metrics.inclusive_time <= current.exclusive_time:
            break
        path.append(heaviest)
        current = heaviest
    return path


def top_regions(
    profile: Profile,
    metric: str = "exclusive",
    limit: int = 10,
    include_stubs: bool = False,
) -> List[Tuple[str, float]]:
    """Program-wide region ranking by summed exclusive (or inclusive) time.

    Array-backed: the per-handle sums come from one ``bincount`` over the
    profile's flat metric columns; names combine handle subtotals in
    first-encounter order, so results match the row-by-row dict fold
    exactly (the numpy-less fallback below).
    """
    if metric not in ("exclusive", "inclusive"):
        raise ValueError(f"unknown metric {metric!r}")
    totals: Dict[str, float] = {}
    grouped = _flat_by_handle(profile, include_stubs)
    if grouped is not None:
        regions, excl, incl, _vis = grouped
        column = excl if metric == "exclusive" else incl
        for handle, region in regions.items():
            totals[region.name] = totals.get(region.name, 0.0) + float(column[handle])
    else:
        roots: List[CallTreeNode] = list(profile.main_trees)
        for per_thread in profile.task_trees:
            roots.extend(per_thread.values())
        for root in roots:
            for node in root.walk():
                if node.is_stub and not include_stubs:
                    continue
                value = node.exclusive_time if metric == "exclusive" else node.metrics.inclusive_time
                totals[node.region.name] = totals.get(node.region.name, 0.0) + value
    ranked = sorted(totals.items(), key=lambda kv: kv[1], reverse=True)
    return ranked[:limit]


def flat_region_profile(profile: Profile) -> Dict[str, Dict[str, float]]:
    """Flat (call-path-collapsed) per-region metrics.

    Returns ``region name -> {exclusive, inclusive, visits}`` summed over
    every occurrence in every tree (stub nodes excluded, since their time
    is an alternate attribution of task execution).  Array-backed via the
    profile's flat metric columns, falling back to the original dict fold
    when numpy is unavailable.
    """
    flat: Dict[str, Dict[str, float]] = {}
    grouped = _flat_by_handle(profile, include_stubs=False)
    if grouped is not None:
        regions, excl, incl, vis = grouped
        for handle, region in regions.items():
            entry = flat.setdefault(
                region.name, {"exclusive": 0.0, "inclusive": 0.0, "visits": 0}
            )
            entry["exclusive"] += float(excl[handle])
            entry["inclusive"] += float(incl[handle])
            entry["visits"] += int(vis[handle])
        return flat
    roots: List[CallTreeNode] = list(profile.main_trees)
    for per_thread in profile.task_trees:
        roots.extend(per_thread.values())
    for root in roots:
        for node in root.walk():
            if node.is_stub:
                continue
            entry = flat.setdefault(
                node.region.name, {"exclusive": 0.0, "inclusive": 0.0, "visits": 0}
            )
            entry["exclusive"] += node.exclusive_time
            entry["inclusive"] += node.metrics.inclusive_time
            entry["visits"] += node.metrics.visits
    return flat


def find_task_stub_summary(profile: Profile) -> List[Tuple[str, str, float, int]]:
    """All stub nodes: (thread/scheduling point, task construct, time, fragments).

    The Fig. 5 reading aid: how much task execution happened inside each
    scheduling point.
    """
    out = []
    for thread_id in range(profile.n_threads):
        for node in profile.main_trees[thread_id].walk():
            if node.is_stub:
                anchor = node.parent.path_names() if node.parent else "<root>"
                out.append(
                    (
                        f"t{thread_id}:{anchor}",
                        node.region.name,
                        node.metrics.inclusive_time,
                        node.metrics.visits,
                    )
                )
    return out
