"""Metric queries over profiles: hot paths, top regions, flat views."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.profiling.calltree import CallTreeNode
from repro.profiling.profile import Profile


def hot_path(node: CallTreeNode) -> List[CallTreeNode]:
    """Follow the heaviest-inclusive child from ``node`` to a leaf.

    The classic CUBE "hot path" expansion: at each level descend into the
    child with the largest inclusive time, stopping when the node's own
    exclusive time exceeds every child.
    """
    path = [node]
    current = node
    while current.children:
        heaviest = max(
            current.children.values(), key=lambda c: c.metrics.inclusive_time
        )
        if heaviest.metrics.inclusive_time <= current.exclusive_time:
            break
        path.append(heaviest)
        current = heaviest
    return path


def top_regions(
    profile: Profile,
    metric: str = "exclusive",
    limit: int = 10,
    include_stubs: bool = False,
) -> List[Tuple[str, float]]:
    """Program-wide region ranking by summed exclusive (or inclusive) time."""
    if metric not in ("exclusive", "inclusive"):
        raise ValueError(f"unknown metric {metric!r}")
    totals: Dict[str, float] = {}
    roots: List[CallTreeNode] = list(profile.main_trees)
    for per_thread in profile.task_trees:
        roots.extend(per_thread.values())
    for root in roots:
        for node in root.walk():
            if node.is_stub and not include_stubs:
                continue
            value = node.exclusive_time if metric == "exclusive" else node.metrics.inclusive_time
            totals[node.region.name] = totals.get(node.region.name, 0.0) + value
    ranked = sorted(totals.items(), key=lambda kv: kv[1], reverse=True)
    return ranked[:limit]


def flat_region_profile(profile: Profile) -> Dict[str, Dict[str, float]]:
    """Flat (call-path-collapsed) per-region metrics.

    Returns ``region name -> {exclusive, inclusive, visits}`` summed over
    every occurrence in every tree (stub nodes excluded, since their time
    is an alternate attribution of task execution).
    """
    flat: Dict[str, Dict[str, float]] = {}
    roots: List[CallTreeNode] = list(profile.main_trees)
    for per_thread in profile.task_trees:
        roots.extend(per_thread.values())
    for root in roots:
        for node in root.walk():
            if node.is_stub:
                continue
            entry = flat.setdefault(
                node.region.name, {"exclusive": 0.0, "inclusive": 0.0, "visits": 0}
            )
            entry["exclusive"] += node.exclusive_time
            entry["inclusive"] += node.metrics.inclusive_time
            entry["visits"] += node.metrics.visits
    return flat


def find_task_stub_summary(profile: Profile) -> List[Tuple[str, str, float, int]]:
    """All stub nodes: (thread/scheduling point, task construct, time, fragments).

    The Fig. 5 reading aid: how much task execution happened inside each
    scheduling point.
    """
    out = []
    for thread_id in range(profile.n_threads):
        for node in profile.main_trees[thread_id].walk():
            if node.is_stub:
                anchor = node.parent.path_names() if node.parent else "<root>"
                out.append(
                    (
                        f"t{thread_id}:{anchor}",
                        node.region.name,
                        node.metrics.inclusive_time,
                        node.metrics.visits,
                    )
                )
    return out
