"""Lossless JSON export/import of task-aware profiles.

The serialized form captures regions, tree structure, metrics (including
the min/max/sum/count statistics), stub flags, parameters, and the
memory/concurrency statistics -- everything needed to reload a profile in
another process and reproduce identical analyses.
"""

from __future__ import annotations

import json
import math
from typing import Dict, Optional

from repro.errors import ProfileFormatError
from repro.events.regions import Region, RegionRegistry, RegionType
from repro.profiling.calltree import CallTreeNode
from repro.profiling.profile import Profile

FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------
def _node_to_dict(node: CallTreeNode) -> dict:
    stats = node.metrics.durations
    return {
        "region": node.region.handle,
        "parameter": list(node.parameter) if node.parameter is not None else None,
        "stub": node.is_stub,
        "inclusive": node.metrics.inclusive_time,
        "visits": node.metrics.visits,
        "stats": {
            "count": stats.count,
            "sum": stats.total,
            "min": None if stats.empty else stats.minimum,
            "max": None if stats.empty else stats.maximum,
        },
        "counters": dict(node.metrics.counters) if node.metrics.counters else None,
        "children": [_node_to_dict(c) for c in node.children.values()],
    }


def profile_to_dict(profile: Profile) -> dict:
    # Regions are referenced by a canonical index (sorted by identity
    # key), NOT by their runtime handle -- handles depend on registration
    # order, which would make export/import roundtrips unstable.
    seen: Dict[int, Region] = {}

    def collect(node: CallTreeNode) -> None:
        for n in node.walk():
            seen[n.region.handle] = n.region

    for tree in profile.main_trees:
        collect(tree)
    for per_thread in profile.task_trees:
        for tree in per_thread.values():
            collect(tree)

    ordered = sorted(
        seen.values(),
        key=lambda r: (r.name, r.region_type.value, r.file or "", r.line or 0),
    )
    index_of = {region.handle: i for i, region in enumerate(ordered)}

    def node_dict(node: CallTreeNode) -> dict:
        data = _node_to_dict(node)
        _reindex(data, node, index_of)
        return data

    return {
        "format": FORMAT_VERSION,
        "n_threads": profile.n_threads,
        "regions": [
            {
                "name": region.name,
                "type": region.region_type.value,
                "file": region.file,
                "line": region.line,
            }
            for region in ordered
        ],
        "main_trees": [node_dict(t) for t in profile.main_trees],
        "task_trees": [
            [node_dict(t) for t in per_thread.values()]
            for per_thread in profile.task_trees
        ],
        "memory_stats": profile.memory_stats,
        # Completeness flag: present only for salvaged (lenient-mode)
        # profiles, so strict exports are byte-identical to before.
        **(
            {"salvage": profile.salvage.to_dict()}
            if profile.salvage is not None
            else {}
        ),
    }


def _reindex(data: dict, node: CallTreeNode, index_of: Dict[int, int]) -> None:
    data["region"] = index_of[node.region.handle]
    for child_data, child in zip(data["children"], node.children.values()):
        _reindex(child_data, child, index_of)


# ----------------------------------------------------------------------
# Deserialization
# ----------------------------------------------------------------------
def _node_from_dict(data: dict, regions: Dict[int, Region]) -> CallTreeNode:
    parameter = tuple(data["parameter"]) if data["parameter"] is not None else None
    node = CallTreeNode(regions[data["region"]], parameter, is_stub=data["stub"])
    node.metrics.inclusive_time = data["inclusive"]
    node.metrics.visits = data["visits"]
    stats = data["stats"]
    node.metrics.durations.count = stats["count"]
    node.metrics.durations.total = stats["sum"]
    node.metrics.durations.minimum = stats["min"] if stats["min"] is not None else math.inf
    node.metrics.durations.maximum = stats["max"] if stats["max"] is not None else -math.inf
    if data.get("counters"):
        node.metrics.add_counters(data["counters"])
    for child_data in data["children"]:
        child = _node_from_dict(child_data, regions)
        child.parent = node
        node.children[child.key] = child
    return node


def profile_from_dict(data: dict, registry: Optional[RegionRegistry] = None) -> Profile:
    if data.get("format") != FORMAT_VERSION:
        raise ProfileFormatError(data.get("format"), FORMAT_VERSION)
    registry = registry if registry is not None else RegionRegistry()
    regions: Dict[int, Region] = {}
    for index, info in enumerate(data["regions"]):
        regions[index] = registry.register(
            info["name"], RegionType(info["type"]), info["file"], info["line"]
        )
    main_trees = [_node_from_dict(d, regions) for d in data["main_trees"]]
    task_trees = []
    for per_thread in data["task_trees"]:
        trees = {}
        for tree_data in per_thread:
            tree = _node_from_dict(tree_data, regions)
            trees[tree.key] = tree
        task_trees.append(trees)
    salvage = None
    if data.get("salvage") is not None:
        from repro.profiling.salvage import SalvageReport

        salvage = SalvageReport.from_dict(data["salvage"])
    return Profile(main_trees, task_trees, data.get("memory_stats"), salvage=salvage)


def dumps(profile: Profile, indent: Optional[int] = None) -> str:
    return json.dumps(profile_to_dict(profile), indent=indent)


def dump_path(profile: Profile, path: str, indent: Optional[int] = 2) -> None:
    """Export a profile to ``path`` crash-safely.

    The JSON is staged in a temp file and renamed into place
    (:func:`repro.ioutil.atomic_write`), so an interrupted export never
    leaves a truncated or corrupt profile where a good one stood.
    """
    from repro.ioutil import atomic_write

    atomic_write(path, dumps(profile, indent=indent))


def loads(text: str) -> Profile:
    return profile_from_dict(json.loads(text))
