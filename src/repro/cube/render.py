"""Text rendering of call trees and profiles (the Fig. 5 view)."""

from __future__ import annotations

from typing import List, Optional

from repro.profiling.calltree import CallTreeNode
from repro.profiling.metrics import format_time
from repro.profiling.profile import Profile


def render_node(
    node: CallTreeNode,
    max_depth: Optional[int] = None,
    min_time: float = 0.0,
    unit: Optional[str] = None,
    show_visits: bool = True,
    _prefix: str = "",
    _is_last: bool = True,
    _depth: int = 0,
) -> str:
    """Render one call tree as an indented text tree.

    Each line shows exclusive time, inclusive time, optionally visit
    counts, and the node name; stub nodes are marked as in the paper's
    CUBE screenshots.  Children below ``min_time`` inclusive µs or beyond
    ``max_depth`` are elided with a summary line.
    """
    lines = _render_lines(node, max_depth, min_time, unit, show_visits, "", True, 0)
    return "\n".join(lines)


def _render_lines(
    node: CallTreeNode,
    max_depth: Optional[int],
    min_time: float,
    unit: Optional[str],
    show_visits: bool,
    prefix: str,
    is_last: bool,
    depth: int,
) -> List[str]:
    connector = "" if depth == 0 else ("`- " if is_last else "|- ")
    visits = f" x{node.metrics.visits}" if show_visits else ""
    excl = format_time(node.exclusive_time, unit)
    incl = format_time(node.metrics.inclusive_time, unit)
    lines = [
        f"{prefix}{connector}{node.display_name()}  "
        f"[excl {excl} | incl {incl}{visits}]"
    ]
    children = list(node.children.values())
    visible = [c for c in children if c.metrics.inclusive_time >= min_time]
    hidden = len(children) - len(visible)
    if max_depth is not None and depth >= max_depth:
        if children:
            lines.append(f"{prefix}{'   ' if is_last else '|  '}... ({len(children)} children)")
        return lines
    child_prefix = prefix + ("" if depth == 0 else ("   " if is_last else "|  "))
    for index, child in enumerate(visible):
        last = index == len(visible) - 1 and hidden == 0
        lines.extend(
            _render_lines(
                child, max_depth, min_time, unit, show_visits, child_prefix, last, depth + 1
            )
        )
    if hidden:
        lines.append(f"{child_prefix}`- ... ({hidden} below {min_time} us)")
    return lines


def render_profile(
    profile: Profile,
    thread_id: Optional[int] = None,
    max_depth: Optional[int] = None,
    min_time: float = 0.0,
    unit: Optional[str] = None,
) -> str:
    """The full Fig. 5-style view: task trees above the main call tree.

    With ``thread_id=None`` the aggregated (all-thread) view renders;
    otherwise one thread's trees.
    """
    sections: List[str] = []
    if thread_id is None:
        task_trees = profile.aggregated_task_trees()
        main = profile.aggregated_main_tree()
        scope = f"all {profile.n_threads} thread(s), aggregated"
    else:
        task_trees = profile.thread_task_trees(thread_id)
        main = profile.main_tree(thread_id)
        scope = f"thread {thread_id}"

    sections.append(f"=== Task-aware profile ({scope}) ===")
    if profile.salvage is not None and profile.salvage.partial:
        report = profile.salvage
        sections.append(
            "!!! PARTIAL PROFILE -- built in salvage mode: "
            f"{report.events_dropped} event(s) dropped, "
            f"{report.events_repaired} repaired, "
            f"{len(report.instances_quarantined)} instance(s) quarantined"
        )
        if report.instances_quarantined:
            shown = sorted(report.instances_quarantined)[:12]
            more = len(report.instances_quarantined) - len(shown)
            suffix = f" (+{more} more)" if more else ""
            sections.append(f"!!! quarantined instances: {shown}{suffix}")
        if report.run_error:
            sections.append(f"!!! run aborted: {report.run_error}")
    if task_trees:
        sections.append("--- task trees (one per task construct) ---")
        for key in sorted(task_trees, key=lambda k: (k[0].name, str(k[1]))):
            tree = task_trees[key]
            stats = tree.metrics.durations
            sections.append(
                f"[{tree.display_name()}] instances={stats.count} "
                f"mean={format_time(stats.mean, unit)} "
                f"min={format_time(stats.minimum if stats.count else 0.0, unit)} "
                f"max={format_time(stats.maximum if stats.count else 0.0, unit)}"
            )
            sections.append(render_node(tree, max_depth, min_time, unit))
    sections.append("--- main tree (implicit tasks) ---")
    sections.append(render_node(main, max_depth, min_time, unit))
    return "\n".join(sections)
