"""CUBE-style profile presentation and exchange.

The paper visualizes Score-P profiles with CUBE (Fig. 5): an expandable
call tree with inclusive/exclusive metrics, the task trees presented
"besides the main tree", and stub nodes showing the per-scheduling-point
task execution time.  This subpackage provides the text equivalent:

* :mod:`repro.cube.render` -- tree rendering (the Fig. 5 view),
* :mod:`repro.cube.query` -- metric queries (hot paths, top regions),
* :mod:`repro.cube.export` -- lossless JSON export/import of profiles,
* :mod:`repro.cube.diff` -- comparison of two profiles (e.g. two cut-off
  levels, or instrumented cost models).
"""

from repro.cube.render import render_node, render_profile
from repro.cube.query import flat_region_profile, hot_path, top_regions
from repro.cube.export import (
    dump_path,
    dumps,
    loads,
    profile_from_dict,
    profile_to_dict,
)
from repro.cube.diff import diff_profiles, DiffEntry
from repro.cube.paths import match_nodes, query, query_time, query_visits

__all__ = [
    "render_node",
    "render_profile",
    "hot_path",
    "top_regions",
    "flat_region_profile",
    "profile_to_dict",
    "profile_from_dict",
    "dumps",
    "dump_path",
    "loads",
    "diff_profiles",
    "DiffEntry",
    "match_nodes",
    "query",
    "query_time",
    "query_visits",
]
