"""BOTS *sort*: parallel mergesort over an integer array.

Divide & conquer: split in half, spawn two sort tasks, taskwait, merge.
Below the cut-off threshold the slice is sorted serially (the BOTS code
switches to sequential quicksort/insertion sort); the "no cut-off"
stress variant recurses down to tiny slices, creating ~2 * n / min_size
tasks.

The sort is *real*: the program returns the sorted list and verification
compares against ``sorted()``.  Virtual costs are charged per element
compared/moved.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.bots.common import BotsProgram, first_result, require_size, single_producer_region
from repro.sim.rng import DeterministicRNG

#: virtual µs per element merged
MERGE_COST_US = 0.035
#: virtual µs per element of serial sort (times log2 of the slice length)
SERIAL_COST_US = 0.030
#: smallest slice the no-cut-off variant still splits
MIN_SLICE = 4


def make_input(n: int, seed: int = 1234) -> List[int]:
    rng = DeterministicRNG(seed)
    return [rng.randrange(1_000_000) for _ in range(n)]


def _merge(left: List[int], right: List[int]) -> List[int]:
    out: List[int] = []
    i = j = 0
    while i < len(left) and j < len(right):
        if left[i] <= right[j]:
            out.append(left[i])
            i += 1
        else:
            out.append(right[j])
            j += 1
    out.extend(left[i:])
    out.extend(right[j:])
    return out


def sort_task(ctx, data: List[int], threshold: int):
    n = len(data)
    if n <= threshold or n <= MIN_SLICE:
        result = sorted(data)
        yield ctx.compute(SERIAL_COST_US * n * max(math.log2(n), 1.0) if n else 0.0)
        return result
    mid = n // 2
    left = yield ctx.spawn(sort_task, data[:mid], threshold)
    right = yield ctx.spawn(sort_task, data[mid:], threshold)
    yield ctx.taskwait()
    merged = _merge(left.result, right.result)
    yield ctx.compute(MERGE_COST_US * n)
    return merged


def task_count(n: int, threshold: int) -> int:
    """Task instances created for an n-element sort."""

    def count(m: int) -> int:
        if m <= threshold or m <= MIN_SLICE:
            return 1
        mid = m // 2
        return 1 + count(mid) + count(m - mid)

    return count(n)


SIZES = {
    "test": {"n": 128},
    "small": {"n": 2048},
    "medium": {"n": 8192},
}

DEFAULT_THRESHOLD = {"test": 32, "small": 256, "medium": 512}


def make_program(
    size: str = "small",
    threshold: Optional[int] = None,
    use_cutoff: bool = True,
    seed: int = 1234,
) -> BotsProgram:
    """``use_cutoff=False`` recurses to MIN_SLICE-sized slices."""
    params = require_size(SIZES, size, "sort")
    n = params["n"]
    if use_cutoff:
        if threshold is None:
            threshold = DEFAULT_THRESHOLD[size]
    else:
        threshold = MIN_SLICE
    data = make_input(n, seed)
    expected = sorted(data)

    def verify(result) -> bool:
        return first_result(result) == expected

    body = single_producer_region(sort_task, data, threshold)
    return BotsProgram(
        name="sort",
        variant="cutoff" if use_cutoff else "nocutoff",
        body=body,
        verify=verify,
        meta={
            "n": n,
            "threshold": threshold,
            "expected_tasks": task_count(n, threshold),
        },
    )
