"""BOTS *fib*: Fibonacci by binary task recursion.

The paper's pathological small-task example: every task does two child
spawns, a taskwait, and one addition.  Without a cut-off, ``fib(n)``
creates ``2*F(n+1) - 1`` task instances whose bodies are ~1 µs -- the
granularity the paper blames for fib's 310 % / 527 % overheads.

The cut-off variant spawns tasks down to ``cutoff`` recursion levels and
computes serially below, charging the serial subtree's work analytically
(one Compute per subtree) so simulated time matches the fully-unrolled
recursion while the simulation itself stays fast.
"""

from __future__ import annotations

from typing import Optional

from repro.bots.common import BotsProgram, first_result, require_size, single_producer_region

#: virtual µs per addition/leaf -- tuned for a ~1.5 µs mean task (Table I)
LEAF_COST_US = 0.40
ADD_COST_US = 0.50


def fib_value(n: int) -> int:
    """Iterative Fibonacci (ground truth for verification)."""
    a, b = 0, 1
    for _ in range(n):
        a, b = b, a + b
    return a


def call_count(n: int) -> int:
    """Number of calls in the naive recursion tree of fib(n): 2*F(n+1)-1."""
    return 2 * fib_value(n + 1) - 1


def task_count(n: int, cutoff: Optional[int]) -> int:
    """Explicit task instances created for fib(n) with the given cut-off.

    Every recursive call above the cut-off level is one task (the root is
    spawned too).  ``cutoff=None`` means no cut-off.
    """

    def tasks(m: int, depth: int) -> int:
        if m < 2:
            return 1
        if cutoff is not None and depth >= cutoff:
            return 1
        return 1 + tasks(m - 1, depth + 1) + tasks(m - 2, depth + 1)

    return tasks(n, 0)


def serial_cost(n: int) -> float:
    """Virtual cost of computing fib(n) serially (whole recursion tree)."""
    if n < 2:
        return LEAF_COST_US
    # internal nodes = F(n+1)-1, leaves = F(n+1)
    leaves = fib_value(n + 1)
    return (leaves - 1) * ADD_COST_US + leaves * LEAF_COST_US


def fib_task(ctx, n: int, depth: int = 0, cutoff: Optional[int] = None,
             depth_parameter: bool = False):
    """The task body.  ``depth_parameter`` enables Table IV-style
    parameter instrumentation (one profile sub-tree per recursion level).
    """
    if n < 2:
        yield ctx.compute(LEAF_COST_US)
        return n
    if cutoff is not None and depth >= cutoff:
        yield ctx.compute(serial_cost(n))
        return fib_value(n)
    parameter = ("depth", depth + 1) if depth_parameter else None
    a = yield ctx.spawn(
        fib_task, n - 1, depth + 1, cutoff, depth_parameter, parameter=parameter
    )
    b = yield ctx.spawn(
        fib_task, n - 2, depth + 1, cutoff, depth_parameter, parameter=parameter
    )
    yield ctx.taskwait()
    yield ctx.compute(ADD_COST_US)
    return a.result + b.result


SIZES = {
    "test": {"n": 10},
    "small": {"n": 16},
    "medium": {"n": 20},
}

DEFAULT_CUTOFF = {"test": 4, "small": 10, "medium": 14}


def make_program(
    size: str = "small",
    cutoff: Optional[int] = None,
    use_cutoff: bool = False,
    depth_parameter: bool = False,
) -> BotsProgram:
    """Build a fib program.

    ``use_cutoff=True`` with ``cutoff=None`` picks the size's default
    cut-off level (the BOTS "-Y" manual cut-off mode).
    """
    params = require_size(SIZES, size, "fib")
    n = params["n"]
    if use_cutoff and cutoff is None:
        cutoff = DEFAULT_CUTOFF[size]
    expected = fib_value(n)

    def verify(result) -> bool:
        return first_result(result) == expected

    body = single_producer_region(fib_task, n, 0, cutoff, depth_parameter)
    return BotsProgram(
        name="fib",
        variant="cutoff" if cutoff is not None else "nocutoff",
        body=body,
        verify=verify,
        meta={
            "n": n,
            "cutoff": cutoff,
            "expected_value": expected,
            "expected_tasks": task_count(n, cutoff),
        },
    )
