"""The Barcelona OpenMP Tasks Suite (BOTS), re-implemented.

Duran et al., ICPP 2009.  Nine task-parallel kernels, each expressed as a
task program for the simulated runtime (:mod:`repro.runtime`) and each
computing a *real, verifiable* result:

========== ===================================================== =========
kernel     computation                                           variants
========== ===================================================== =========
fib        Fibonacci numbers by binary task recursion            cutoff
nqueens    count of n-queens solutions (backtracking)            cutoff
sort       mergesort of an integer array                         cutoff
strassen   Strassen matrix multiplication (numpy blocks)         cutoff
sparselu   LU factorization of a sparse block matrix             single/for
floorplan  optimal cell placement by branch & bound              cutoff
health     multi-level health-system simulation                  cutoff
alignment  pairwise sequence alignment scores (Needleman-Wunsch) --
fft        Cooley-Tukey FFT                                      cutoff
========== ===================================================== =========

Virtual compute costs are charged per unit of real work with per-kernel
constants calibrated so the *relative* task granularities of the paper's
Table I hold (fib/nqueens/health tasks at the ~1 µs scale, floorplan ~7x
larger, strassen two orders of magnitude larger).

Use :func:`repro.bots.registry.get_program` /
:func:`repro.bots.registry.list_programs` to obtain runnable programs.
"""

from repro.bots.common import BotsProgram, single_producer_region
from repro.bots.registry import get_program, list_programs, PROGRAMS

__all__ = [
    "BotsProgram",
    "single_producer_region",
    "get_program",
    "list_programs",
    "PROGRAMS",
]
