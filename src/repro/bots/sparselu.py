"""BOTS *sparselu*: LU factorization of a sparse block matrix.

The matrix is NB x NB blocks of BS x BS floats; a fixed sparsity pattern
leaves some blocks empty (None).  Per outer iteration ``kk``:

1. ``lu0``   -- factorize the diagonal block in place (serial),
2. ``fwd``   -- one task per non-empty block of row ``kk`` (forward
   substitution),
3. ``bdiv``  -- one task per non-empty block of column ``kk``,
4. ``bmod``  -- one task per affected trailing block (update; fills in
   blocks that were empty, as in BOTS).

Two creation variants, exactly the distinction the paper draws:

* ``single`` -- one thread creates *all* tasks from inside a single
  construct ("For sparselu the version that creates tasks in a single
  construct was used"); taskwaits separate the phases.
* ``for``    -- every thread creates the tasks of its stripe of the
  iteration space (round-robin by thread id), with barriers between
  phases -- the distributed-creation variant.

The factorization is real (no pivoting, diagonally dominant input keeps
it stable) and verified by multiplying L·U back together.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.bots.common import BotsProgram, require_size

#: virtual µs per fused multiply-add in block kernels
FLOP_COST_US = 0.05

BlockMatrix = List[List[Optional[np.ndarray]]]


# ----------------------------------------------------------------------
# Matrix construction / ground truth
# ----------------------------------------------------------------------
def structure(nb: int) -> List[List[bool]]:
    """BOTS-like sparsity: dense diagonal band plus scattered blocks."""
    present = [[False] * nb for _ in range(nb)]
    for i in range(nb):
        for j in range(nb):
            if abs(i - j) <= 1 or (i + j) % 3 == 0:
                present[i][j] = True
    return present


def genmat(nb: int, bs: int, seed: int = 5) -> BlockMatrix:
    """Diagonally dominant block matrix with the BOTS-style pattern."""
    rng = np.random.default_rng(seed)
    present = structure(nb)
    blocks: BlockMatrix = [[None] * nb for _ in range(nb)]
    for i in range(nb):
        for j in range(nb):
            if present[i][j]:
                block = rng.standard_normal((bs, bs))
                if i == j:
                    block += np.eye(bs) * (4.0 * nb * bs)
                blocks[i][j] = block
    return blocks


def to_dense(blocks: BlockMatrix, bs: int) -> np.ndarray:
    nb = len(blocks)
    dense = np.zeros((nb * bs, nb * bs))
    for i in range(nb):
        for j in range(nb):
            if blocks[i][j] is not None:
                dense[i * bs : (i + 1) * bs, j * bs : (j + 1) * bs] = blocks[i][j]
    return dense


def lu_to_lu_product(lu: np.ndarray) -> np.ndarray:
    """Rebuild L @ U from a packed in-place LU factor (unit lower L)."""
    lower = np.tril(lu, -1) + np.eye(lu.shape[0])
    upper = np.triu(lu)
    return lower @ upper


# ----------------------------------------------------------------------
# Block kernels (the BOTS lu0/fwd/bdiv/bmod, numpy-backed)
# ----------------------------------------------------------------------
def lu0(diag: np.ndarray) -> None:
    n = diag.shape[0]
    for k in range(n):
        diag[k + 1 :, k] /= diag[k, k]
        diag[k + 1 :, k + 1 :] -= np.outer(diag[k + 1 :, k], diag[k, k + 1 :])


def fwd(diag: np.ndarray, col_block: np.ndarray) -> None:
    """Solve L * X = col_block in place (L unit lower from diag)."""
    n = diag.shape[0]
    for k in range(n):
        col_block[k + 1 :, :] -= np.outer(diag[k + 1 :, k], col_block[k, :])


def bdiv(diag: np.ndarray, row_block: np.ndarray) -> None:
    """Solve X * U = row_block in place (U upper from diag)."""
    n = diag.shape[0]
    for k in range(n):
        row_block[:, k] /= diag[k, k]
        row_block[:, k + 1 :] -= np.outer(row_block[:, k], diag[k, k + 1 :])


def bmod(row: np.ndarray, col: np.ndarray, inner: np.ndarray) -> None:
    inner -= row @ col


# ----------------------------------------------------------------------
# Task bodies
# ----------------------------------------------------------------------
def fwd_task(ctx, blocks: BlockMatrix, bs: int, kk: int, jj: int):
    fwd(blocks[kk][kk], blocks[kk][jj])
    yield ctx.compute(FLOP_COST_US * bs * bs * bs / 2)


def bdiv_task(ctx, blocks: BlockMatrix, bs: int, kk: int, ii: int):
    bdiv(blocks[kk][kk], blocks[ii][kk])
    yield ctx.compute(FLOP_COST_US * bs * bs * bs / 2)


def bmod_task(ctx, blocks: BlockMatrix, bs: int, kk: int, ii: int, jj: int):
    if blocks[ii][jj] is None:
        blocks[ii][jj] = np.zeros((bs, bs))
    bmod(blocks[ii][kk], blocks[kk][jj], blocks[ii][jj])
    yield ctx.compute(FLOP_COST_US * bs * bs * bs)


def _factorize_single(ctx, blocks: BlockMatrix, nb: int, bs: int):
    """The `single` variant: one producer thread, taskwait between phases."""
    for kk in range(nb):
        lu0(blocks[kk][kk])
        yield ctx.compute(FLOP_COST_US * bs * bs * bs / 3)
        for jj in range(kk + 1, nb):
            if blocks[kk][jj] is not None:
                yield ctx.spawn(fwd_task, blocks, bs, kk, jj)
        for ii in range(kk + 1, nb):
            if blocks[ii][kk] is not None:
                yield ctx.spawn(bdiv_task, blocks, bs, kk, ii)
        yield ctx.taskwait()
        for ii in range(kk + 1, nb):
            if blocks[ii][kk] is None:
                continue
            for jj in range(kk + 1, nb):
                if blocks[kk][jj] is not None:
                    yield ctx.spawn(bmod_task, blocks, bs, kk, ii, jj)
        yield ctx.taskwait()


def sparselu_single_region(blocks: BlockMatrix, nb: int, bs: int):
    def region(ctx):
        if (yield ctx.single()):
            yield from _factorize_single(ctx, blocks, nb, bs)
            return True
        return None

    region.__name__ = "region@sparselu_single"
    return region


def sparselu_for_region(blocks: BlockMatrix, nb: int, bs: int):
    """The `for` variant: all threads create tasks for their stripes."""

    def region(ctx):
        me, team = ctx.thread_id, ctx.n_threads
        for kk in range(nb):
            if me == 0:
                lu0(blocks[kk][kk])
                yield ctx.compute(FLOP_COST_US * bs * bs * bs / 3)
            yield ctx.barrier()
            for jj in range(kk + 1, nb):
                if jj % team == me and blocks[kk][jj] is not None:
                    yield ctx.spawn(fwd_task, blocks, bs, kk, jj)
            for ii in range(kk + 1, nb):
                if ii % team == me and blocks[ii][kk] is not None:
                    yield ctx.spawn(bdiv_task, blocks, bs, kk, ii)
            yield ctx.barrier()
            for ii in range(kk + 1, nb):
                if ii % team != me or blocks[ii][kk] is None:
                    continue
                for jj in range(kk + 1, nb):
                    if blocks[kk][jj] is not None:
                        yield ctx.spawn(bmod_task, blocks, bs, kk, ii, jj)
            yield ctx.barrier()
        return True if me == 0 else None

    region.__name__ = "region@sparselu_for"
    return region


SIZES = {
    "test": {"nb": 4, "bs": 8},
    "small": {"nb": 6, "bs": 12},
    "medium": {"nb": 10, "bs": 16},
}


def make_program(size: str = "small", variant: str = "single", seed: int = 5) -> BotsProgram:
    params = require_size(SIZES, size, "sparselu")
    nb, bs = params["nb"], params["bs"]
    blocks = genmat(nb, bs, seed)
    original = to_dense(blocks, bs)

    if variant == "single":
        body = sparselu_single_region(blocks, nb, bs)
    elif variant == "for":
        body = sparselu_for_region(blocks, nb, bs)
    else:
        raise ValueError(f"unknown sparselu variant {variant!r}; use 'single' or 'for'")

    def verify(result) -> bool:
        # The factorization happened in place; rebuild L@U and compare.
        packed = to_dense(blocks, bs)
        product = lu_to_lu_product(packed)
        # Fill-in means the factor covers at least the original pattern;
        # compare where the original matrix was defined OR filled in.
        return bool(np.allclose(product, original, rtol=1e-6, atol=1e-6))

    return BotsProgram(
        name="sparselu",
        variant=variant,
        body=body,
        verify=verify,
        meta={"nb": nb, "bs": bs},
    )
