"""BOTS *strassen*: Strassen matrix multiplication.

Each recursion level splits A and B into 2x2 blocks and spawns seven
sub-multiplication tasks (M1..M7), then combines.  Below the cut-off
block size the product is computed directly (numpy matmul), charged with
a cubic flop cost.  Strassen is the paper's counter-example: its tasks
are ~two orders of magnitude larger than fib's (Table I: 149 µs mean vs
1.49 µs), so instrumentation overhead is negligible in every figure.

Verification compares against ``A @ B`` exactly (the block arithmetic is
the identical float operations re-associated, so we allow a small
tolerance).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.bots.common import BotsProgram, first_result, require_size, single_producer_region

#: virtual µs per fused multiply-add of the direct base-case product
FLOP_COST_US = 0.25
#: virtual µs per element of the add/combine steps
ADD_COST_US = 0.010


def make_inputs(n: int, seed: int = 7):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    b = rng.standard_normal((n, n))
    return a, b


def strassen_task(ctx, a: np.ndarray, b: np.ndarray, threshold: int):
    n = a.shape[0]
    if n <= threshold:
        yield ctx.compute(FLOP_COST_US * n * n * n, counters={"flops": 2 * n * n * n})
        return a @ b
    h = n // 2
    a11, a12, a21, a22 = a[:h, :h], a[:h, h:], a[h:, :h], a[h:, h:]
    b11, b12, b21, b22 = b[:h, :h], b[:h, h:], b[h:, :h], b[h:, h:]
    # Seven Strassen products, one task each (the BOTS decomposition).
    yield ctx.compute(ADD_COST_US * 10 * h * h)  # the ten block additions
    m1 = yield ctx.spawn(strassen_task, a11 + a22, b11 + b22, threshold)
    m2 = yield ctx.spawn(strassen_task, a21 + a22, b11, threshold)
    m3 = yield ctx.spawn(strassen_task, a11, b12 - b22, threshold)
    m4 = yield ctx.spawn(strassen_task, a22, b21 - b11, threshold)
    m5 = yield ctx.spawn(strassen_task, a11 + a12, b22, threshold)
    m6 = yield ctx.spawn(strassen_task, a21 - a11, b11 + b12, threshold)
    m7 = yield ctx.spawn(strassen_task, a12 - a22, b21 + b22, threshold)
    yield ctx.taskwait()
    c11 = m1.result + m4.result - m5.result + m7.result
    c12 = m3.result + m5.result
    c21 = m2.result + m4.result
    c22 = m1.result - m2.result + m3.result + m6.result
    yield ctx.compute(ADD_COST_US * 8 * h * h)  # the combine additions
    out = np.empty_like(a)
    out[:h, :h], out[:h, h:], out[h:, :h], out[h:, h:] = c11, c12, c21, c22
    return out


def task_count(n: int, threshold: int) -> int:
    def count(m: int) -> int:
        if m <= threshold:
            return 1
        return 1 + 7 * count(m // 2)

    return count(n)


SIZES = {
    "test": {"n": 32},
    "small": {"n": 64},
    "medium": {"n": 128},
}

DEFAULT_THRESHOLD = {"test": 16, "small": 16, "medium": 32}
NOCUTOFF_THRESHOLD = {"test": 8, "small": 8, "medium": 8}


def make_program(
    size: str = "small",
    threshold: Optional[int] = None,
    use_cutoff: bool = True,
    seed: int = 7,
) -> BotsProgram:
    params = require_size(SIZES, size, "strassen")
    n = params["n"]
    if threshold is None:
        threshold = (DEFAULT_THRESHOLD if use_cutoff else NOCUTOFF_THRESHOLD)[size]
    a, b = make_inputs(n, seed)
    expected = a @ b

    def verify(result) -> bool:
        value = first_result(result)
        return value is not None and np.allclose(value, expected, rtol=1e-6, atol=1e-6)

    body = single_producer_region(strassen_task, a, b, threshold)
    return BotsProgram(
        name="strassen",
        variant="cutoff" if use_cutoff else "nocutoff",
        body=body,
        verify=verify,
        meta={
            "n": n,
            "threshold": threshold,
            "expected_tasks": task_count(n, threshold),
        },
    )
