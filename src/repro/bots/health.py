"""BOTS *health*: multi-level health-system simulation.

A tree of villages (branching factor 4): leaf villages generate patients;
each simulation step descends the tree with one task per child village,
then processes the local hospital queue.  Patients not treatable at a
level are referred upward, so the root sees the aggregated load --
structurally the same columnar-simulation shape as the original BOTS
kernel, with the same cut-off option (below the cut-off level the
sub-tree is simulated serially inside the task).

All randomness is hash-based per (village, step), so the simulation's
functional result -- total patients treated per level -- is identical for
any thread count and schedule, which verification exploits.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.bots.common import BotsProgram, first_result, require_size, single_producer_region

#: virtual µs per patient processed at a hospital
PATIENT_COST_US = 0.9
#: virtual µs of fixed per-village bookkeeping per step
VILLAGE_COST_US = 0.6

BRANCHING = 4


def _patients_generated(village_id: int, step: int) -> int:
    """Deterministic pseudo-random patient arrivals at a leaf village."""
    h = hash((village_id, step, 0x9E3779B9)) & 0xFFFF
    return h % 3  # 0..2 new patients per step


def _referred(village_id: int, step: int, treated: int) -> int:
    """How many of the treated patients get referred upward."""
    if treated == 0:
        return 0
    h = hash((village_id, step, 0x85EBCA6B)) & 0xFFFF
    return (h % (treated + 1)) // 2


def simulate_village_serial(
    village_id: int, level: int, step: int, max_level: int
) -> Tuple[int, int]:
    """Serial simulation of one village sub-tree for one step.

    Returns ``(treated, referred_up)``.
    """
    incoming = 0
    treated = 0
    if level == max_level:  # leaf
        incoming = _patients_generated(village_id, step)
    else:
        for c in range(BRANCHING):
            child_id = village_id * BRANCHING + c + 1
            sub_treated, sub_referred = simulate_village_serial(
                child_id, level + 1, step, max_level
            )
            treated += sub_treated
            incoming += sub_referred
    locally_treated = incoming
    referred = _referred(village_id, step, locally_treated)
    treated += locally_treated - referred
    return treated, referred


def serial_cost(level: int, max_level: int, treated_hint: int) -> float:
    """Approximate virtual cost of a serial sub-tree simulation."""
    villages = sum(BRANCHING ** d for d in range(max_level - level + 1))
    return villages * VILLAGE_COST_US + treated_hint * PATIENT_COST_US


def health_task(
    ctx,
    village_id: int,
    level: int,
    step: int,
    max_level: int,
    cutoff: Optional[int] = None,
):
    """Simulate one village (and its sub-tree) for one step."""
    yield ctx.compute(VILLAGE_COST_US)
    if level == max_level:
        incoming = _patients_generated(village_id, step)
        yield ctx.compute(PATIENT_COST_US * incoming)
        referred = _referred(village_id, step, incoming)
        return incoming - referred, referred
    if cutoff is not None and level >= cutoff:
        treated, referred = simulate_village_serial(village_id, level, step, max_level)
        yield ctx.compute(serial_cost(level, max_level, treated))
        return treated, referred
    handles = []
    for c in range(BRANCHING):
        child_id = village_id * BRANCHING + c + 1
        handles.append(
            (yield ctx.spawn(health_task, child_id, level + 1, step, max_level, cutoff))
        )
    yield ctx.taskwait()
    treated = 0
    incoming = 0
    for handle in handles:
        sub_treated, sub_referred = handle.result
        treated += sub_treated
        incoming += sub_referred
    yield ctx.compute(PATIENT_COST_US * incoming)
    referred = _referred(village_id, step, incoming)
    treated += incoming - referred
    return treated, referred


def health_steps_task(ctx, steps: int, max_level: int, cutoff: Optional[int]):
    """Root task: run the whole simulation for several steps."""
    total_treated = 0
    for step in range(steps):
        handle = yield ctx.spawn(health_task, 0, 0, step, max_level, cutoff)
        yield ctx.taskwait()
        treated, _referred = handle.result
        total_treated += treated
    return total_treated


def expected_total(steps: int, max_level: int) -> int:
    total = 0
    for step in range(steps):
        treated, referred = simulate_village_serial(0, 0, step, max_level)
        total += treated  # patients referred past the root leave untreated
    return total


SIZES = {
    "test": {"levels": 2, "steps": 2},
    "small": {"levels": 3, "steps": 6},
    "medium": {"levels": 4, "steps": 6},
}

DEFAULT_CUTOFF = {"test": 1, "small": 2, "medium": 2}


def make_program(
    size: str = "small",
    cutoff: Optional[int] = None,
    use_cutoff: bool = False,
) -> BotsProgram:
    params = require_size(SIZES, size, "health")
    levels, steps = params["levels"], params["steps"]
    if use_cutoff and cutoff is None:
        cutoff = DEFAULT_CUTOFF[size]
    expected = expected_total(steps, levels)

    def verify(result) -> bool:
        return first_result(result) == expected

    body = single_producer_region(health_steps_task, steps, levels, cutoff)
    return BotsProgram(
        name="health",
        variant="cutoff" if cutoff is not None else "nocutoff",
        body=body,
        verify=verify,
        meta={
            "levels": levels,
            "steps": steps,
            "cutoff": cutoff,
            "expected_treated": expected,
        },
    )
