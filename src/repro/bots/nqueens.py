"""BOTS *nqueens*: count all placements of n queens on an n x n board.

The paper's Section VI case study.  Recursive backtracking: a task per
feasible placement of the queen in the next row.  The no-cut-off version
continuously creates tiny tasks ("the mean exclusive execution time of a
task was only 0.30 µs while the mean time to create a task was 0.86 µs");
the cut-off version stops task creation at a recursion level and solves
serially below -- the paper's fix yielding a 16x kernel speedup.

``depth_parameter=True`` reproduces the paper's parameter-instrumentation
experiment (Table IV): every task instance is attributed to a per-depth
profile sub-tree.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.bots.common import BotsProgram, first_result, require_size, single_producer_region

#: virtual µs per board-feasibility check (the task body's work unit)
CHECK_COST_US = 0.04
#: per-task combination cost after taskwait
COMBINE_COST_US = 0.10

#: known solution counts for verification
SOLUTIONS = {4: 2, 5: 10, 6: 4, 7: 40, 8: 92, 9: 352, 10: 724, 11: 2680, 12: 14200}


def _ok(placement: Tuple[int, ...], row: int, col: int) -> bool:
    """May a queen go at (row, col) given earlier rows' columns?"""
    for prev_row, prev_col in enumerate(placement):
        if prev_col == col or abs(prev_col - col) == row - prev_row:
            return False
    return True


def solve_serial(n: int, placement: Tuple[int, ...]) -> Tuple[int, int]:
    """Count solutions below ``placement`` serially.

    Returns ``(solutions, nodes)`` where nodes counts the explored search
    tree nodes (for analytic cost charging).
    """
    row = len(placement)
    if row == n:
        return 1, 1
    solutions = 0
    nodes = 1
    for col in range(n):
        if _ok(placement, row, col):
            sub_solutions, sub_nodes = solve_serial(n, placement + (col,))
            solutions += sub_solutions
            nodes += sub_nodes
    return solutions, nodes


def tree_nodes(n: int, cutoff: Optional[int]) -> int:
    """Number of task instances the tasked search creates."""

    def count(placement: Tuple[int, ...], depth: int) -> int:
        row = len(placement)
        if row == n:
            return 1
        if cutoff is not None and depth >= cutoff:
            return 1
        total = 1
        for col in range(n):
            if _ok(placement, row, col):
                total += count(placement + (col,), depth + 1)
        return total

    return count((), 0)  # the root call is itself spawned as a task


def nqueens_task(
    ctx,
    n: int,
    placement: Tuple[int, ...] = (),
    depth: int = 0,
    cutoff: Optional[int] = None,
    depth_parameter: bool = False,
):
    row = len(placement)
    yield ctx.compute(CHECK_COST_US * n)  # feasibility scan of this row
    if row == n:
        return 1
    if cutoff is not None and depth >= cutoff:
        solutions, nodes = solve_serial(n, placement)
        # charge the serial subtree analytically (row scans per node)
        yield ctx.compute(CHECK_COST_US * n * max(nodes - 1, 0))
        return solutions
    handles = []
    parameter = ("depth", depth + 1) if depth_parameter else None
    for col in range(n):
        if _ok(placement, row, col):
            handle = yield ctx.spawn(
                nqueens_task,
                n,
                placement + (col,),
                depth + 1,
                cutoff,
                depth_parameter,
                parameter=parameter,
            )
            handles.append(handle)
    yield ctx.taskwait()
    yield ctx.compute(COMBINE_COST_US)
    return sum(handle.result for handle in handles)


SIZES = {
    "test": {"n": 6},
    "small": {"n": 8},
    "medium": {"n": 10},
}

DEFAULT_CUTOFF = {"test": 2, "small": 2, "medium": 3}


def make_program(
    size: str = "small",
    cutoff: Optional[int] = None,
    use_cutoff: bool = False,
    depth_parameter: bool = False,
) -> BotsProgram:
    params = require_size(SIZES, size, "nqueens")
    n = params["n"]
    if use_cutoff and cutoff is None:
        cutoff = DEFAULT_CUTOFF[size]
    expected = SOLUTIONS[n]

    def verify(result) -> bool:
        return first_result(result) == expected

    body = single_producer_region(nqueens_task, n, (), 0, cutoff, depth_parameter)
    return BotsProgram(
        name="nqueens",
        variant="cutoff" if cutoff is not None else "nocutoff",
        body=body,
        verify=verify,
        meta={
            "n": n,
            "cutoff": cutoff,
            "expected_value": expected,
            "expected_tasks": tree_nodes(n, cutoff),
        },
    )
