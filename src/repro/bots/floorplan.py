"""BOTS *floorplan*: optimal cell placement by branch & bound.

Place N rectangular cells (each with a set of allowed orientations) onto
a grid so that the bounding-box area of the occupied cells is minimal.
The search spawns one task per (cell orientation x anchor position) at
each level and prunes branches whose partial area already reaches the
best known area -- which the tasks share through a ``critical`` section,
making floorplan the kernel whose schedule-dependent pruning produces the
run-to-run variability the paper observed (the class A/B bimodality of
Section V-A).

Below the cut-off level the search continues serially inside the task.
Verification checks the returned minimal area against an exhaustive
serial search.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.bots.common import BotsProgram, first_result, require_size, single_producer_region

#: virtual µs per candidate placement evaluated
EVAL_COST_US = 6.5

Cell = Tuple[Tuple[int, int], ...]  # allowed (width, height) orientations
Placement = Tuple[Tuple[int, int, int, int], ...]  # (x, y, w, h) per placed cell

#: deterministic benchmark cell sets (width, height) with 2 orientations
CELL_SETS = {
    5: (
        ((1, 4), (4, 1)),
        ((2, 3), (3, 2)),
        ((2, 2),),
        ((1, 3), (3, 1)),
        ((2, 1), (1, 2)),
    ),
    6: (
        ((1, 4), (4, 1)),
        ((2, 3), (3, 2)),
        ((2, 2),),
        ((1, 3), (3, 1)),
        ((2, 1), (1, 2)),
        ((1, 1),),
    ),
    7: (
        ((1, 4), (4, 1)),
        ((2, 3), (3, 2)),
        ((2, 2),),
        ((1, 3), (3, 1)),
        ((2, 1), (1, 2)),
        ((1, 1),),
        ((1, 2), (2, 1)),
    ),
}


class SharedBest:
    """The bound shared between tasks (guarded by a critical section)."""

    __slots__ = ("area",)

    def __init__(self, upper_bound: int) -> None:
        self.area = upper_bound


def _overlaps(placement: Placement, x: int, y: int, w: int, h: int) -> bool:
    for px, py, pw, ph in placement:
        if x < px + pw and px < x + w and y < py + ph and py < y + h:
            return True
    return False


def _bounding_area(placement: Placement) -> int:
    if not placement:
        return 0
    max_x = max(x + w for x, y, w, h in placement)
    max_y = max(y + h for x, y, w, h in placement)
    return max_x * max_y


def _candidates(placement: Placement, cell: Cell, grid: int):
    """Anchor positions: origin, or adjacent to an already placed cell."""
    anchors = {(0, 0)}
    for px, py, pw, ph in placement:
        anchors.add((px + pw, py))
        anchors.add((px, py + ph))
    for w, h in cell:
        for x, y in sorted(anchors):
            if x + w <= grid and y + h <= grid:
                if not _overlaps(placement, x, y, w, h):
                    yield x, y, w, h


def solve_serial(
    cells: Tuple[Cell, ...],
    grid: int,
    placement: Placement = (),
    index: int = 0,
    best: Optional[int] = None,
) -> Tuple[int, int]:
    """Exhaustive serial search; returns (best area, evaluated candidates)."""
    if best is None:
        best = grid * grid + 1
    if index == len(cells):
        return min(best, _bounding_area(placement)), 1
    evaluated = 1
    for x, y, w, h in _candidates(placement, cells[index], grid):
        partial = placement + ((x, y, w, h),)
        if _bounding_area(partial) >= best:
            evaluated += 1
            continue
        sub_best, sub_eval = solve_serial(cells, grid, partial, index + 1, best)
        best = min(best, sub_best)
        evaluated += sub_eval
    return best, evaluated


def floorplan_task(
    ctx,
    cells: Tuple[Cell, ...],
    grid: int,
    best: SharedBest,
    placement: Placement = (),
    index: int = 0,
    cutoff: Optional[int] = None,
):
    yield ctx.compute(EVAL_COST_US)
    if index == len(cells):
        area = _bounding_area(placement)
        yield ctx.critical("floorplan-best")
        if area < best.area:
            best.area = area
        yield ctx.end_critical("floorplan-best")
        return area
    # Read the bound once per task (racy reads are fine: the bound only
    # ever decreases, so stale reads just prune less).
    bound = best.area
    if _bounding_area(placement) >= bound:
        return bound
    if cutoff is not None and index >= cutoff:
        sub_best, evaluated = solve_serial(cells, grid, placement, index, bound)
        yield ctx.compute(EVAL_COST_US * evaluated)
        if sub_best < bound:
            yield ctx.critical("floorplan-best")
            if sub_best < best.area:
                best.area = sub_best
            yield ctx.end_critical("floorplan-best")
        return sub_best
    handles = []
    for x, y, w, h in _candidates(placement, cells[index], grid):
        partial = placement + ((x, y, w, h),)
        if _bounding_area(partial) >= best.area:
            continue
        handles.append(
            (
                yield ctx.spawn(
                    floorplan_task, cells, grid, best, partial, index + 1, cutoff
                )
            )
        )
    yield ctx.taskwait()
    result = min((h.result for h in handles), default=best.area)
    return min(result, best.area)


SIZES = {
    "test": {"cells": 5, "grid": 6},
    "small": {"cells": 6, "grid": 6},
    "medium": {"cells": 7, "grid": 7},
}

DEFAULT_CUTOFF = {"test": 2, "small": 3, "medium": 3}


def make_program(
    size: str = "small",
    cutoff: Optional[int] = None,
    use_cutoff: bool = False,
) -> BotsProgram:
    params = require_size(SIZES, size, "floorplan")
    cells = CELL_SETS[params["cells"]]
    grid = params["grid"]
    if use_cutoff and cutoff is None:
        cutoff = DEFAULT_CUTOFF[size]
    optimal, _ = solve_serial(cells, grid)
    best = SharedBest(grid * grid + 1)

    def verify(result) -> bool:
        return first_result(result) == optimal and best.area == optimal

    body = single_producer_region(floorplan_task, cells, grid, best, (), 0, cutoff)
    return BotsProgram(
        name="floorplan",
        variant="cutoff" if cutoff is not None else "nocutoff",
        body=body,
        verify=verify,
        meta={
            "cells": len(cells),
            "grid": grid,
            "cutoff": cutoff,
            "optimal_area": optimal,
        },
    )
