"""BOTS *alignment*: pairwise protein sequence alignment.

All-pairs global alignment scores (Needleman-Wunsch with a simplified
substitution model) over a fixed set of synthetic protein sequences: one
task per pair, a single flat level of parallelism with no nesting and no
scheduling points inside the tasks.  That makes alignment the paper's
best-behaved code: zero measured overhead (Fig. 13) and a maximum of
exactly **1** concurrently executing task per thread (Table II).

The scores are real DP results; verification recomputes a digest
serially.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.bots.common import BotsProgram, first_result, require_size
from repro.sim.rng import DeterministicRNG

#: virtual µs per DP cell evaluated
CELL_COST_US = 0.5

AMINO_ACIDS = "ARNDCQEGHILKMFPSTWYV"
GAP_PENALTY = -4
MATCH_SCORE = 5
MISMATCH_SCORE = -2


def make_sequences(count: int, length: int, seed: int = 99) -> List[str]:
    rng = DeterministicRNG(seed)
    return [
        "".join(rng.choice(AMINO_ACIDS) for _ in range(length)) for _ in range(count)
    ]


def needleman_wunsch(a: str, b: str) -> int:
    """Global alignment score (linear-space DP)."""
    previous = [j * GAP_PENALTY for j in range(len(b) + 1)]
    for i in range(1, len(a) + 1):
        current = [i * GAP_PENALTY] + [0] * len(b)
        for j in range(1, len(b) + 1):
            match = MATCH_SCORE if a[i - 1] == b[j - 1] else MISMATCH_SCORE
            current[j] = max(
                previous[j - 1] + match,
                previous[j] + GAP_PENALTY,
                current[j - 1] + GAP_PENALTY,
            )
        previous = current
    return previous[len(b)]


def align_pair_task(ctx, sequences: List[str], i: int, j: int):
    score = needleman_wunsch(sequences[i], sequences[j])
    cells = len(sequences[i]) * len(sequences[j])
    yield ctx.compute(CELL_COST_US * cells, counters={"dp_cells": cells})
    return (i, j, score)


def alignment_region(sequences: List[str]):
    """All-pairs region: the single producer spawns one task per pair."""

    def region(ctx):
        if not (yield ctx.single()):
            return None
        handles = []
        for i in range(len(sequences)):
            for j in range(i + 1, len(sequences)):
                handles.append((yield ctx.spawn(align_pair_task, sequences, i, j)))
        yield ctx.taskwait()
        scores: Dict[Tuple[int, int], int] = {}
        for handle in handles:
            i, j, score = handle.result
            scores[(i, j)] = score
        return scores

    region.__name__ = "region@alignment"
    return region


def alignment_for_region(sequences: List[str]):
    """BOTS' ``alignment.for`` shape: every thread creates the tasks of
    its round-robin stripe of the pair space (distributed creation);
    the barrier completes all pairs and thread 0 gathers the scores.
    """

    def region(ctx):
        me, team = ctx.thread_id, ctx.n_threads
        pairs = [
            (i, j)
            for i in range(len(sequences))
            for j in range(i + 1, len(sequences))
        ]
        handles = []
        for index, (i, j) in enumerate(pairs):
            if index % team == me:
                handles.append((yield ctx.spawn(align_pair_task, sequences, i, j)))
        # Wait for the *whole team's* tasks, not just this thread's.
        yield ctx.barrier()
        scores: Dict[Tuple[int, int], int] = {}
        for handle in handles:
            i, j, score = handle.result
            scores[(i, j)] = score
        return scores

    region.__name__ = "region@alignment_for"
    return region


def expected_scores(sequences: List[str]) -> Dict[Tuple[int, int], int]:
    return {
        (i, j): needleman_wunsch(sequences[i], sequences[j])
        for i in range(len(sequences))
        for j in range(i + 1, len(sequences))
    }


SIZES = {
    "test": {"count": 4, "length": 12},
    "small": {"count": 10, "length": 20},
    "medium": {"count": 16, "length": 32},
}


def make_program(
    size: str = "small", seed: int = 99, creation: str = "single"
) -> BotsProgram:
    """``creation='single'`` (default, the paper's shape) or ``'for'``
    (distributed creation across the team, BOTS' alignment.for)."""
    params = require_size(SIZES, size, "alignment")
    sequences = make_sequences(params["count"], params["length"], seed)
    expected = expected_scores(sequences)

    if creation == "single":
        body = alignment_region(sequences)

        def verify(result) -> bool:
            return first_result(result) == expected

    elif creation == "for":
        body = alignment_for_region(sequences)

        def verify(result) -> bool:
            # each thread returns its stripe; the union must be exact
            merged: Dict[Tuple[int, int], int] = {}
            total = 0
            for value in result.return_values:
                if value:
                    total += len(value)
                    merged.update(value)
            return total == len(merged) and merged == expected

    else:
        raise ValueError(
            f"unknown alignment creation mode {creation!r}; use 'single' or 'for'"
        )

    pairs = params["count"] * (params["count"] - 1) // 2
    return BotsProgram(
        name="alignment",
        variant="default" if creation == "single" else "for",
        body=body,
        verify=verify,
        meta={
            "sequences": params["count"],
            "length": params["length"],
            "expected_tasks": pairs,
            "creation": creation,
        },
    )
