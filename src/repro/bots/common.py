"""Shared infrastructure for the BOTS kernels."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional


@dataclass
class BotsProgram:
    """A runnable benchmark instance.

    Attributes
    ----------
    name / variant:
        Kernel name and variant tag (``'cutoff'``, ``'nocutoff'``,
        ``'single'``, ``'for'``).
    body:
        The parallel-region body, ``body(ctx) -> generator``; pass it to
        :meth:`repro.runtime.OpenMPRuntime.parallel`.
    verify:
        ``verify(parallel_result) -> bool`` -- checks the *functional*
        output of the run (the kernels compute real results).
    meta:
        Size parameters and derived expectations (for reports/tests).
    """

    name: str
    variant: str
    body: Callable
    verify: Callable[[Any], bool]
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def label(self) -> str:
        return f"{self.name}/{self.variant}"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<BotsProgram {self.label} {self.meta}>"


def single_producer_region(task_fn: Callable, *args: Any, **kwargs: Any) -> Callable:
    """Build the canonical BOTS region shape: one thread spawns the root
    task inside a ``single`` construct; everyone meets at the implicit
    end-of-region barrier, where the task pool drains.
    """

    def region(ctx):
        if (yield ctx.single()):
            handle = yield ctx.spawn(task_fn, *args, **kwargs)
            yield ctx.taskwait()
            return handle.result
        return None

    region.__name__ = f"region@{getattr(task_fn, '__name__', 'task')}"
    return region


def first_result(parallel_result) -> Any:
    """The non-None return value of a single-producer region."""
    for value in parallel_result.return_values:
        if value is not None:
            return value
    return None


def require_size(sizes: Dict[str, dict], size: str, kernel: str) -> dict:
    """Look up a size preset with a helpful error."""
    try:
        return sizes[size]
    except KeyError:
        raise ValueError(
            f"unknown size {size!r} for {kernel}; available: {sorted(sizes)}"
        ) from None
