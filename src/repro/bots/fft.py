"""BOTS *fft*: Cooley-Tukey fast Fourier transform.

Radix-2 decimation in time: spawn FFTs of the even and odd sub-sequences,
taskwait, combine with twiddle factors.  Below the cut-off length the
transform is computed directly with numpy (charged n log2 n); the
no-cut-off stress variant recurses down to length-4 leaves.

Verification compares against ``numpy.fft.fft``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.bots.common import BotsProgram, first_result, require_size, single_producer_region

#: virtual µs per element of a combine pass
COMBINE_COST_US = 0.012
#: virtual µs per element*log2(element) of a direct base-case transform
BASE_COST_US = 0.020
#: smallest length the no-cut-off variant still splits
MIN_LENGTH = 4


def make_input(n: int, seed: int = 17) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.standard_normal(n) + 1j * rng.standard_normal(n)


def fft_task(ctx, data: np.ndarray, threshold: int):
    n = len(data)
    if n <= threshold or n <= MIN_LENGTH:
        result = np.fft.fft(data)
        yield ctx.compute(BASE_COST_US * n * max(np.log2(n), 1.0))
        return result
    even = yield ctx.spawn(fft_task, data[0::2], threshold)
    odd = yield ctx.spawn(fft_task, data[1::2], threshold)
    yield ctx.taskwait()
    half = n // 2
    twiddle = np.exp(-2j * np.pi * np.arange(half) / n)
    odd_t = twiddle * odd.result
    combined = np.concatenate([even.result + odd_t, even.result - odd_t])
    yield ctx.compute(COMBINE_COST_US * n)
    return combined


def task_count(n: int, threshold: int) -> int:
    def count(m: int) -> int:
        if m <= threshold or m <= MIN_LENGTH:
            return 1
        return 1 + 2 * count(m // 2)

    return count(n)


SIZES = {
    "test": {"n": 64},
    "small": {"n": 1024},
    "medium": {"n": 4096},
}

DEFAULT_THRESHOLD = {"test": 16, "small": 128, "medium": 256}


def make_program(
    size: str = "small",
    threshold: Optional[int] = None,
    use_cutoff: bool = True,
    seed: int = 17,
) -> BotsProgram:
    params = require_size(SIZES, size, "fft")
    n = params["n"]
    if use_cutoff:
        if threshold is None:
            threshold = DEFAULT_THRESHOLD[size]
    else:
        threshold = MIN_LENGTH
    data = make_input(n, seed)
    expected = np.fft.fft(data)

    def verify(result) -> bool:
        value = first_result(result)
        return value is not None and np.allclose(value, expected, rtol=1e-8, atol=1e-8)

    body = single_producer_region(fft_task, data, threshold)
    return BotsProgram(
        name="fft",
        variant="cutoff" if use_cutoff else "nocutoff",
        body=body,
        verify=verify,
        meta={"n": n, "threshold": threshold, "expected_tasks": task_count(n, threshold)},
    )
