"""*uts*: Unbalanced Tree Search (extra kernel, beyond the paper's nine).

UTS (Olivier et al.) counts the nodes of an implicitly defined random
tree whose shape is radically unbalanced -- the canonical stress test for
dynamic load balancing, and a natural companion to the BOTS nine.  It is
*not* part of the paper's evaluation; it ships as an extension because
unbalanced task trees exercise work stealing and the Task Scheduling
Constraint harder than any of the nine.

Tree model (geometric): each node's child count is drawn from a
deterministic hash of its path, ``P(k children) ~ q^k`` truncated at
``m_max``, with the expected branching factor ``b`` tuned by ``q``.  The
tree is fully determined by the root seed, so the node count is a
verifiable ground truth (computed serially).

Variants: ``cutoff`` spawns tasks down to a depth and searches serially
below; ``nocutoff`` spawns one task per node.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.bots.common import BotsProgram, first_result, require_size, single_producer_region

#: virtual µs per node visited (hash + bookkeeping)
NODE_COST_US = 0.9

_MASK = 0xFFFFFFFF


def _hash(a: int, b: int) -> int:
    """Deterministic 32-bit mix (SplitMix-style)."""
    x = (a * 0x9E3779B9 + b * 0x85EBCA6B + 0xC2B2AE35) & _MASK
    x ^= x >> 16
    x = (x * 0x45D9F3B) & _MASK
    x ^= x >> 16
    return x


def child_count(node_id: int, q_percent: int, m_max: int) -> int:
    """Number of children: geometric with ratio q, truncated at m_max."""
    draw = _hash(node_id, 0xDEADBEEF) % 100
    children = 0
    threshold = q_percent
    while children < m_max and draw < threshold:
        children += 1
        threshold = threshold * q_percent // 100
    return children


def child_id(node_id: int, index: int) -> int:
    return _hash(node_id, index + 1)


#: fixed branching of the root node (UTS's b0), so trees never die early
ROOT_CHILDREN = 4


def _children_of(node_id: int, depth: int, q_percent: int, m_max: int) -> int:
    if depth == 0:
        return ROOT_CHILDREN
    return child_count(node_id, q_percent, m_max)


def count_serial(
    node_id: int, q_percent: int, m_max: int, max_depth: int, depth: int = 0
) -> int:
    """Ground truth: serial node count of the subtree."""
    if depth >= max_depth:
        return 1
    total = 1
    for index in range(_children_of(node_id, depth, q_percent, m_max)):
        total += count_serial(
            child_id(node_id, index), q_percent, m_max, max_depth, depth + 1
        )
    return total


def uts_task(
    ctx,
    node_id: int,
    depth: int,
    q_percent: int,
    m_max: int,
    max_depth: int,
    cutoff: Optional[int],
):
    yield ctx.compute(NODE_COST_US)
    if depth >= max_depth:
        return 1
    if cutoff is not None and depth >= cutoff:
        nodes = count_serial(node_id, q_percent, m_max, max_depth, depth)
        yield ctx.compute(NODE_COST_US * max(nodes - 1, 0))
        return nodes
    handles = []
    for index in range(_children_of(node_id, depth, q_percent, m_max)):
        handles.append(
            (
                yield ctx.spawn(
                    uts_task,
                    child_id(node_id, index),
                    depth + 1,
                    q_percent,
                    m_max,
                    max_depth,
                    cutoff,
                )
            )
        )
    yield ctx.taskwait()
    return 1 + sum(h.result for h in handles)


SIZES = {
    # q=70%, m_max=4 gives expected branching ~1.5: deep spindly trees
    "test": {"root": 42, "q": 70, "m_max": 4, "max_depth": 12},
    "small": {"root": 42, "q": 70, "m_max": 4, "max_depth": 14},
    "medium": {"root": 42, "q": 70, "m_max": 4, "max_depth": 16},
}

DEFAULT_CUTOFF = {"test": 6, "small": 7, "medium": 8}


def make_program(
    size: str = "small",
    cutoff: Optional[int] = None,
    use_cutoff: bool = False,
) -> BotsProgram:
    params = require_size(SIZES, size, "uts")
    root, q, m_max, max_depth = (
        params["root"],
        params["q"],
        params["m_max"],
        params["max_depth"],
    )
    if use_cutoff and cutoff is None:
        cutoff = DEFAULT_CUTOFF[size]
    expected = count_serial(root, q, m_max, max_depth)

    def verify(result) -> bool:
        return first_result(result) == expected

    body = single_producer_region(uts_task, root, 0, q, m_max, max_depth, cutoff)
    return BotsProgram(
        name="uts",
        variant="cutoff" if cutoff is not None else "nocutoff",
        body=body,
        verify=verify,
        meta={
            "root": root,
            "q_percent": q,
            "m_max": m_max,
            "max_depth": max_depth,
            "cutoff": cutoff,
            "expected_nodes": expected,
        },
    )
