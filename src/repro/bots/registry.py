"""Registry of the nine BOTS kernels and their paper variants.

:func:`get_program` builds a *fresh* program instance on every call --
required because some kernels (sparselu, floorplan) mutate shared state
in place during the run, so a program object is single-use.

The variant strings follow the paper's evaluation setup:

* ``'optimized'`` -- the Fig. 13 configuration: cut-off versions where
  BOTS provides one (fib, floorplan, health, nqueens, strassen), the
  single-producer sparselu, default versions otherwise.
* ``'stress'`` -- the Fig. 14 configuration: no cut-off anywhere.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.bots import alignment, fft, fib, floorplan, health, nqueens, sort, sparselu, strassen, uts
from repro.bots.common import BotsProgram

#: kernels with a BOTS-provided cut-off version (paper Section V-A)
CUTOFF_KERNELS = ("fib", "floorplan", "health", "nqueens", "strassen")

#: all nine kernel names
ALL_KERNELS = (
    "alignment",
    "fft",
    "fib",
    "floorplan",
    "health",
    "nqueens",
    "sort",
    "sparselu",
    "strassen",
)

ProgramFactory = Callable[..., BotsProgram]

#: kernels beyond the paper's nine (extensions; excluded from the
#: paper-reproduction benchmark sweeps)
EXTRA_KERNELS = ("uts",)

PROGRAMS: Dict[str, ProgramFactory] = {
    "alignment": alignment.make_program,
    "fft": fft.make_program,
    "fib": fib.make_program,
    "floorplan": floorplan.make_program,
    "health": health.make_program,
    "nqueens": nqueens.make_program,
    "sort": sort.make_program,
    "sparselu": sparselu.make_program,
    "strassen": strassen.make_program,
    "uts": uts.make_program,
}


def get_program(name: str, size: str = "small", variant: str = "optimized", **kwargs) -> BotsProgram:
    """Build a fresh program for ``name``.

    ``variant``:

    * ``'optimized'`` -- the kernel's tuned configuration (cut-off if the
      suite provides one; sparselu single-producer),
    * ``'stress'``    -- no cut-off (the Fig. 14 / Fig. 15 runs),
    * anything else is forwarded to the kernel factory (e.g.
      ``variant='for'`` for sparselu).

    Extra keyword arguments go to the kernel's ``make_program``.
    """
    factory = PROGRAMS.get(name)
    if factory is None:
        raise KeyError(f"unknown BOTS kernel {name!r}; available: {sorted(PROGRAMS)}")

    if name == "sparselu":
        if variant == "optimized":
            return factory(size=size, variant="single", **kwargs)
        if variant == "stress":
            # sparselu has no cut-off; the stress run is the same single
            # version (matching the paper, which always uses `single`).
            return factory(size=size, variant="single", **kwargs)
        return factory(size=size, variant=variant, **kwargs)

    if name == "alignment":
        # no variants: one flat level of tasks
        return factory(size=size, **kwargs)

    if variant == "optimized":
        use_cutoff = name in CUTOFF_KERNELS or name in ("sort", "fft", "uts")
        return factory(size=size, use_cutoff=use_cutoff, **kwargs)
    if variant == "stress":
        return factory(size=size, use_cutoff=False, **kwargs)
    raise ValueError(
        f"unknown variant {variant!r} for {name!r}; use 'optimized' or 'stress'"
    )


def list_programs() -> List[str]:
    return sorted(PROGRAMS)
