"""Command-line interface: run kernels, regenerate paper artifacts.

Examples::

    python -m repro list
    python -m repro run nqueens --size small --threads 4 --render
    python -m repro run fib --variant stress --trace-timeline
    python -m repro overhead fib --variant stress --threads 1,2,4,8
    python -m repro advise nqueens --variant stress
    python -m repro paper table1 table3 fig15
    python -m repro run fib --size test --fault-mode drop_events --tolerate-errors
    python -m repro faults --apps fib --modes drop_events,clock_skew --seeds 0
    python -m repro supervise --apps fib --jobs 2 --journal campaign.jsonl
    python -m repro supervise --resume campaign.jsonl --jobs 2
"""

from __future__ import annotations

import argparse
import difflib
import json
import sys
from typing import List, Optional, Sequence

from repro.analysis.advisor import advise
from repro.analysis.charts import grouped_bar_chart
from repro.analysis.experiment import run_app
from repro.analysis.nqueens_study import (
    cutoff_speedup,
    nqueens_depth_table,
    nqueens_region_times,
)
from repro.analysis.overhead import measure_overhead, overhead_sweep, runtime_scaling
from repro.analysis.tables import format_table
from repro.analysis.taskstats import task_statistics
from repro.analysis.traces import management_ratio, render_timeline
from repro.bots.registry import list_programs
from repro.cube.export import dump_path
from repro.cube.render import render_profile
from repro.errors import CampaignInterrupted, JournalVersionError, ReproError
from repro.faults.plan import FAULT_MODES
from repro.ioutil import atomic_write


def _parse_threads(text: str) -> List[int]:
    try:
        return [int(part) for part in text.split(",") if part]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--threads expects comma-separated integers, got {text!r}"
        ) from None


def _parse_names(text: str) -> List[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


def _unknown_kernel(name: str) -> int:
    """One-line stderr diagnostic + exit code 2 for a bad kernel name."""
    matches = difflib.get_close_matches(name, list_programs(), n=3, cutoff=0.5)
    hint = f"; did you mean {' or '.join(matches)}?" if matches else ""
    print(
        f"repro: unknown kernel {name!r}{hint} (run `repro list` to see them all)",
        file=sys.stderr,
    )
    return 2


def _unknown_substrate(name: str) -> int:
    """Same contract as :func:`_unknown_kernel` for substrate names."""
    from repro.substrates import available_substrates

    names = available_substrates()
    matches = difflib.get_close_matches(name, names, n=3, cutoff=0.5)
    hint = f"; did you mean {' or '.join(matches)}?" if matches else ""
    print(
        f"repro: unknown substrate {name!r}{hint} "
        f"(available: {', '.join(names)})",
        file=sys.stderr,
    )
    return 2


def _add_budget_arguments(parser) -> None:
    """The governor flags shared by ``run`` (and mirrored by ``governor``)."""
    parser.add_argument(
        "--memory-budget", type=int, default=None, metavar="N",
        help="arm the resource governor: cap concurrently live "
             "task-instance trees at N and degrade measurement fidelity "
             "instead of failing (see `repro governor`)",
    )
    parser.add_argument(
        "--on-pressure", choices=["degrade", "stop"], default="degrade",
        help="policy above the budget: walk the degradation ladder "
             "(degrade, default) or salvage-and-stop (stop); needs "
             "--memory-budget",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Profiling of OpenMP Tasks with Score-P' "
        "(Lorenz et al., ICPP 2012)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the available BOTS kernels")

    run_parser = sub.add_parser("run", help="run one kernel and show its profile")
    run_parser.add_argument("app", help="kernel name (see `repro list`)")
    run_parser.add_argument("--size", default="small", choices=["test", "small", "medium"])
    run_parser.add_argument("--variant", default="optimized")
    run_parser.add_argument("--threads", type=int, default=4)
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument("--no-instrument", action="store_true")
    run_parser.add_argument("--render", action="store_true", help="print the profile tree")
    run_parser.add_argument("--max-depth", type=int, default=3)
    run_parser.add_argument("--json", metavar="FILE", help="export the profile as JSON")
    run_parser.add_argument(
        "--trace-timeline", action="store_true",
        help="record events and print the per-thread task timeline",
    )
    run_parser.add_argument(
        "--substrate", action="append", dest="substrates", metavar="NAME",
        help="attach a measurement substrate by registry name (repeatable; "
             "built-ins: profiling, tracing, validation, stats; default "
             "wiring derives from --no-instrument / --trace-timeline)",
    )
    tolerance = run_parser.add_mutually_exclusive_group()
    tolerance.add_argument(
        "--tolerate-errors", action="store_true",
        help="lenient mode: salvage a partial profile when the run "
             "crashes, hangs, or produces a corrupt trace",
    )
    tolerance.add_argument(
        "--strict", action="store_true",
        help="strict mode: validate the recorded trace and fail with the "
             "precise error on the first inconsistency",
    )
    run_parser.add_argument(
        "--fault-mode", choices=FAULT_MODES, metavar="MODE",
        help=f"arm one fault-injection mode (one of: {', '.join(FAULT_MODES)})",
    )
    run_parser.add_argument(
        "--watchdog-us", type=float, default=None, metavar="US",
        help="abort the parallel region after this much virtual time",
    )
    run_parser.add_argument(
        "--instr-cost", type=float, default=None, metavar="US",
        help="override the per-event instrumentation cost of the cost "
             "model (regression-injection knob for the sentinel)",
    )
    run_parser.add_argument(
        "--archive", metavar="DIR",
        help="archive the run's profile into the content-addressed "
             "store at DIR (see `repro archive` / `repro sentinel`)",
    )
    run_parser.add_argument(
        "--tag", action="append", dest="tags", default=None, metavar="TAG",
        help="label the archived run (repeatable; requires --archive)",
    )
    run_parser.add_argument(
        "--record", metavar="DIR",
        help="durably record the event stream into DIR (sealed CRC32 "
             "chunks + periodic checkpoints; see `repro replay` / "
             "`repro verify`)",
    )
    run_parser.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="N",
        help="checkpoint profiler state every N recorded events "
             "(requires --record)",
    )
    _add_budget_arguments(run_parser)

    replay_parser = sub.add_parser(
        "replay",
        help="reconstruct a profile from a recorded event stream alone",
    )
    replay_parser.add_argument("record_dir", help="recording directory (--record)")
    replay_parser.add_argument(
        "--strict", action="store_true",
        help="require a complete stream (sealed FIN record); default is "
             "lenient, replaying whatever sealed prefix survives",
    )
    replay_parser.add_argument("--render", action="store_true",
                               help="print the reconstructed profile tree")
    replay_parser.add_argument("--max-depth", type=int, default=3)
    replay_parser.add_argument("--json", metavar="FILE",
                               help="export the reconstructed profile as JSON")

    verify_parser = sub.add_parser(
        "verify",
        help="replay a recording and cross-check it byte-identically "
             "against the live profile; exit 0 = match, 1 = divergence, "
             "2 = recording unusable",
    )
    verify_parser.add_argument("record_dir", help="recording directory (--record)")
    verify_parser.add_argument(
        "--against", metavar="REF",
        help="archived run (run id or sha256 prefix) to compare against "
             "instead of the recording's own manifest hash",
    )
    verify_parser.add_argument(
        "--archive", metavar="DIR",
        help="archive directory holding --against (required with it)",
    )
    verify_parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the machine-readable divergence report",
    )

    governor_parser = sub.add_parser(
        "governor",
        help="run one kernel under a memory budget and report the "
             "degradation ladder",
    )
    governor_parser.add_argument("app", help="kernel name (see `repro list`)")
    governor_parser.add_argument(
        "--size", default="test", choices=["test", "small", "medium"]
    )
    governor_parser.add_argument("--variant", default="optimized")
    governor_parser.add_argument("--threads", type=int, default=2)
    governor_parser.add_argument("--seed", type=int, default=0)
    governor_parser.add_argument(
        "--memory-budget", type=int, required=True, metavar="N",
        help="cap on concurrently live task-instance trees",
    )
    governor_parser.add_argument(
        "--on-pressure", choices=["degrade", "stop"], default="degrade",
        help="policy above the budget: walk the degradation ladder "
             "(degrade, default) or salvage-and-stop at the hard "
             "watermark (stop)",
    )
    governor_parser.add_argument(
        "--json", metavar="FILE",
        help="write the governor report (budget, ladder, incidents) as JSON",
    )

    overhead_parser = sub.add_parser("overhead", help="instrumented-vs-baseline overhead")
    overhead_parser.add_argument("app", nargs="+")
    overhead_parser.add_argument("--size", default="small")
    overhead_parser.add_argument("--variant", default="optimized")
    overhead_parser.add_argument("--threads", type=_parse_threads, default=[1, 2, 4, 8])
    overhead_parser.add_argument("--seeds", type=_parse_threads, default=[0])

    report_parser = sub.add_parser("report", help="full performance report for one run")
    report_parser.add_argument("app")
    report_parser.add_argument("--size", default="small")
    report_parser.add_argument("--variant", default="optimized")
    report_parser.add_argument("--threads", type=int, default=4)
    report_parser.add_argument("--seed", type=int, default=0)
    report_parser.add_argument("--output", metavar="FILE", help="also write to a file")

    advise_parser = sub.add_parser("advise", help="run the granularity advisor")
    advise_parser.add_argument("app")
    advise_parser.add_argument("--size", default="small")
    advise_parser.add_argument("--variant", default="stress")
    advise_parser.add_argument("--threads", type=int, default=4)

    scaling_parser = sub.add_parser(
        "scaling", help="per-region thread-scaling study (Table III generalized)"
    )
    scaling_parser.add_argument("app")
    scaling_parser.add_argument("--size", default="small")
    scaling_parser.add_argument("--variant", default="stress")
    scaling_parser.add_argument("--threads", type=_parse_threads, default=[1, 2, 4, 8])

    diff_parser = sub.add_parser(
        "diff", help="compare two exported profiles region by region"
    )
    diff_parser.add_argument("before", help="JSON profile (from `repro run --json`)")
    diff_parser.add_argument("after", help="JSON profile to compare against")
    diff_parser.add_argument("--metric", default="exclusive",
                             choices=["exclusive", "inclusive"])
    diff_parser.add_argument("--limit", type=int, default=15)

    paper_parser = sub.add_parser("paper", help="regenerate paper tables/figures")
    paper_parser.add_argument(
        "artifact",
        nargs="+",
        choices=["table1", "table2", "table3", "table4", "fig13", "fig14", "fig15", "sec6"],
    )
    paper_parser.add_argument("--size", default="small")

    faults_parser = sub.add_parser(
        "faults",
        help="seeded fault-injection campaign (graceful-degradation check)",
    )
    faults_parser.add_argument(
        "--apps", type=_parse_names, default=["fib", "nqueens"],
        help="comma-separated kernel names (default: fib,nqueens)",
    )
    faults_parser.add_argument(
        "--modes", type=_parse_names, default=list(FAULT_MODES),
        help=f"comma-separated fault modes (default: all of {','.join(FAULT_MODES)})",
    )
    faults_parser.add_argument(
        "--seeds", type=_parse_threads, default=[0, 1, 2],
        help="comma-separated seeds (default: 0,1,2)",
    )
    faults_parser.add_argument("--size", default="test",
                               choices=["test", "small", "medium"])
    faults_parser.add_argument("--threads", type=int, default=2)
    faults_parser.add_argument(
        "--watchdog-us", type=float, default=None, metavar="US",
        help="virtual-time watchdog per run (default: 1e6)",
    )

    supervise_parser = sub.add_parser(
        "supervise",
        help="crash-safe supervised grid execution (isolated workers, "
        "wall-clock timeouts, retries, resumable journal)",
    )
    supervise_parser.add_argument(
        "--apps", type=_parse_names, default=["fib", "nqueens"],
        help="comma-separated kernel names for a fault grid "
        "(default: fib,nqueens; ignored with --spec-file)",
    )
    supervise_parser.add_argument(
        "--modes", type=_parse_names, default=list(FAULT_MODES),
        help="comma-separated fault modes; 'none' runs cells healthy "
        f"(default: all of {','.join(FAULT_MODES)})",
    )
    supervise_parser.add_argument(
        "--seeds", type=_parse_threads, default=[0, 1, 2],
        help="comma-separated seeds (default: 0,1,2)",
    )
    supervise_parser.add_argument("--size", default="test",
                                  choices=["test", "small", "medium"])
    supervise_parser.add_argument("--threads", type=int, default=2)
    supervise_parser.add_argument(
        "--substrates", type=_parse_names, default=None, metavar="NAMES",
        help="comma-separated substrate names fault cells should attach "
        "(profiling and tracing are always ensured; ignored with "
        "--spec-file)",
    )
    supervise_parser.add_argument(
        "--watchdog-us", type=float, default=None, metavar="US",
        help="virtual-time watchdog per run (default: 1e6)",
    )
    supervise_parser.add_argument(
        "--spec-file", metavar="FILE",
        help="run this grid instead (JSON list or JSONL of run specs)",
    )
    supervise_parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker subprocesses to run in parallel (default: 1)",
    )
    supervise_parser.add_argument(
        "--timeout-s", type=float, default=60.0, metavar="S",
        help="wall-clock limit per cell attempt in real seconds "
        "(default: 60; catches kernels stuck without advancing "
        "virtual time, which --watchdog-us cannot)",
    )
    supervise_parser.add_argument(
        "--retries", type=int, default=1, metavar="N",
        help="retries per cell for transient crash/timeout/oom outcomes "
        "(deterministic errors are never retried; default: 1)",
    )
    supervise_parser.add_argument(
        "--backoff-s", type=float, default=0.5, metavar="S",
        help="base retry delay, doubled per attempt with seeded jitter "
        "(default: 0.5)",
    )
    supervise_parser.add_argument(
        "--journal", metavar="FILE",
        help="append-only JSONL journal (fsync'd write-ahead records; "
        "makes the run resumable after any crash)",
    )
    supervise_parser.add_argument(
        "--resume", metavar="FILE",
        help="replay this journal: skip journaled-complete cells, re-run "
        "pending/failed ones (implies --journal FILE)",
    )
    supervise_parser.add_argument(
        "--summary", metavar="FILE",
        help="also write the outcome table as JSON (atomic temp+rename)",
    )
    supervise_parser.add_argument(
        "--archive", metavar="DIR",
        help="archive each cell's (possibly salvaged) profile into the "
        "store at DIR; defaults to <journal>.archive when --journal or "
        "--resume is given",
    )
    supervise_parser.add_argument(
        "--no-archive", action="store_true",
        help="disable the automatic per-cell profile archiving",
    )
    supervise_parser.add_argument(
        "--heartbeat-s", type=float, default=0.5, metavar="S",
        help="worker liveness heartbeat interval; a worker alive but "
        "silent past --stall-factor intervals is killed as 'stuck' "
        "(default: 0.5)",
    )
    supervise_parser.add_argument(
        "--no-heartbeat", action="store_true",
        help="disable heartbeats and stuck detection",
    )
    supervise_parser.add_argument(
        "--stall-factor", type=float, default=6.0, metavar="F",
        help="missed heartbeat intervals before a worker counts as "
        "stuck (default: 6)",
    )
    supervise_parser.add_argument(
        "--deadline-s", type=float, default=None, metavar="S",
        help="campaign wall-clock budget: stop launching when it "
        "expires, drain running cells, journal the rest as cancelled "
        "(resumable)",
    )
    supervise_parser.add_argument(
        "--breaker-threshold", type=int, default=None, metavar="N",
        help="arm a per-class circuit breaker: short-circuit a "
        "(kernel, config) class after N consecutive "
        "crash/timeout/oom/stuck outcomes (default: off)",
    )
    supervise_parser.add_argument(
        "--breaker-probes", type=int, default=2, metavar="N",
        help="half-open probe cells an open class may spend re-closing "
        "(default: 2)",
    )
    supervise_parser.add_argument(
        "--breaker-probe-after", type=int, default=4, metavar="N",
        help="short-circuited cells between probes (default: 4)",
    )
    supervise_parser.add_argument(
        "--max-pending", type=int, default=None, metavar="N",
        help="arm admission control: bound the not-yet-running queue "
        "at N cells (default: off)",
    )
    supervise_parser.add_argument(
        "--admission-policy", default="block",
        choices=["block", "reject", "shed"],
        help="overload behavior at the queue's high watermark: pace "
        "launches (block), journal overflow as cancelled (reject), or "
        "evict the oldest pending cell (shed) (default: block)",
    )
    supervise_parser.add_argument(
        "--record-dir", metavar="DIR",
        help="durably record every cell's event stream under "
        "DIR/<app>.<mode>.s<seed>; terminally failed cells are salvaged "
        "from their recording into partial-tagged archived profiles",
    )

    archive_parser = sub.add_parser(
        "archive",
        help="inspect and maintain a content-addressed profile archive",
    )
    archive_sub = archive_parser.add_subparsers(dest="action", required=True)

    list_parser = archive_sub.add_parser("list", help="list archived runs")
    list_parser.add_argument("dir", help="archive directory")
    list_parser.add_argument("--kernel")
    list_parser.add_argument("--size")
    list_parser.add_argument("--variant")
    list_parser.add_argument("--threads", type=int, default=None)
    list_parser.add_argument("--tag")
    list_parser.add_argument("--limit", type=int, default=None, metavar="N",
                             help="show only the newest N matches")

    show_parser = archive_sub.add_parser(
        "show", help="metadata + profile summary of one archived run"
    )
    show_parser.add_argument("dir", help="archive directory")
    show_parser.add_argument("ref", help="run id (rNNNN) or sha256 prefix")
    show_parser.add_argument("--render", action="store_true",
                             help="also print the full profile tree")
    show_parser.add_argument("--max-depth", type=int, default=3)
    show_parser.add_argument(
        "--verify", action="store_true",
        help="recompute the object's sha256 on read and fail (exit 2) "
             "when the bytes no longer hash to their name",
    )

    gc_parser = archive_sub.add_parser(
        "gc", help="prune old runs and delete unreferenced objects"
    )
    gc_parser.add_argument("dir", help="archive directory")
    gc_parser.add_argument(
        "--keep", type=int, default=None, metavar="N",
        help="keep only the newest N runs per configuration group "
        "(default: keep all index records, delete orphaned objects only)",
    )

    fsck_parser = archive_sub.add_parser(
        "fsck",
        help="verify archive integrity (object hashes, index records); "
        "exit 0 = clean/repaired, 1 = unrepaired issues",
    )
    fsck_parser.add_argument("dir", help="archive directory")
    fsck_parser.add_argument(
        "--repair", action="store_true",
        help="quarantine corrupt objects, delete orphans, rebuild the "
        "index without dangling/torn records",
    )
    fsck_parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the machine-readable report instead of the table",
    )

    tag_parser = archive_sub.add_parser("tag", help="label an archived run")
    tag_parser.add_argument("dir", help="archive directory")
    tag_parser.add_argument("ref", help="run id or sha256 prefix")
    tag_parser.add_argument("tag", help="label to attach")

    abaseline_parser = archive_sub.add_parser(
        "baseline", help="aggregate archived runs into baseline statistics"
    )
    abaseline_parser.add_argument("dir", help="archive directory")
    abaseline_parser.add_argument("--kernel", required=True)
    abaseline_parser.add_argument("--size")
    abaseline_parser.add_argument("--variant")
    abaseline_parser.add_argument("--threads", type=int, default=None)
    abaseline_parser.add_argument("--tag")
    abaseline_parser.add_argument("--runs", type=int, default=3, metavar="N",
                                  help="newest runs to aggregate (default: 3)")
    abaseline_parser.add_argument(
        "--metric", default="exclusive",
        choices=["exclusive", "inclusive", "visits"],
    )

    sentinel_parser = sub.add_parser(
        "sentinel",
        help="noise-aware regression check of a fresh run (or a profile "
        "file) against an archived baseline; exit 0 = clean, 1 = regressed",
    )
    sentinel_parser.add_argument("app", help="kernel name (see `repro list`)")
    sentinel_parser.add_argument("--archive", required=True, metavar="DIR",
                                 help="archive directory holding the baseline")
    sentinel_parser.add_argument("--size", default="small",
                                 choices=["test", "small", "medium"])
    sentinel_parser.add_argument("--variant", default="optimized")
    sentinel_parser.add_argument("--threads", type=int, default=4)
    sentinel_parser.add_argument("--seed", type=int, default=0)
    sentinel_parser.add_argument(
        "--candidate", metavar="FILE",
        help="compare this exported profile JSON instead of running "
        "the kernel",
    )
    sentinel_parser.add_argument(
        "--instr-cost", type=float, default=None, metavar="US",
        help="override the per-event instrumentation cost for the "
        "candidate run (regression-injection knob)",
    )
    sentinel_parser.add_argument(
        "--runs", type=int, default=3, metavar="N",
        help="newest archived runs to build the baseline from (default: 3)",
    )
    sentinel_parser.add_argument(
        "--min-runs", type=int, default=2, metavar="N",
        help="refuse (exit 2) with fewer matching archived runs "
        "(default: 2)",
    )
    sentinel_parser.add_argument("--tag", default=None,
                                 help="only use baseline runs with this tag")
    sentinel_parser.add_argument(
        "--metric", action="append", dest="metrics", default=None,
        choices=["exclusive", "inclusive", "visits"],
        help="metric(s) to compare (repeatable; default: exclusive)",
    )
    sentinel_parser.add_argument(
        "--ratio", type=float, default=None, metavar="X",
        help="flag regions changed by at least this factor (default: 1.10)",
    )
    sentinel_parser.add_argument(
        "--zscore", type=float, default=None, metavar="Z",
        help="additionally require this many baseline std-devs when the "
        "baseline has variance (default: 3.0)",
    )
    sentinel_parser.add_argument(
        "--min-abs", type=float, default=None, metavar="US",
        help="noise floor: ignore regions below this on both sides "
        "(default: 1.0)",
    )
    sentinel_parser.add_argument("--fail-on-appeared", action="store_true",
                                 help="new regions also fail the check")
    sentinel_parser.add_argument("--fail-on-vanished", action="store_true",
                                 help="vanished regions also fail the check")
    sentinel_parser.add_argument(
        "--archive-candidate", action="store_true",
        help="also archive the candidate run (tagged 'candidate')",
    )
    sentinel_parser.add_argument("--include-ok", action="store_true",
                                 help="show unchanged regions in the table")
    sentinel_parser.add_argument("--json", metavar="FILE",
                                 help="write the structured report as JSON")

    serve_parser = sub.add_parser(
        "serve",
        help="run the crash-safe campaign gateway over a home directory: "
        "recover the ledger, then admit/claim/execute submitted "
        "campaigns (SIGTERM drains in-flight work, exit 143; everything "
        "is resumable)",
    )
    serve_parser.add_argument(
        "home", help="gateway home (ledger.jsonl, journals/, archive/)"
    )
    serve_parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker subprocesses per campaign (default: 1)",
    )
    serve_parser.add_argument(
        "--lease-ttl-s", type=float, default=300.0, metavar="S",
        help="lease time-to-live: an expired lease marks its holder "
        "presumed-dead and recovery reclaims the campaign (default: 300)",
    )
    serve_parser.add_argument(
        "--max-lease-attempts", type=int, default=3, metavar="N",
        help="lease grants per campaign before it fails as "
        "lease-exhausted (default: 3)",
    )
    serve_parser.add_argument(
        "--cell-timeout-s", type=float, default=60.0, metavar="S",
        help="wall-clock limit per cell attempt, clamped to the "
        "campaign's remaining deadline budget (default: 60)",
    )
    serve_parser.add_argument(
        "--retries", type=int, default=1, metavar="N",
        help="retries per cell for transient outcomes (default: 1)",
    )
    serve_parser.add_argument(
        "--heartbeat-s", type=float, default=0.5, metavar="S",
        help="worker liveness heartbeat interval (default: 0.5)",
    )
    serve_parser.add_argument(
        "--no-heartbeat", action="store_true",
        help="disable heartbeats and stuck detection",
    )
    serve_parser.add_argument(
        "--max-pending", type=int, default=None, metavar="N",
        help="arm admission control: bound the admitted-not-leased "
        "queue at N campaigns (default: off)",
    )
    serve_parser.add_argument(
        "--admission-policy", default="block",
        choices=["block", "reject", "shed"],
        help="overload behavior at the queue's high watermark: defer "
        "admission (block), fail the newcomer with E_ADMISSION_REJECTED "
        "(reject), or cancel the oldest admitted campaign (shed) "
        "(default: block)",
    )
    serve_parser.add_argument(
        "--breaker-threshold", type=int, default=None, metavar="N",
        help="arm the per-class circuit breaker inside each campaign's "
        "supervisor (default: off)",
    )
    serve_parser.add_argument(
        "--until-idle", action="store_true",
        help="exit once no resumable work remains instead of polling "
        "for new submissions forever",
    )
    serve_parser.add_argument(
        "--max-campaigns", type=int, default=None, metavar="N",
        help="stop after executing N campaigns",
    )
    serve_parser.add_argument(
        "--budget-s", type=float, default=None, metavar="S",
        help="stop after S seconds of serving (in-flight work drains)",
    )
    serve_parser.add_argument(
        "--poll-s", type=float, default=0.5, metavar="S",
        help="idle poll interval while waiting for work (default: 0.5)",
    )
    serve_parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the machine-readable serve report instead of text",
    )

    submit_parser = sub.add_parser(
        "submit",
        help="durably enqueue a campaign with the gateway (idempotent "
        "under --key); a serve process executes it",
    )
    submit_parser.add_argument("home", help="gateway home directory")
    submit_parser.add_argument(
        "--apps", type=_parse_names, default=["fib", "nqueens"],
        help="comma-separated kernel names for a fault campaign "
        "(default: fib,nqueens; ignored with --cells-file)",
    )
    submit_parser.add_argument(
        "--modes", type=_parse_names, default=list(FAULT_MODES),
        help="comma-separated fault modes; 'none' runs cells healthy "
        f"(default: all of {','.join(FAULT_MODES)})",
    )
    submit_parser.add_argument(
        "--seeds", type=_parse_threads, default=[0, 1, 2],
        help="comma-separated seeds (default: 0,1,2)",
    )
    submit_parser.add_argument("--size", default="test",
                               choices=["test", "small", "medium"])
    submit_parser.add_argument("--threads", type=int, default=2)
    submit_parser.add_argument(
        "--watchdog-us", type=float, default=None, metavar="US",
        help="virtual-time watchdog per run (default: 1e6)",
    )
    submit_parser.add_argument(
        "--substrates", type=_parse_names, default=None, metavar="NAMES",
        help="comma-separated substrate names fault cells should attach",
    )
    submit_parser.add_argument(
        "--wall-timeout-s", type=float, default=None, metavar="S",
        help="per-cell wall-clock limit carried by the spec (the "
        "gateway clamps it to the remaining deadline budget)",
    )
    submit_parser.add_argument(
        "--cells-file", metavar="FILE",
        help="submit these run specs verbatim (JSON list or JSONL) "
        "instead of a fault grid",
    )
    submit_parser.add_argument(
        "--key", dest="idempotency_key", metavar="KEY",
        help="idempotency key: resubmitting the same spec under the "
        "same key returns the original campaign instead of creating "
        "a duplicate",
    )
    submit_parser.add_argument(
        "--deadline-s", type=float, default=None, metavar="S",
        help="end-to-end deadline from submission, propagated down to "
        "the supervisor and every cell's wall-clock limit",
    )
    submit_parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the machine-readable response (stable E_* error "
        "codes on failure)",
    )

    status_parser = sub.add_parser(
        "status",
        help="one campaign's ledger record, or a table of all of them",
    )
    status_parser.add_argument("home", help="gateway home directory")
    status_parser.add_argument(
        "campaign_id", nargs="?", default=None,
        help="campaign id (cNNNN); omit to list every campaign",
    )
    status_parser.add_argument(
        "--cancel", action="store_true",
        help="cancel the named campaign (pre-lease states only)",
    )
    status_parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit machine-readable records",
    )

    fetch_parser = sub.add_parser(
        "fetch",
        help="a campaign's record plus its archived runs (found by the "
        "campaign:<id> tag the gateway stamps on every cell)",
    )
    fetch_parser.add_argument("home", help="gateway home directory")
    fetch_parser.add_argument("campaign_id", help="campaign id (cNNNN)")
    fetch_parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the machine-readable response",
    )

    return parser


# ----------------------------------------------------------------------
# Command implementations
# ----------------------------------------------------------------------
def cmd_list(_args) -> int:
    for name in list_programs():
        print(name)
    return 0


def _archive_run(archive_dir: str, profile, meta) -> None:
    """Archive one profile + metadata, reporting id/hash/deduplication."""
    from repro.archive import ArchiveStore

    record = ArchiveStore(archive_dir).put(profile, meta)
    dedup = " (deduplicated: identical content already stored)" if (
        record.deduplicated
    ) else ""
    print(
        f"  archived as {record.run_id} "
        f"sha256={record.sha256[:12]}…{dedup} -> {archive_dir}"
    )


def _costs_override(args):
    """CostModel override from ``--instr-cost`` (None = default model)."""
    if getattr(args, "instr_cost", None) is None:
        return None
    from repro.runtime.costs import JUROPA_LIKE

    return JUROPA_LIKE.with_instrumentation_cost(args.instr_cost)


def _memory_budget(args):
    """A :class:`MemoryBudget` from ``--memory-budget``/``--on-pressure``.

    Returns None when no budget was requested, so ungoverned runs build
    the exact same configuration they always did.
    """
    if getattr(args, "memory_budget", None) is None:
        return None
    from repro.governor import MemoryBudget

    return MemoryBudget(
        max_live_instances=args.memory_budget,
        on_pressure=getattr(args, "on_pressure", "degrade"),
    )


def _print_governor_report(report) -> None:
    """Ladder level + one line per PressureIncident, CLI-style."""
    if not report:
        return
    level = report.get("level", 0)
    incidents = report.get("incidents", ())
    if level == 0 and not incidents:
        print("  governor: budget never under pressure (stayed at L0)")
        return
    stubbed = report.get("stubbed_tasks", 0)
    created = report.get("created_tasks", 0)
    print(
        f"  governor: degradation level L{level} "
        f"({report.get('level_name', '?')}), peak live instances "
        f"{report.get('peak_live_instances', 0)}, "
        f"{stubbed}/{created} task(s) stub-accounted"
    )
    for incident in incidents:
        level = incident.get("level", "?")
        print(
            f"    L{level} {incident.get('name', '?')}: "
            f"{incident.get('trigger', '?')} "
            f"{incident.get('value', 0)}/{incident.get('limit', 0)} "
            f"at t={incident.get('time_us', 0.0):.1f} us "
            f"({incident.get('tasks_affected', 0)} task(s) live) -- "
            f"{incident.get('action', '')}"
        )


def _run_tolerant(args, plan) -> int:
    from repro.faults.campaign import DEFAULT_WATCHDOG_US, run_tolerant

    record_dir = getattr(args, "record", None)
    outcome = run_tolerant(
        args.app,
        size=args.size,
        n_threads=args.threads,
        seed=args.seed,
        plan=plan,
        watchdog_us=(
            args.watchdog_us if args.watchdog_us is not None else DEFAULT_WATCHDOG_US
        ),
        variant=args.variant,
        substrates=getattr(args, "substrates", None),
        costs=_costs_override(args),
        memory_budget=_memory_budget(args),
        record_dir=record_dir,
        checkpoint_every=getattr(args, "checkpoint_every", None),
    )
    verified = "n/a" if outcome.verified is None else outcome.verified
    print(f"{args.app}: status={outcome.status}, verified={verified}, "
          f"threads={args.threads}")
    if record_dir:
        print(f"  recording: {record_dir} "
              f"(check it with `repro verify {record_dir}`)")
    if outcome.salvage is not None:
        print(f"  {outcome.salvage.summary()}")
    if outcome.governor_report is not None:
        _print_governor_report(outcome.governor_report)
    if outcome.error:
        print(f"  run error: {outcome.error}")
    if outcome.profile is not None:
        if args.render:
            print()
            print(render_profile(outcome.profile, max_depth=args.max_depth))
        if args.json:
            dump_path(outcome.profile, args.json)
            print(f"  profile exported to {args.json}")
        if args.archive:
            from repro.archive import meta_for_outcome

            _archive_run(
                args.archive,
                outcome.profile,
                meta_for_outcome(
                    outcome, size=args.size, variant=args.variant,
                    seed=args.seed, tags=tuple(args.tags or ()),
                ),
            )
    return 0 if outcome.ok else 1


def _print_substrate_report(parallel) -> None:
    """Per-substrate overhead lines + the non-classic artifacts."""
    from repro.analysis.overhead import substrate_overhead_rows

    rows = substrate_overhead_rows(parallel)
    if rows:
        print("  substrates:")
        for row in rows:
            status = "quarantined" if row["quarantined"] else "ok"
            print(
                f"    {row['substrate']:<11} events={row['events']:<7d} "
                f"cost/event={row['per_event_cost']:g} us  "
                f"charged={row['charged_us']:.1f} us  [{status}]"
            )
    trace = parallel.substrate_artifacts.get("tracing")
    if trace is not None:
        recorded = sum(len(stream) for stream in trace.streams)
        print(f"  trace: {recorded} event(s) recorded on {trace.n_threads} stream(s)")
    stats = parallel.substrate_artifacts.get("stats")
    if isinstance(stats, dict):
        kinds = ", ".join(
            f"{kind}={count}" for kind, count in stats["per_kind"].items() if count
        )
        print(f"  event stats: {stats['total_events']} events ({kinds})")
    validation = parallel.substrate_artifacts.get("validation")
    if isinstance(validation, dict):
        verdict = (
            "clean"
            if validation.get("clean")
            else f"{validation.get('violations')} violation(s)"
        )
        print(
            f"  online validation: {validation.get('events_checked')} "
            f"event(s) checked, {verdict}"
        )


def cmd_run(args) -> int:
    if args.app not in list_programs():
        return _unknown_kernel(args.app)
    substrates = list(args.substrates or [])
    if substrates:
        from repro.substrates import available_substrates

        for name in substrates:
            if name not in available_substrates():
                return _unknown_substrate(name)
        # The timeline / strict-validation paths read the recorded trace,
        # so an explicit substrate list must still include the tracer.
        if (args.trace_timeline or args.strict) and "tracing" not in substrates:
            substrates.append("tracing")
    plan = None
    if args.fault_mode:
        from repro.faults.plan import plan_for_mode

        plan = plan_for_mode(args.fault_mode, seed=args.seed)
    budget = _memory_budget(args)
    if args.tolerate_errors:
        return _run_tolerant(args, plan)

    recorder = None
    if args.record:
        if args.no_instrument:
            print("repro: --record needs the profiler (drop --no-instrument)",
                  file=sys.stderr)
            return 2
        from repro.substrates.recorder import RecorderSubstrate

        recorder_kwargs = {"record_dir": args.record}
        if args.checkpoint_every is not None:
            recorder_kwargs["checkpoint_every"] = args.checkpoint_every
        recorder = RecorderSubstrate(**recorder_kwargs)
        if not substrates:
            # An explicit substrate tuple replaces the default wiring, so
            # rebuild it around the recorder.
            substrates = ["profiling"]
            if args.trace_timeline or args.strict:
                substrates.append("tracing")

    overrides = {}
    if substrates or recorder is not None:
        overrides["substrates"] = tuple(substrates) + (
            (recorder,) if recorder is not None else ()
        )
    if plan is not None:
        overrides["fault_plan"] = plan
    if args.watchdog_us is not None:
        overrides["watchdog_us"] = args.watchdog_us
    if budget is not None:
        overrides["memory_budget"] = budget
    try:
        result = run_app(
            args.app,
            size=args.size,
            variant=args.variant,
            n_threads=args.threads,
            instrument=not args.no_instrument,
            seed=args.seed,
            costs=_costs_override(args),
            record_events=args.trace_timeline or args.strict,
            **overrides,
        )
        if args.strict and result.parallel.trace is not None:
            from repro.events.validate import validate_program_trace

            validate_program_trace(result.parallel.trace)
    except ReproError as exc:
        # Strict semantics: surface the precise error type and fail.
        print(f"repro: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
    print(f"{result.program_label}: kernel={result.kernel_time:.1f} us, "
          f"tasks={result.parallel.completed_tasks}, "
          f"verified={result.verified}, threads={args.threads}")
    for bucket in ("work", "mgmt", "instr", "idle"):
        print(f"  {bucket:6s}: {result.bucket_total(bucket):12.1f} us")
    if substrates:
        _print_substrate_report(result.parallel)
    if budget is not None:
        _print_governor_report(result.parallel.extra.get("governor"))
    if recorder is not None:
        chunks = recorder.writer.sealed_chunks if recorder.writer else 0
        print(f"  recorded {recorder.records} event(s) in {chunks} chunk(s) "
              f"-> {args.record}")
        if result.profile is not None:
            from repro.recorder import record_live_profile

            try:
                record_live_profile(args.record, result.profile)
            except OSError as exc:
                print(f"  recording manifest not stamped: {exc}",
                      file=sys.stderr)
    if result.profile is not None:
        print(f"  max concurrent tasks/thread: "
              f"{result.profile.max_concurrent_tasks_per_thread()}")
        if args.render:
            print()
            print(render_profile(result.profile, max_depth=args.max_depth))
        if args.json:
            dump_path(result.profile, args.json)
            print(f"  profile exported to {args.json}")
        if args.archive:
            from repro.archive import meta_for_result

            _archive_run(
                args.archive,
                result.profile,
                meta_for_result(
                    result, size=args.size, variant=args.variant,
                    tags=tuple(args.tags or ()),
                ),
            )
    elif args.archive:
        print("repro: nothing to archive (run produced no profile)",
              file=sys.stderr)
    if args.trace_timeline and result.parallel.trace is not None:
        print()
        print(render_timeline(result.parallel.trace))
        ratio = management_ratio(result.parallel.trace)
        print(f"  management/execution ratio: {ratio['ratio']:.2f}")
    return 0 if result.verified else 1


def cmd_replay(args) -> int:
    """Rebuild a profile from recorded bytes alone and show it."""
    from repro.errors import ProfileError, RecordingError
    from repro.recorder import replay_recording

    try:
        profile, stream = replay_recording(
            args.record_dir, strict=True if args.strict else None
        )
    except (RecordingError, ProfileError, OSError) as exc:
        print(f"repro: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 2
    state = "complete" if stream.complete else "partial (no FIN record)"
    print(f"replayed {len(stream.records)} record(s) from "
          f"{stream.chunks} sealed chunk(s): stream {state}")
    for note in stream.notes:
        print(f"  note: {note}")
    if profile.salvage is not None and profile.salvage.partial:
        print(f"  {profile.salvage.summary()}")
    if args.render:
        print()
        print(render_profile(profile, max_depth=args.max_depth))
    if args.json:
        dump_path(profile, args.json)
        print(f"  profile exported to {args.json}")
    return 0


def cmd_verify(args) -> int:
    """Replay + cross-check a recording; sentinel-style exit codes."""
    from repro.errors import ArchiveError, ProfileFormatError
    from repro.recorder import verify_recording

    if args.against and not args.archive:
        print("repro: --against needs --archive DIR to resolve the run",
              file=sys.stderr)
        return 2
    expected_dict = None
    if args.against:
        from repro.archive import ArchiveStore
        from repro.cube.export import profile_to_dict

        try:
            expected_dict = profile_to_dict(
                ArchiveStore(args.archive).load_profile(args.against)
            )
        except (ArchiveError, ProfileFormatError) as exc:
            print(f"repro: {type(exc).__name__}: {exc}", file=sys.stderr)
            return 2
    try:
        report = verify_recording(args.record_dir, expected_dict=expected_dict)
    except OSError as exc:
        print(f"repro: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 2
    if args.as_json:
        print(json.dumps(report.to_dict(), indent=2))
        return report.exit_code
    from repro.analysis.regression import replay_table

    print(replay_table(report, title=f"verify {args.record_dir}"))
    return report.exit_code


def cmd_governor(args) -> int:
    """Run one kernel under a memory budget and report the ladder walk.

    Always runs in tolerant mode: even a ``stop``-policy budget that
    fires at L4 salvages a partial profile and reports the incidents
    rather than surfacing a traceback.
    """
    from repro.faults.campaign import DEFAULT_WATCHDOG_US, run_tolerant
    from repro.governor import MemoryBudget

    if args.app not in list_programs():
        return _unknown_kernel(args.app)
    budget = MemoryBudget(
        max_live_instances=args.memory_budget, on_pressure=args.on_pressure
    )
    print(f"budget: {budget.describe()}")
    outcome = run_tolerant(
        args.app,
        size=args.size,
        n_threads=args.threads,
        seed=args.seed,
        watchdog_us=DEFAULT_WATCHDOG_US,
        variant=args.variant,
        memory_budget=budget,
    )
    verified = "n/a" if outcome.verified is None else outcome.verified
    print(f"{args.app}: status={outcome.status}, verified={verified}, "
          f"threads={args.threads}")
    if outcome.salvage is not None:
        print(f"  {outcome.salvage.summary()}")
    report = outcome.governor_report or {}
    _print_governor_report(report)
    if outcome.error:
        print(f"  run error: {outcome.error}")
    if args.json:
        atomic_write(args.json, json.dumps(report, indent=2))
        print(f"governor report written to {args.json}")
    return 0 if outcome.ok else 1


def cmd_overhead(args) -> int:
    for app in args.app:
        if app not in list_programs():
            return _unknown_kernel(app)
    sweep = overhead_sweep(
        args.app,
        size=args.size,
        variant=args.variant,
        threads=tuple(args.threads),
        seeds=tuple(args.seeds),
    )
    rows = [
        [app] + [f"{p.overhead_pct:+.1f}%" for p in points]
        for app, points in sweep.items()
    ]
    print(format_table(["code"] + [f"{t} thr" for t in args.threads], rows,
                       title=f"profiling overhead ({args.variant}, size={args.size})"))
    return 0


def cmd_report(args) -> int:
    from repro.analysis.report import generate_report

    if args.app not in list_programs():
        return _unknown_kernel(args.app)
    result = run_app(
        args.app,
        size=args.size,
        variant=args.variant,
        n_threads=args.threads,
        seed=args.seed,
        record_events=True,
    )
    text = generate_report(result, title=f"{result.program_label}, "
                                         f"{args.threads} threads, seed {args.seed}")
    print(text)
    if args.output:
        atomic_write(args.output, text + "\n")
    return 0 if result.verified else 1


def cmd_advise(args) -> int:
    if args.app not in list_programs():
        return _unknown_kernel(args.app)
    result = run_app(
        args.app, size=args.size, variant=args.variant,
        n_threads=args.threads, seed=0,
    )
    findings = advise(result.profile)
    if not findings:
        print("no findings: task granularity looks healthy")
        return 0
    for finding in findings:
        print(finding)
    return 0


def cmd_scaling(args) -> int:
    from repro.analysis.scaling import scaling_study

    if args.app not in list_programs():
        return _unknown_kernel(args.app)
    study = scaling_study(
        args.app, size=args.size, variant=args.variant, threads=tuple(args.threads)
    )
    rows = []
    for entry in sorted(study.regions, key=lambda r: -max(r.times.values())):
        rows.append(
            [entry.region]
            + [f"{entry.times[t]:.0f}" for t in study.threads]
            + [entry.classification]
        )
    print(format_table(
        ["region"] + [f"{t} thr" for t in study.threads] + ["class"],
        rows,
        title=f"{args.app}: exclusive time per region [virtual us]",
    ))
    print()
    print(study.diagnosis())
    return 0


def cmd_diff(args) -> int:
    from repro.cube.diff import diff_profiles, summarize_diff
    from repro.cube.export import loads as load_profile

    with open(args.before) as handle:
        before = load_profile(handle.read())
    with open(args.after) as handle:
        after = load_profile(handle.read())
    entries = diff_profiles(before, after, metric=args.metric)
    print(summarize_diff(entries, limit=args.limit))
    return 0


def cmd_paper(args) -> int:
    for artifact in args.artifact:
        print(f"==== {artifact} ====")
        if artifact == "table1":
            rows = task_statistics(
                ["fib", "floorplan", "health", "nqueens", "strassen"],
                size=args.size, variant="stress", n_threads=1,
            )
            print(format_table(
                ["code", "mean [us]", "tasks"],
                [[r.code, f"{r.mean_time_us:.2f}", r.task_count] for r in rows],
            ))
        elif artifact == "table2":
            from repro.analysis.concurrency import PAPER_TABLE2_ROWS, concurrency_table

            entries = [(n, v) for n, v, _ in PAPER_TABLE2_ROWS]
            table = concurrency_table(entries, size=args.size, n_threads=4)
            print(format_table(
                ["code", "max tasks"],
                [[label, table[(n, v)]] for n, v, label in PAPER_TABLE2_ROWS],
            ))
        elif artifact == "table3":
            rows = nqueens_region_times(size=args.size)
            print(format_table(
                ["region", "1 thr", "2 thr", "4 thr", "8 thr"],
                [
                    ["task"] + [f"{r.task:.0f}" for r in rows],
                    ["taskwait"] + [f"{r.taskwait:.0f}" for r in rows],
                    ["create task"] + [f"{r.create_task:.0f}" for r in rows],
                    ["barrier"] + [f"{r.barrier:.0f}" for r in rows],
                ],
            ))
        elif artifact == "table4":
            rows = nqueens_depth_table(size=args.size)
            print(format_table(
                ["depth", "mean [us]", "sum [us]", "tasks"],
                [[r.depth, f"{r.mean_time_us:.2f}", f"{r.total_time_us:.0f}",
                  r.task_count] for r in rows],
            ))
        elif artifact in ("fig13", "fig14"):
            variant = "optimized" if artifact == "fig13" else "stress"
            apps = (
                ["alignment", "fft", "fib", "floorplan", "health", "nqueens",
                 "sort", "sparselu", "strassen"]
                if artifact == "fig13"
                else ["fib", "floorplan", "health", "nqueens", "sort", "fft", "strassen"]
            )
            sweep = overhead_sweep(apps, size=args.size, variant=variant)
            print(grouped_bar_chart(
                {app: {p.n_threads: p.overhead_pct for p in pts}
                 for app, pts in sweep.items()},
                title=f"overhead [%] ({variant})",
            ))
        elif artifact == "fig15":
            apps = ["fib", "floorplan", "health", "nqueens", "strassen"]
            scaling = {app: runtime_scaling(app, size=args.size) for app in apps}
            print(grouped_bar_chart(scaling, unit="%", title="runtime [% of max]"))
        elif artifact == "sec6":
            comparison = cutoff_speedup(size=args.size)
            print(f"no cut-off: {comparison.nocutoff_time:.0f} us, "
                  f"cut-off@{comparison.cutoff_level}: {comparison.cutoff_time:.0f} us, "
                  f"speedup {comparison.speedup:.1f}x")
        print()
    return 0


def cmd_faults(args) -> int:
    from repro.faults.campaign import (
        DEFAULT_WATCHDOG_US,
        campaign_table,
        run_campaign,
    )

    for app in args.apps:
        if app not in list_programs():
            return _unknown_kernel(app)
    unknown = [mode for mode in args.modes if mode not in FAULT_MODES]
    if unknown:
        print(
            f"repro: unknown fault mode(s) {', '.join(unknown)}; "
            f"available: {', '.join(FAULT_MODES)}",
            file=sys.stderr,
        )
        return 2
    try:
        results = run_campaign(
            apps=tuple(args.apps),
            modes=tuple(args.modes),
            seeds=tuple(args.seeds),
            size=args.size,
            n_threads=args.threads,
            watchdog_us=(
                args.watchdog_us if args.watchdog_us is not None else DEFAULT_WATCHDOG_US
            ),
        )
    except CampaignInterrupted as exc:
        # Ctrl-C: the finished cells are not lost -- print the partial
        # table and exit with the conventional 128+SIGINT status.
        print(campaign_table(exc.results))
        print(f"repro: {exc}", file=sys.stderr)
        return 130
    print(campaign_table(results))
    return 0 if all(r.ok for r in results) else 1


def cmd_archive(args) -> int:
    from repro.analysis.regression import archive_table, baseline_table
    from repro.archive import ArchiveStore, find_runs, latest_baseline
    from repro.errors import ArchiveError, ProfileFormatError

    store = ArchiveStore(args.dir)
    try:
        if args.action == "list":
            records = find_runs(
                store,
                kernel=args.kernel,
                size=args.size,
                variant=args.variant,
                n_threads=args.threads,
                tag=args.tag,
                limit=args.limit,
            )
            if not records:
                print("(no archived runs match)")
                return 0
            print(archive_table(records, title=f"archive {args.dir}"))
        elif args.action == "show":
            record = store.get_record(args.ref)
            meta = record.meta
            print(f"run:      {record.run_id}")
            print(f"sha256:   {record.sha256}")
            print(f"kernel:   {meta.kernel} size={meta.size} "
                  f"variant={meta.variant}")
            print(f"config:   threads={meta.n_threads} seed={meta.seed} "
                  f"cutoff={meta.cutoff} "
                  f"substrates={','.join(meta.substrates) or '-'}")
            print(f"cfg-hash: {meta.config_hash[:12]}")
            wall = "n/a" if meta.wall_time_us is None else f"{meta.wall_time_us:.1f} us"
            print(f"run:      wall={wall} verified={meta.verified} "
                  f"source={meta.source} tags={','.join(record.tags) or '-'}")
            # load_object always recomputes the content hash; --verify
            # makes the (otherwise silent) success explicit.  A mismatch
            # raises ArchiveError below -> exit 2.
            profile = store.load_object(record.sha256)
            if args.verify:
                print(f"verify:   object bytes re-hash to {record.sha256[:12]} "
                      f"-- intact")
            from repro.cube.query import top_regions

            print("top regions [exclusive us]:")
            for region, value in top_regions(profile, limit=5):
                print(f"  {region:<24} {value:10.1f}")
            if args.render:
                print()
                print(render_profile(profile, max_depth=args.max_depth))
        elif args.action == "gc":
            stats = store.gc(keep_last=args.keep)
            print(
                f"gc: dropped {stats.runs_dropped} run record(s), deleted "
                f"{stats.objects_deleted} object(s), freed "
                f"{stats.bytes_freed} bytes"
            )
        elif args.action == "fsck":
            from repro.analysis.regression import fsck_table
            from repro.archive import fsck

            fsck_report = fsck(store, repair=args.repair)
            if args.as_json:
                print(json.dumps(fsck_report.to_dict(), indent=2))
            else:
                print(fsck_table(fsck_report, title=f"fsck {args.dir}"))
            return 0 if not fsck_report.unrepaired else 1
        elif args.action == "tag":
            record = store.tag(args.ref, args.tag)
            print(f"{record.run_id} tags: {','.join(record.tags)}")
        elif args.action == "baseline":
            baseline = latest_baseline(
                store,
                kernel=args.kernel,
                size=args.size,
                variant=args.variant,
                n_threads=args.threads,
                tag=args.tag,
                runs=args.runs,
                min_runs=1,
            )
            print(baseline_table(baseline, metric=args.metric))
            print(f"built from runs: {', '.join(baseline.run_ids())}")
    except (ArchiveError, ProfileFormatError) as exc:
        print(f"repro: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 2
    return 0


def cmd_sentinel(args) -> int:
    from repro.analysis.regression import sentinel_table
    from repro.archive import (
        ArchiveStore,
        SentinelPolicy,
        compare_to_baseline,
        latest_baseline,
        meta_for_result,
    )
    from repro.errors import ArchiveError, ProfileFormatError

    if args.app not in list_programs():
        return _unknown_kernel(args.app)
    store = ArchiveStore(args.archive)
    try:
        baseline = latest_baseline(
            store,
            kernel=args.app,
            size=args.size,
            variant=args.variant,
            n_threads=args.threads,
            tag=args.tag,
            runs=args.runs,
            min_runs=args.min_runs,
        )
    except (ArchiveError, ProfileFormatError) as exc:
        print(f"repro: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 2

    policy = SentinelPolicy(
        metrics={},
        fail_on_appeared=args.fail_on_appeared,
        fail_on_vanished=args.fail_on_vanished,
    )
    for metric in args.metrics or ["exclusive"]:
        policy = policy.with_thresholds(
            metric, ratio=args.ratio, zscore=args.zscore, min_abs=args.min_abs
        )

    if args.candidate:
        from repro.cube.export import loads as load_profile

        try:
            with open(args.candidate) as handle:
                profile = load_profile(handle.read())
        except (OSError, ValueError) as exc:
            print(f"repro: cannot load candidate profile: {exc}",
                  file=sys.stderr)
            return 2
        label = args.candidate
    else:
        try:
            result = run_app(
                args.app,
                size=args.size,
                variant=args.variant,
                n_threads=args.threads,
                seed=args.seed,
                costs=_costs_override(args),
            )
        except ReproError as exc:
            print(f"repro: {type(exc).__name__}: {exc}", file=sys.stderr)
            return 2
        profile = result.profile
        if profile is None:
            print("repro: candidate run produced no profile", file=sys.stderr)
            return 2
        label = f"{args.app} seed={args.seed}"
        if args.archive_candidate:
            _archive_run(
                args.archive,
                profile,
                meta_for_result(
                    result, size=args.size, variant=args.variant,
                    tags=("candidate",), source="sentinel",
                ),
            )

    report = compare_to_baseline(
        profile, baseline, policy=policy, candidate_label=label
    )
    print(
        f"candidate {label} vs baseline runs "
        f"{', '.join(report.baseline_run_ids)}"
    )
    print(sentinel_table(report, include_ok=args.include_ok))
    if args.json:
        atomic_write(args.json, json.dumps(report.to_dict(), indent=2))
        print(f"report written to {args.json}")
    return report.exit_code


def cmd_supervise(args) -> int:
    from repro.faults.campaign import DEFAULT_WATCHDOG_US
    from repro.supervisor import (
        BackoffPolicy,
        Supervisor,
        fault_grid,
        load_spec_file,
        outcome_table,
    )

    # Fault-grid cells auto-archive their (possibly salvaged) profiles
    # next to the journal, so every supervised campaign leaves a
    # queryable profile history behind (disable with --no-archive).
    archive_dir = None
    if not args.no_archive:
        archive_dir = args.archive
        journal_for_archive = args.journal or args.resume
        if archive_dir is None and journal_for_archive:
            archive_dir = journal_for_archive + ".archive"

    if args.spec_file:
        try:
            specs = load_spec_file(args.spec_file)
        except (OSError, ValueError) as exc:
            print(f"repro: cannot load spec file: {exc}", file=sys.stderr)
            return 2
    else:
        for app in args.apps:
            if app not in list_programs():
                return _unknown_kernel(app)
        unknown = [
            mode for mode in args.modes
            if mode != "none" and mode not in FAULT_MODES
        ]
        if unknown:
            print(
                f"repro: unknown fault mode(s) {', '.join(unknown)}; "
                f"available: none, {', '.join(FAULT_MODES)}",
                file=sys.stderr,
            )
            return 2
        if args.substrates:
            from repro.substrates import available_substrates

            for name in args.substrates:
                if name not in available_substrates():
                    return _unknown_substrate(name)
        specs = fault_grid(
            args.apps,
            args.modes,
            args.seeds,
            size=args.size,
            n_threads=args.threads,
            watchdog_us=(
                args.watchdog_us
                if args.watchdog_us is not None
                else DEFAULT_WATCHDOG_US
            ),
            substrates=args.substrates,
            archive_dir=archive_dir,
            record_root=args.record_dir,
        )

    breaker = None
    if args.breaker_threshold is not None:
        from repro.fabric import BreakerPolicy

        breaker = BreakerPolicy(
            threshold=args.breaker_threshold,
            max_probes=args.breaker_probes,
            probe_after=args.breaker_probe_after,
        )
    admission = None
    if args.max_pending is not None:
        from repro.fabric import AdmissionPolicy

        admission = AdmissionPolicy(
            max_pending=args.max_pending, policy=args.admission_policy
        )

    journal_path = args.journal or args.resume
    try:
        report = Supervisor(
            specs,
            jobs=args.jobs,
            timeout_s=args.timeout_s,
            retries=args.retries,
            backoff=BackoffPolicy(base_s=args.backoff_s),
            journal_path=journal_path,
            resume=args.resume is not None,
            heartbeat_s=None if args.no_heartbeat else args.heartbeat_s,
            stall_factor=args.stall_factor,
            deadline_s=args.deadline_s,
            breaker=breaker,
            admission=admission,
        ).run()
    except JournalVersionError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 2

    print(outcome_table(report))
    if archive_dir and not args.spec_file:
        print(f"cell profiles archived to {archive_dir}")
    if args.summary:
        import dataclasses

        atomic_write(
            args.summary,
            json.dumps(
                {
                    "interrupted": report.interrupted,
                    "results": [dataclasses.asdict(r) for r in report.results],
                },
                indent=2,
            ),
        )
        print(f"summary written to {args.summary}")
    if report.interrupted:
        # 128 + signal number, like a shell reports it: 143 for the
        # SIGTERM drain, 130 for Ctrl-C.  Both leave a resumable journal.
        return 143 if report.terminated else 130
    return 0 if report.ok else 1


# ----------------------------------------------------------------------
# Campaign gateway verbs (repro.service)
# ----------------------------------------------------------------------
def _gateway_failure(exc: BaseException, as_json: bool) -> int:
    """Uniform failure surface for gateway verbs: stable code, exit 2."""
    from repro.errors import error_payload

    payload = error_payload(exc)
    if as_json:
        print(json.dumps({"error": payload}, indent=2))
    else:
        print(
            f"repro: {payload['code']}: {payload['message']}", file=sys.stderr
        )
    return 2


def _require_home(home: str) -> bool:
    """Read-only verbs refuse a home with no ledger instead of creating it."""
    import os

    if not os.path.exists(os.path.join(home, "ledger.jsonl")):
        print(
            f"repro: no gateway ledger at {home!r} "
            f"(`repro submit` or `repro serve` creates one)",
            file=sys.stderr,
        )
        return False
    return True


def _load_cells_file(path: str) -> List[dict]:
    """Raw run-spec dicts from a JSON list or JSONL file."""
    with open(path, encoding="utf-8") as handle:
        text = handle.read().strip()
    if not text:
        raise ValueError(f"{path!r} is empty")
    if text.startswith("["):
        cells = json.loads(text)
    else:
        cells = [json.loads(line) for line in text.splitlines() if line.strip()]
    if not isinstance(cells, list) or not all(
        isinstance(cell, dict) for cell in cells
    ):
        raise ValueError(
            f"{path!r} must hold a JSON list (or JSONL) of run-spec objects"
        )
    return cells


def _print_campaign(campaign: dict) -> None:
    """Human-readable single-campaign ledger record."""
    from repro.service import CampaignSpec

    spec = CampaignSpec.from_dict(campaign["spec"])
    print(f"{campaign['campaign_id']}: {campaign['state']}")
    if spec.kind == "fault":
        print(
            f"  spec: fault grid {','.join(spec.apps)} "
            f"x {','.join(spec.modes)} "
            f"x seeds {','.join(str(s) for s in spec.seeds)} "
            f"({spec.n_cells} cells)"
        )
    else:
        print(f"  spec: {spec.n_cells} explicit cells")
    print(f"  attempts: {campaign['attempts']}")
    lease = campaign.get("lease")
    if lease:
        print(f"  lease: {lease['owner']} (expires_at {lease['expires_at']:.0f})")
    if campaign.get("deadline_at") is not None:
        print(f"  deadline_at: {campaign['deadline_at']:.0f}")
    cells = campaign.get("cells")
    if cells:
        outcomes = ", ".join(
            f"{outcome}={count}"
            for outcome, count in sorted(cells.items())
            if outcome != "total"
        )
        print(f"  cells: {outcomes} (total {cells.get('total', '?')})")
    error = campaign.get("error")
    if error:
        print(f"  error: {error['code']}: {error['message']}")
    if campaign.get("idempotency_key"):
        print(f"  idempotency_key: {campaign['idempotency_key']}")


def cmd_serve(args) -> int:
    from repro.errors import ReproError
    from repro.service import Gateway

    admission = None
    if args.max_pending is not None:
        from repro.fabric import AdmissionPolicy

        admission = AdmissionPolicy(
            max_pending=args.max_pending, policy=args.admission_policy
        )
    breaker = None
    if args.breaker_threshold is not None:
        from repro.fabric import BreakerPolicy

        breaker = BreakerPolicy(threshold=args.breaker_threshold)
    try:
        gateway = Gateway(
            args.home,
            jobs=args.jobs,
            lease_ttl_s=args.lease_ttl_s,
            max_lease_attempts=args.max_lease_attempts,
            cell_timeout_s=args.cell_timeout_s,
            retries=args.retries,
            heartbeat_s=None if args.no_heartbeat else args.heartbeat_s,
            admission=admission,
            breaker=breaker,
        )
        report = gateway.serve(
            run_until_idle=args.until_idle,
            poll_s=args.poll_s,
            max_campaigns=args.max_campaigns,
            budget_s=args.budget_s,
        )
    except (ValueError, ReproError) as exc:
        return _gateway_failure(exc, args.as_json)
    if args.as_json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        recovery = report.recovery
        if recovery is not None and recovery.touched:
            print(
                f"recovery: {len(recovery.reclaimed)} lease(s) reclaimed, "
                f"{len(recovery.exhausted)} exhausted, "
                f"{len(recovery.expired)} expired"
            )
        gateway.refresh()
        states: dict = {}
        for campaign in gateway.state.campaigns.values():
            states[campaign.state] = states.get(campaign.state, 0) + 1
        summary = ", ".join(
            f"{state}={count}" for state, count in sorted(states.items())
        )
        how = (
            "drained (SIGTERM)" if report.terminated
            else "drained (interrupt)" if report.drained
            else "idle" if report.idle
            else "stopped"
        )
        print(
            f"served {report.executed} campaign(s); {how}"
            + (f"; ledger: {summary}" if summary else "")
        )
    if report.drained:
        # 128 + signal, shell-style; the drain left resumable state.
        return 143 if report.terminated else 130
    return 0


def cmd_submit(args) -> int:
    from repro.errors import ReproError
    from repro.service import CampaignSpec, Gateway, GatewayAPI

    if args.cells_file:
        try:
            cells = _load_cells_file(args.cells_file)
            # Expand once right here so a malformed cell fails this
            # submit, not the whole campaign at execution time.
            CampaignSpec(kind="cells", cells=cells).build_specs("validate")
        except (OSError, ValueError, KeyError, TypeError) as exc:
            print(f"repro: cannot load cells file: {exc}", file=sys.stderr)
            return 2
        request: dict = {"kind": "cells", "cells": cells}
    else:
        for app in args.apps:
            if app not in list_programs():
                return _unknown_kernel(app)
        unknown = [
            mode for mode in args.modes
            if mode != "none" and mode not in FAULT_MODES
        ]
        if unknown:
            print(
                f"repro: unknown fault mode(s) {', '.join(unknown)}; "
                f"available: none, {', '.join(FAULT_MODES)}",
                file=sys.stderr,
            )
            return 2
        if args.substrates:
            from repro.substrates import available_substrates

            for name in args.substrates:
                if name not in available_substrates():
                    return _unknown_substrate(name)
        from repro.faults.campaign import DEFAULT_WATCHDOG_US

        request = {
            "kind": "fault",
            "apps": args.apps,
            "modes": args.modes,
            "seeds": args.seeds,
            "size": args.size,
            "n_threads": args.threads,
            "watchdog_us": (
                args.watchdog_us
                if args.watchdog_us is not None
                else DEFAULT_WATCHDOG_US
            ),
        }
        if args.substrates is not None:
            request["substrates"] = args.substrates
    if args.wall_timeout_s is not None:
        request["wall_timeout_s"] = args.wall_timeout_s
    if args.idempotency_key is not None:
        request["idempotency_key"] = args.idempotency_key
    if args.deadline_s is not None:
        request["deadline_s"] = args.deadline_s

    try:
        response = GatewayAPI(Gateway(args.home)).submit(request)
    except (ValueError, ReproError) as exc:
        return _gateway_failure(exc, args.as_json)
    if args.as_json:
        print(json.dumps(response, indent=2))
        return 0
    campaign = response["campaign"]
    n_cells = CampaignSpec.from_dict(campaign["spec"]).n_cells
    if response["created"]:
        line = f"{campaign['campaign_id']}: submitted ({n_cells} cells)"
        if args.deadline_s is not None:
            line += f", deadline in {args.deadline_s:g} s"
    else:
        line = (
            f"{campaign['campaign_id']}: already submitted "
            f"(idempotent match, state {campaign['state']})"
        )
    print(line)
    return 0


def cmd_status(args) -> int:
    from repro.errors import ReproError
    from repro.service import Gateway, GatewayAPI
    from repro.service.api import campaign_brief

    if not _require_home(args.home):
        return 2
    if args.cancel and args.campaign_id is None:
        print("repro: --cancel needs a campaign id", file=sys.stderr)
        return 2
    api = GatewayAPI(Gateway(args.home))
    try:
        if args.cancel:
            response = api.cancel(args.campaign_id)
        elif args.campaign_id is not None:
            response = api.status(args.campaign_id)
        else:
            response = api.status()
    except (ValueError, ReproError) as exc:
        return _gateway_failure(exc, args.as_json)
    if args.as_json:
        print(json.dumps(response, indent=2))
        return 0
    if "campaigns" in response:
        rows = [
            [
                brief["campaign_id"],
                brief["state"],
                brief["cells"],
                brief["ok"],
                brief["attempts"],
                brief["code"] or "-",
            ]
            for brief in (
                campaign_brief(campaign)
                for campaign in api.gateway.state.campaigns.values()
            )
        ]
        if not rows:
            print("no campaigns in the ledger yet")
            return 0
        print(format_table(
            ["campaign", "state", "cells", "ok", "attempts", "error"], rows
        ))
        if response["skipped_lines"]:
            print(
                f"({response['skipped_lines']} torn ledger line(s) tolerated)"
            )
        return 0
    _print_campaign(response["campaign"])
    return 0


def cmd_fetch(args) -> int:
    from repro.errors import ReproError
    from repro.service import Gateway, GatewayAPI

    if not _require_home(args.home):
        return 2
    api = GatewayAPI(Gateway(args.home))
    try:
        response = api.fetch(args.campaign_id)
    except (ValueError, ReproError) as exc:
        return _gateway_failure(exc, args.as_json)
    if args.as_json:
        print(json.dumps(response, indent=2))
        return 0
    _print_campaign(response["campaign"])
    runs = response["runs"]
    if not runs:
        print("  runs: none archived")
        return 0
    rows = [
        [
            run["run_id"],
            run["sha256"][:12],
            run["meta"].get("kernel", "?"),
            run["meta"].get("seed", "?"),
            next(
                (
                    tag.split(":", 1)[1]
                    for tag in run["meta"].get("tags", [])
                    if tag.startswith("mode:")
                ),
                "-",
            ),
        ]
        for run in runs
    ]
    print(format_table(["run", "sha256", "kernel", "seed", "mode"], rows))
    return 0


COMMANDS = {
    "list": cmd_list,
    "run": cmd_run,
    "replay": cmd_replay,
    "verify": cmd_verify,
    "governor": cmd_governor,
    "overhead": cmd_overhead,
    "report": cmd_report,
    "scaling": cmd_scaling,
    "diff": cmd_diff,
    "advise": cmd_advise,
    "paper": cmd_paper,
    "faults": cmd_faults,
    "supervise": cmd_supervise,
    "archive": cmd_archive,
    "sentinel": cmd_sentinel,
    "serve": cmd_serve,
    "submit": cmd_submit,
    "status": cmd_status,
    "fetch": cmd_fetch,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return COMMANDS[args.command](args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: normal exit.
        return 0
    except KeyboardInterrupt:
        # Commands with partial state handle Ctrl-C themselves (the
        # supervisor drains its workers, `faults` prints the partial
        # table); anything else just exits with 128+SIGINT.
        print("repro: interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
