"""Columnar event batches: the struct-of-arrays hot-path representation.

The legacy measurement chain dispatched one Python call per POMP2 event
through every layer (runtime -> instrumentation -> manager -> each
substrate), allocating argument tuples and paying several function-call
frames per event.  TASKPROF's lesson (and Score-P's) is that a profiler
stays near-native only if the per-event path is tiny and analysis is
deferred; an :class:`EventBatch` is that deferral.

An event is **one append to each of two flat columns**:

``codes``  (``array('q')``)
    a packed 64-bit integer per event::

        bits  0..2   kind (K_ENTER .. K_METRIC)
        bit   3      payload flag (parameter tuple / counters dict
                     present in the sparse ``payloads`` side table)
        bits  4..13  thread id      (10 bits, < 1024 threads)
        bits 14..33  region id      (20 bits; the *interned*
                     ``Region.handle`` from the process-wide
                     :class:`~repro.events.regions.RegionRegistry` --
                     the same intern table the recorder writes to disk)
        bits 34..    task-instance id, zigzag-encoded (implicit-task
                     ids are negative)

``times``  (``array('d')``)
    the virtual timestamp per event, bit-exact.

Both columns expose the buffer protocol, so a numpy-capable consumer
(:meth:`ClassicProfiler.consume_batch`, the stats substrate) can
``np.frombuffer`` them with **zero copies**; consumers without numpy
iterate :meth:`EventBatch.rows`.

Rare payloads (enter parameters, metric counter dicts) live out-of-band
in ``payloads``, a ``{event index -> object}`` dict, keeping the hot
columns fixed-width.

Batches are *reused ring-buffer style*: the instrumentation layer fills
one batch, flushes it through ``SubstrateManager.on_batch`` at
scheduling-point boundaries, then :meth:`clear`\\ s it in place.
Consumers must therefore never retain a reference past the flush call.
"""

from __future__ import annotations

from array import array
from typing import Iterator, Optional, Tuple

from repro.events.regions import RegionRegistry

#: Event kinds (bits 0..2 of a packed code).
K_ENTER = 0
K_EXIT = 1
K_TASK_BEGIN = 2
K_TASK_END = 3
K_TASK_SWITCH = 4
K_METRIC = 5

#: Payload-present flag (bit 3).
F_PAYLOAD = 8

KIND_MASK = 7
TID_SHIFT = 4
TID_MASK = 0x3FF  # 10 bits -> max 1023 threads
RID_SHIFT = 14
RID_MASK = 0xFFFFF  # 20 bits -> ~1M interned regions
INST_SHIFT = 34

KIND_NAMES = ("enter", "exit", "task_begin", "task_end", "task_switch", "metric")


def zigzag(value: int) -> int:
    """Map a signed instance id onto a non-negative packable int."""
    return (value << 1) if value >= 0 else ((-value << 1) - 1)


def unzigzag(value: int) -> int:
    return (value >> 1) if not value & 1 else -((value + 1) >> 1)


def pack_code(
    kind: int,
    thread_id: int,
    region_id: int = 0,
    instance: int = 0,
    has_payload: bool = False,
) -> int:
    """Pack one event into a 64-bit code (the slow, validated builder).

    The instrumentation layer inlines these shifts on its hot path; this
    helper exists for tests and synthetic batch producers.
    """
    if not 0 <= thread_id <= TID_MASK:
        raise ValueError(f"thread id {thread_id} exceeds {TID_MASK}")
    if not 0 <= region_id <= RID_MASK:
        raise ValueError(f"region id {region_id} exceeds {RID_MASK}")
    code = kind | (thread_id << TID_SHIFT) | (region_id << RID_SHIFT)
    code |= zigzag(instance) << INST_SHIFT
    if has_payload:
        code |= F_PAYLOAD
    return code


class EventBatch:
    """A reusable struct-of-arrays buffer of packed measurement events.

    Region ids inside the codes column are ``Region.handle`` values from
    :attr:`registry` -- the run's shared intern table -- so consumers
    resolve them with ``registry.lookup`` and the recorder can write
    them to disk without a second interning pass.
    """

    __slots__ = ("registry", "codes", "times", "payloads", "counted")

    def __init__(self, registry: Optional[RegionRegistry] = None) -> None:
        self.registry = registry
        self.codes = array("q")
        self.times = array("d")
        #: sparse {event index -> parameter tuple | counters dict}
        self.payloads = {}
        #: cost-bearing events in the batch (everything except metrics,
        #: which piggy-back on an existing event boundary) -- the number
        #: the manager adds to ``events_delivered`` per flush.
        self.counted = 0

    def __len__(self) -> int:
        return len(self.codes)

    def __repr__(self) -> str:
        return f"<EventBatch {len(self.codes)} events, {self.counted} counted>"

    def clear(self) -> None:
        """Reset in place (the columns keep their allocated capacity)."""
        del self.codes[:]
        del self.times[:]
        if self.payloads:
            self.payloads.clear()
        self.counted = 0

    # -- per-event appenders -------------------------------------------
    # Convenience builders for tests, benchmarks and synthetic streams.
    # The instrumentation layer does NOT call these: it inlines the
    # appends so filling stays one frame per event.
    def add_enter(
        self, thread_id: int, region, time: float, parameter: Optional[tuple] = None
    ) -> None:
        code = K_ENTER | (thread_id << TID_SHIFT) | (region.handle << RID_SHIFT)
        if parameter is not None:
            self.payloads[len(self.codes)] = parameter
            code |= F_PAYLOAD
        self.codes.append(code)
        self.times.append(time)
        self.counted += 1

    def add_exit(self, thread_id: int, region, time: float) -> None:
        self.codes.append(
            K_EXIT | (thread_id << TID_SHIFT) | (region.handle << RID_SHIFT)
        )
        self.times.append(time)
        self.counted += 1

    def add_task_begin(
        self,
        thread_id: int,
        region,
        instance: int,
        time: float,
        parameter: Optional[tuple] = None,
    ) -> None:
        code = (
            K_TASK_BEGIN
            | (thread_id << TID_SHIFT)
            | (region.handle << RID_SHIFT)
            | (zigzag(instance) << INST_SHIFT)
        )
        if parameter is not None:
            self.payloads[len(self.codes)] = parameter
            code |= F_PAYLOAD
        self.codes.append(code)
        self.times.append(time)
        self.counted += 1

    def add_task_end(self, thread_id: int, region, instance: int, time: float) -> None:
        self.codes.append(
            K_TASK_END
            | (thread_id << TID_SHIFT)
            | (region.handle << RID_SHIFT)
            | (zigzag(instance) << INST_SHIFT)
        )
        self.times.append(time)
        self.counted += 1

    def add_task_switch(self, thread_id: int, instance: int, time: float) -> None:
        self.codes.append(
            K_TASK_SWITCH
            | (thread_id << TID_SHIFT)
            | (zigzag(instance) << INST_SHIFT)
        )
        self.times.append(time)
        self.counted += 1

    def add_metric(self, thread_id: int, counters: dict, time: float) -> None:
        self.payloads[len(self.codes)] = counters
        self.codes.append(K_METRIC | (thread_id << TID_SHIFT) | F_PAYLOAD)
        self.times.append(time)
        # metrics are not counted: they add no per-event cost and the
        # legacy manager never tallied them in events_delivered.

    # -- decoding ------------------------------------------------------
    def rows(self) -> Iterator[Tuple[int, int, object, float, int, object]]:
        """Decode into ``(kind, thread_id, region, time, instance, payload)``.

        ``region`` is the interned :class:`Region` (``None`` for
        task-switch and metric rows), ``instance`` the signed task
        instance id (0 for region rows), ``payload`` the parameter tuple
        or counters dict (usually ``None``).  This is the fallback-shim
        decode loop: exact, allocation-light, and independent of numpy.
        """
        lookup = self.registry.lookup
        payloads = self.payloads
        times = self.times
        for i, code in enumerate(self.codes):
            kind = code & KIND_MASK
            thread_id = (code >> TID_SHIFT) & TID_MASK
            region = None
            if kind <= K_TASK_END:  # enter/exit/task_begin/task_end carry one
                region = lookup((code >> RID_SHIFT) & RID_MASK)
            instance = unzigzag(code >> INST_SHIFT)
            payload = payloads[i] if code & F_PAYLOAD else None
            yield kind, thread_id, region, times[i], instance, payload
