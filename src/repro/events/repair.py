"""Best-effort repair of corrupt event streams.

The paper's Fig. 12 algorithm assumes a *consistent* event stream; real
measurement stacks see dropped, duplicated, reordered, and clock-skewed
events (buffer overruns, per-thread clock drift, crashed tasks).  This
module turns a corrupt per-thread stream back into one the task-aware
profiler can consume, recording exactly what it had to do:

Repair rules, in order:

1. **Clock skew** -- timestamps are clamped to be monotone per thread
   (an event may never appear to precede its predecessor).
2. **Duplicate lifecycle events** -- a second ``TaskBegin`` or ``TaskEnd``
   for the same instance is dropped.
3. **Orphan events** -- ``TaskEnd``/``TaskSwitch`` referring to an
   instance that never began are dropped and the instance is quarantined.
4. **Missing switches** -- a ``TaskEnd`` for an instance that is not
   current is preceded by a synthesized ``TaskSwitch``.
5. **Broken nesting** -- an ``Exit`` whose region is open-but-not-innermost
   synthesizes exits for the regions above it; an exit that was never
   entered is dropped; regions still open at ``TaskEnd`` or at stream end
   get synthesized exits.
6. **Missing ends** -- instances still active at stream end get a
   synthesized ``TaskEnd`` (after closing their regions).

Unrecoverable instances are *quarantined*: every remaining event that
refers to them is dropped and their ids are reported, so downstream
consumers can mark the profile as partial rather than silently wrong.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Set

from repro.errors import StreamRepairError
from repro.events.model import (
    AnyEvent,
    EnterEvent,
    ExitEvent,
    TaskBeginEvent,
    TaskCreateBeginEvent,
    TaskCreateEndEvent,
    TaskEndEvent,
    TaskSwitchEvent,
    implicit_instance_id,
    is_implicit,
)
from repro.events.regions import Region


@dataclass
class RepairLog:
    """What :func:`repair_stream` had to do to one (or more) streams."""

    events_in: int = 0
    events_out: int = 0
    dropped: int = 0
    synthesized: int = 0
    clamped: int = 0
    quarantined: Set[int] = field(default_factory=set)
    notes: List[str] = field(default_factory=list)

    @property
    def touched(self) -> bool:
        """True if the stream needed any repair at all."""
        return bool(self.dropped or self.synthesized or self.clamped or self.quarantined)

    def merge(self, other: "RepairLog") -> None:
        self.events_in += other.events_in
        self.events_out += other.events_out
        self.dropped += other.dropped
        self.synthesized += other.synthesized
        self.clamped += other.clamped
        self.quarantined |= other.quarantined
        self.notes.extend(other.notes)

    def summary(self) -> str:
        if not self.touched:
            return "stream clean: no repairs needed"
        quarantined = (
            f", quarantined instances {sorted(self.quarantined)}"
            if self.quarantined
            else ""
        )
        return (
            f"repaired stream: {self.events_in} events in, {self.events_out} out "
            f"({self.dropped} dropped, {self.synthesized} synthesized, "
            f"{self.clamped} timestamps clamped{quarantined})"
        )


@dataclass
class RepairResult:
    """A repaired event list plus the log of what changed."""

    events: List[AnyEvent]
    log: RepairLog


class _InstanceRepairState:
    __slots__ = ("begun", "ended", "stack", "region")

    def __init__(self, region: Optional[Region] = None) -> None:
        self.begun = False
        self.ended = False
        self.stack: List[Region] = []
        self.region = region


def repair_stream(
    events: Iterable[AnyEvent], thread_id: int = 0
) -> RepairResult:
    """Repair one thread's event stream into a consumable one.

    Returns a :class:`RepairResult`; never raises on corrupt *content*
    (only :class:`~repro.errors.StreamRepairError` on events that are not
    part of the event model at all).
    """
    implicit = implicit_instance_id(thread_id)
    log = RepairLog()
    out: List[AnyEvent] = []
    states: Dict[int, _InstanceRepairState] = {}
    current = implicit
    last_time = 0.0

    def state_of(instance: int) -> _InstanceRepairState:
        state = states.get(instance)
        if state is None:
            state = _InstanceRepairState()
            states[instance] = state
            if is_implicit(instance):
                state.begun = True
        return state

    state_of(implicit)

    def emit(event: AnyEvent) -> None:
        out.append(event)
        log.events_out += 1

    def clamp(event: AnyEvent) -> AnyEvent:
        nonlocal last_time
        if event.time < last_time:
            event = replace(event, time=last_time)
            log.clamped += 1
        else:
            last_time = event.time
        return event

    def close_open_regions(instance: int, time: float) -> None:
        """Synthesize exits for every open region of ``instance``."""
        state = states[instance]
        while state.stack:
            region = state.stack.pop()
            emit(ExitEvent(thread_id, time, instance, region))
            log.synthesized += 1

    for event in events:
        log.events_in += 1
        event = clamp(event)
        if isinstance(event, TaskBeginEvent):
            state = state_of(event.instance)
            if state.begun or state.ended:
                log.dropped += 1
                log.quarantined.add(event.instance)
                log.notes.append(
                    f"dropped duplicate TaskBegin for instance {event.instance}"
                )
                continue
            state.begun = True
            state.region = event.region
            current = event.instance
            emit(event)
        elif isinstance(event, TaskEndEvent):
            state = states.get(event.instance)
            if state is None or not state.begun or state.ended:
                log.dropped += 1
                log.quarantined.add(event.instance)
                log.notes.append(
                    f"dropped TaskEnd for never-begun or already-ended "
                    f"instance {event.instance}"
                )
                continue
            if event.instance != current:
                # The switch back to this instance was lost: synthesize it.
                emit(TaskSwitchEvent(thread_id, event.time, event.instance,
                                     instance=event.instance))
                log.synthesized += 1
                current = event.instance
            close_open_regions(current, event.time)
            state.ended = True
            current = implicit
            emit(event)
        elif isinstance(event, TaskSwitchEvent):
            target = event.instance
            if is_implicit(target):
                if target != implicit:
                    log.dropped += 1
                    log.notes.append(
                        f"dropped switch to foreign implicit task {target}"
                    )
                    continue
                current = implicit
                emit(event)
                continue
            state = states.get(target)
            if state is None or not state.begun or state.ended:
                log.dropped += 1
                log.quarantined.add(target)
                log.notes.append(f"dropped switch to inactive instance {target}")
                continue
            current = target
            emit(event)
        elif isinstance(event, (EnterEvent, TaskCreateBeginEvent)):
            if event.executing_instance != current:
                event = replace(event, executing_instance=current)
            state_of(current).stack.append(event.region)
            emit(event)
        elif isinstance(event, (ExitEvent, TaskCreateEndEvent)):
            if event.executing_instance != current:
                event = replace(event, executing_instance=current)
            stack = state_of(current).stack
            if event.region not in stack:
                log.dropped += 1
                log.notes.append(
                    f"dropped exit for never-entered region {event.region.name!r}"
                )
                continue
            # Close any regions the corrupt stream left open above this one.
            while stack and stack[-1] is not event.region:
                emit(ExitEvent(thread_id, event.time, current, stack.pop()))
                log.synthesized += 1
            stack.pop()
            emit(event)
        else:
            raise StreamRepairError(
                f"cannot repair unknown event type {type(event).__name__}"
            )

    # End of stream: close whatever is still open.
    for instance, state in states.items():
        if is_implicit(instance):
            continue
        if state.begun and not state.ended:
            if instance != current:
                emit(TaskSwitchEvent(thread_id, last_time, instance,
                                     instance=instance))
                log.synthesized += 1
                current = instance
            close_open_regions(instance, last_time)
            region = state.region
            if region is None:  # pragma: no cover - begun implies region
                log.quarantined.add(instance)
                continue
            emit(TaskEndEvent(thread_id, last_time, instance, region,
                              instance=instance))
            log.synthesized += 1
            state.ended = True
            current = implicit
            log.notes.append(f"synthesized TaskEnd for instance {instance}")
    implicit_state = states[implicit]
    while implicit_state.stack:
        region = implicit_state.stack.pop()
        emit(ExitEvent(thread_id, last_time, implicit, region))
        log.synthesized += 1
    return RepairResult(out, log)


def repair_streams(
    streams: Dict[int, List[AnyEvent]]
) -> "tuple[Dict[int, List[AnyEvent]], RepairLog]":
    """Repair several per-thread streams; returns repaired streams + log.

    Cross-thread consistency (an instance begun on two threads) is
    handled by the profiler's shared instance table during replay; this
    pass is purely per-thread.
    """
    log = RepairLog()
    repaired: Dict[int, List[AnyEvent]] = {}
    for thread_id, events in streams.items():
        result = repair_stream(events, thread_id=thread_id)
        repaired[thread_id] = result.events
        log.merge(result.log)
    return repaired, log
