"""Per-thread event streams and whole-program traces.

Score-P translates each thread's event stream into a profile on the fly;
for testing, debugging, and the paper's Fig. 1/2/4 examples we also support
*recording* the stream.  :class:`EventStream` is an append-only log with
query helpers; :class:`ProgramTrace` bundles one stream per thread plus the
region registry.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Sequence, Type

from repro.events.model import (
    AnyEvent,
    EnterEvent,
    Event,
    ExitEvent,
    TaskBeginEvent,
    TaskEndEvent,
    TaskSwitchEvent,
)
from repro.events.regions import Region, RegionRegistry


class EventStream:
    """Append-only event log of a single simulated thread."""

    __slots__ = ("thread_id", "_events")

    def __init__(self, thread_id: int) -> None:
        self.thread_id = thread_id
        self._events: List[AnyEvent] = []

    # ------------------------------------------------------------------
    def append(self, event: AnyEvent) -> None:
        if event.thread_id != self.thread_id:
            raise ValueError(
                f"event from thread {event.thread_id} appended to stream of "
                f"thread {self.thread_id}"
            )
        if self._events and event.time < self._events[-1].time:
            raise ValueError(
                f"event timestamps must be monotone: {event.time} < "
                f"{self._events[-1].time}"
            )
        self._events.append(event)

    def append_unchecked(self, event: AnyEvent) -> None:
        """Append without consistency checks.

        Only the fault-injection path uses this: injected clock skew and
        reordering deliberately violate the monotonicity that
        :meth:`append` enforces, and the salvage pipeline repairs the
        stream afterwards.
        """
        self._events.append(event)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[AnyEvent]:
        return iter(self._events)

    def __getitem__(self, index):
        return self._events[index]

    # ------------------------------------------------------------------
    def of_type(self, event_type: Type[Event]) -> List[AnyEvent]:
        """All events of the given class, in order."""
        return [e for e in self._events if isinstance(e, event_type)]

    def for_region(self, region: Region) -> List[AnyEvent]:
        """All events referring to ``region`` (enter/exit/task events)."""
        return [e for e in self._events if getattr(e, "region", None) is region]

    def filter(self, predicate: Callable[[AnyEvent], bool]) -> List[AnyEvent]:
        return [e for e in self._events if predicate(e)]

    def enters(self) -> List[EnterEvent]:
        return self.of_type(EnterEvent)  # type: ignore[return-value]

    def exits(self) -> List[ExitEvent]:
        return self.of_type(ExitEvent)  # type: ignore[return-value]

    def task_begins(self) -> List[TaskBeginEvent]:
        return self.of_type(TaskBeginEvent)  # type: ignore[return-value]

    def task_ends(self) -> List[TaskEndEvent]:
        return self.of_type(TaskEndEvent)  # type: ignore[return-value]

    def task_switches(self) -> List[TaskSwitchEvent]:
        return self.of_type(TaskSwitchEvent)  # type: ignore[return-value]

    def pretty(self, limit: Optional[int] = None) -> str:
        """Multi-line human-readable rendering (used in examples/tests)."""
        events = self._events if limit is None else self._events[:limit]
        lines = [str(e) for e in events]
        if limit is not None and len(self._events) > limit:
            lines.append(f"... ({len(self._events) - limit} more)")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<EventStream thread={self.thread_id} events={len(self._events)}>"


class ProgramTrace:
    """All per-thread streams of one run plus the shared region registry."""

    def __init__(self, n_threads: int, registry: Optional[RegionRegistry] = None) -> None:
        self.registry = registry if registry is not None else RegionRegistry()
        self.streams: List[EventStream] = [EventStream(t) for t in range(n_threads)]

    @property
    def n_threads(self) -> int:
        return len(self.streams)

    def stream(self, thread_id: int) -> EventStream:
        return self.streams[thread_id]

    def record(self, event: AnyEvent) -> None:
        self.streams[event.thread_id].append(event)

    def attach_injector(self, injector) -> None:
        """Route future :meth:`record` calls through a fault injector.

        Shadows ``record`` with an instance attribute so the disarmed
        path stays byte-identical (no per-event flag check): when no
        injector is attached, recording costs exactly what it did before
        this hook existed.  The injector's ``on_record(event)`` returns
        the events to actually store -- possibly none (drop), several
        (duplicate), or perturbed copies (clock skew) -- which are
        appended unchecked because perturbed timestamps may legitimately
        violate per-stream monotonicity.
        """
        streams = self.streams

        def record(event: AnyEvent) -> None:
            for out in injector.on_record(event):
                streams[out.thread_id].append_unchecked(out)

        self.record = record  # type: ignore[method-assign]

    def detach_injector(self) -> None:
        """Undo :meth:`attach_injector` (restores the class method)."""
        self.__dict__.pop("record", None)

    def total_events(self) -> int:
        return sum(len(s) for s in self.streams)

    def merged(self) -> List[AnyEvent]:
        """All events of all threads in global timestamp order.

        Ties are broken by thread id, then original position, which is
        deterministic because per-stream order is already total.
        """
        indexed: List[tuple] = []
        for stream in self.streams:
            for position, event in enumerate(stream):
                indexed.append((event.time, event.thread_id, position, event))
        indexed.sort(key=lambda item: (item[0], item[1], item[2]))
        return [item[3] for item in indexed]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ProgramTrace threads={self.n_threads} events={self.total_events()}>"


def stream_from_events(events: Sequence[AnyEvent], thread_id: int = 0) -> EventStream:
    """Build a stream from a literal event list (test/example helper)."""
    stream = EventStream(thread_id)
    for event in events:
        stream.append(event)
    return stream
