"""Event-stream validators.

Two validators, matching the paper's problem analysis:

:func:`validate_nesting`
    The *classic* condition required by the pre-tasking Score-P profiling
    algorithm: every ``Exit`` must match the most recent unmatched
    ``Enter`` of the same region on the same thread.  Task-free OpenMP
    streams satisfy it; the interleaved task streams of the paper's Fig. 2
    do not, and this validator pinpoints the first violation.

:func:`validate_task_stream`
    The task-aware consistency rules under which the Fig. 12 algorithm is
    defined: per *task instance* the enter/exit events nest correctly;
    TaskBegin/TaskEnd bracket each instance exactly once; TaskSwitch only
    targets instances that are active (begun, not ended) or implicit; a
    thread's events between switches belong to the task it switched to;
    tied instances never resume on a different thread.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.errors import EventOrderError, ValidationError
from repro.events.model import (
    AnyEvent,
    EnterEvent,
    ExitEvent,
    TaskBeginEvent,
    TaskCreateBeginEvent,
    TaskCreateEndEvent,
    TaskEndEvent,
    TaskSwitchEvent,
    implicit_instance_id,
    is_implicit,
)
from repro.events.regions import Region


def validate_nesting(events: Iterable[AnyEvent]) -> None:
    """Check the classic enter/exit nesting condition on one stream.

    Raises :class:`~repro.errors.EventOrderError` on the first violation:
    an exit without a matching enter, an exit for a region other than the
    innermost open one, or leftover open regions at stream end.  Task
    events are rejected outright -- the classic algorithm has no notion of
    them (paper Section IV-B1).
    """
    stack: List[Region] = []
    for index, event in enumerate(events):
        if isinstance(event, EnterEvent):
            stack.append(event.region)
        elif isinstance(event, ExitEvent):
            if not stack:
                raise EventOrderError(
                    f"event #{index}: exit {event.region.name!r} with no open region"
                )
            top = stack.pop()
            if top is not event.region:
                raise EventOrderError(
                    f"event #{index}: exit {event.region.name!r} does not match "
                    f"innermost open region {top.name!r}"
                )
        elif isinstance(
            event,
            (
                TaskBeginEvent,
                TaskEndEvent,
                TaskSwitchEvent,
                TaskCreateBeginEvent,
                TaskCreateEndEvent,
            ),
        ):
            raise EventOrderError(
                f"event #{index}: task event {type(event).__name__} is not "
                "representable in the classic (pre-tasking) profiling model"
            )
        else:  # pragma: no cover - defensive
            raise ValidationError(f"unknown event type {type(event).__name__}")
    if stack:
        names = ", ".join(r.name for r in stack)
        raise EventOrderError(f"stream ended with open region(s): {names}")


class _InstanceState:
    """Book-keeping for one task instance during task-aware validation."""

    __slots__ = ("begun", "ended", "stack", "bound_thread")

    def __init__(self) -> None:
        self.begun = False
        self.ended = False
        self.stack: List[Region] = []
        self.bound_thread: Optional[int] = None


def validate_task_stream(
    events: Iterable[AnyEvent],
    thread_id: int = 0,
    tied: bool = True,
    known_active: Optional[Set[int]] = None,
) -> Dict[int, _InstanceState]:
    """Validate one thread's stream under the task-aware rules.

    Parameters
    ----------
    events:
        The thread's events in order.
    thread_id:
        The stream's thread; the implicit task id derives from it.
    tied:
        If True (the paper's supported mode) a task instance must execute
        all its fragments on this thread.  Untied migration relaxes this
        (Section IV-D1); cross-thread validation then needs the merged
        trace, see :func:`validate_program_trace`.
    known_active:
        Instance ids that began on *another* thread and may legitimately
        be switched to here (untied migration).  Ignored when ``tied``.

    Returns the final per-instance state map so callers can make additional
    assertions (e.g. every instance both begun and ended).
    """
    implicit = implicit_instance_id(thread_id)
    states: Dict[int, _InstanceState] = {}
    current = implicit

    def state_of(instance: int) -> _InstanceState:
        state = states.get(instance)
        if state is None:
            state = _InstanceState()
            states[instance] = state
            if is_implicit(instance):
                state.begun = True
        return state

    state_of(implicit)

    for index, event in enumerate(events):
        if isinstance(event, TaskBeginEvent):
            state = state_of(event.instance)
            if state.begun:
                raise ValidationError(
                    f"event #{index}: instance {event.instance} begun twice"
                )
            state.begun = True
            state.bound_thread = thread_id
            current = event.instance
        elif isinstance(event, TaskEndEvent):
            state = state_of(event.instance)
            if not state.begun or state.ended:
                raise ValidationError(
                    f"event #{index}: task_end for instance {event.instance} "
                    "that is not active"
                )
            if event.instance != current:
                raise ValidationError(
                    f"event #{index}: task_end for instance {event.instance} "
                    f"but current instance is {current}"
                )
            if state.stack:
                names = ", ".join(r.name for r in state.stack)
                raise ValidationError(
                    f"event #{index}: instance {event.instance} ended with "
                    f"open region(s): {names}"
                )
            state.ended = True
            current = implicit
        elif isinstance(event, TaskSwitchEvent):
            target = event.instance
            state = states.get(target)
            if is_implicit(target):
                if target != implicit:
                    raise ValidationError(
                        f"event #{index}: switch to foreign implicit task {target}"
                    )
            else:
                migrated = (
                    not tied
                    and known_active is not None
                    and target in known_active
                    and state is None
                )
                if migrated:
                    state = state_of(target)
                    state.begun = True
                if state is None or not state.begun or state.ended:
                    raise ValidationError(
                        f"event #{index}: switch to inactive instance {target}"
                    )
                if tied and state.bound_thread not in (None, thread_id):
                    raise ValidationError(
                        f"event #{index}: tied instance {target} resumed on "
                        f"thread {thread_id}, began on {state.bound_thread}"
                    )
            current = target
        elif isinstance(event, (EnterEvent, TaskCreateBeginEvent)):
            if event.executing_instance != current:
                raise ValidationError(
                    f"event #{index}: event attributed to instance "
                    f"{event.executing_instance} while instance {current} is current"
                )
            state_of(current).stack.append(event.region)
        elif isinstance(event, (ExitEvent, TaskCreateEndEvent)):
            if event.executing_instance != current:
                raise ValidationError(
                    f"event #{index}: event attributed to instance "
                    f"{event.executing_instance} while instance {current} is current"
                )
            stack = state_of(current).stack
            if not stack:
                raise ValidationError(
                    f"event #{index}: exit {event.region.name!r} with no open "
                    f"region in instance {current}"
                )
            top = stack.pop()
            if top is not event.region:
                raise ValidationError(
                    f"event #{index}: exit {event.region.name!r} does not match "
                    f"innermost open region {top.name!r} of instance {current}"
                )
        else:  # pragma: no cover - defensive
            raise ValidationError(f"unknown event type {type(event).__name__}")

    return states


def validate_program_trace(trace) -> None:
    """Validate a whole :class:`~repro.events.stream.ProgramTrace`.

    Checks every per-thread stream with the task-aware validator and then
    the cross-thread properties: each explicit instance has exactly one
    TaskBegin and one TaskEnd program-wide.
    """
    begun: Dict[int, int] = {}
    ended: Dict[int, int] = {}
    for stream in trace.streams:
        validate_task_stream(
            stream, thread_id=stream.thread_id, tied=False, known_active=set(begun)
        )
        for event in stream:
            if isinstance(event, TaskBeginEvent):
                begun[event.instance] = begun.get(event.instance, 0) + 1
            elif isinstance(event, TaskEndEvent):
                ended[event.instance] = ended.get(event.instance, 0) + 1
    for instance, count in begun.items():
        if count != 1:
            raise ValidationError(f"instance {instance} has {count} TaskBegin events")
        if ended.get(instance, 0) != 1:
            raise ValidationError(
                f"instance {instance} begun but ended {ended.get(instance, 0)} times"
            )
    extra = set(ended) - set(begun)
    if extra:
        raise ValidationError(f"TaskEnd without TaskBegin for instance(s) {sorted(extra)}")
