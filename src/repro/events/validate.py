"""Event-stream validators.

Two validators, matching the paper's problem analysis:

:func:`validate_nesting`
    The *classic* condition required by the pre-tasking Score-P profiling
    algorithm: every ``Exit`` must match the most recent unmatched
    ``Enter`` of the same region on the same thread.  Task-free OpenMP
    streams satisfy it; the interleaved task streams of the paper's Fig. 2
    do not, and this validator pinpoints the first violation.

:func:`validate_task_stream`
    The task-aware consistency rules under which the Fig. 12 algorithm is
    defined: per *task instance* the enter/exit events nest correctly;
    TaskBegin/TaskEnd bracket each instance exactly once; TaskSwitch only
    targets instances that are active (begun, not ended) or implicit; a
    thread's events between switches belong to the task it switched to;
    tied instances never resume on a different thread.

Both validators exist in two modes:

* **strict** (the historical behavior): raise the precise
  :class:`~repro.errors.EventOrderError` / :class:`~repro.errors.ValidationError`
  at the *first* violation.
* **lenient**: walk the whole stream, collect every violation as a
  structured :class:`Violation` record, and keep going with a best-effort
  continuation (skip the offending event, or force-close what it left
  open).  This is the mode production measurement must run in -- one
  corrupt event must not cost the whole run's profile
  (:func:`collect_nesting_violations`, :func:`collect_task_stream_violations`,
  :func:`collect_trace_violations`).

Internally each validator is written once, as a generator of violations;
the strict entry points simply raise the first violation the generator
yields, which preserves the historical stop-at-first-error semantics and
exact messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple, Type

from repro.errors import EventOrderError, ReproError, ValidationError
from repro.events.model import (
    AnyEvent,
    EnterEvent,
    ExitEvent,
    TaskBeginEvent,
    TaskCreateBeginEvent,
    TaskCreateEndEvent,
    TaskEndEvent,
    TaskSwitchEvent,
    implicit_instance_id,
    is_implicit,
)
from repro.events.regions import Region


@dataclass(frozen=True)
class Violation:
    """One structural violation found by a validator in lenient mode.

    Attributes
    ----------
    index:
        Position of the offending event in its stream, or ``-1`` for
        end-of-stream / cross-thread violations that have no single
        offending event.
    kind:
        Short machine-readable code (``"exit-unmatched"``,
        ``"begin-twice"``, ...).
    message:
        The exact message strict mode would raise with.
    error:
        The exception class strict mode would raise.
    """

    index: int
    kind: str
    message: str
    error: Type[ReproError] = ValidationError

    def exception(self) -> ReproError:
        """The exception strict mode raises for this violation."""
        return self.error(self.message)

    def __str__(self) -> str:
        return f"[{self.kind}] {self.message}"


# ----------------------------------------------------------------------
# Classic (pre-tasking) nesting condition
# ----------------------------------------------------------------------
def _nesting_violations(events: Iterable[AnyEvent]) -> Iterator[Violation]:
    """Yield every violation of the classic nesting condition.

    Lenient continuation: an unmatched exit is skipped, a mismatching
    exit closes the innermost open region anyway, task events are
    skipped.
    """
    stack: List[Region] = []
    index = -1
    for index, event in enumerate(events):
        if isinstance(event, EnterEvent):
            stack.append(event.region)
        elif isinstance(event, ExitEvent):
            if not stack:
                yield Violation(
                    index,
                    "exit-unmatched",
                    f"event #{index}: exit {event.region.name!r} with no open region",
                    EventOrderError,
                )
                continue
            top = stack.pop()
            if top is not event.region:
                yield Violation(
                    index,
                    "exit-mismatch",
                    f"event #{index}: exit {event.region.name!r} does not match "
                    f"innermost open region {top.name!r}",
                    EventOrderError,
                )
        elif isinstance(
            event,
            (
                TaskBeginEvent,
                TaskEndEvent,
                TaskSwitchEvent,
                TaskCreateBeginEvent,
                TaskCreateEndEvent,
            ),
        ):
            yield Violation(
                index,
                "task-event",
                f"event #{index}: task event {type(event).__name__} is not "
                "representable in the classic (pre-tasking) profiling model",
                EventOrderError,
            )
        else:
            yield Violation(
                index,
                "unknown-event",
                f"unknown event type {type(event).__name__}",
                ValidationError,
            )
    if stack:
        names = ", ".join(r.name for r in stack)
        yield Violation(
            -1,
            "open-at-end",
            f"stream ended with open region(s): {names}",
            EventOrderError,
        )


def validate_nesting(events: Iterable[AnyEvent]) -> None:
    """Check the classic enter/exit nesting condition on one stream.

    Raises :class:`~repro.errors.EventOrderError` on the first violation:
    an exit without a matching enter, an exit for a region other than the
    innermost open one, or leftover open regions at stream end.  Task
    events are rejected outright -- the classic algorithm has no notion of
    them (paper Section IV-B1).
    """
    for violation in _nesting_violations(events):
        raise violation.exception()


def collect_nesting_violations(events: Iterable[AnyEvent]) -> List[Violation]:
    """Lenient counterpart of :func:`validate_nesting`: all violations."""
    return list(_nesting_violations(events))


# ----------------------------------------------------------------------
# Task-aware consistency rules
# ----------------------------------------------------------------------
class _InstanceState:
    """Book-keeping for one task instance during task-aware validation."""

    __slots__ = ("begun", "ended", "stack", "bound_thread")

    def __init__(self) -> None:
        self.begun = False
        self.ended = False
        self.stack: List[Region] = []
        self.bound_thread: Optional[int] = None


class TaskStreamChecker:
    """Incremental (push-based) task-aware validator for one thread's stream.

    The batch validators below iterate a finished stream; this class is the
    same rule set factored so events can be *fed one at a time while the
    run is still producing them* -- the engine behind the online-validation
    measurement substrate (:mod:`repro.substrates.validation`).  Each
    :meth:`feed` returns the violations that event caused (usually none),
    with exactly the lenient continuation rules and messages of
    :func:`collect_task_stream_violations`: offending events are skipped,
    except that a TaskEnd with open regions force-closes them (the
    instance still counts as ended) and an attribution mismatch is
    re-attributed to the actually-current instance.

    ``states`` may be shared/inspected by the caller (it is mutated in
    place); ``known_active`` may likewise be a live, externally-growing set
    of instances begun on other threads (untied migration).
    """

    __slots__ = ("thread_id", "tied", "known_active", "states", "_implicit", "_current", "_index")

    def __init__(
        self,
        thread_id: int = 0,
        tied: bool = True,
        known_active: Optional[Set[int]] = None,
        states: Optional[Dict[int, _InstanceState]] = None,
    ) -> None:
        self.thread_id = thread_id
        self.tied = tied
        self.known_active = known_active
        self.states: Dict[int, _InstanceState] = states if states is not None else {}
        self._implicit = implicit_instance_id(thread_id)
        self._current = self._implicit
        self._index = 0
        self._state_of(self._implicit)

    @property
    def current_instance(self) -> int:
        """The instance the checker believes the thread is executing in."""
        return self._current

    @property
    def events_seen(self) -> int:
        return self._index

    def _state_of(self, instance: int) -> _InstanceState:
        state = self.states.get(instance)
        if state is None:
            state = _InstanceState()
            self.states[instance] = state
            if is_implicit(instance):
                state.begun = True
        return state

    def feed(self, event: AnyEvent) -> List[Violation]:
        """Check one event; return the violations it caused (often empty)."""
        index = self._index
        self._index = index + 1
        out: List[Violation] = []
        if isinstance(event, TaskBeginEvent):
            state = self._state_of(event.instance)
            if state.begun:
                out.append(
                    Violation(
                        index,
                        "begin-twice",
                        f"event #{index}: instance {event.instance} begun twice",
                    )
                )
                return out
            state.begun = True
            state.bound_thread = self.thread_id
            self._current = event.instance
        elif isinstance(event, TaskEndEvent):
            state = self._state_of(event.instance)
            if not state.begun or state.ended:
                out.append(
                    Violation(
                        index,
                        "end-inactive",
                        f"event #{index}: task_end for instance {event.instance} "
                        "that is not active",
                    )
                )
                return out
            if event.instance != self._current:
                out.append(
                    Violation(
                        index,
                        "end-not-current",
                        f"event #{index}: task_end for instance {event.instance} "
                        f"but current instance is {self._current}",
                    )
                )
                # Lenient continuation: pretend the missing switch happened.
                self._current = event.instance
            if state.stack:
                names = ", ".join(r.name for r in state.stack)
                out.append(
                    Violation(
                        index,
                        "end-open-regions",
                        f"event #{index}: instance {event.instance} ended with "
                        f"open region(s): {names}",
                    )
                )
                state.stack.clear()
            state.ended = True
            self._current = self._implicit
        elif isinstance(event, TaskSwitchEvent):
            target = event.instance
            state = self.states.get(target)
            if is_implicit(target):
                if target != self._implicit:
                    out.append(
                        Violation(
                            index,
                            "switch-foreign-implicit",
                            f"event #{index}: switch to foreign implicit task {target}",
                        )
                    )
                    return out
            else:
                migrated = (
                    not self.tied
                    and self.known_active is not None
                    and target in self.known_active
                    and state is None
                )
                if migrated:
                    state = self._state_of(target)
                    state.begun = True
                if state is None or not state.begun or state.ended:
                    out.append(
                        Violation(
                            index,
                            "switch-inactive",
                            f"event #{index}: switch to inactive instance {target}",
                        )
                    )
                    return out
                if self.tied and state.bound_thread not in (None, self.thread_id):
                    out.append(
                        Violation(
                            index,
                            "tied-migration",
                            f"event #{index}: tied instance {target} resumed on "
                            f"thread {self.thread_id}, began on {state.bound_thread}",
                        )
                    )
                    return out
            self._current = target
        elif isinstance(event, (EnterEvent, TaskCreateBeginEvent)):
            if event.executing_instance != self._current:
                out.append(
                    Violation(
                        index,
                        "attribution",
                        f"event #{index}: event attributed to instance "
                        f"{event.executing_instance} while instance "
                        f"{self._current} is current",
                    )
                )
            self._state_of(self._current).stack.append(event.region)
        elif isinstance(event, (ExitEvent, TaskCreateEndEvent)):
            if event.executing_instance != self._current:
                out.append(
                    Violation(
                        index,
                        "attribution",
                        f"event #{index}: event attributed to instance "
                        f"{event.executing_instance} while instance "
                        f"{self._current} is current",
                    )
                )
            stack = self._state_of(self._current).stack
            if not stack:
                out.append(
                    Violation(
                        index,
                        "exit-unmatched",
                        f"event #{index}: exit {event.region.name!r} with no open "
                        f"region in instance {self._current}",
                    )
                )
                return out
            top = stack.pop()
            if top is not event.region:
                out.append(
                    Violation(
                        index,
                        "exit-mismatch",
                        f"event #{index}: exit {event.region.name!r} does not match "
                        f"innermost open region {top.name!r} of instance "
                        f"{self._current}",
                    )
                )
        else:
            out.append(
                Violation(
                    index,
                    "unknown-event",
                    f"unknown event type {type(event).__name__}",
                )
            )
        return out


def _task_stream_violations(
    events: Iterable[AnyEvent],
    thread_id: int,
    tied: bool,
    known_active: Optional[Set[int]],
    states: Dict[int, _InstanceState],
) -> Iterator[Violation]:
    """Yield every violation of the task-aware rules on one stream.

    Thin batch wrapper over :class:`TaskStreamChecker`.  Mutates ``states``
    in place so callers see the final per-instance state.
    """
    checker = TaskStreamChecker(
        thread_id=thread_id, tied=tied, known_active=known_active, states=states
    )
    for event in events:
        yield from checker.feed(event)


def validate_task_stream(
    events: Iterable[AnyEvent],
    thread_id: int = 0,
    tied: bool = True,
    known_active: Optional[Set[int]] = None,
) -> Dict[int, _InstanceState]:
    """Validate one thread's stream under the task-aware rules.

    Parameters
    ----------
    events:
        The thread's events in order.
    thread_id:
        The stream's thread; the implicit task id derives from it.
    tied:
        If True (the paper's supported mode) a task instance must execute
        all its fragments on this thread.  Untied migration relaxes this
        (Section IV-D1); cross-thread validation then needs the merged
        trace, see :func:`validate_program_trace`.
    known_active:
        Instance ids that began on *another* thread and may legitimately
        be switched to here (untied migration).  Ignored when ``tied``.

    Returns the final per-instance state map so callers can make additional
    assertions (e.g. every instance both begun and ended).  Raises the
    precise :class:`~repro.errors.ValidationError` at the first violation.
    """
    states: Dict[int, _InstanceState] = {}
    for violation in _task_stream_violations(
        events, thread_id, tied, known_active, states
    ):
        raise violation.exception()
    return states


def collect_task_stream_violations(
    events: Iterable[AnyEvent],
    thread_id: int = 0,
    tied: bool = True,
    known_active: Optional[Set[int]] = None,
) -> Tuple[Dict[int, _InstanceState], List[Violation]]:
    """Lenient counterpart of :func:`validate_task_stream`.

    Walks the whole stream, returning the final state map *and* every
    violation found, instead of raising at the first one.
    """
    states: Dict[int, _InstanceState] = {}
    violations = list(
        _task_stream_violations(events, thread_id, tied, known_active, states)
    )
    return states, violations


# ----------------------------------------------------------------------
# Whole-program traces
# ----------------------------------------------------------------------
def _trace_violations(trace) -> Iterator[Violation]:
    begun: Dict[int, int] = {}
    ended: Dict[int, int] = {}
    for stream in trace.streams:
        last_time = None
        for index, event in enumerate(stream):
            if last_time is not None and event.time < last_time:
                yield Violation(
                    index,
                    "time-order",
                    f"event #{index}: timestamp {event.time} precedes "
                    f"{last_time} on thread {stream.thread_id}",
                )
            last_time = event.time
        states: Dict[int, _InstanceState] = {}
        yield from _task_stream_violations(
            stream, stream.thread_id, False, set(begun), states
        )
        for event in stream:
            if isinstance(event, TaskBeginEvent):
                begun[event.instance] = begun.get(event.instance, 0) + 1
            elif isinstance(event, TaskEndEvent):
                ended[event.instance] = ended.get(event.instance, 0) + 1
    for instance, count in begun.items():
        if count != 1:
            yield Violation(
                -1,
                "begin-count",
                f"instance {instance} has {count} TaskBegin events",
            )
        if ended.get(instance, 0) != 1:
            yield Violation(
                -1,
                "end-count",
                f"instance {instance} begun but ended {ended.get(instance, 0)} times",
            )
    extra = set(ended) - set(begun)
    if extra:
        yield Violation(
            -1,
            "end-without-begin",
            f"TaskEnd without TaskBegin for instance(s) {sorted(extra)}",
        )


def validate_program_trace(trace) -> None:
    """Validate a whole :class:`~repro.events.stream.ProgramTrace`.

    Checks every per-thread stream with the task-aware validator and then
    the cross-thread properties: each explicit instance has exactly one
    TaskBegin and one TaskEnd program-wide.
    """
    for violation in _trace_violations(trace):
        raise violation.exception()


def collect_trace_violations(trace) -> List[Violation]:
    """Lenient counterpart of :func:`validate_program_trace`."""
    return list(_trace_violations(trace))
