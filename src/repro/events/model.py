"""Measurement event records.

These are the events the instrumented application delivers to the
measurement system (paper Section IV-A and Fig. 12):

* ``Enter(region)`` / ``Exit(region)`` -- classic region bracketing, used
  for functions and for OpenMP constructs (task-creation regions,
  taskwaits, barriers are bracketed this way by OPARI2).
* ``TaskBegin(region, instance)`` / ``TaskEnd(region, instance)`` -- the
  first/last event of one *task instance* of a task construct.
* ``TaskSwitch(instance)`` -- the executing thread switches to another
  active task instance (or back to the implicit task).  This is the event
  OPARI2's task-instance IDs make possible and the whole Fig. 12 algorithm
  hinges on.
* ``TaskCreateBegin/End(region, created_instance)`` -- bracket the task
  creation region, additionally carrying the ID of the instance being
  created (used to associate creation cost with the construct).

All events carry the executing (simulated) thread id, a virtual timestamp,
and the id of the task instance *within which* the event occurred
(``executing_instance``); for pure enter/exit this tells the task-aware
profiler which call tree to update.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.events.regions import Region

#: Task instance ids are plain ints; implicit tasks use negative ids, one
#: per thread (thread t's implicit task is ``-(t + 1)``), explicit task
#: instances count up from 1.
InstanceId = int


def implicit_instance_id(thread_id: int) -> InstanceId:
    """The instance id of thread ``thread_id``'s implicit task."""
    return -(thread_id + 1)


def is_implicit(instance: InstanceId) -> bool:
    """True if ``instance`` denotes an implicit task."""
    return instance < 0


@dataclass(frozen=True, slots=True)
class Event:
    """Common header: who, when, and in which task context."""

    thread_id: int
    time: float
    executing_instance: InstanceId


@dataclass(frozen=True, slots=True)
class EnterEvent(Event):
    region: Region
    #: Optional (name, value) qualifier from parameter instrumentation.
    parameter: Optional[tuple] = None

    def __str__(self) -> str:
        return f"[t{self.thread_id} @{self.time:.2f}] enter {self.region.name}"


@dataclass(frozen=True, slots=True)
class ExitEvent(Event):
    region: Region

    def __str__(self) -> str:
        return f"[t{self.thread_id} @{self.time:.2f}] exit {self.region.name}"


@dataclass(frozen=True, slots=True)
class TaskBeginEvent(Event):
    region: Region
    instance: InstanceId = 0
    #: Optional (name, value) parameter qualifying the instance's sub-tree,
    #: e.g. the recursion depth used for the paper's Table IV.
    parameter: Optional[tuple] = None

    def __str__(self) -> str:
        return (
            f"[t{self.thread_id} @{self.time:.2f}] task_begin "
            f"{self.region.name} instance={self.instance}"
        )


@dataclass(frozen=True, slots=True)
class TaskEndEvent(Event):
    region: Region
    instance: InstanceId = 0

    def __str__(self) -> str:
        return (
            f"[t{self.thread_id} @{self.time:.2f}] task_end "
            f"{self.region.name} instance={self.instance}"
        )


@dataclass(frozen=True, slots=True)
class TaskSwitchEvent(Event):
    """Thread switches execution to ``instance`` (may be an implicit task)."""

    instance: InstanceId = 0

    def __str__(self) -> str:
        return f"[t{self.thread_id} @{self.time:.2f}] task_switch -> {self.instance}"


@dataclass(frozen=True, slots=True)
class TaskCreateBeginEvent(Event):
    region: Region
    created_instance: InstanceId = 0

    def __str__(self) -> str:
        return (
            f"[t{self.thread_id} @{self.time:.2f}] create_begin "
            f"{self.region.name} -> instance {self.created_instance}"
        )


@dataclass(frozen=True, slots=True)
class TaskCreateEndEvent(Event):
    region: Region
    created_instance: InstanceId = 0

    def __str__(self) -> str:
        return (
            f"[t{self.thread_id} @{self.time:.2f}] create_end "
            f"{self.region.name} -> instance {self.created_instance}"
        )


AnyEvent = Union[
    EnterEvent,
    ExitEvent,
    TaskBeginEvent,
    TaskEndEvent,
    TaskSwitchEvent,
    TaskCreateBeginEvent,
    TaskCreateEndEvent,
]
