"""Replay recorded event streams into a POMP2 listener.

The live measurement path feeds the profiler directly from the simulated
runtime; the salvage pipeline instead *records* (possibly corrupt) event
streams, repairs them offline, and then replays the repaired events into
a fresh lenient profiler.  Replay is the inverse of
:class:`~repro.instrument.pomp2.RecordingListener`: each event record is
turned back into the listener callback that produced it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Union

from repro.events.model import (
    AnyEvent,
    EnterEvent,
    ExitEvent,
    TaskBeginEvent,
    TaskCreateBeginEvent,
    TaskCreateEndEvent,
    TaskEndEvent,
    TaskSwitchEvent,
)
from repro.events.stream import ProgramTrace


def _merged(streams: Dict[int, List[AnyEvent]]) -> List[AnyEvent]:
    indexed = []
    for thread_id in sorted(streams):
        for position, event in enumerate(streams[thread_id]):
            indexed.append((event.time, event.thread_id, position, event))
    indexed.sort(key=lambda item: (item[0], item[1], item[2]))
    return [item[3] for item in indexed]


def replay_events(
    events: Iterable[AnyEvent], listener, finish_time: Optional[float] = None
) -> float:
    """Dispatch each event to the matching ``on_*`` listener callback.

    Task-creation bracket events are replayed as plain enter/exit (that is
    how the live recorder captures them too).  Calls ``on_finish`` with
    ``finish_time`` or the last event timestamp; returns that time.
    """
    last_time = 0.0
    for event in events:
        last_time = max(last_time, event.time)
        if isinstance(event, (EnterEvent, TaskCreateBeginEvent)):
            parameter = getattr(event, "parameter", None)
            listener.on_enter(event.thread_id, event.region, event.time, parameter)
        elif isinstance(event, (ExitEvent, TaskCreateEndEvent)):
            listener.on_exit(event.thread_id, event.region, event.time)
        elif isinstance(event, TaskBeginEvent):
            listener.on_task_begin(
                event.thread_id, event.region, event.instance, event.time,
                event.parameter,
            )
        elif isinstance(event, TaskEndEvent):
            listener.on_task_end(
                event.thread_id, event.region, event.instance, event.time
            )
        elif isinstance(event, TaskSwitchEvent):
            listener.on_task_switch(event.thread_id, event.instance, event.time)
        # Unknown event types are silently skipped: replay is the lenient
        # path, and repair has already flagged anything it could not parse.
    end = finish_time if finish_time is not None else last_time
    listener.on_finish(end)
    return end


def replay_trace(
    trace: Union[ProgramTrace, Dict[int, List[AnyEvent]]],
    listener,
    finish_time: Optional[float] = None,
) -> float:
    """Replay a whole trace (or per-thread stream dict) in global order."""
    if isinstance(trace, ProgramTrace):
        events = trace.merged()
    else:
        events = _merged(trace)
    return replay_events(events, listener, finish_time=finish_time)
