"""Event model: source-code regions, measurement events, event streams.

This subpackage is the vocabulary shared by the simulated runtime, the
instrumentation layer, and the profiler.  It mirrors the POMP2/Score-P
event model the paper builds on:

* :class:`~repro.events.regions.Region` -- a handle for a source-code
  region (function, parallel region, task construct, task-creation region,
  taskwait, barrier, ...), interned by a
  :class:`~repro.events.regions.RegionRegistry`.
* Event records (:mod:`repro.events.model`) -- ``Enter``/``Exit`` for
  regions plus the task events ``TaskBegin``/``TaskEnd``/``TaskSwitch``
  introduced for task-instance tracking (paper Section IV, Fig. 12).
* :class:`~repro.events.stream.EventStream` -- the per-thread event log.
* :mod:`repro.events.validate` -- checks the enter/exit nesting condition
  and the task-aware consistency rules; the classic validator rejects
  exactly the interleaved streams of the paper's Fig. 2.
"""

from repro.events.regions import Region, RegionRegistry, RegionType
from repro.events.model import (
    EnterEvent,
    Event,
    ExitEvent,
    TaskBeginEvent,
    TaskCreateBeginEvent,
    TaskCreateEndEvent,
    TaskEndEvent,
    TaskSwitchEvent,
)
from repro.events.stream import EventStream, ProgramTrace
from repro.events.validate import (
    TaskStreamChecker,
    Violation,
    collect_nesting_violations,
    collect_task_stream_violations,
    collect_trace_violations,
    validate_nesting,
    validate_program_trace,
    validate_task_stream,
)
from repro.events.repair import (
    RepairLog,
    RepairResult,
    repair_stream,
    repair_streams,
)
from repro.events.replay import replay_events, replay_trace

__all__ = [
    "Region",
    "RegionRegistry",
    "RegionType",
    "Event",
    "EnterEvent",
    "ExitEvent",
    "TaskBeginEvent",
    "TaskEndEvent",
    "TaskSwitchEvent",
    "TaskCreateBeginEvent",
    "TaskCreateEndEvent",
    "EventStream",
    "ProgramTrace",
    "TaskStreamChecker",
    "Violation",
    "validate_nesting",
    "validate_task_stream",
    "validate_program_trace",
    "collect_nesting_violations",
    "collect_task_stream_violations",
    "collect_trace_violations",
    "RepairLog",
    "RepairResult",
    "repair_stream",
    "repair_streams",
    "replay_events",
    "replay_trace",
]
