"""Source-code region handles and the registry that interns them.

In Score-P every measured entity -- a function, an OpenMP construct, a
user-defined phase -- is a *region* identified by a handle.  OPARI2
registers one handle per instrumented construct; compiler instrumentation
registers one per function.  Metrics in the call-path profile are keyed by
region handles, so handles must be interned: the same construct always maps
to the same handle no matter how many times it executes.

We reproduce that scheme: :class:`RegionRegistry` interns
:class:`Region` objects by ``(name, region_type, file, line)``.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterator, Optional, Tuple


class RegionType(enum.Enum):
    """Classification of a source region, mirroring POMP2 region types."""

    FUNCTION = "function"
    PARALLEL = "parallel"
    IMPLICIT_TASK = "implicit_task"
    TASK = "task"
    TASK_CREATE = "task_create"
    TASKWAIT = "taskwait"
    TASKYIELD = "taskyield"
    BARRIER = "barrier"
    IMPLICIT_BARRIER = "implicit_barrier"
    SINGLE = "single"
    MASTER = "master"
    CRITICAL = "critical"
    ATOMIC = "atomic"
    PARAMETER = "parameter"
    PHASE = "phase"

    def is_scheduling_point(self) -> bool:
        """True for region types at which tasks may be scheduled.

        OpenMP 3.0 defines task scheduling points at task creation,
        taskwait, barriers (explicit and implicit), and task completion.
        Only region types — not completion — are represented here.
        """
        return self in _SCHEDULING_POINTS

    def __repr__(self) -> str:
        return f"RegionType.{self.name}"


_SCHEDULING_POINTS = frozenset(
    {
        RegionType.TASK_CREATE,
        RegionType.TASKWAIT,
        RegionType.TASKYIELD,
        RegionType.BARRIER,
        RegionType.IMPLICIT_BARRIER,
    }
)


class Region:
    """An interned handle for one source-code region.

    Instances are created only through :meth:`RegionRegistry.register`;
    identity comparison (`is`) is therefore valid between handles from the
    same registry, and handles are hashable dict keys in call trees.
    """

    __slots__ = ("handle", "name", "region_type", "file", "line")

    def __init__(
        self,
        handle: int,
        name: str,
        region_type: RegionType,
        file: Optional[str] = None,
        line: Optional[int] = None,
    ) -> None:
        self.handle = handle
        self.name = name
        self.region_type = region_type
        self.file = file
        self.line = line

    @property
    def is_task(self) -> bool:
        return self.region_type is RegionType.TASK

    @property
    def is_scheduling_point(self) -> bool:
        return self.region_type.is_scheduling_point()

    def location(self) -> str:
        """Human-readable source location, e.g. ``fib.py:12``."""
        if self.file is None:
            return "<unknown>"
        if self.line is None:
            return self.file
        return f"{self.file}:{self.line}"

    def __repr__(self) -> str:
        return f"<Region #{self.handle} {self.region_type.value} {self.name!r}>"

    def __str__(self) -> str:
        return self.name


RegionKey = Tuple[str, RegionType, Optional[str], Optional[int]]


class RegionRegistry:
    """Interning factory for :class:`Region` handles.

    The registry hands out consecutive integer handles, mirroring the
    handle tables OPARI2 generates.  Lookup by name is provided for tests
    and the profile query layer.
    """

    def __init__(self) -> None:
        self._by_key: Dict[RegionKey, Region] = {}
        self._by_handle: Dict[int, Region] = {}
        self._next_handle = 1

    def register(
        self,
        name: str,
        region_type: RegionType,
        file: Optional[str] = None,
        line: Optional[int] = None,
        handle: Optional[int] = None,
    ) -> Region:
        """Return the unique region for this key, creating it on first use.

        ``handle`` pins the new region to a specific handle value: the
        record-stream decoder uses this so a replayed registry agrees
        with the live one about region ids (the recorder writes live
        handles to the wire -- one shared intern table end to end).
        Pinning an occupied or stale handle raises ``ValueError``.
        """
        key: RegionKey = (name, region_type, file, line)
        region = self._by_key.get(key)
        if region is None:
            if handle is None:
                handle = self._next_handle
            elif handle in self._by_handle:
                raise ValueError(
                    f"region handle {handle} already registered "
                    f"({self._by_handle[handle]!r})"
                )
            region = Region(handle, name, region_type, file, line)
            self._by_key[key] = region
            self._by_handle[handle] = region
            self._next_handle = max(self._next_handle, handle + 1)
        elif handle is not None and region.handle != handle:
            raise ValueError(
                f"region {name!r} already interned as handle "
                f"{region.handle}, cannot re-pin to {handle}"
            )
        return region

    def lookup(self, handle: int) -> Region:
        """Resolve a handle back to its region; raises ``KeyError`` if unknown."""
        return self._by_handle[handle]

    def find(self, name: str, region_type: Optional[RegionType] = None) -> Region:
        """Find the unique region with this name (and type if given).

        Raises ``KeyError`` if no region matches and ``ValueError`` if the
        name is ambiguous.
        """
        matches = [
            r
            for r in self._by_handle.values()
            if r.name == name and (region_type is None or r.region_type is region_type)
        ]
        if not matches:
            raise KeyError(f"no region named {name!r}")
        if len(matches) > 1:
            raise ValueError(f"region name {name!r} is ambiguous ({len(matches)} matches)")
        return matches[0]

    def __iter__(self) -> Iterator[Region]:
        return iter(self._by_handle.values())

    def __len__(self) -> int:
        return len(self._by_handle)

    def __contains__(self, region: Region) -> bool:
        return self._by_handle.get(region.handle) is region
